//! The deterministic parallel engine on a large instance.
//!
//! Runs the same 100k-task simulation on 1 thread and on all available
//! cores, verifies the trajectories are bit-identical (the engine's
//! chunk-seeded determinism contract), and reports the wall-clock ratio.
//!
//! Run: `cargo run --release --example parallel_scaling`

use selfish_load_balancing::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = generators::torus(16, 16);
    let n = graph.node_count();
    let m = 400 * n; // 102,400 tasks
    let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m))?;
    let initial = TaskState::all_on_node(&system, NodeId(0));
    let rounds = 40u64;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("instance: torus 16x16, m = {m} tasks, {rounds} rounds, {cores} cores\n");

    let run = |threads: usize| {
        let mut sim = ParallelSimulation::with_layout(
            &system,
            SelfishUniform::new(),
            initial.clone(),
            0xFEED,
            4096,
            threads,
        );
        let start = Instant::now();
        sim.run(rounds);
        (start.elapsed(), sim.into_state())
    };

    let (t1, s1) = run(1);
    println!("1 thread  : {t1:?}");
    let (tn, sn) = run(cores);
    println!("{cores} threads: {tn:?}");

    assert_eq!(s1, sn, "thread count must not change the trajectory");
    println!(
        "\ntrajectories identical across thread counts ✓ (speedup {:.2}x)",
        t1.as_secs_f64() / tn.as_secs_f64()
    );

    let p = potential::report(&system, &sn);
    println!(
        "after {rounds} rounds: Ψ₀ = {:.3e} (from {:.3e} at start)",
        p.psi0,
        potential::report(&system, &initial).psi0
    );
    Ok(())
}
