//! A tour of the spectral machinery behind the paper's bounds.
//!
//! For each Table 1 family this example computes `λ₂` three ways (closed
//! form, dense Jacobi, sparse Lanczos), verifies the Appendix A bounds
//! (Fiedler, Mohar, Cheeger), and shows how machine speeds shift the
//! spectrum of the generalized Laplacian within Corollary 1.16's
//! interlacing window.
//!
//! Run: `cargo run --release --example spectral_tour`

use selfish_load_balancing::graphs::{cheeger, traversal};
use selfish_load_balancing::prelude::*;
use selfish_load_balancing::spectral::{bounds, generalized, lanczos, sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("family        |     λ₂ closed |      λ₂ dense |    λ₂ lanczos");
    println!("--------------+---------------+---------------+--------------");
    let families = [
        generators::Family::Complete { n: 16 },
        generators::Family::Ring { n: 16 },
        generators::Family::Path { n: 16 },
        generators::Family::Mesh { rows: 4, cols: 4 },
        generators::Family::Torus { rows: 4, cols: 4 },
        generators::Family::Hypercube { d: 4 },
        generators::Family::Star { n: 16 },
    ];
    for family in families {
        let g = family.build();
        let closed = closed_form::lambda2_family(family);
        let dense = laplacian::lambda2(&g)?;
        let sparse = lanczos::lambda2(&g)?;
        println!(
            "{:<13} | {closed:>13.6} | {dense:>13.6} | {sparse:>13.6}",
            family.label()
        );
        assert!((closed - dense).abs() < 1e-6);
        assert!((closed - sparse).abs() < 1e-6);
    }

    // Appendix A bounds on a mid-sized torus.
    let g = generators::torus(4, 5);
    let l2 = laplacian::lambda2(&g)?;
    let diam = traversal::diameter(&g).ok_or("connected graph expected")?;
    let (iso, _) = cheeger::isoperimetric_number(&g);
    let (ch_lo, ch_hi) = bounds::cheeger_sandwich(iso, g.max_degree());
    println!("\ntorus 4x5: λ₂ = {l2:.4}");
    println!(
        "  Fiedler (Lem 1.7)   : λ₂ ≤ {:.4}",
        bounds::fiedler_upper(&g)
    );
    println!(
        "  Mohar (Lem 1.5)     : λ₂ ≥ {:.4} (diam = {diam})",
        bounds::mohar_lambda2_lower(g.node_count(), diam)
    );
    println!("  Cheeger (Lem 1.10)  : {ch_lo:.4} ≤ λ₂ ≤ {ch_hi:.4} (i(G) = {iso:.3})");
    let cut = sweep::fiedler_sweep(&g)?;
    println!(
        "  Fiedler sweep cut   : expansion {:.3} with |S| = {} (upper-bounds i(G))",
        cut.expansion,
        cut.subset.len()
    );
    assert!(bounds::check_all(&g, l2, Some(diam), Some(iso)).is_empty());

    // Speeds and the generalized Laplacian (§A.2).
    println!("\ngeneralized Laplacian L·S⁻¹ on the same torus:");
    for s_max in [1u64, 2, 4, 8] {
        let speeds: Vec<f64> = (0..20).map(|i| 1.0 + (i % s_max as usize) as f64).collect();
        let mu2 = generalized::mu2(&g, &speeds)?;
        let (lo, hi) = bounds::speed_interlacing(
            l2,
            speeds.iter().cloned().fold(f64::MAX, f64::min),
            speeds.iter().cloned().fold(f64::MIN, f64::max),
        );
        println!("  s_max = {s_max}: µ₂ = {mu2:.4} ∈ [{lo:.4}, {hi:.4}] (Cor 1.16)");
        assert!(mu2 >= lo - 1e-9 && mu2 <= hi + 1e-9);
    }

    // What the spectrum buys: the paper's convergence time scale γ.
    println!("\nconvergence time scale γ = 32·Δ·s_max²/λ₂ per family (n = 64):");
    for family in [
        generators::Family::Complete { n: 64 },
        generators::Family::Ring { n: 64 },
        generators::Family::Torus { rows: 8, cols: 8 },
        generators::Family::Hypercube { d: 6 },
    ] {
        let g = family.build();
        let inst = theory::Instance::uniform_speeds(
            64,
            64 * 32,
            g.max_degree(),
            closed_form::lambda2_family(family),
        );
        println!(
            "  {:<10}: γ = {:>10.1}, ψ_c = {:>10.1}, T = 2γ·ln(m/n) = {:>10.1}",
            family.label(),
            theory::gamma(&inst),
            theory::psi_c(&inst),
            theory::t_block(&inst)
        );
    }
    Ok(())
}
