//! Weighted tasks: Algorithm 2's weight-independent threshold in action.
//!
//! Demonstrates the §4 design decision on a tiny instance you can reason
//! about by hand: Algorithm 2 moves a task only when the load gap exceeds
//! `1/s_j` — the threshold of the *heaviest possible* task — so it
//! converges fast to an approximate equilibrium but deliberately leaves
//! small per-task improvements on the table. The [6] baseline uses each
//! task's own weight and keeps polishing.
//!
//! Run: `cargo run --release --example weighted_tasks`

use rand::{Rng, SeedableRng};
use selfish_load_balancing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 6 identical machines in a ring; 120 tasks with weights in (0, 1/4].
    let n = 6;
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let weights: Vec<f64> = (0..20 * n).map(|_| rng.gen_range(0.01..=0.25)).collect();
    let total: f64 = weights.iter().sum();
    let system = System::new(
        generators::ring(n),
        SpeedVector::uniform(n),
        TaskSet::weighted(weights)?,
    )?;
    println!(
        "instance: ring n={n}, m={} tasks, total weight W = {total:.2}, max weight ≤ 0.25\n",
        system.task_count()
    );

    let initial = TaskState::all_on_node(&system, NodeId(0));

    // Algorithm 2: converges to ℓ_i − ℓ_j ≤ 1/s_j = 1 on every edge.
    let mut alg2 = Simulation::new(&system, SelfishWeighted::new(), initial.clone(), 1);
    let o = alg2.run_until(StopCondition::Quiescent(2_000), 200_000);
    let gap2 = equilibrium::nash_gap(&system, alg2.state(), Threshold::LightestTask);
    println!("algorithm 2 : quiescent after ~{} rounds", o.rounds);
    println!(
        "  relaxed NE (gap ≤ 1/s_j)  : {}",
        equilibrium::is_nash(&system, alg2.state(), Threshold::UnitWeight)
    );
    println!(
        "  exact weighted NE          : {} (gap {gap2:.3})",
        equilibrium::is_nash(&system, alg2.state(), Threshold::LightestTask)
    );
    let loads = alg2.state().loads(&system);
    println!("  loads: {loads:.2?}");

    // With max weight 0.25, a load gap of 0.9 is a *relaxed* equilibrium
    // but every task on the higher node would still gain by moving — the
    // approximate-NE trade-off quantified by Theorem 1.3.

    // The [6] baseline from the same start.
    let mut bhs = Simulation::new(&system, BhsBaseline::new(), initial, 1);
    let o = bhs.run_until(StopCondition::Quiescent(2_000), 200_000);
    let gapb = equilibrium::nash_gap(&system, bhs.state(), Threshold::LightestTask);
    println!("\nbhs [6]     : quiescent after ~{} rounds", o.rounds);
    println!(
        "  exact weighted NE          : {} (gap {gapb:.3})",
        equilibrium::is_nash(&system, bhs.state(), Threshold::LightestTask)
    );
    let loads = bhs.state().loads(&system);
    println!("  loads: {loads:.2?}");

    println!(
        "\nBoth end nearly balanced; the baseline's per-task threshold drives\n\
         the exact-NE gap lower ({gapb:.3} vs {gap2:.3}), at the cost of the harder\n\
         analysis the paper replaces."
    );
    Ok(())
}
