//! Run a declarative experiment grid from Rust and inspect the results.
//!
//! The same grid is reachable from the command line:
//!
//! ```console
//! slb sweep graph=ring:8,torus:3x3 protocol=alg1,bhs,diffusion \
//!           speeds=uniform,alternating:2 until=quiescent:30 \
//!           --trials 3 --seed 7
//! ```
//!
//! Run with: `cargo run --release --example sweep_grid`

use selfish_load_balancing::prelude::*;

fn main() {
    // A 2 × 3 × 2 grid: topology × protocol × speeds, three seeded trials
    // per cell. Cells where a protocol cannot run a task mode would be
    // marked `unsupported` instead of failing the whole sweep.
    let spec = SweepSpec::parse(&[
        "graph=ring:8,torus:3x3",
        "tasks-per-node=8",
        "protocol=alg1,bhs,diffusion",
        "speeds=uniform,alternating:2",
        "until=quiescent:30",
        "trials=3",
        "max-rounds=50000",
    ])
    .expect("grid parses");

    // Fan the 12 cells × 3 trials out over the available cores; the
    // artifact is byte-identical no matter how many threads run it.
    let outcome = run_sweep(&spec, SweepConfig::parallel(7)).expect("grid is buildable");

    println!(
        "{} cells, {} trials each\n",
        outcome.cells.len(),
        outcome.trials
    );
    for cell in &outcome.cells {
        let Some(stats) = &cell.stats else {
            println!("cell {:2}: unsupported combination", cell.index);
            continue;
        };
        println!(
            "cell {:2}: {:22} {:13} n={:3} m={:4} → {:7.1} rounds (±{:6.1}), {:6.1} migrations",
            cell.index,
            format!("{}", cell.spec.graph),
            cell.spec.protocol.grid_label(),
            cell.n,
            cell.m,
            stats.rounds.mean,
            stats.rounds.ci95_half_width(),
            stats.migrations.mean,
        );
    }

    // The artifact the figure scripts and regression tests consume.
    let csv = outcome.to_csv();
    println!("\nCSV artifact: {} rows", csv.lines().count() - 1);
    println!("{}", csv.lines().next().unwrap());
}
