//! Quickstart: Algorithm 1 on a small heterogeneous torus.
//!
//! Builds a 4×4 torus of machines (one in four is 4× faster), dumps all
//! tasks on one node, runs the paper's Algorithm 1 until an exact Nash
//! equilibrium, and prints what happened round by round.
//!
//! Run: `cargo run --release --example quickstart`

use selfish_load_balancing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The network: a 4x4 torus (Table 1's mesh/torus row).
    let graph = generators::torus(4, 4);
    let n = graph.node_count();

    // Machines: every fourth node is 4x faster (integer speeds keep the
    // granularity ε = 1, so Theorem 1.2's exact-NE bound applies).
    let speeds = SpeedVector::integer((0..n).map(|i| if i % 4 == 0 { 4 } else { 1 }).collect())?;
    println!(
        "network : torus 4x4, Δ = {}, λ₂ = {:.4}",
        graph.max_degree(),
        closed_form::lambda2_torus(4, 4),
    );
    println!(
        "machines: n = {n}, s_max = {}, total capacity S = {}",
        speeds.max(),
        speeds.total()
    );

    // Workload: 20 unit tasks per node, all initially on node 0.
    let system = System::new(graph, speeds, TaskSet::uniform(20 * n))?;
    let initial = TaskState::all_on_node(&system, NodeId(0));
    let start = potential::report(&system, &initial);
    println!(
        "start   : m = {} tasks on node 0, Ψ₀ = {:.1}, L_Δ = {:.2}\n",
        system.task_count(),
        start.psi0,
        start.max_load_deviation
    );

    // Run Algorithm 1, sampling the potential every 50 rounds.
    let mut sim = Simulation::new(&system, SelfishUniform::new(), initial, 42);
    let mut trace = Trace::new(50);
    trace.record(0, &system, sim.state(), None);
    let mut nash_round = None;
    for round in 1..=100_000u64 {
        let report = sim.step();
        trace.record(round, &system, sim.state(), Some(report));
        if equilibrium::is_nash(&system, sim.state(), Threshold::UnitWeight) {
            nash_round = Some(round);
            break;
        }
    }

    for row in trace.rows().iter().take(8) {
        println!(
            "round {:>5}: Ψ₀ = {:>9.1}, L_Δ = {:>6.2}, migrations = {}",
            row.round, row.psi0, row.max_load_deviation, row.migrations
        );
    }
    let round = nash_round.ok_or("no Nash equilibrium within the budget")?;
    let end = potential::report(&system, sim.state());
    println!("\nNash equilibrium after {round} rounds");
    println!(
        "final   : Ψ₀ = {:.2}, L_Δ = {:.3}",
        end.psi0, end.max_load_deviation
    );

    // Every machine's load sits within 1/s_j of its neighbors' — no task
    // can improve by migrating (the paper's equilibrium condition).
    let loads = sim.state().loads(&system);
    println!(
        "loads   : min {:.2}, max {:.2}",
        loads.iter().cloned().fold(f64::MAX, f64::min),
        loads.iter().cloned().fold(f64::MIN, f64::max),
    );
    Ok(())
}
