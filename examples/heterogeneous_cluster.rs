//! A heterogeneous datacenter scenario with weighted jobs.
//!
//! Uses the `slb-workloads` presets: a torus of racks with two machine
//! classes, heavy-tailed job weights, and everything queued on one ingest
//! node. Compares Algorithm 2 against the [6] baseline on the same
//! instance — the experiment motivating §4 of the paper.
//!
//! Run: `cargo run --release --example heterogeneous_cluster`

use rand::SeedableRng;
use selfish_load_balancing::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 400 tasks per node: enough total weight that Ψ₀ ≤ 4ψ_c^w is a real
    // target (the paper's Theorem 1.3 needs W large — with few tasks the
    // start state can satisfy the potential bound trivially).
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let built = scenario::heterogeneous_torus(5, 5, 400, &mut rng)?;
    println!("scenario: {}", built.description);

    let system = &built.system;
    let w = system.tasks().total_weight();
    println!(
        "instance: n = {}, m = {}, W = {:.1}, s_max = {}\n",
        system.node_count(),
        system.task_count(),
        w,
        system.speeds().max()
    );

    // The weighted-case critical potential of Theorem 1.3.
    let lambda2 = laplacian::lambda2(system.graph())?;
    let inst = theory::Instance {
        n: system.node_count(),
        total_work: w,
        max_degree: system.graph().max_degree(),
        lambda2,
        s_min: system.speeds().min(),
        s_max: system.speeds().max(),
        s_total: system.speeds().total(),
        granularity: system.speeds().granularity(),
    };
    let target = 4.0 * theory::psi_c_weighted(&inst);
    println!("target  : Ψ₀ ≤ 4ψ_c^w = {target:.1} (Theorem 1.3)\n");

    // Algorithm 2 (the paper's weighted protocol).
    let mut alg2 = Simulation::new(system, SelfishWeighted::new(), built.initial.clone(), 1);
    let o2 = alg2.run_until(StopCondition::Psi0Below(target), 500_000);
    println!(
        "algorithm 2   : reached in {:>6} rounds ({} migrations)",
        o2.rounds, o2.migrations
    );
    alg2.run_until(StopCondition::Quiescent(300), 500_000);
    let gap2 = equilibrium::nash_gap(system, alg2.state(), Threshold::LightestTask);
    println!("                at quiescence: exact-NE gap = {gap2:.4}");

    // The [6] baseline: per-task thresholds keep polishing light tasks.
    let mut bhs = Simulation::new(system, BhsBaseline::new(), built.initial.clone(), 1);
    let ob = bhs.run_until(StopCondition::Psi0Below(target), 500_000);
    println!(
        "bhs baseline  : reached in {:>6} rounds ({} migrations)",
        ob.rounds, ob.migrations
    );
    bhs.run_until(StopCondition::Quiescent(300), 500_000);
    let gapb = equilibrium::nash_gap(system, bhs.state(), Threshold::LightestTask);
    println!("                at quiescence: exact-NE gap = {gapb:.4}");

    println!(
        "\nAlgorithm 2 stops at the relaxed `1/s_j` equilibrium (gap may stay\n\
         positive); the [6] baseline keeps migrating light tasks and drives\n\
         the exact gap toward zero — the §4 trade-off."
    );
    Ok(())
}
