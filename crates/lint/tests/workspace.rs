//! The workspace-level integration test: `slb-lint` over the real source
//! tree must be clean. This is the machine-checked form of the
//! determinism contract — any new magic stream id, unordered-map use, or
//! bare `unwrap()` in engine code fails `cargo test` before it can ship.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels below the workspace root")
}

#[test]
fn real_workspace_tree_is_lint_clean() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root detection broke: {root:?}"
    );
    let findings = slb_lint::lint_workspace(root).expect("workspace tree is readable");
    assert!(
        findings.is_empty(),
        "slb-lint found {} violation(s) in the workspace:\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_walk_sees_the_whole_tree() {
    // Guard against the walker silently looking at the wrong directory
    // (which would make the cleanliness test above vacuous): the real
    // tree has dozens of Rust files across the known top-level entries.
    let root = workspace_root();
    let files = slb_lint::walk::collect_rs_files(root).expect("workspace tree is readable");
    let rels: Vec<String> = files
        .iter()
        .map(|p| slb_lint::walk::relative(root, p))
        .collect();
    assert!(rels.len() > 60, "only {} files found: {rels:?}", rels.len());
    for expected in [
        "crates/core/src/rng.rs",
        "crates/core/src/engine/kernel.rs",
        "crates/analysis/src/sweep.rs",
        "shims/rand/src/lib.rs",
        "src/bin/slb.rs",
    ] {
        assert!(rels.iter().any(|r| r == expected), "missing {expected}");
    }
    // ... and never descends into generated or fixture trees.
    assert!(
        rels.iter()
            .all(|r| !r.contains("target/") && !r.contains("fixtures/")),
        "walker descended into a skipped tree"
    );
}

#[test]
fn registry_is_visible_to_the_duplicate_rule() {
    // Sanity-check that `stream-duplicate` actually parses the real
    // registry (an empty parse would make the rule vacuously quiet):
    // seeding a collision into the real rng.rs source must fire.
    let root = workspace_root();
    let rng = root.join("crates/core/src/rng.rs");
    let source = std::fs::read_to_string(rng).expect("rng.rs exists");
    assert!(
        source.contains("pub mod streams"),
        "registry module moved; update slb-lint's docs and this test"
    );
    let seeded = source.replace("pub const ARRIVAL: u64 = 1;", "pub const ARRIVAL: u64 = 0;");
    assert_ne!(source, seeded, "seeding the collision failed");
    let findings = slb_lint::lint_source("crates/core/src/rng.rs", &seeded);
    let dup: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == slb_lint::rules::STREAM_DUPLICATE)
        .collect();
    assert_eq!(dup.len(), 1, "{findings:#?}");
    assert!(dup[0].message.contains("ARRIVAL") && dup[0].message.contains("KERNEL"));
}
