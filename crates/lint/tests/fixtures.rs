//! Fixture tests: one passing and one failing fixture per lint rule, plus
//! allow-comment and false-positive cases. Fixtures live as `.txt` files
//! (so neither cargo nor the workspace walk treats them as source) and
//! are linted under fake workspace-relative paths, exercising the same
//! path-classification logic as the real run.

use slb_lint::rules;
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"))
}

/// Lints a fixture as engine-library code (strictest scope).
fn lint_as_engine(name: &str) -> Vec<slb_lint::Finding> {
    slb_lint::lint_source("crates/core/src/engine/fixture.rs", &fixture(name))
}

#[track_caller]
fn assert_single(findings: &[slb_lint::Finding], rule: &str, line: u32) {
    assert_eq!(
        findings.len(),
        1,
        "expected exactly one finding, got: {findings:#?}"
    );
    assert_eq!(findings[0].rule, rule);
    assert_eq!(findings[0].line, line);
}

#[test]
fn stream_literal_fires_on_raw_literal() {
    let findings = slb_lint::lint_source(
        "crates/analysis/src/fixture.rs",
        &fixture("stream_literal_bad.txt"),
    );
    assert_single(&findings, rules::STREAM_LITERAL, 4);
    assert!(findings[0].message.contains("`3`"));
    assert!(findings[0].message.contains("slb_core::rng::streams"));
}

#[test]
fn stream_literal_quiet_on_named_constants() {
    let findings = slb_lint::lint_source(
        "crates/analysis/src/fixture.rs",
        &fixture("stream_literal_ok.txt"),
    );
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn stream_duplicate_fires_once_per_colliding_constant() {
    let findings = slb_lint::lint_source(
        "crates/core/src/fixture.rs",
        &fixture("stream_duplicate_bad.txt"),
    );
    assert_single(&findings, rules::STREAM_DUPLICATE, 5);
    assert!(findings[0].message.contains("COLLIDING"));
    assert!(findings[0].message.contains("KERNEL"));
    assert!(findings[0].message.contains("streams::round"));
}

#[test]
fn stream_duplicate_quiet_across_namespaces() {
    let findings = slb_lint::lint_source(
        "crates/core/src/fixture.rs",
        &fixture("stream_duplicate_ok.txt"),
    );
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn map_iteration_fires_exactly_once_in_engine_code() {
    let findings = lint_as_engine("map_iteration_bad.txt");
    assert_single(&findings, rules::MAP_ITERATION, 1);
    assert!(findings[0].file.starts_with("crates/core/src/engine/"));
}

#[test]
fn map_iteration_outside_engine_crates_is_out_of_scope() {
    let findings = slb_lint::lint_source(
        "crates/analysis/src/fixture.rs",
        &fixture("map_iteration_bad.txt"),
    );
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn map_iteration_allow_comment_with_reason_suppresses() {
    let findings = lint_as_engine("map_iteration_allowed.txt");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn wall_clock_fires_once_per_line() {
    // Line 2 mentions both `std::time` and `Instant`; findings dedup to
    // one per (rule, line).
    let findings = lint_as_engine("wall_clock_bad.txt");
    assert_single(&findings, rules::WALL_CLOCK, 2);
}

#[test]
fn thread_current_fires() {
    let findings = lint_as_engine("thread_current_bad.txt");
    assert_single(&findings, rules::THREAD_CURRENT, 2);
}

#[test]
fn float_sum_over_unordered_iterator_fires() {
    let findings = lint_as_engine("float_sum_bad.txt");
    assert_single(&findings, rules::UNORDERED_FLOAT_SUM, 2);
    let findings = lint_as_engine("float_sum_fold_bad.txt");
    assert_single(&findings, rules::UNORDERED_FLOAT_SUM, 2);
}

#[test]
fn ordered_or_integer_reductions_are_fine() {
    let findings = lint_as_engine("float_sum_ok.txt");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn panic_hygiene_fires_on_unwrap_and_undocumented_expect() {
    let findings = lint_as_engine("panic_unwrap_bad.txt");
    assert_single(&findings, rules::PANIC_HYGIENE, 2);
    let findings = lint_as_engine("panic_expect_bad.txt");
    assert_single(&findings, rules::PANIC_HYGIENE, 2);
}

#[test]
fn panic_hygiene_accepts_documented_expect_allow_and_tests() {
    let findings = lint_as_engine("panic_ok.txt");
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn panic_hygiene_does_not_apply_to_binaries() {
    let findings = slb_lint::lint_source("src/bin/fixture.rs", &fixture("panic_unwrap_bad.txt"));
    assert_eq!(findings, vec![], "{findings:#?}");
}

#[test]
fn bad_allow_comments_are_findings_and_do_not_suppress() {
    let findings = lint_as_engine("bad_allow.txt");
    let got = rules::rule_lines(&findings);
    let want: std::collections::BTreeSet<(&str, u32)> = [
        (rules::BAD_ALLOW, 1),     // missing reason
        (rules::PANIC_HYGIENE, 3), // ... so the unwrap still fires
        (rules::BAD_ALLOW, 6),     // unknown rule name
    ]
    .into_iter()
    .collect();
    assert_eq!(got, want, "{findings:#?}");
}

#[test]
fn comments_strings_and_test_modules_never_fire() {
    let findings = lint_as_engine("false_positive.txt");
    assert_eq!(findings, vec![], "{findings:#?}");
}

/// The acceptance-criteria demonstration: each deliberately seeded
/// violation produces exactly one finding carrying file, line, and rule,
/// and the JSON rendering carries all three.
#[test]
fn seeded_violations_produce_exactly_one_finding_each_with_json() {
    let cases = [
        (
            "stream_literal_bad.txt",
            "crates/analysis/src/fixture.rs",
            rules::STREAM_LITERAL,
            4,
        ),
        (
            "stream_duplicate_bad.txt",
            "crates/core/src/fixture.rs",
            rules::STREAM_DUPLICATE,
            5,
        ),
        (
            "map_iteration_bad.txt",
            "crates/core/src/engine/fixture.rs",
            rules::MAP_ITERATION,
            1,
        ),
    ];
    for (name, path, rule, line) in cases {
        let findings = slb_lint::lint_source(path, &fixture(name));
        assert_eq!(findings.len(), 1, "{name}: {findings:#?}");
        let f = &findings[0];
        assert_eq!(
            (f.file.as_str(), f.rule, f.line),
            (path, rule, line),
            "{name}"
        );
        let json = slb_lint::to_json(&findings);
        assert!(json.contains("\"count\": 1"), "{name}: {json}");
        assert!(
            json.contains(&format!("\"file\": \"{path}\"")),
            "{name}: {json}"
        );
        assert!(
            json.contains(&format!("\"line\": {line}")),
            "{name}: {json}"
        );
        assert!(
            json.contains(&format!("\"rule\": \"{rule}\"")),
            "{name}: {json}"
        );
        // Human rendering is the clickable file:line form.
        assert!(f
            .to_string()
            .starts_with(&format!("{path}:{line}: [{rule}]")));
    }
}
