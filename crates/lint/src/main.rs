//! The `slb-lint` command-line entry point.
//!
//! ```text
//! slb-lint [--root PATH] [--format human|json] [--help]
//! ```
//!
//! Walks every `.rs` file of the workspace at `--root` (default: the
//! nearest enclosing directory whose `Cargo.toml` declares
//! `[workspace]`) and prints findings. Exit code 0 when clean, 1 on
//! findings, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
slb-lint — workspace determinism-and-safety static analysis

USAGE:
    slb-lint [--root PATH] [--format human|json]

OPTIONS:
    --root PATH       Workspace root to lint (default: auto-detected from
                      the current directory by walking up to the nearest
                      Cargo.toml containing [workspace])
    --format FORMAT   Output format: human (default) or json
    -h, --help        Show this help

EXIT CODES:
    0  no findings    1  findings reported    2  usage or I/O error
";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut format = String::from("human");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root requires a path"),
            },
            "--format" => match args.next() {
                Some(f) if f == "human" || f == "json" => format = f,
                Some(f) => return usage_error(&format!("unknown format `{f}`")),
                None => return usage_error("--format requires human|json"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.map_or_else(detect_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("slb-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = match slb_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("slb-lint: error: {e}");
            return ExitCode::from(2);
        }
    };
    if format == "json" {
        print!("{}", slb_lint::to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            eprintln!("slb-lint: no findings");
        } else {
            eprintln!("slb-lint: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("slb-lint: error: {message}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Walks up from the current directory to the nearest `Cargo.toml` that
/// declares a `[workspace]` section.
fn detect_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err(
                "no workspace root found (no enclosing Cargo.toml with [workspace]); \
                 pass --root PATH"
                    .to_string(),
            );
        }
    }
}
