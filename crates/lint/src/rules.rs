//! The lint rules.
//!
//! Every rule walks the token stream produced by [`crate::lexer`] with the
//! `#[cfg(test)]` regions masked out, so nothing in comments, strings, or
//! test modules can fire. Which rules run on a file is decided by
//! [`crate::walk::classify`] from its workspace-relative path.

use crate::lexer::{AllowComment, Kind, Lexed, Tok};
use crate::walk::FileClass;
use std::collections::{BTreeSet, HashMap};

/// One lint finding, pointing at a workspace-relative `file:line`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Raw integer literal in the stream-argument position of a
/// `derive_seed*` / `rng_for*` call.
pub const STREAM_LITERAL: &str = "stream-literal";
/// Two registry constants in the same `streams` namespace share a value.
pub const STREAM_DUPLICATE: &str = "stream-duplicate";
/// `HashMap`/`HashSet` in deterministic engine code.
pub const MAP_ITERATION: &str = "map-iteration";
/// `std::time` / `Instant` / `SystemTime` in deterministic engine code.
pub const WALL_CLOCK: &str = "wall-clock";
/// `thread::current()` in deterministic engine code.
pub const THREAD_CURRENT: &str = "thread-current";
/// Float `sum()`/`fold()` over an unordered (`values()`/`keys()`) iterator.
pub const UNORDERED_FLOAT_SUM: &str = "unordered-float-sum";
/// `unwrap()` (or `expect()` without a literal invariant message) in
/// engine library code.
pub const PANIC_HYGIENE: &str = "panic-hygiene";
/// Malformed or unknown `// slb-lint: allow(...)` control comment.
pub const BAD_ALLOW: &str = "bad-allow";

/// Every rule name, for allow-comment validation and documentation.
pub const RULES: &[&str] = &[
    STREAM_LITERAL,
    STREAM_DUPLICATE,
    MAP_ITERATION,
    WALL_CLOCK,
    THREAD_CURRENT,
    UNORDERED_FLOAT_SUM,
    PANIC_HYGIENE,
    BAD_ALLOW,
];

/// Runs every rule applicable under `class` over a lexed file and applies
/// the allow-comment suppressions. Findings come back sorted and deduped
/// per (rule, line).
pub fn run(path: &str, lexed: &Lexed, class: &FileClass) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let mask = crate::lexer::test_mask(tokens);
    let mut findings: Vec<Finding> = Vec::new();
    if class.stream {
        stream_literal(path, tokens, &mask, &mut findings);
        stream_duplicate(path, tokens, &mask, &mut findings);
    }
    if class.nondet {
        banned_idents(path, tokens, &mask, &mut findings);
        unordered_float_sum(path, tokens, &mask, &mut findings);
    }
    if class.panic {
        panic_hygiene(path, tokens, &mask, &mut findings);
    }
    bad_allow(path, &lexed.allows, &mut findings);
    suppress(&mut findings, &lexed.allows);
    findings.sort();
    findings.dedup_by(|a, b| a.rule == b.rule && a.line == b.line);
    findings
}

/// Drops findings covered by a well-formed allow comment on the same line
/// or the line directly above.
fn suppress(findings: &mut Vec<Finding>, allows: &[AllowComment]) {
    findings.retain(|f| {
        if f.rule == BAD_ALLOW {
            return true;
        }
        !allows.iter().any(|a| {
            a.rule.as_deref() == Some(f.rule)
                && a.reason.is_some()
                && (a.line == f.line || a.line + 1 == f.line)
        })
    });
}

fn bad_allow(path: &str, allows: &[AllowComment], findings: &mut Vec<Finding>) {
    for a in allows {
        let problem = match (&a.rule, &a.reason) {
            (None, _) => Some("could not parse a rule name".to_string()),
            (Some(rule), _) if !RULES.contains(&rule.as_str()) => {
                Some(format!("unknown rule `{rule}`"))
            }
            (Some(_), None) => {
                Some("missing or empty `reason = \"...\"` (a reason is required)".to_string())
            }
            _ => None,
        };
        if let Some(problem) = problem {
            findings.push(Finding {
                file: path.to_string(),
                line: a.line,
                rule: BAD_ALLOW,
                message: format!("malformed `slb-lint: allow(...)` comment: {problem}"),
            });
        }
    }
}

/// The `derive_seed*` / `rng_for*` functions and the 0-based index of
/// their stream argument.
const STREAM_FNS: &[(&str, usize)] = &[
    ("derive_seed", 2),
    ("derive_seed_sharded", 2),
    ("rng_for", 2),
    ("rng_for_shard", 2),
];

fn stream_literal(path: &str, tokens: &[Tok], mask: &[bool], findings: &mut Vec<Finding>) {
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || tok.kind != Kind::Ident {
            continue;
        }
        let Some(&(name, stream_arg)) = STREAM_FNS.iter().find(|(n, _)| *n == tok.text) else {
            continue;
        };
        // Skip the definition itself (`fn derive_seed(...)`) and bare
        // path mentions (`use crate::rng::derive_seed`).
        if i > 0 && tokens[i - 1].kind == Kind::Ident && tokens[i - 1].text == "fn" {
            continue;
        }
        if !is_punct(tokens, i + 1, "(") {
            continue;
        }
        let args = split_call_args(tokens, i + 1);
        let Some(arg) = args.get(stream_arg) else {
            continue;
        };
        if let Some(first) = arg.first() {
            if first.kind == Kind::Int {
                findings.push(Finding {
                    file: path.to_string(),
                    line: first.line,
                    rule: STREAM_LITERAL,
                    message: format!(
                        "raw integer literal `{}` in the stream argument of `{name}`; \
                         use a named constant from `slb_core::rng::streams`",
                        first.text
                    ),
                });
            }
        }
    }
}

/// Splits the argument list of a call whose `(` is at `open` into
/// top-level comma-separated token slices.
fn split_call_args(tokens: &[Tok], open: usize) -> Vec<&[Tok]> {
    let mut args = Vec::new();
    let mut depth = 1usize;
    let mut start = open + 1;
    let mut j = open + 1;
    while j < tokens.len() && depth > 0 {
        if tokens[j].kind == Kind::Punct {
            match tokens[j].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "," if depth == 1 => {
                    args.push(&tokens[start..j]);
                    start = j + 1;
                }
                _ => {}
            }
        }
        j += 1;
    }
    if j > start {
        args.push(&tokens[start..j]);
    }
    args
}

fn stream_duplicate(path: &str, tokens: &[Tok], mask: &[bool], findings: &mut Vec<Finding>) {
    let mut i = 0usize;
    while i < tokens.len() {
        let is_streams_mod = !mask[i]
            && tokens[i].kind == Kind::Ident
            && tokens[i].text == "mod"
            && tokens.get(i + 1).is_some_and(|t| t.text == "streams")
            && is_punct(tokens, i + 2, "{");
        if !is_streams_mod {
            i += 1;
            continue;
        }
        // Walk the registry block, tracking nested `mod` namespaces.
        // (namespace path, value) → first constant's name.
        let mut seen: HashMap<(String, u64), String> = HashMap::new();
        let mut stack: Vec<String> = Vec::new();
        let mut depth_stack: Vec<usize> = Vec::new();
        let mut depth = 1usize;
        let mut j = i + 3;
        while j < tokens.len() && depth > 0 {
            let t = &tokens[j];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth_stack.last() == Some(&depth) {
                            depth_stack.pop();
                            stack.pop();
                        }
                    }
                    _ => {}
                }
            } else if t.kind == Kind::Ident && t.text == "mod" {
                if let Some(name) = tokens.get(j + 1) {
                    if is_punct(tokens, j + 2, "{") {
                        stack.push(name.text.clone());
                        depth_stack.push(depth);
                        depth += 1;
                        j += 3;
                        continue;
                    }
                }
            } else if t.kind == Kind::Ident && t.text == "const" {
                // const NAME: u64 = <int>;
                if let (Some(name), true, Some(ty), true, Some(value)) = (
                    tokens.get(j + 1),
                    is_punct(tokens, j + 2, ":"),
                    tokens.get(j + 3),
                    is_punct(tokens, j + 4, "="),
                    tokens.get(j + 5),
                ) {
                    if ty.text == "u64" && value.kind == Kind::Int {
                        if let Some(v) = parse_int_literal(&value.text) {
                            let ns = stack.join("::");
                            match seen.entry((ns.clone(), v)) {
                                std::collections::hash_map::Entry::Occupied(e) => {
                                    findings.push(Finding {
                                        file: path.to_string(),
                                        line: name.line,
                                        rule: STREAM_DUPLICATE,
                                        message: format!(
                                            "stream id {v} of `{}` duplicates `{}` in \
                                             registry namespace `streams::{ns}`",
                                            name.text,
                                            e.get()
                                        ),
                                    });
                                }
                                std::collections::hash_map::Entry::Vacant(e) => {
                                    e.insert(name.text.clone());
                                }
                            }
                        }
                    }
                }
            }
            j += 1;
        }
        i = j;
    }
}

/// Parses a Rust integer literal (any radix, `_` separators, type suffix).
fn parse_int_literal(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    let (digits, radix) = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        (h, 16)
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        (o, 8)
    } else if let Some(b) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        (b, 2)
    } else {
        (t.as_str(), 10)
    };
    let end = digits
        .find(|c: char| !c.is_digit(radix))
        .unwrap_or(digits.len());
    u64::from_str_radix(&digits[..end], radix).ok()
}

/// The identifier-level nondeterminism bans: `map-iteration` and
/// `wall-clock`/`thread-current`.
fn banned_idents(path: &str, tokens: &[Tok], mask: &[bool], findings: &mut Vec<Finding>) {
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || tok.kind != Kind::Ident {
            continue;
        }
        let (rule, message) = match tok.text.as_str() {
            "HashMap" | "HashSet" => (
                MAP_ITERATION,
                format!(
                    "`{}` in deterministic engine code: its iteration order is \
                     nondeterministic; use `Vec`/`BTreeMap` or justify with an allow comment",
                    tok.text
                ),
            ),
            "SystemTime" | "Instant" => (
                WALL_CLOCK,
                format!(
                    "`{}` in deterministic engine code: wall-clock reads make runs \
                     irreproducible",
                    tok.text
                ),
            ),
            "std" if is_path_seq(tokens, i, &["std", "time"]) => (
                WALL_CLOCK,
                "`std::time` in deterministic engine code: wall-clock reads make runs \
                 irreproducible"
                    .to_string(),
            ),
            "thread" if is_path_seq(tokens, i, &["thread", "current"]) => (
                THREAD_CURRENT,
                "`thread::current` in deterministic engine code: thread identity must \
                 never influence results"
                    .to_string(),
            ),
            _ => continue,
        };
        findings.push(Finding {
            file: path.to_string(),
            line: tok.line,
            rule,
            message,
        });
    }
}

/// Does `tokens[i..]` spell the path `segs[0] :: segs[1] :: ...`?
fn is_path_seq(tokens: &[Tok], i: usize, segs: &[&str]) -> bool {
    let mut j = i;
    for (k, seg) in segs.iter().enumerate() {
        if !tokens
            .get(j)
            .is_some_and(|t| t.kind == Kind::Ident && t.text == *seg)
        {
            return false;
        }
        j += 1;
        if k + 1 < segs.len() {
            if !(is_punct(tokens, j, ":") && is_punct(tokens, j + 1, ":")) {
                return false;
            }
            j += 2;
        }
    }
    true
}

fn unordered_float_sum(path: &str, tokens: &[Tok], mask: &[bool], findings: &mut Vec<Finding>) {
    for i in 0..tokens.len() {
        if mask[i] {
            continue;
        }
        // `.values()` / `.keys()` — an unordered iterator source.
        let unordered = tokens[i].kind == Kind::Ident
            && matches!(tokens[i].text.as_str(), "values" | "keys")
            && i > 0
            && is_punct(tokens, i - 1, ".")
            && is_punct(tokens, i + 1, "(")
            && is_punct(tokens, i + 2, ")");
        if !unordered {
            continue;
        }
        // Scan the rest of the statement for a float `sum`/`fold`.
        let stmt_start = (0..i)
            .rev()
            .find(|&j| {
                tokens[j].kind == Kind::Punct && matches!(tokens[j].text.as_str(), ";" | "{" | "}")
            })
            .map_or(0, |j| j + 1);
        let mut j = i + 3;
        let mut reduce: Option<&Tok> = None;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.kind == Kind::Punct && matches!(t.text.as_str(), ";" | "{" | "}") {
                break;
            }
            if t.kind == Kind::Ident
                && matches!(t.text.as_str(), "sum" | "fold")
                && is_punct(tokens, j - 1, ".")
            {
                reduce = Some(t);
                break;
            }
            j += 1;
        }
        let Some(reduce) = reduce else { continue };
        let float_involved = tokens[stmt_start..]
            .iter()
            .take_while(|t| !(t.kind == Kind::Punct && t.text == ";"))
            .any(|t| {
                t.kind == Kind::Float
                    || (t.kind == Kind::Ident && matches!(t.text.as_str(), "f64" | "f32"))
            });
        if float_involved {
            findings.push(Finding {
                file: path.to_string(),
                line: reduce.line,
                rule: UNORDERED_FLOAT_SUM,
                message: format!(
                    "float `{}()` over an unordered `{}()` iterator: float addition is \
                     non-associative, so the result depends on iteration order",
                    reduce.text, tokens[i].text
                ),
            });
        }
    }
}

fn panic_hygiene(path: &str, tokens: &[Tok], mask: &[bool], findings: &mut Vec<Finding>) {
    for (i, tok) in tokens.iter().enumerate() {
        if mask[i] || tok.kind != Kind::Ident || i == 0 || !is_punct(tokens, i - 1, ".") {
            continue;
        }
        match tok.text.as_str() {
            "unwrap" if is_punct(tokens, i + 1, "(") && is_punct(tokens, i + 2, ")") => {
                findings.push(Finding {
                    file: path.to_string(),
                    line: tok.line,
                    rule: PANIC_HYGIENE,
                    message: "`unwrap()` in engine library code: propagate the error or \
                              use `expect(\"<invariant>\")` stating why this cannot fail"
                        .to_string(),
                });
            }
            "expect" if is_punct(tokens, i + 1, "(") => {
                let args = split_call_args(tokens, i + 1);
                let documented = args.first().is_some_and(|arg| {
                    arg.len() == 1
                        && arg[0].kind == Kind::Str
                        && string_content_nonempty(&arg[0].text)
                });
                if !documented {
                    findings.push(Finding {
                        file: path.to_string(),
                        line: tok.line,
                        rule: PANIC_HYGIENE,
                        message: "`expect()` without a literal invariant message in engine \
                                  library code: state why this cannot fail"
                            .to_string(),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Is there anything inside the quotes of a string-literal token?
fn string_content_nonempty(text: &str) -> bool {
    let inner = text
        .trim_start_matches(['b', 'r', '#'])
        .trim_end_matches('#');
    inner.trim_matches('"').trim().chars().count() > 0
}

fn is_punct(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == text)
}

/// The distinct (rule, line) pairs of a finding list — handy in tests.
pub fn rule_lines(findings: &[Finding]) -> BTreeSet<(&'static str, u32)> {
    findings.iter().map(|f| (f.rule, f.line)).collect()
}
