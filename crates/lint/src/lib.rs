//! `slb-lint` — the workspace determinism-and-safety static-analysis pass.
//!
//! Every artifact this reproduction produces rests on one hand-enforced
//! invariant: outputs are byte-identical at any `--threads`. That in turn
//! rests on conventions no general-purpose tool checks — unique RNG
//! stream ids per consumer, no unordered-map iteration or wall-clock
//! reads in engine code, fixed-order float reductions. This crate
//! machine-checks them with a lightweight comment/string/attribute-aware
//! token scanner ([`lexer`]) and a rule engine ([`rules`]) that walks
//! every workspace `.rs` file ([`walk`]).
//!
//! # Rules
//!
//! | rule | scope | checks |
//! |---|---|---|
//! | `stream-literal` | all non-test code | `derive_seed*` / `rng_for*` call sites name a constant from `slb_core::rng::streams`, never a raw integer |
//! | `stream-duplicate` | the `streams` registry | no two constants in one namespace share an id |
//! | `map-iteration` | `crates/core`, `crates/graphs` lib | no `HashMap`/`HashSet` (iteration order is nondeterministic) |
//! | `wall-clock` | same | no `std::time` / `Instant` / `SystemTime` |
//! | `thread-current` | same | no `thread::current` |
//! | `unordered-float-sum` | same | no float `sum()`/`fold()` over `values()`/`keys()` |
//! | `panic-hygiene` | same, non-bin | no `unwrap()`; `expect()` must carry a literal invariant message |
//! | `bad-allow` | everywhere | `slb-lint: allow(...)` comments parse and name a known rule with a reason |
//!
//! # Escape hatch
//!
//! A justified exception is silenced by a comment on the offending line
//! or the line directly above — the reason is mandatory:
//!
//! ```text
//! // slb-lint: allow(map-iteration, reason = "dedup membership only; never iterated")
//! ```
//!
//! # Exit codes (binary)
//!
//! `0` clean · `1` findings · `2` usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::Finding;

use std::io;
use std::path::Path;

/// Lints one file's source text under the scoping rules its
/// workspace-relative path implies.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let class = walk::classify(rel_path);
    if class.skip {
        return Vec::new();
    }
    let lexed = lexer::lex(source);
    rules::run(rel_path, &lexed, &class)
}

/// Lints every `.rs` file under `root` (a workspace checkout) and returns
/// all findings, sorted by file, line, rule.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in walk::collect_rs_files(root)? {
        let rel = walk::relative(root, &path);
        let source = std::fs::read_to_string(&path)?;
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

/// Renders findings as a stable JSON document:
/// `{"count": N, "findings": [{"file", "line", "rule", "message"}, ...]}`.
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        json_string(&mut out, &f.file);
        out.push_str(", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": ");
        json_string(&mut out, f.rule);
        out.push_str(", \"message\": ");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let findings = vec![Finding {
            file: "a\"b.rs".to_string(),
            line: 3,
            rule: rules::STREAM_LITERAL,
            message: "tab\there".to_string(),
        }];
        let json = to_json(&findings);
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"line\": 3"));
        assert!(to_json(&[]).contains("\"count\": 0"));
    }
}
