//! Workspace walking and path-based file classification.
//!
//! Which rules apply to a file is a pure function of its
//! workspace-relative path — the same function drives the real workspace
//! walk and the fixture tests, so fixtures exercise exactly the
//! production scoping logic.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileClass {
    /// RNG stream discipline (`stream-literal`, `stream-duplicate`).
    pub stream: bool,
    /// Nondeterminism bans (`map-iteration`, `wall-clock`,
    /// `thread-current`, `unordered-float-sum`).
    pub nondet: bool,
    /// Panic hygiene (`panic-hygiene`).
    pub panic: bool,
    /// Skip the file entirely (tests, fixtures, generated trees).
    pub skip: bool,
}

/// The crates whose library code carries the determinism and panic
/// contracts: the simulation engine, the graph layer it runs on, and the
/// serve event loop (whose virtual clock makes the same promises).
const ENGINE_CRATE_PREFIXES: &[&str] = &[
    "crates/core/src/",
    "crates/graphs/src/",
    "crates/serve/src/",
];

/// Classifies a workspace-relative path (with `/` separators).
pub fn classify(rel: &str) -> FileClass {
    let rel = rel.replace('\\', "/");
    let none = FileClass {
        stream: false,
        nondet: false,
        panic: false,
        skip: true,
    };
    if rel
        .split('/')
        .any(|seg| matches!(seg, "target" | ".git" | "fixtures" | "node_modules"))
    {
        return none;
    }
    // Test code is exempt from every rule: tests deliberately probe
    // streams, clocks, and panics.
    if rel.starts_with("tests/") || rel.contains("/tests/") {
        return none;
    }
    let stream_only = FileClass {
        stream: true,
        nondet: false,
        panic: false,
        skip: false,
    };
    // Dev-only targets and binaries: stream discipline still applies
    // (they seed real runs), the library-code contracts do not.
    if rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/")
        || rel.contains("/src/bin/")
        || rel.ends_with("/main.rs")
        || rel.starts_with("shims/")
    {
        return stream_only;
    }
    if ENGINE_CRATE_PREFIXES.iter().any(|p| rel.starts_with(p)) {
        return FileClass {
            stream: true,
            nondet: true,
            panic: true,
            skip: false,
        };
    }
    stream_only
}

/// Recursively collects every `.rs` file under `root`, skipping `target`,
/// `.git`, and fixture trees. Paths come back workspace-relative, sorted,
/// with `/` separators — so output order is deterministic.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !matches!(
                    name.as_ref(),
                    "target" | ".git" | "fixtures" | "node_modules"
                ) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `path` relative to `root`, `/`-separated.
pub fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_the_scoping_contract() {
        assert!(classify("crates/core/src/engine/kernel.rs").panic);
        assert!(classify("crates/graphs/src/generators.rs").nondet);
        assert!(classify("crates/serve/src/lib.rs").panic);
        assert!(classify("crates/serve/src/policy.rs").nondet);
        assert!(!classify("crates/analysis/src/sweep.rs").nondet);
        assert!(classify("crates/analysis/src/sweep.rs").stream);
        assert!(classify("crates/core/tests/engine_stress.rs").skip);
        assert!(classify("tests/cli.rs").skip);
        assert!(classify("crates/lint/tests/fixtures/bad.rs").skip);
        assert!(classify("target/debug/build/foo.rs").skip);
        let bin = classify("src/bin/slb.rs");
        assert!(bin.stream && !bin.panic && !bin.nondet);
        let shim = classify("shims/rand/src/lib.rs");
        assert!(shim.stream && !shim.panic);
        assert!(!classify("crates/bench/benches/protocol_rounds.rs").nondet);
    }
}
