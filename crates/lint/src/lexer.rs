//! A lightweight Rust token scanner.
//!
//! Not a parser: it produces a flat token stream that is *comment-,
//! string-, and attribute-aware*, which is exactly enough for the lint
//! rules to match call sites and banned identifiers without ever being
//! fooled by text inside comments, string literals, or doc examples.
//! Totality over validity: any byte sequence lexes (unknown characters
//! become punctuation tokens), so a syntactically broken file degrades to
//! weaker findings instead of a crash.

/// The coarse token classes the rules discriminate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (any radix, with `_` separators and suffix).
    Int,
    /// Float literal (decimal point, exponent, or `f32`/`f64` suffix).
    Float,
    /// String literal: plain, raw, byte, or raw-byte; quotes included.
    Str,
    /// Character or byte-character literal.
    Char,
    /// Lifetime or loop label (`'a`, `'attempt`).
    Lifetime,
    /// Any single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// The literal source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A parsed `// slb-lint: allow(...)` control comment.
///
/// `rule`/`reason` are `None` when the respective part failed to parse —
/// the rule engine reports those as `bad-allow` findings rather than
/// honoring them.
#[derive(Debug, Clone)]
pub struct AllowComment {
    /// 1-based line of the comment.
    pub line: u32,
    /// The rule name inside `allow(...)`, if it parsed.
    pub rule: Option<String>,
    /// The `reason = "..."` string, if present and non-empty.
    pub reason: Option<String>,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens, in source order.
    pub tokens: Vec<Tok>,
    /// All `slb-lint:` control comments encountered.
    pub allows: Vec<AllowComment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `source` into tokens plus `slb-lint:` control comments.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let push = |out: &mut Lexed, kind: Kind, text: &str, line: u32| {
        out.tokens.push(Tok {
            kind,
            text: text.to_string(),
            line,
        });
    };
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                // Doc comments (`///`, `//!`) are prose — only plain `//`
                // comments can carry control directives, so documentation
                // may freely *mention* the allow syntax.
                let doc = matches!(b.get(i + 2), Some(b'/' | b'!'));
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                if !doc {
                    if let Some(allow) = parse_allow_comment(&source[start..i], line) {
                        out.allows.push(allow);
                    }
                }
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, newlines) = scan_plain_string(b, i);
                push(&mut out, Kind::Str, &source[i..end], line);
                line += newlines;
                i = end;
            }
            b'\'' => {
                let start_line = line;
                let (end, kind) = scan_char_or_lifetime(b, i);
                push(&mut out, kind, &source[i..end], start_line);
                i = end;
            }
            _ if is_ident_start(c) => {
                if matches!(c, b'r' | b'b') {
                    if let Some((end, newlines)) = raw_or_byte_string_start(b, i) {
                        push(&mut out, Kind::Str, &source[i..end], line);
                        line += newlines;
                        i = end;
                        continue;
                    }
                }
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                push(&mut out, Kind::Ident, &source[start..i], line);
            }
            _ if c.is_ascii_digit() => {
                let (end, kind) = scan_number(b, i);
                push(&mut out, kind, &source[i..end], line);
                i = end;
            }
            _ => {
                push(&mut out, Kind::Punct, &source[i..i + 1], line);
                i += 1;
            }
        }
    }
    out
}

/// Scans a plain (possibly byte-prefixed at the caller) string literal
/// starting at the opening quote; returns (end index past the closing
/// quote, newline count inside).
fn scan_plain_string(b: &[u8], mut i: usize) -> (usize, u32) {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    let mut newlines = 0u32;
    while i < b.len() {
        match b[i] {
            // Escape: skip the escaped character, counting a line
            // continuation's newline.
            b'\\' => {
                if b.get(i + 1) == Some(&b'\n') {
                    newlines += 1;
                }
                i += 2;
            }
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, newlines)
}

/// Distinguishes `'a'` (char) from `'a` (lifetime/label) and scans either.
fn scan_char_or_lifetime(b: &[u8], i: usize) -> (usize, Kind) {
    debug_assert_eq!(b[i], b'\'');
    let Some(&next) = b.get(i + 1) else {
        return (i + 1, Kind::Punct);
    };
    if next == b'\\' {
        // Escaped char literal: skip the escape, then find the closing
        // quote (covers \n, \', \\, \u{...}).
        let mut j = i + 2;
        if b.get(j) == Some(&b'u') && b.get(j + 1) == Some(&b'{') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
        }
        j += 1;
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return ((j + 1).min(b.len()), Kind::Char);
    }
    if is_ident_start(next) {
        let mut j = i + 1;
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return (j + 1, Kind::Char); // 'a'
        }
        return (j, Kind::Lifetime); // 'a, 'attempt, 'static
    }
    // Non-ident char literal: ' ', '0'... scan to the closing quote.
    let mut j = i + 1;
    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
        j += 1;
    }
    ((j + 1).min(b.len()), Kind::Char)
}

/// If position `i` starts a raw/byte string (`r"`, `r#"`, `b"`, `br#"`,
/// ...), scans it and returns (end index, newline count). `b'x'` byte
/// chars are left to the char scanner via `None`.
fn raw_or_byte_string_start(b: &[u8], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    let raw = b.get(j) == Some(&b'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') || (!raw && hashes > 0) {
        return None;
    }
    if !raw {
        // b"..." — plain escape rules.
        let (end, newlines) = scan_plain_string(b, j);
        return Some((end, newlines));
    }
    // Raw string: ends at `"` followed by `hashes` hashes; no escapes.
    j += 1;
    let mut newlines = 0u32;
    while j < b.len() {
        if b[j] == b'\n' {
            newlines += 1;
        }
        if b[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return Some((j + 1 + hashes, newlines));
            }
        }
        j += 1;
    }
    Some((j, newlines))
}

/// Scans a numeric literal; returns (end index, Int or Float).
fn scan_number(b: &[u8], i: usize) -> (usize, Kind) {
    let mut j = i;
    if b[j] == b'0' && matches!(b.get(j + 1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')) {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, Kind::Int);
    }
    let mut float = false;
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    if b.get(j) == Some(&b'.') {
        match b.get(j + 1) {
            // `1..4` range or `1.method()` — the literal ends before the dot.
            Some(&n) if n == b'.' || is_ident_start(n) => {}
            // `1.0`, `1.` — a float; consume the fraction.
            _ => {
                float = true;
                j += 1;
                while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                    j += 1;
                }
            }
        }
    }
    if matches!(b.get(j), Some(b'e' | b'E')) {
        let k = if matches!(b.get(j + 1), Some(b'+' | b'-')) {
            j + 2
        } else {
            j + 1
        };
        if b.get(k).is_some_and(u8::is_ascii_digit) {
            float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Type suffix: `u64`, `usize`, `f64`...
    if b.get(j).copied().is_some_and(is_ident_start) {
        if b[j] == b'f' {
            float = true;
        }
        while j < b.len() && is_ident_continue(b[j]) {
            j += 1;
        }
    }
    (j, if float { Kind::Float } else { Kind::Int })
}

/// Parses an `slb-lint:` control comment out of a `//` comment's text.
/// Returns `None` for ordinary comments; malformed control comments come
/// back with `rule`/`reason` unset so the engine can flag them.
fn parse_allow_comment(comment: &str, line: u32) -> Option<AllowComment> {
    let rest = comment.split("slb-lint:").nth(1)?;
    let rest = rest.trim_start();
    let Some(args) = rest
        .strip_prefix("allow(")
        .and_then(|r| r.split(')').next())
    else {
        return Some(AllowComment {
            line,
            rule: None,
            reason: None,
        });
    };
    let (rule_part, reason_part) = match args.split_once(',') {
        Some((r, rest)) => (r, Some(rest)),
        None => (args, None),
    };
    let rule = rule_part.trim();
    let rule = (!rule.is_empty()).then(|| rule.to_string());
    let reason = reason_part.and_then(|r| {
        let r = r
            .trim()
            .strip_prefix("reason")?
            .trim_start()
            .strip_prefix('=')?;
        let r = r.trim().strip_prefix('"')?;
        let r = r.split('"').next()?.trim();
        (!r.is_empty()).then(|| r.to_string())
    });
    Some(AllowComment { line, rule, reason })
}

/// Marks every token that belongs to a `#[cfg(test)]` / `#[test]` item
/// (attribute included). Conservative on `not(test)`: an attribute whose
/// argument list contains `not` is treated as *non*-test.
pub fn test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if !(is_punct(tokens, i, "#")) {
            i += 1;
            continue;
        }
        let mut a = i + 1;
        if is_punct(tokens, a, "!") {
            a += 1;
        }
        if !is_punct(tokens, a, "[") {
            i += 1;
            continue;
        }
        // Find the matching `]` and look for a `test` ident inside.
        let mut depth = 0usize;
        let mut j = a;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() {
            match (tokens[j].kind, tokens[j].text.as_str()) {
                (Kind::Punct, "[") => depth += 1,
                (Kind::Punct, "]") => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                (Kind::Ident, "test") => has_test = true,
                (Kind::Ident, "not") => has_not = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test || has_not || j >= tokens.len() {
            i = a + 1;
            continue;
        }
        // Attribute marks a test item: extend over any further
        // attributes, then over the item itself (up to `;` at depth 0 or
        // the matching brace of its body).
        let mut k = j + 1;
        while is_punct(tokens, k, "#") {
            let mut d = 0usize;
            let mut m = k + 1;
            if is_punct(tokens, m, "!") {
                m += 1;
            }
            while m < tokens.len() {
                match tokens[m].text.as_str() {
                    "[" if tokens[m].kind == Kind::Punct => d += 1,
                    "]" if tokens[m].kind == Kind::Punct => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                m += 1;
            }
            k = m + 1;
        }
        let mut d = 0isize;
        let mut entered = false;
        while k < tokens.len() {
            if tokens[k].kind == Kind::Punct {
                match tokens[k].text.as_str() {
                    "(" | "[" => d += 1,
                    "{" => {
                        d += 1;
                        entered = true;
                    }
                    ")" | "]" | "}" => d -= 1,
                    ";" if d == 0 => break,
                    _ => {}
                }
            }
            if entered && d == 0 {
                break;
            }
            k += 1;
        }
        let end = k.min(tokens.len() - 1);
        for m in mask.iter_mut().take(end + 1).skip(i) {
            *m = true;
        }
        i = end + 1;
    }
    mask
}

fn is_punct(tokens: &[Tok], i: usize, text: &str) -> bool {
    tokens
        .get(i)
        .is_some_and(|t| t.kind == Kind::Punct && t.text == text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_code_tokens() {
        let toks =
            kinds("// HashMap unwrap()\n/* derive_seed(1, 2, 3) */\nlet s = \"HashMap.unwrap()\";");
        assert!(toks
            .iter()
            .all(|(k, t)| *k != Kind::Ident
                || (t != "HashMap" && t != "unwrap" && t != "derive_seed")));
    }

    #[test]
    fn raw_strings_and_labels_lex() {
        let toks = kinds("let x = r#\"un\"wrap\"#; 'outer: loop { break 'outer; } let c = 'a'; let l: &'static str = \"\";");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Lifetime && t == "'outer"));
        assert!(toks.iter().any(|(k, t)| *k == Kind::Char && t == "'a'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Lifetime && t == "'static"));
        assert!(toks.iter().all(|(k, t)| *k != Kind::Ident || t != "wrap"));
    }

    #[test]
    fn numbers_classify_int_vs_float() {
        let toks = kinds("0xB007 1_000 1..4 1.5 1e-9 2f64 3u64");
        let ints: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Int).collect();
        let floats: Vec<_> = toks.iter().filter(|(k, _)| *k == Kind::Float).collect();
        assert_eq!(ints.len(), 5, "{toks:?}"); // 0xB007 1_000 1 4 3u64
        assert_eq!(floats.len(), 3, "{toks:?}"); // 1.5 1e-9 2f64
    }

    #[test]
    fn allow_comments_parse() {
        let lexed = lex("// slb-lint: allow(map-iteration, reason = \"never iterated\")\n// slb-lint: allow(wall-clock)\n// plain comment\n");
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].rule.as_deref(), Some("map-iteration"));
        assert_eq!(lexed.allows[0].reason.as_deref(), Some("never iterated"));
        assert_eq!(lexed.allows[1].rule.as_deref(), Some("wall-clock"));
        assert!(lexed.allows[1].reason.is_none());
    }

    #[test]
    fn test_mask_covers_cfg_test_modules_not_cfg_not_test() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { x.unwrap(); }\n}\n#[cfg(not(test))]\nfn prod() { y.unwrap(); }\n";
        let lexed = lex(src);
        let mask = test_mask(&lexed.tokens);
        let masked: Vec<_> = lexed
            .tokens
            .iter()
            .zip(&mask)
            .filter(|(_, m)| **m)
            .map(|(t, _)| t.text.clone())
            .collect();
        assert!(masked.contains(&"inner".to_string()));
        assert!(!masked.contains(&"prod".to_string()));
        assert!(!masked.contains(&"live".to_string()));
    }
}
