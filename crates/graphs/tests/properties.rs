//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use slb_graphs::{cheeger, generators, io, traversal, Graph, NodeId};

/// Strategy: a random simple graph as (n, edge set).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..20).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n, 0..n), 0..=max_edges.min(40)).prop_map(move |pairs| {
            let mut seen = std::collections::HashSet::new();
            let edges: Vec<(usize, usize)> = pairs
                .into_iter()
                .filter(|(a, b)| a != b)
                .map(|(a, b)| (a.min(b), a.max(b)))
                .filter(|e| seen.insert(*e))
                .collect();
            Graph::from_edges(n, edges).expect("filtered edges are valid")
        })
    })
}

proptest! {
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        prop_assert_eq!(g.degree_sum(), 2 * g.edge_count());
        let by_nodes: usize = g.nodes().map(|v| g.degree(v)).sum();
        prop_assert_eq!(by_nodes, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric(g in arb_graph()) {
        for v in g.nodes() {
            for &u in g.neighbors(v) {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn neighbor_rows_sorted_unique(g in arb_graph()) {
        for v in g.nodes() {
            let row = g.neighbors(v);
            for w in row.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn edge_list_roundtrips(g in arb_graph()) {
        let text = io::to_edge_list(&g);
        let back = io::from_edge_list(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn components_partition_nodes(g in arb_graph()) {
        let labels = traversal::component_labels(&g);
        let k = traversal::connected_components(&g);
        prop_assert_eq!(labels.len(), g.node_count());
        prop_assert!(labels.iter().all(|&l| l < k));
        // Every edge stays within one component.
        for (a, b) in g.edges() {
            prop_assert_eq!(labels[a.index()], labels[b.index()]);
        }
        // Connectivity consistent with component count.
        prop_assert_eq!(g.is_connected(), k == 1);
    }

    #[test]
    fn bfs_distances_are_metric_like(g in arb_graph()) {
        let src = NodeId(0);
        let dist = traversal::bfs_distances(&g, src);
        prop_assert_eq!(dist[0], 0);
        // Distance changes by at most 1 across an edge.
        for (a, b) in g.edges() {
            let (da, db) = (dist[a.index()], dist[b.index()]);
            if da != traversal::UNREACHABLE && db != traversal::UNREACHABLE {
                prop_assert!(da.abs_diff(db) <= 1);
            } else {
                prop_assert_eq!(da, db); // both unreachable
            }
        }
    }

    #[test]
    fn double_sweep_lower_bounds_diameter(g in arb_graph()) {
        if g.is_connected() {
            let exact = traversal::diameter(&g).unwrap();
            let sweep = traversal::diameter_double_sweep(&g, NodeId(0)).unwrap();
            prop_assert!(sweep <= exact);
        }
    }

    #[test]
    fn mohar_diameter_vs_cheeger_consistency(n in 4usize..12) {
        // On rings: i(C_n) ~ 2/floor(n/2) and diam = floor(n/2).
        let g = generators::ring(n);
        let (i, _) = cheeger::isoperimetric_number(&g);
        let diam = traversal::diameter(&g).unwrap();
        prop_assert!((i - 2.0 / (n / 2) as f64).abs() < 1e-9);
        prop_assert_eq!(diam, n / 2);
    }

    #[test]
    fn random_regular_invariants(n in 3usize..16, seed in 0u64..100) {
        use rand::SeedableRng;
        let d = 2usize;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_regular(n, d, &mut rng);
        prop_assert_eq!(g.regularity(), Some(d));
        prop_assert!(g.is_connected());
    }

    #[test]
    fn gnp_always_connected(n in 2usize..24, seed in 0u64..50) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::gnp_connected(n, 0.1, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.node_count(), n);
    }
}

#[test]
fn family_labels_are_distinct() {
    use generators::Family;
    let fams = [
        Family::Complete { n: 4 },
        Family::Ring { n: 4 },
        Family::Path { n: 4 },
        Family::Mesh { rows: 2, cols: 2 },
        Family::Torus { rows: 3, cols: 3 },
        Family::Hypercube { d: 2 },
        Family::Star { n: 4 },
    ];
    let labels: std::collections::HashSet<&str> = fams.iter().map(|f| f.label()).collect();
    assert_eq!(labels.len(), fams.len());
}
