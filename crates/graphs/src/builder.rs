//! Incremental construction of [`Graph`]s.

use crate::{Graph, GraphError};

/// Incremental builder for [`Graph`].
///
/// The builder tolerates edges being added in any order and with endpoints
/// in either orientation; validation (range checks, self loops, duplicates)
/// happens in [`GraphBuilder::build`].
///
/// # Example
///
/// ```
/// use slb_graphs::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 3);
/// let g = b.build()?;
/// assert_eq!(g.edge_count(), 3);
/// # Ok::<(), slb_graphs::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(usize, usize)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            node_count: n,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_edge_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            node_count: n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges added so far (before deduplication checks).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds an undirected edge `{a, b}`; chainable.
    pub fn add_edge(&mut self, a: usize, b: usize) -> &mut Self {
        self.edges.push((a, b));
        self
    }

    /// Adds an edge only if it is not a self loop and was not added before.
    ///
    /// This is an O(edges) scan and intended for randomized generators that
    /// may propose duplicates; for bulk construction prefer `add_edge` with
    /// a collision-free scheme.
    pub fn add_edge_dedup(&mut self, a: usize, b: usize) -> bool {
        if a == b {
            return false;
        }
        let key = (a.min(b), a.max(b));
        if self.edges.iter().any(|&(x, y)| (x.min(y), x.max(y)) == key) {
            return false;
        }
        self.edges.push(key);
        true
    }

    /// Extends with many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (usize, usize)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Finalizes the builder into an immutable [`Graph`].
    ///
    /// # Errors
    ///
    /// Propagates any [`GraphError`] from validation.
    pub fn build(&self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.node_count, self.edges.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chained_construction() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(b.node_count(), 3);
        assert_eq!(b.edge_count(), 2);
    }

    #[test]
    fn dedup_rejects_duplicates_and_loops() {
        let mut b = GraphBuilder::with_edge_capacity(4, 4);
        assert!(b.add_edge_dedup(0, 1));
        assert!(!b.add_edge_dedup(1, 0));
        assert!(!b.add_edge_dedup(2, 2));
        assert!(b.add_edge_dedup(2, 3));
        assert_eq!(b.build().unwrap().edge_count(), 2);
    }

    #[test]
    fn build_propagates_errors() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
        assert!(b.build().is_err());
    }

    #[test]
    fn extend_edges_bulk() {
        let mut b = GraphBuilder::new(5);
        b.extend_edges((0..4).map(|i| (i, i + 1)));
        let g = b.build().unwrap();
        assert_eq!(g.edge_count(), 4);
    }
}
