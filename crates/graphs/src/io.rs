//! Plain-text import/export of graphs (edge lists and Graphviz DOT).
//!
//! The experiment harness writes topologies next to its CSV results so a
//! run can be reconstructed exactly; the DOT output exists for eyeballing
//! small networks while debugging protocols.

use crate::{Graph, GraphError};
use std::fmt::Write as _;

/// Serializes a graph as a whitespace edge list: first line `n m`, then one
/// `i j` line per undirected edge (with `i < j`).
///
/// # Example
///
/// ```
/// use slb_graphs::{generators, io};
/// let g = generators::path(3);
/// assert_eq!(io::to_edge_list(&g), "3 2\n0 1\n1 2\n");
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", g.node_count(), g.edge_count());
    for (a, b) in g.edges() {
        let _ = writeln!(out, "{} {}", a.index(), b.index());
    }
    out
}

/// Errors from [`from_edge_list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEdgeListError {
    /// The header line `n m` was missing or malformed.
    BadHeader,
    /// An edge line did not contain two integers.
    BadEdgeLine {
        /// 1-based line number of the offending line.
        line: usize,
    },
    /// The number of edge lines did not match the header.
    EdgeCountMismatch {
        /// Edges promised by the header.
        expected: usize,
        /// Edge lines actually present.
        found: usize,
    },
    /// Graph validation failed.
    Graph(GraphError),
}

impl std::fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseEdgeListError::BadHeader => write!(f, "missing or malformed `n m` header line"),
            ParseEdgeListError::BadEdgeLine { line } => {
                write!(f, "malformed edge on line {line}")
            }
            ParseEdgeListError::EdgeCountMismatch { expected, found } => {
                write!(f, "header promised {expected} edges but found {found}")
            }
            ParseEdgeListError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseEdgeListError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for ParseEdgeListError {
    fn from(e: GraphError) -> Self {
        ParseEdgeListError::Graph(e)
    }
}

/// Parses the format written by [`to_edge_list`]. Blank lines and lines
/// starting with `#` are ignored.
///
/// # Errors
///
/// Returns [`ParseEdgeListError`] on malformed input or invalid graphs.
pub fn from_edge_list(text: &str) -> Result<Graph, ParseEdgeListError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (_, header) = lines.next().ok_or(ParseEdgeListError::BadHeader)?;
    let mut parts = header.split_whitespace();
    let n: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseEdgeListError::BadHeader)?;
    let m: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ParseEdgeListError::BadHeader)?;
    if parts.next().is_some() {
        return Err(ParseEdgeListError::BadHeader);
    }
    let mut edges = Vec::with_capacity(m);
    for (line, text) in lines {
        let mut parts = text.split_whitespace();
        let a: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseEdgeListError::BadEdgeLine { line })?;
        let b: usize = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseEdgeListError::BadEdgeLine { line })?;
        if parts.next().is_some() {
            return Err(ParseEdgeListError::BadEdgeLine { line });
        }
        edges.push((a, b));
    }
    if edges.len() != m {
        return Err(ParseEdgeListError::EdgeCountMismatch {
            expected: m,
            found: edges.len(),
        });
    }
    Ok(Graph::from_edges(n, edges)?)
}

/// Serializes a graph in Graphviz DOT syntax (`graph G { ... }`).
pub fn to_dot(g: &Graph) -> String {
    let mut out = String::from("graph G {\n");
    for v in g.nodes() {
        let _ = writeln!(out, "  {};", v.index());
    }
    for (a, b) in g.edges() {
        let _ = writeln!(out, "  {} -- {};", a.index(), b.index());
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn edge_list_roundtrip() {
        for g in [
            generators::complete(5),
            generators::hypercube(3),
            generators::torus(3, 4),
        ] {
            let text = to_edge_list(&g);
            let back = from_edge_list(&text).unwrap();
            assert_eq!(g, back);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a triangle\n3 3\n\n0 1\n# middle\n1 2\n0 2\n";
        let g = from_edge_list(text).unwrap();
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(from_edge_list(""), Err(ParseEdgeListError::BadHeader));
        assert_eq!(from_edge_list("x y\n"), Err(ParseEdgeListError::BadHeader));
        assert_eq!(
            from_edge_list("3 1 9\n0 1\n"),
            Err(ParseEdgeListError::BadHeader)
        );
    }

    #[test]
    fn bad_edge_line_rejected() {
        assert_eq!(
            from_edge_list("2 1\n0 x\n"),
            Err(ParseEdgeListError::BadEdgeLine { line: 2 })
        );
        assert_eq!(
            from_edge_list("2 1\n0 1 2\n"),
            Err(ParseEdgeListError::BadEdgeLine { line: 2 })
        );
    }

    #[test]
    fn count_mismatch_rejected() {
        assert_eq!(
            from_edge_list("3 2\n0 1\n"),
            Err(ParseEdgeListError::EdgeCountMismatch {
                expected: 2,
                found: 1
            })
        );
    }

    #[test]
    fn invalid_graph_propagates() {
        let err = from_edge_list("2 1\n0 0\n").unwrap_err();
        assert!(matches!(err, ParseEdgeListError::Graph(_)));
        assert!(err.to_string().contains("invalid graph"));
    }

    #[test]
    fn dot_output_shape() {
        let dot = to_dot(&generators::path(3));
        assert!(dot.starts_with("graph G {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.ends_with("}\n"));
    }
}
