//! The isoperimetric number (Cheeger constant) of a graph.
//!
//! Definition 1.9 of the paper: `i(G) = min_{S ⊂ V, |S| ≤ |V|/2} |δS|/|S|`
//! where `δS` is the set of edges leaving `S`. Mohar's Lemma 1.10 sandwiches
//! the algebraic connectivity: `i(G)²/(2Δ) ≤ λ₂ ≤ 2·i(G)`; the spectral
//! crate's tests verify that inequality using this module.
//!
//! The exact computation enumerates all `2^(n-1) − 1` candidate subsets and
//! is limited to small graphs; the spectral crate offers a Fiedler-vector
//! sweep cut as a scalable upper bound.

use crate::{Graph, NodeId};

/// Largest node count accepted by [`isoperimetric_number`].
pub const EXACT_LIMIT: usize = 24;

/// The number of edges with exactly one endpoint in the subset described by
/// `mask` (bit `v` set ⇔ node `v ∈ S`).
pub fn boundary_size(g: &Graph, mask: u64) -> usize {
    g.edges()
        .iter()
        .filter(|(a, b)| ((mask >> a.index()) & 1) != ((mask >> b.index()) & 1))
        .count()
}

/// The exact isoperimetric number `i(G)` by exhaustive subset enumeration,
/// together with one optimal subset (as a bitmask).
///
/// # Panics
///
/// Panics if `g` has more than [`EXACT_LIMIT`] nodes (the enumeration is
/// `O(2^n · m)`), or fewer than 2 nodes (no nonempty strict subset with
/// `|S| ≤ n/2` exists).
///
/// # Example
///
/// ```
/// use slb_graphs::{generators, cheeger};
/// // For K_n, every |S| = floor(n/2) cut gives i = ceil(n/2).
/// let g = generators::complete(6);
/// let (i, _) = cheeger::isoperimetric_number(&g);
/// assert_eq!(i, 3.0);
/// ```
pub fn isoperimetric_number(g: &Graph) -> (f64, u64) {
    let n = g.node_count();
    assert!(n >= 2, "isoperimetric number needs at least two nodes");
    assert!(
        n <= EXACT_LIMIT,
        "exact isoperimetric number limited to {EXACT_LIMIT} nodes, got {n}"
    );
    let half = n / 2;
    let mut best = f64::INFINITY;
    let mut best_mask = 0u64;
    // Fix node 0 outside S to halve the enumeration (complement symmetry
    // would double-count; the |S| ≤ n/2 constraint is checked explicitly).
    for mask in 1u64..(1u64 << (n - 1)) {
        let mask = mask << 1; // node 0 excluded
        let size = mask.count_ones() as usize;
        if size == 0 || size > half {
            continue;
        }
        let ratio = boundary_size(g, mask) as f64 / size as f64;
        if ratio < best {
            best = ratio;
            best_mask = mask;
        }
    }
    // Subsets containing node 0: enumerate complements of the above — i.e.
    // masks over nodes 1..n whose complement has size ≤ n/2.
    for mask in 0u64..(1u64 << (n - 1)) {
        let mask = (mask << 1) | 1; // node 0 included
        let size = mask.count_ones() as usize;
        if size > half {
            continue;
        }
        let ratio = boundary_size(g, mask) as f64 / size as f64;
        if ratio < best {
            best = ratio;
            best_mask = mask;
        }
    }
    (best, best_mask)
}

/// The quotient `|δS|/|S|` of an explicit node subset.
///
/// # Panics
///
/// Panics if `subset` is empty or contains more than `n/2` nodes or an
/// out-of-range node.
pub fn subset_expansion(g: &Graph, subset: &[NodeId]) -> f64 {
    assert!(!subset.is_empty(), "subset must be nonempty");
    assert!(
        subset.len() <= g.node_count() / 2,
        "subset must have at most n/2 nodes"
    );
    let mut inside = vec![false; g.node_count()];
    for v in subset {
        assert!(v.index() < g.node_count(), "subset node out of range");
        inside[v.index()] = true;
    }
    let boundary = g
        .edges()
        .iter()
        .filter(|(a, b)| inside[a.index()] != inside[b.index()])
        .count();
    boundary as f64 / subset.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn complete_graph_cheeger() {
        // i(K_n) = ceil(n/2): |S| = floor(n/2) gives |δS| = |S|·(n−|S|).
        for n in 2..=8 {
            let g = generators::complete(n);
            let (i, _) = isoperimetric_number(&g);
            let expected = (n - n / 2) as f64;
            assert!((i - expected).abs() < 1e-12, "n={n}: {i} vs {expected}");
        }
    }

    #[test]
    fn ring_cheeger() {
        // Cutting an arc of length n/2 gives 2/(n/2).
        let g = generators::ring(8);
        let (i, mask) = isoperimetric_number(&g);
        assert!((i - 2.0 / 4.0).abs() < 1e-12);
        assert!(mask.count_ones() <= 4);
    }

    #[test]
    fn path_cheeger() {
        // Cutting the path in half gives 1/(n/2).
        let g = generators::path(6);
        let (i, _) = isoperimetric_number(&g);
        assert!((i - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn star_cheeger() {
        // Any leaf set S (not containing the hub) has |δS| = |S| ⇒ i = 1.
        let g = generators::star(7);
        let (i, _) = isoperimetric_number(&g);
        assert!((i - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barbell_has_small_cheeger() {
        let g = generators::barbell(5, 0);
        let (i, mask) = isoperimetric_number(&g);
        // Cutting one clique off crosses exactly the single bridge edge.
        assert!((i - 1.0 / 5.0).abs() < 1e-12);
        assert_eq!(mask.count_ones(), 5);
    }

    #[test]
    fn boundary_of_half_ring() {
        let g = generators::ring(6);
        // S = {0, 1, 2} ⇒ boundary edges {2,3} and {5,0}.
        assert_eq!(boundary_size(&g, 0b000111), 2);
    }

    #[test]
    fn subset_expansion_matches_enumeration() {
        let g = generators::ring(8);
        let quotient = subset_expansion(&g, &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert!((quotient - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "exact isoperimetric number limited")]
    fn too_large_panics() {
        let g = generators::ring(EXACT_LIMIT + 1);
        let _ = isoperimetric_number(&g);
    }

    #[test]
    #[should_panic(expected = "subset must have at most n/2 nodes")]
    fn oversized_subset_panics() {
        let g = generators::ring(4);
        let _ = subset_expansion(&g, &[NodeId(0), NodeId(1), NodeId(2)]);
    }
}
