//! Breadth-first traversal, connectivity, and distance computations.
//!
//! The paper's bounds reference the diameter `diam(G)` twice: Lemma 1.5
//! (Mohar's bound `diam(G) ≥ 4/(n·λ₂)`) and Observation 3.28 (the
//! improvement over \[6\] is at least `Ω(Δ·diam(G))`). Both are validated in
//! the test suites against the exact diameters computed here.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance marker for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: usize = usize::MAX;

/// BFS distances from `source` to every node; unreachable nodes get
/// [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Example
///
/// ```
/// use slb_graphs::{generators, traversal, NodeId};
/// let g = generators::path(4);
/// let d = traversal::bfs_distances(&g, NodeId(0));
/// assert_eq!(d, vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    assert!(source.index() < g.node_count(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.node_count()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::with_capacity(g.node_count());
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v.index()];
        for &u in g.neighbors(v) {
            if dist[u.index()] == UNREACHABLE {
                dist[u.index()] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// The eccentricity of `source`: the largest BFS distance to any node, or
/// `None` if some node is unreachable.
pub fn eccentricity(g: &Graph, source: NodeId) -> Option<usize> {
    let dist = bfs_distances(g, source);
    let mut ecc = 0usize;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// The exact diameter via all-pairs BFS, or `None` for disconnected graphs.
///
/// O(n·(n + m)); fine for the experiment sizes (n ≤ a few thousand).
pub fn diameter(g: &Graph) -> Option<usize> {
    let mut diam = 0usize;
    for v in g.nodes() {
        diam = diam.max(eccentricity(g, v)?);
    }
    Some(diam)
}

/// A fast lower bound on the diameter via the classic double-sweep
/// heuristic: BFS from `start`, then BFS from the farthest node found.
///
/// Exact on trees; a lower bound in general. Used by the experiment harness
/// when the exact all-pairs diameter would dominate runtime.
pub fn diameter_double_sweep(g: &Graph, start: NodeId) -> Option<usize> {
    let d1 = bfs_distances(g, start);
    let mut far = start;
    let mut best = 0usize;
    for (v, &d) in d1.iter().enumerate() {
        if d == UNREACHABLE {
            return None;
        }
        if d > best {
            best = d;
            far = NodeId(v);
        }
    }
    eccentricity(g, far)
}

/// Labels each node with a component index in `0..component_count`; labels
/// are assigned in order of first discovery scanning nodes `0..n`.
pub fn component_labels(g: &Graph) -> Vec<usize> {
    let mut labels = vec![usize::MAX; g.node_count()];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for s in g.nodes() {
        if labels[s.index()] != usize::MAX {
            continue;
        }
        labels[s.index()] = next;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            for &u in g.neighbors(v) {
                if labels[u.index()] == usize::MAX {
                    labels[u.index()] = next;
                    queue.push_back(u);
                }
            }
        }
        next += 1;
    }
    labels
}

/// The number of connected components.
///
/// By Lemma 1.4(2) of the paper this equals the multiplicity of the
/// Laplacian eigenvalue 0, which the spectral test suite cross-checks.
pub fn connected_components(g: &Graph) -> usize {
    component_labels(g)
        .iter()
        .copied()
        .max()
        .map_or(0, |m| m + 1)
}

/// A BFS spanning-tree parent array rooted at `source`; the root's parent is
/// itself, unreachable nodes map to `usize::MAX`.
pub fn bfs_tree(g: &Graph, source: NodeId) -> Vec<usize> {
    assert!(source.index() < g.node_count(), "source out of range");
    let mut parent = vec![usize::MAX; g.node_count()];
    parent[source.index()] = source.index();
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if parent[u.index()] == usize::MAX {
                parent[u.index()] = v.index();
                queue.push_back(u);
            }
        }
    }
    parent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_ring() {
        let g = generators::ring(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn eccentricity_and_diameter_path() {
        let g = generators::path(5);
        assert_eq!(eccentricity(&g, NodeId(0)), Some(4));
        assert_eq!(eccentricity(&g, NodeId(2)), Some(2));
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(diameter_double_sweep(&g, NodeId(2)), Some(4));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, NodeId(0)), None);
        assert_eq!(diameter_double_sweep(&g, NodeId(0)), None);
    }

    #[test]
    fn components_counted_and_labeled() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(connected_components(&g), 3);
        assert_eq!(component_labels(&g), vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn torus_diameter() {
        // diam(C_r x C_c) = floor(r/2) + floor(c/2).
        let g = generators::torus(4, 6);
        assert_eq!(diameter(&g), Some(2 + 3));
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        for d in 1..=6 {
            let g = generators::hypercube(d);
            assert_eq!(diameter(&g), Some(d as usize));
        }
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        let g = generators::binary_tree(31);
        assert_eq!(
            diameter_double_sweep(&g, NodeId(0)),
            diameter(&g),
            "double sweep must be exact on trees"
        );
    }

    #[test]
    fn bfs_tree_parents() {
        let g = generators::path(4);
        let p = bfs_tree(&g, NodeId(1));
        assert_eq!(p[1], 1);
        assert_eq!(p[0], 1);
        assert_eq!(p[2], 1);
        assert_eq!(p[3], 2);
    }

    #[test]
    fn unreachable_constant_is_max() {
        assert_eq!(UNREACHABLE, usize::MAX);
    }
}
