//! Generators for the graph families of the paper and auxiliary families.
//!
//! Table 1 of the paper reports convergence bounds for the complete graph,
//! ring & path, mesh & torus, and the hypercube; those generators are the
//! load-bearing ones here. The remaining families (star, trees, random
//! graphs, …) are used by the test suite, the Cheeger-constant experiments,
//! and as adversarial topologies in the examples.
//!
//! All generators return connected simple graphs and panic on degenerate
//! parameters (documented per function), mirroring the convention of
//! constructing experiment topologies up front where a panic is a
//! configuration bug rather than a runtime condition.

use crate::{Graph, GraphBuilder};
use rand::seq::SliceRandom;
use rand::Rng;

/// The complete graph `K_n`: every pair of distinct nodes is adjacent.
///
/// Row 1 of Table 1. `λ₂(K_n) = n`, `Δ = n − 1`, `diam = 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "complete graph needs at least one node");
    let mut b = GraphBuilder::with_edge_capacity(n, n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            b.add_edge(i, j);
        }
    }
    b.build().expect("complete graph construction is valid")
}

/// The path `P_n` on `n` nodes (`n − 1` edges).
///
/// Row 2 of Table 1 (with the ring). `λ₂(P_n) = 2(1 − cos(π/n))`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "path needs at least one node");
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(i - 1, i);
    }
    b.build().expect("path construction is valid")
}

/// The ring (cycle) `C_n` on `n ≥ 3` nodes.
///
/// Row 2 of Table 1. `λ₂(C_n) = 2(1 − cos(2π/n))`.
///
/// # Panics
///
/// Panics if `n < 3` (smaller cycles degenerate to multi-edges).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "ring needs at least three nodes");
    let mut b = GraphBuilder::with_edge_capacity(n, n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    b.build().expect("ring construction is valid")
}

/// The `rows × cols` mesh (2-dimensional grid) with open boundaries.
///
/// Row 3 of Table 1 (with the torus). The mesh is the Cartesian product
/// `P_rows □ P_cols`, so `λ₂ = min(λ₂(P_rows), λ₂(P_cols))`.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn mesh(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "mesh needs positive dimensions");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::with_edge_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build().expect("mesh construction is valid")
}

/// The `rows × cols` torus (grid with wrap-around links).
///
/// Row 3 of Table 1. Cartesian product `C_rows □ C_cols`; 4-regular for
/// `rows, cols ≥ 3`.
///
/// # Panics
///
/// Panics if `rows < 3 || cols < 3` (wrap-around would create duplicate
/// edges).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus needs both dimensions at least 3"
    );
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::with_edge_capacity(rows * cols, 2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build().expect("torus construction is valid")
}

/// The `d`-dimensional hypercube `Q_d` on `2^d` nodes.
///
/// Row 4 of Table 1. `λ₂(Q_d) = 2`, `Δ = d = log₂ n`, `diam = d`.
///
/// # Panics
///
/// Panics if `d == 0` or `d > 30`.
pub fn hypercube(d: u32) -> Graph {
    assert!(d > 0, "hypercube needs dimension at least 1");
    assert!(d <= 30, "hypercube dimension too large");
    let n = 1usize << d;
    let mut b = GraphBuilder::with_edge_capacity(n, n * d as usize / 2);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1usize << bit);
            if v < u {
                b.add_edge(v, u);
            }
        }
    }
    b.build().expect("hypercube construction is valid")
}

/// The star `S_n`: node 0 is adjacent to all `n − 1` leaves.
///
/// `λ₂(S_n) = 1`; the extreme-degree graph used in tests of `d_ij`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "star needs at least one node");
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(0, i);
    }
    b.build().expect("star construction is valid")
}

/// The complete bipartite graph `K_{a,b}`.
///
/// `λ₂(K_{a,b}) = min(a, b)`.
///
/// # Panics
///
/// Panics if `a == 0 || b == 0`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    assert!(
        a > 0 && b > 0,
        "complete bipartite needs both sides nonempty"
    );
    let mut builder = GraphBuilder::with_edge_capacity(a + b, a * b);
    for i in 0..a {
        for j in 0..b {
            builder.add_edge(i, a + j);
        }
    }
    builder
        .build()
        .expect("complete bipartite construction is valid")
}

/// A complete binary tree with `n` nodes (heap layout: node `i` has children
/// `2i + 1`, `2i + 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n > 0, "binary tree needs at least one node");
    let mut b = GraphBuilder::with_edge_capacity(n, n.saturating_sub(1));
    for i in 1..n {
        b.add_edge(i, (i - 1) / 2);
    }
    b.build().expect("binary tree construction is valid")
}

/// The wheel `W_n`: a ring of `n − 1` nodes plus a hub adjacent to all.
///
/// # Panics
///
/// Panics if `n < 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least four nodes");
    let rim = n - 1;
    let mut b = GraphBuilder::with_edge_capacity(n, 2 * rim);
    for i in 0..rim {
        b.add_edge(1 + i, 1 + (i + 1) % rim);
        b.add_edge(0, 1 + i);
    }
    b.build().expect("wheel construction is valid")
}

/// Two cliques of size `k` joined by a path of `bridge` intermediate nodes
/// (a "barbell"): the classic low-conductance topology for Cheeger-constant
/// experiments.
///
/// Total nodes: `2k + bridge`.
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn barbell(k: usize, bridge: usize) -> Graph {
    assert!(k >= 2, "barbell cliques need at least two nodes each");
    let n = 2 * k + bridge;
    let mut b = GraphBuilder::with_edge_capacity(n, k * (k - 1) + bridge + 1);
    for i in 0..k {
        for j in (i + 1)..k {
            b.add_edge(i, j);
            b.add_edge(k + bridge + i, k + bridge + j);
        }
    }
    // Chain: clique A node k-1 -> bridge nodes -> clique B node k+bridge.
    let mut prev = k - 1;
    for t in 0..bridge {
        b.add_edge(prev, k + t);
        prev = k + t;
    }
    b.add_edge(prev, k + bridge);
    b.build().expect("barbell construction is valid")
}

/// Erdős–Rényi `G(n, p)` conditioned on connectivity: edges are sampled
/// i.i.d. with probability `p`, and a uniform spanning-path patch connects
/// stray components so experiments always get a usable network.
///
/// The patching means the result is *not* exactly `G(n, p)`; it is the
/// standard "connected `G(n, p)`" testbed topology.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn gnp_connected<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "gnp needs at least one node");
    assert!((0.0..=1.0).contains(&p), "p must lie in [0, 1]");
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_bool(p) {
                b.add_edge(i, j);
            }
        }
    }
    let g = b.build().expect("gnp construction is valid");
    if g.is_connected() {
        return g;
    }
    // Patch: connect consecutive components with one random edge each.
    let labels = crate::traversal::component_labels(&g);
    let component_count = labels.iter().copied().max().map_or(1, |m| m + 1);
    let mut representatives: Vec<Vec<usize>> = vec![Vec::new(); component_count];
    for (v, &c) in labels.iter().enumerate() {
        representatives[c].push(v);
    }
    for w in 0..component_count.saturating_sub(1) {
        let a = *representatives[w]
            .choose(rng)
            .expect("components are nonempty");
        let bnode = *representatives[w + 1]
            .choose(rng)
            .expect("components are nonempty");
        b.add_edge_dedup(a, bnode);
    }
    let g = b.build().expect("patched gnp construction is valid");
    debug_assert!(g.is_connected());
    g
}

/// A random `d`-regular graph via the configuration model with rejection
/// (retry until simple), then conditioned on connectivity.
///
/// Random regular graphs are expanders with high probability, so this is the
/// "good `λ₂`" family for experiments beyond Table 1.
///
/// # Panics
///
/// Panics if `n * d` is odd, `d >= n`, or `d == 0`.
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d > 0, "degree must be positive");
    assert!(d < n, "degree must be smaller than node count");
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    'attempt: for _ in 0..1000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::with_edge_capacity(n, n * d / 2);
        // slb-lint: allow(map-iteration, reason = "insert/contains dedup only; never iterated, so no order dependence")
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        for pair in stubs.chunks_exact(2) {
            let (a, c) = (pair[0], pair[1]);
            if a == c {
                continue 'attempt;
            }
            if !seen.insert((a.min(c), a.max(c))) {
                continue 'attempt;
            }
            b.add_edge(a, c);
        }
        let g = b
            .build()
            .expect("configuration model produced simple graph");
        if g.is_connected() {
            return g;
        }
    }
    panic!("failed to sample a connected {d}-regular graph on {n} nodes after 1000 attempts");
}

/// Enumeration of the named topology families used throughout the
/// experiment harness, carrying their size parameters.
///
/// This mirrors the rows of Table 1 and lets experiment configuration be
/// data rather than code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// `K_n`.
    Complete {
        /// Number of nodes.
        n: usize,
    },
    /// Cycle `C_n`.
    Ring {
        /// Number of nodes.
        n: usize,
    },
    /// Path `P_n`.
    Path {
        /// Number of nodes.
        n: usize,
    },
    /// Open grid.
    Mesh {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// Wrap-around grid.
    Torus {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
    /// `Q_d` on `2^d` nodes.
    Hypercube {
        /// Dimension.
        d: u32,
    },
    /// Star `S_n`.
    Star {
        /// Number of nodes.
        n: usize,
    },
}

impl Family {
    /// Instantiates the family as a [`Graph`].
    pub fn build(self) -> Graph {
        match self {
            Family::Complete { n } => complete(n),
            Family::Ring { n } => ring(n),
            Family::Path { n } => path(n),
            Family::Mesh { rows, cols } => mesh(rows, cols),
            Family::Torus { rows, cols } => torus(rows, cols),
            Family::Hypercube { d } => hypercube(d),
            Family::Star { n } => star(n),
        }
    }

    /// Number of nodes the instantiated graph will have.
    pub fn node_count(self) -> usize {
        match self {
            Family::Complete { n }
            | Family::Ring { n }
            | Family::Path { n }
            | Family::Star { n } => n,
            Family::Mesh { rows, cols } | Family::Torus { rows, cols } => rows * cols,
            Family::Hypercube { d } => 1usize << d,
        }
    }

    /// A short lowercase label for tables and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Family::Complete { .. } => "complete",
            Family::Ring { .. } => "ring",
            Family::Path { .. } => "path",
            Family::Mesh { .. } => "mesh",
            Family::Torus { .. } => "torus",
            Family::Hypercube { .. } => "hypercube",
            Family::Star { .. } => "star",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Family::Complete { n } => write!(f, "complete(n={n})"),
            Family::Ring { n } => write!(f, "ring(n={n})"),
            Family::Path { n } => write!(f, "path(n={n})"),
            Family::Mesh { rows, cols } => write!(f, "mesh({rows}x{cols})"),
            Family::Torus { rows, cols } => write!(f, "torus({rows}x{cols})"),
            Family::Hypercube { d } => write!(f, "hypercube(d={d})"),
            Family::Star { n } => write!(f, "star(n={n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_counts() {
        let g = complete(6);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.regularity(), Some(5));
        assert_eq!(traversal::diameter(&g), Some(1));
    }

    #[test]
    fn complete_k1_and_k2() {
        assert_eq!(complete(1).edge_count(), 0);
        let k2 = complete(2);
        assert_eq!(k2.edge_count(), 1);
        assert!(k2.is_connected());
    }

    #[test]
    fn path_counts() {
        let g = path(7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert_eq!(traversal::diameter(&g), Some(6));
    }

    #[test]
    fn ring_counts() {
        let g = ring(8);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.regularity(), Some(2));
        assert_eq!(traversal::diameter(&g), Some(4));
    }

    #[test]
    fn mesh_counts() {
        let g = mesh(3, 4);
        assert_eq!(g.node_count(), 12);
        // Edges: 3 rows x 3 horizontal + 2 x 4 vertical = 9 + 8 = 17.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.max_degree(), 4);
        assert_eq!(g.min_degree(), 2);
        assert_eq!(traversal::diameter(&g), Some(5));
    }

    #[test]
    fn mesh_single_row_is_path() {
        let g = mesh(1, 5);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn torus_counts() {
        let g = torus(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 40);
        assert_eq!(g.regularity(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn hypercube_counts() {
        let g = hypercube(5);
        assert_eq!(g.node_count(), 32);
        assert_eq!(g.edge_count(), 32 * 5 / 2);
        assert_eq!(g.regularity(), Some(5));
        assert_eq!(traversal::diameter(&g), Some(5));
    }

    #[test]
    fn star_counts() {
        let g = star(9);
        assert_eq!(g.edge_count(), 8);
        assert_eq!(g.max_degree(), 8);
        assert_eq!(traversal::diameter(&g), Some(2));
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(traversal::diameter(&g), Some(2));
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(15);
        assert_eq!(g.edge_count(), 14);
        assert!(g.is_connected());
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn wheel_counts() {
        let g = wheel(7);
        assert_eq!(g.node_count(), 7);
        assert_eq!(g.edge_count(), 12);
        assert_eq!(g.max_degree(), 6);
        assert_eq!(g.min_degree(), 3);
    }

    #[test]
    fn barbell_counts() {
        let g = barbell(4, 2);
        assert_eq!(g.node_count(), 10);
        // 2 * C(4,2) + 3 bridge-chain edges.
        assert_eq!(g.edge_count(), 2 * 6 + 3);
        assert!(g.is_connected());
    }

    #[test]
    fn barbell_without_bridge_nodes() {
        let g = barbell(3, 0);
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 7);
        assert!(g.is_connected());
    }

    #[test]
    fn gnp_is_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        for p in [0.01, 0.1, 0.5] {
            let g = gnp_connected(40, p, &mut rng);
            assert_eq!(g.node_count(), 40);
            assert!(g.is_connected(), "p={p}");
        }
    }

    #[test]
    fn random_regular_is_regular_and_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_regular(24, 4, &mut rng);
        assert_eq!(g.regularity(), Some(4));
        assert!(g.is_connected());
    }

    #[test]
    fn family_roundtrip() {
        let fam = Family::Hypercube { d: 3 };
        assert_eq!(fam.node_count(), 8);
        assert_eq!(fam.build().node_count(), 8);
        assert_eq!(fam.label(), "hypercube");
        assert_eq!(fam.to_string(), "hypercube(d=3)");
        assert_eq!(Family::Mesh { rows: 4, cols: 8 }.node_count(), 32);
        assert_eq!(Family::Torus { rows: 4, cols: 8 }.label(), "torus");
    }

    #[test]
    #[should_panic(expected = "ring needs at least three nodes")]
    fn ring_too_small_panics() {
        ring(2);
    }

    #[test]
    #[should_panic(expected = "torus needs both dimensions at least 3")]
    fn torus_too_small_panics() {
        torus(2, 5);
    }
}
