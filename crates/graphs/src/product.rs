//! Cartesian graph products.
//!
//! The Table 1 families are products in disguise: the mesh is `P_r □ P_c`,
//! the torus is `C_r □ C_c`, and the `d`-cube is `K₂^{□d}`. The product
//! view matters for the spectral side — the Laplacian spectrum of
//! `G □ H` is the pairwise sum `{λ_i(G) + λ_j(H)}`, which is how
//! `closed_form` derives mesh/torus values — and the generators here let
//! the test suite verify those identities structurally rather than
//! numerically.
//!
//! Vertex numbering: `(g, h) ↦ g·|V(H)| + h`, matching the row-major
//! numbering of [`generators::mesh`](crate::generators::mesh) and
//! [`generators::torus`](crate::generators::torus) exactly, so products of
//! paths/rings are `Graph`-equal to the direct generators.

use crate::{Graph, GraphBuilder};

/// The Cartesian product `G □ H`: vertices `V(G) × V(H)`; `(g, h)` is
/// adjacent to `(g', h)` when `(g, g') ∈ E(G)` and to `(g, h')` when
/// `(h, h') ∈ E(H)`.
///
/// # Example
///
/// ```
/// use slb_graphs::{generators, product};
/// // The 4x5 torus is exactly C_4 □ C_5 (same numbering).
/// let t = generators::torus(4, 5);
/// let p = product::cartesian(&generators::ring(4), &generators::ring(5));
/// assert_eq!(t, p);
/// ```
pub fn cartesian(g: &Graph, h: &Graph) -> Graph {
    let (ng, nh) = (g.node_count(), h.node_count());
    let idx = |a: usize, b: usize| a * nh + b;
    let mut b =
        GraphBuilder::with_edge_capacity(ng * nh, ng * h.edge_count() + nh * g.edge_count());
    for (x, y) in g.edges() {
        for k in 0..nh {
            b.add_edge(idx(x.index(), k), idx(y.index(), k));
        }
    }
    for (x, y) in h.edges() {
        for k in 0..ng {
            b.add_edge(idx(k, x.index()), idx(k, y.index()));
        }
    }
    b.build().expect("product of simple graphs is simple")
}

/// The `d`-fold Cartesian power `G^{□d}`.
///
/// # Panics
///
/// Panics if `d == 0`.
///
/// # Example
///
/// ```
/// use slb_graphs::{generators, product};
/// // Q_3 = K_2 □ K_2 □ K_2 (up to vertex numbering).
/// let q = product::power(&generators::complete(2), 3);
/// assert_eq!(q.node_count(), 8);
/// assert_eq!(q.regularity(), Some(3));
/// ```
pub fn power(g: &Graph, d: u32) -> Graph {
    assert!(d > 0, "power needs at least one factor");
    let mut acc = g.clone();
    for _ in 1..d {
        acc = cartesian(&acc, g);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generators, traversal};

    #[test]
    fn mesh_is_path_product() {
        for (r, c) in [(2usize, 3usize), (3, 4), (4, 4), (1, 5)] {
            let direct = generators::mesh(r, c);
            let product = cartesian(&generators::path(r), &generators::path(c));
            assert_eq!(direct, product, "mesh {r}x{c}");
        }
    }

    #[test]
    fn torus_is_ring_product() {
        for (r, c) in [(3usize, 3usize), (3, 4), (4, 5)] {
            let direct = generators::torus(r, c);
            let product = cartesian(&generators::ring(r), &generators::ring(c));
            assert_eq!(direct, product, "torus {r}x{c}");
        }
    }

    #[test]
    fn hypercube_is_k2_power() {
        for d in 1..=5u32 {
            let direct = generators::hypercube(d);
            let product = power(&generators::complete(2), d);
            // Same counts and regularity (vertex numbering differs by bit
            // order only for d > 1, so compare invariants, then spectra).
            assert_eq!(direct.node_count(), product.node_count());
            assert_eq!(direct.edge_count(), product.edge_count());
            assert_eq!(direct.regularity(), product.regularity());
            assert_eq!(traversal::diameter(&direct), traversal::diameter(&product));
        }
    }

    #[test]
    fn product_degree_is_degree_sum() {
        let g = generators::star(4);
        let h = generators::ring(3);
        let p = cartesian(&g, &h);
        for a in g.nodes() {
            for b in h.nodes() {
                let v = crate::NodeId(a.index() * 3 + b.index());
                assert_eq!(p.degree(v), g.degree(a) + h.degree(b));
            }
        }
    }

    #[test]
    fn product_of_connected_is_connected() {
        let p = cartesian(&generators::path(3), &generators::star(4));
        assert!(p.is_connected());
        assert_eq!(p.node_count(), 12);
    }

    #[test]
    fn power_of_one_is_identity() {
        let g = generators::ring(5);
        assert_eq!(power(&g, 1), g);
    }

    #[test]
    #[should_panic(expected = "power needs at least one factor")]
    fn zero_power_panics() {
        let _ = power(&generators::ring(3), 0);
    }
}
