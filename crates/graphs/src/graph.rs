//! The [`Graph`] type: a compact, immutable, undirected simple graph.

use std::fmt;

/// Identifier of a node (processor) in a [`Graph`].
///
/// Node ids are dense indices `0..n`, which lets every per-node quantity in
/// the simulator (loads, speeds, deviations) live in a plain `Vec`.
///
/// # Example
///
/// ```
/// use slb_graphs::NodeId;
/// let v = NodeId(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Identifier of an undirected edge in a [`Graph`].
///
/// Edge ids index into [`Graph::edges`]; each undirected edge `{i, j}` is
/// stored exactly once with `i < j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the dense index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Errors produced while constructing a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint referred to a node index `>= n`.
    NodeOutOfRange {
        /// The offending node index.
        node: usize,
        /// The number of nodes in the graph under construction.
        node_count: usize,
    },
    /// An edge connected a node to itself; the model uses simple graphs.
    SelfLoop {
        /// The node with the self loop.
        node: usize,
    },
    /// The same undirected edge was added twice.
    DuplicateEdge {
        /// First endpoint (smaller index).
        a: usize,
        /// Second endpoint (larger index).
        b: usize,
    },
    /// A graph with zero nodes was requested.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => write!(
                f,
                "edge endpoint {node} out of range for graph with {node_count} nodes"
            ),
            GraphError::SelfLoop { node } => {
                write!(f, "self loop at node {node} not allowed in a simple graph")
            }
            GraphError::DuplicateEdge { a, b } => {
                write!(f, "duplicate undirected edge ({a}, {b})")
            }
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable, undirected, simple graph in CSR (compressed sparse row)
/// form.
///
/// This is the network `G = (V, E)` of the paper: vertices are processors,
/// edges are the links over which selfish tasks may migrate. The structure
/// is immutable after construction (via [`GraphBuilder`](crate::GraphBuilder)
/// or a generator from [`generators`](crate::generators)), which the
/// simulator exploits by sharing one graph across threads without locking.
///
/// # Representation
///
/// Neighbors of all nodes are stored in one flat array partitioned by a
/// `row_starts` offset table, so `neighbors(v)` is a contiguous slice and
/// `deg(v)` is a subtraction. Undirected edges are additionally stored once
/// each (with `i < j`) for edge-indexed iteration (potential drops and flows
/// are sums over `E`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    row_starts: Vec<usize>,
    adjacency: Vec<NodeId>,
    edges: Vec<(NodeId, NodeId)>,
    max_degree: usize,
    min_degree: usize,
}

impl Graph {
    /// Builds a graph from `n` nodes and a list of undirected edges.
    ///
    /// Edges may be given in any order and with endpoints in either order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if `n == 0`, an endpoint is out of range, an
    /// edge is a self loop, or an undirected edge appears more than once.
    ///
    /// # Example
    ///
    /// ```
    /// use slb_graphs::Graph;
    /// // A triangle.
    /// let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
    /// assert_eq!(g.edge_count(), 3);
    /// assert_eq!(g.degree(slb_graphs::NodeId(1)), 2);
    /// # Ok::<(), slb_graphs::GraphError>(())
    /// ```
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (usize, usize)>,
    {
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut normalized: Vec<(usize, usize)> = Vec::new();
        for (a, b) in edges {
            if a >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: a,
                    node_count: n,
                });
            }
            if b >= n {
                return Err(GraphError::NodeOutOfRange {
                    node: b,
                    node_count: n,
                });
            }
            if a == b {
                return Err(GraphError::SelfLoop { node: a });
            }
            normalized.push((a.min(b), a.max(b)));
        }
        normalized.sort_unstable();
        for w in normalized.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge {
                    a: w[0].0,
                    b: w[0].1,
                });
            }
        }

        let mut degrees = vec![0usize; n];
        for &(a, b) in &normalized {
            degrees[a] += 1;
            degrees[b] += 1;
        }
        let mut row_starts = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        row_starts.push(0);
        for &d in &degrees {
            acc += d;
            row_starts.push(acc);
        }
        let mut cursor = row_starts[..n].to_vec();
        let mut adjacency = vec![NodeId(0); acc];
        for &(a, b) in &normalized {
            adjacency[cursor[a]] = NodeId(b);
            cursor[a] += 1;
            adjacency[cursor[b]] = NodeId(a);
            cursor[b] += 1;
        }
        // Within each row the neighbors are already sorted for endpoint `a`
        // (edges sorted lexicographically), but rows for `b` endpoints
        // interleave; sort each row for deterministic, binary-searchable
        // neighbor slices.
        for v in 0..n {
            adjacency[row_starts[v]..row_starts[v + 1]].sort_unstable();
        }

        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let min_degree = degrees.iter().copied().min().unwrap_or(0);
        Ok(Graph {
            row_starts,
            adjacency,
            edges: normalized
                .into_iter()
                .map(|(a, b)| (NodeId(a), NodeId(b)))
                .collect(),
            max_degree,
            min_degree,
        })
    }

    /// Number of nodes `n = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.row_starts.len() - 1
    }

    /// Number of undirected edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Degree `deg(v)` of a node.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.row_starts[v.0 + 1] - self.row_starts[v.0]
    }

    /// The maximum degree `Δ` of the network.
    #[inline]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// The minimum degree of the network.
    #[inline]
    pub fn min_degree(&self) -> usize {
        self.min_degree
    }

    /// `d_ij = max(deg(i), deg(j))`, the normalization used by the paper's
    /// migration probabilities (written `d_{i,j}` / `d_vw` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    #[inline]
    pub fn d_max_endpoint(&self, i: NodeId, j: NodeId) -> usize {
        self.degree(i).max(self.degree(j))
    }

    /// The sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[self.row_starts[v.0]..self.row_starts[v.0 + 1]]
    }

    /// Whether `{i, j}` is an edge, by binary search over the neighbor row.
    pub fn has_edge(&self, i: NodeId, j: NodeId) -> bool {
        if i.0 >= self.node_count() || j.0 >= self.node_count() {
            return false;
        }
        self.neighbors(i).binary_search(&j).is_ok()
    }

    /// The undirected edge list; each edge appears once as `(i, j)` with
    /// `i < j`, sorted lexicographically.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.node_count()).map(NodeId)
    }

    /// Whether the graph is connected (singleton graphs count as connected).
    ///
    /// Connectivity matters for the paper's analysis: by Lemma 1.4 the
    /// algebraic connectivity `λ₂` is positive exactly for connected graphs,
    /// and all convergence bounds assume `λ₂ > 0`.
    pub fn is_connected(&self) -> bool {
        crate::traversal::connected_components(self) == 1
    }

    /// The sum of all degrees, i.e. `2|E|`.
    pub fn degree_sum(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns the degree sequence sorted descending.
    pub fn degree_sequence(&self) -> Vec<usize> {
        let mut seq: Vec<usize> = self.nodes().map(|v| self.degree(v)).collect();
        seq.sort_unstable_by(|a, b| b.cmp(a));
        seq
    }

    /// Checks the graph is `k`-regular and returns `k` if so.
    pub fn regularity(&self) -> Option<usize> {
        if self.max_degree == self.min_degree {
            Some(self.max_degree)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree_sum(), 6);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.regularity(), Some(2));
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
        assert!(g.is_connected());
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = Graph::from_edges(5, [(4, 0), (2, 0), (0, 1), (3, 2)]).unwrap();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(4)]);
        for (i, j) in g.edges() {
            assert!(g.has_edge(*i, *j));
            assert!(g.has_edge(*j, *i));
            assert!(i < j);
        }
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Graph::from_edges(0, []), Err(GraphError::Empty));
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, [(1, 1)]),
            Err(GraphError::SelfLoop { node: 1 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, [(0, 2)]),
            Err(GraphError::NodeOutOfRange {
                node: 2,
                node_count: 2
            })
        );
    }

    #[test]
    fn rejects_duplicate_even_if_flipped() {
        assert_eq!(
            Graph::from_edges(3, [(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge { a: 0, b: 1 })
        );
    }

    #[test]
    fn singleton_is_connected_with_no_edges() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.degree(NodeId(0)), 0);
    }

    #[test]
    fn disconnected_detected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
    }

    #[test]
    fn d_max_endpoint_matches_paper_definition() {
        // Star with center 0: deg(0) = 3, leaves degree 1.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.d_max_endpoint(NodeId(0), NodeId(1)), 3);
        assert_eq!(g.d_max_endpoint(NodeId(1), NodeId(0)), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
    }

    #[test]
    fn degree_sequence_sorted_descending() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2)]).unwrap();
        assert_eq!(g.degree_sequence(), vec![3, 2, 2, 1]);
        assert_eq!(g.regularity(), None);
    }

    #[test]
    fn display_impls() {
        assert_eq!(NodeId(7).to_string(), "v7");
        assert_eq!(EdgeId(7).to_string(), "e7");
        let err = GraphError::DuplicateEdge { a: 1, b: 2 };
        assert!(err.to_string().contains("duplicate"));
    }
}
