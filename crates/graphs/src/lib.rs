//! Undirected graph representation, generators, and traversal algorithms
//! for selfish load-balancing networks.
//!
//! This crate is the network substrate of the reproduction of
//! *Adolphs & Berenbrink, "Distributed Selfish Load Balancing with Weights
//! and Speeds"* (PODC 2012). The paper models the computing network as an
//! undirected graph `G = (V, E)` whose vertices are processors and whose
//! edges are communication links restricting task migration. Everything the
//! protocols and the spectral analysis need from the network lives here:
//!
//! * [`Graph`] — a compact CSR-style adjacency structure with O(1) degree
//!   queries and cache-friendly neighbor iteration,
//! * [`generators`] — the graph families of the paper's Table 1 (complete,
//!   ring, path, mesh, torus, hypercube) plus auxiliary families used in the
//!   test suite and experiments,
//! * [`traversal`] — BFS, connectivity, eccentricities and the exact
//!   diameter `diam(G)` used by Observation 3.28 and Lemma 1.5,
//! * [`cheeger`] — the exact isoperimetric number `i(G)` for small graphs
//!   (Definition 1.9).
//!
//! # Example
//!
//! ```
//! use slb_graphs::{generators, NodeId};
//!
//! let g = generators::hypercube(4); // 16 nodes, degree 4
//! assert_eq!(g.node_count(), 16);
//! assert_eq!(g.max_degree(), 4);
//! assert!(g.is_connected());
//! // `d_ij = max(deg(i), deg(j))` from the paper's protocol:
//! let (i, j) = (NodeId(0), NodeId(1));
//! assert_eq!(g.d_max_endpoint(i, j), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Curated pedantic hardening (promoted to errors by CI's `-D warnings`):
// index math must not truncate silently, hot-path APIs must not
// clone-by-value, and float equality must be a deliberate act. Scoped to
// library code — tests compare exact deterministic outputs all the time.
#![cfg_attr(
    not(test),
    warn(
        clippy::needless_pass_by_value,
        clippy::cast_possible_truncation,
        clippy::float_cmp
    )
)]

mod builder;
pub mod cheeger;
pub mod generators;
mod graph;
pub mod io;
pub mod product;
pub mod traversal;

pub use builder::GraphBuilder;
pub use graph::{EdgeId, Graph, GraphError, NodeId};
