//! Property-based tests for the spectral toolkit.

use proptest::prelude::*;
use rand::SeedableRng;
use slb_graphs::{generators, Graph};
use slb_spectral::{bounds, closed_form, eigen, generalized, laplacian, SymmetricMatrix};

/// Strategy: a random connected graph (Gnp patched to connectivity).
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (2usize..24, 0u64..500).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        generators::gnp_connected(n, 0.3, &mut rng)
    })
}

/// Strategy: a random symmetric matrix with entries in [-5, 5].
fn arb_symmetric() -> impl Strategy<Value = SymmetricMatrix> {
    (1usize..9, 0u64..1000).prop_map(|(n, seed)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        SymmetricMatrix::from_fn(n, |_, _| rng.gen_range(-5.0..5.0))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn jacobi_reconstructs_spectrum(m in arb_symmetric()) {
        let d = eigen::decompose(&m).unwrap();
        // Trace = Σλ.
        let sum: f64 = d.values.iter().sum();
        prop_assert!((sum - m.trace()).abs() < 1e-7 * (1.0 + m.trace().abs()));
        // Eigen equation per pair.
        for k in 0..m.dim() {
            let av = m.matvec(&d.vectors[k]);
            for (a, v) in av.iter().zip(d.vectors[k].iter()) {
                prop_assert!((a - d.values[k] * v).abs() < 1e-6);
            }
        }
        // Values sorted ascending.
        for w in d.values.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn laplacian_psd_and_kernel(g in arb_connected_graph()) {
        let d = laplacian::eigendecomposition(&g).unwrap();
        prop_assert!(d.values[0].abs() < 1e-8, "λ₁ = 0");
        prop_assert!(d.values.iter().all(|&v| v > -1e-8), "PSD");
        // Connected ⇒ λ₂ > 0 (Lemma 1.4(2)).
        prop_assert!(d.values[1] > 1e-10);
        // Quadratic form matches the edge sum for a random vector.
        let x: Vec<f64> = (0..g.node_count()).map(|i| ((i * 37 % 11) as f64) - 5.0).collect();
        let qf = laplacian::quadratic_form(&g, &x);
        let dense = laplacian::dense(&g).quadratic_form(&x);
        prop_assert!((qf - dense).abs() < 1e-7 * (1.0 + qf.abs()));
    }

    #[test]
    fn all_spectral_bounds_hold(g in arb_connected_graph()) {
        let l2 = laplacian::lambda2(&g).unwrap();
        let diam = slb_graphs::traversal::diameter(&g);
        let iso = if g.node_count() <= slb_graphs::cheeger::EXACT_LIMIT {
            Some(slb_graphs::cheeger::isoperimetric_number(&g).0)
        } else {
            None
        };
        let violations = bounds::check_all(&g, l2, diam, iso);
        prop_assert!(violations.is_empty(), "violated: {violations:?}");
    }

    #[test]
    fn lanczos_agrees_with_dense(g in arb_connected_graph()) {
        let dense = laplacian::eigendecomposition(&g).unwrap().lambda2();
        let sparse = slb_spectral::lanczos::lambda2(&g).unwrap();
        prop_assert!((dense - sparse).abs() < 1e-6 * (1.0 + dense), "{dense} vs {sparse}");
    }

    #[test]
    fn generalized_interlacing(g in arb_connected_graph(), seed in 0u64..100) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let speeds: Vec<f64> = (0..g.node_count()).map(|_| rng.gen_range(1.0..6.0)).collect();
        let smin = speeds.iter().cloned().fold(f64::MAX, f64::min);
        let smax = speeds.iter().cloned().fold(f64::MIN, f64::max);
        let l2 = laplacian::lambda2(&g).unwrap();
        let m2 = generalized::mu2(&g, &speeds).unwrap();
        let (lo, hi) = bounds::speed_interlacing(l2, smin, smax);
        prop_assert!(m2 >= lo - 1e-7, "µ₂ {m2} < λ₂/s_max {lo}");
        prop_assert!(m2 <= hi + 1e-7, "µ₂ {m2} > λ₂/s_min {hi}");
    }

    #[test]
    fn lemma_1_14_on_random_deviations(g in arb_connected_graph(), seed in 0u64..100) {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = g.node_count();
        let speeds: Vec<f64> = (0..n).map(|_| rng.gen_range(1.0..4.0)).collect();
        let raw: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let e = generalized::project_off_speed(&raw, &speeds);
        let (lhs, rhs) = generalized::lemma_1_14_sides(&g, &speeds, &e).unwrap();
        prop_assert!(lhs >= rhs - 1e-6 * (1.0 + rhs.abs()), "⟨e,LS⁻¹e⟩_S {lhs} < µ₂⟨e,e⟩_S {rhs}");
    }

    #[test]
    fn sweep_cut_upper_bounds_cheeger(g in arb_connected_graph()) {
        if g.node_count() < 2 || g.node_count() > slb_graphs::cheeger::EXACT_LIMIT {
            return Ok(());
        }
        let cut = slb_spectral::sweep::fiedler_sweep(&g).unwrap();
        let (exact, _) = slb_graphs::cheeger::isoperimetric_number(&g);
        prop_assert!(cut.expansion >= exact - 1e-9);
        // And via Lemma 1.10 it certifies λ₂ ≤ 2·sweep.
        let l2 = laplacian::lambda2(&g).unwrap();
        prop_assert!(l2 <= 2.0 * cut.expansion + 1e-7);
    }

    #[test]
    fn closed_forms_match_numerics_for_sized_families(
        n in 3usize..16,
        d in 1u32..5,
    ) {
        let pairs: Vec<(f64, Graph)> = vec![
            (closed_form::lambda2_complete(n), generators::complete(n)),
            (closed_form::lambda2_ring(n), generators::ring(n)),
            (closed_form::lambda2_path(n), generators::path(n)),
            (closed_form::lambda2_star(n), generators::star(n)),
            (closed_form::lambda2_hypercube(d), generators::hypercube(d)),
        ];
        for (closed, g) in pairs {
            let numeric = laplacian::lambda2(&g).unwrap();
            prop_assert!((closed - numeric).abs() < 1e-7, "{closed} vs {numeric}");
        }
    }
}
