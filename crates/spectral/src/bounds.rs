//! The spectral bounds quoted in Appendix A of the paper.
//!
//! Each function returns the bound value; the test suites (here and in the
//! integration tests) verify the corresponding inequality on concrete
//! graphs, which is exactly how the paper employs them:
//!
//! * Lemma 1.5 (Mohar): `diam(G) ≥ 4/(n·λ₂)`.
//! * Corollary 1.6: `λ₂ ≥ 4/n²`.
//! * Lemma 1.7 (Fiedler): `λ₂ ≤ n/(n−1)·min_deg ≤ n/(n−1)·Δ`.
//! * Lemma 1.10 (Mohar/Cheeger): `i(G)²/(2Δ) ≤ λ₂ ≤ 2·i(G)`.
//! * Corollary 1.16 (speed interlacing): `λ₂/s_max ≤ µ₂ ≤ λ₂/s_min`.
//! * The proof of Theorem 1.2 also uses `2Δ/λ₂ ≥ 1`, i.e. `λ₂ ≤ 2Δ`.

use slb_graphs::Graph;

/// Fiedler's upper bound (Lemma 1.7): `λ₂ ≤ n/(n−1) · min_deg(G)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn fiedler_upper(g: &Graph) -> f64 {
    let n = g.node_count();
    assert!(n >= 2, "bound needs at least two nodes");
    n as f64 / (n as f64 - 1.0) * g.min_degree() as f64
}

/// The degree-form corollary of Lemma 1.7: `λ₂ ≤ n/(n−1) · Δ`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn fiedler_upper_max_degree(g: &Graph) -> f64 {
    let n = g.node_count();
    assert!(n >= 2, "bound needs at least two nodes");
    n as f64 / (n as f64 - 1.0) * g.max_degree() as f64
}

/// Mohar's diameter lower bound (Lemma 1.5) rearranged for `λ₂`:
/// `λ₂ ≥ 4/(n · diam(G))`.
///
/// # Panics
///
/// Panics if `diam == 0`.
pub fn mohar_lambda2_lower(n: usize, diam: usize) -> f64 {
    assert!(diam > 0, "diameter must be positive");
    4.0 / (n as f64 * diam as f64)
}

/// Corollary 1.6: `λ₂ ≥ 4/n²` (from `diam(G) ≤ n`).
pub fn corollary_1_6_lower(n: usize) -> f64 {
    4.0 / (n as f64 * n as f64)
}

/// Cheeger-constant sandwich (Lemma 1.10): returns
/// `(i²/(2Δ), 2i)` such that `lower ≤ λ₂ ≤ upper`.
///
/// # Panics
///
/// Panics if `max_degree == 0`.
pub fn cheeger_sandwich(isoperimetric: f64, max_degree: usize) -> (f64, f64) {
    assert!(max_degree > 0, "max degree must be positive");
    (
        isoperimetric * isoperimetric / (2.0 * max_degree as f64),
        2.0 * isoperimetric,
    )
}

/// Corollary 1.16: bounds on `µ₂` of the generalized Laplacian from `λ₂`
/// of the plain Laplacian: `(λ₂/s_max, λ₂/s_min)`.
///
/// # Panics
///
/// Panics if speeds are not positive.
pub fn speed_interlacing(lambda2: f64, s_min: f64, s_max: f64) -> (f64, f64) {
    assert!(s_min > 0.0 && s_max >= s_min, "invalid speed range");
    (lambda2 / s_max, lambda2 / s_min)
}

/// The `λ₂ ≤ 2Δ` fact used in the proof of Theorem 1.2 (via Lemma 1.7 it is
/// implied whenever `n ≥ 2`); returns the bound `2Δ`.
pub fn two_delta_upper(g: &Graph) -> f64 {
    2.0 * g.max_degree() as f64
}

/// Verifies every bound of this module against a numerically computed `λ₂`
/// and returns the violated-bound names (empty when all hold).
///
/// This powers the property tests: random graphs are thrown at the full
/// bound suite at once.
pub fn check_all(
    g: &Graph,
    lambda2: f64,
    diam: Option<usize>,
    isoperimetric: Option<f64>,
) -> Vec<&'static str> {
    let mut violations = Vec::new();
    let tol = 1e-8;
    if lambda2 > fiedler_upper(g) + tol {
        violations.push("fiedler_upper");
    }
    if lambda2 > two_delta_upper(g) + tol {
        violations.push("two_delta_upper");
    }
    if g.is_connected() {
        if let Some(d) = diam {
            if d > 0 && lambda2 < mohar_lambda2_lower(g.node_count(), d) - tol {
                violations.push("mohar_lower");
            }
        }
        if lambda2 < corollary_1_6_lower(g.node_count()) - tol {
            violations.push("corollary_1_6");
        }
        if let Some(i) = isoperimetric {
            let (lo, hi) = cheeger_sandwich(i, g.max_degree());
            if lambda2 < lo - tol {
                violations.push("cheeger_lower");
            }
            if lambda2 > hi + tol {
                violations.push("cheeger_upper");
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian;
    use slb_graphs::{cheeger, generators, traversal};

    #[test]
    fn all_bounds_hold_on_table1_families() {
        let graphs = vec![
            generators::complete(8),
            generators::ring(12),
            generators::path(9),
            generators::mesh(3, 4),
            generators::torus(3, 4),
            generators::hypercube(3),
            generators::star(10),
        ];
        for g in graphs {
            let l2 = laplacian::lambda2(&g).unwrap();
            let diam = traversal::diameter(&g);
            let iso = if g.node_count() <= cheeger::EXACT_LIMIT {
                Some(cheeger::isoperimetric_number(&g).0)
            } else {
                None
            };
            let violations = check_all(&g, l2, diam, iso);
            assert!(
                violations.is_empty(),
                "violations {violations:?} on graph with n={}",
                g.node_count()
            );
        }
    }

    #[test]
    fn fiedler_tight_on_complete_graph() {
        // λ₂(K_n) = n and bound = n/(n−1)·(n−1) = n: tight.
        let g = generators::complete(6);
        let l2 = laplacian::lambda2(&g).unwrap();
        assert!((fiedler_upper(&g) - l2).abs() < 1e-8);
    }

    #[test]
    fn mohar_bound_values() {
        assert!((mohar_lambda2_lower(10, 5) - 4.0 / 50.0).abs() < 1e-15);
        assert!((corollary_1_6_lower(10) - 0.04).abs() < 1e-15);
    }

    #[test]
    fn cheeger_sandwich_values() {
        let (lo, hi) = cheeger_sandwich(1.0, 4);
        assert!((lo - 0.125).abs() < 1e-15);
        assert!((hi - 2.0).abs() < 1e-15);
    }

    #[test]
    fn speed_interlacing_values() {
        let (lo, hi) = speed_interlacing(2.0, 1.0, 4.0);
        assert!((lo - 0.5).abs() < 1e-15);
        assert!((hi - 2.0).abs() < 1e-15);
    }

    #[test]
    fn barbell_cheeger_bounds_are_respected() {
        let g = generators::barbell(5, 0);
        let l2 = laplacian::lambda2(&g).unwrap();
        let (i, _) = cheeger::isoperimetric_number(&g);
        let (lo, hi) = cheeger_sandwich(i, g.max_degree());
        assert!(l2 >= lo - 1e-9, "λ₂={l2} < lower={lo}");
        assert!(l2 <= hi + 1e-9, "λ₂={l2} > upper={hi}");
    }

    #[test]
    #[should_panic(expected = "diameter must be positive")]
    fn zero_diameter_panics() {
        let _ = mohar_lambda2_lower(5, 0);
    }
}
