//! Spectral graph theory toolkit for the selfish load-balancing analysis.
//!
//! The convergence bounds of *Adolphs & Berenbrink (PODC 2012)* are driven
//! by the second-smallest eigenvalue `λ₂` of the network's Laplacian
//! (the *algebraic connectivity*, Fiedler \[16\]) and, for machines with
//! speeds, by the second-smallest eigenvalue `µ₂` of the generalized
//! Laplacian `L·S⁻¹` (Elsässer et al. \[11\]). This crate implements, from
//! scratch:
//!
//! * [`SymmetricMatrix`] — dense symmetric matrices with a cyclic **Jacobi
//!   eigensolver** ([`eigen`]),
//! * [`laplacian`] — Laplacian construction (Definition 1.1), the quadratic
//!   form `xᵀLx = Σ_{(i,j)∈E}(x_i − x_j)²` (Lemma 1.2), sparse application,
//!   and `λ₂`/Fiedler-vector computation with a **Lanczos** path for large
//!   graphs ([`lanczos`]),
//! * [`generalized`] — the generalized dot product `⟨x,y⟩_S = xᵀS⁻¹y`
//!   (Definition 1.11), the symmetrization `S^{-1/2}·L·S^{-1/2}`
//!   (Lemma 1.13) and `µ₂`,
//! * [`bounds`] — Fiedler's bound (Lemma 1.7), Mohar's diameter bound
//!   (Lemma 1.5 / Corollary 1.6), the Cheeger sandwich (Lemma 1.10), and the
//!   speed-interlacing bounds (Lemma 1.15 / Corollary 1.16),
//! * [`closed_form`] — exact `λ₂` for every Table 1 family,
//! * [`sweep`] — Fiedler-vector sweep cuts upper-bounding the Cheeger
//!   constant on graphs too large for exact enumeration.
//!
//! # Example
//!
//! ```
//! use slb_graphs::generators;
//! use slb_spectral::{closed_form, laplacian};
//!
//! let g = generators::hypercube(4);
//! let lambda2 = laplacian::lambda2(&g)?;
//! assert!((lambda2 - 2.0).abs() < 1e-8); // λ₂(Q_d) = 2 exactly
//! assert_eq!(closed_form::lambda2_hypercube(4), 2.0);
//! # Ok::<(), slb_spectral::SpectralError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod closed_form;
pub mod eigen;
pub mod generalized;
pub mod lanczos;
pub mod laplacian;
mod matrix;
pub mod sweep;

pub use eigen::EigenDecomposition;
pub use matrix::SymmetricMatrix;

use std::fmt;

/// Errors produced by the spectral solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectralError {
    /// The Jacobi sweep did not reach the target off-diagonal norm.
    NoConvergence {
        /// Sweeps performed before giving up.
        sweeps: usize,
        /// Remaining off-diagonal Frobenius norm.
        off_norm: f64,
    },
    /// `λ₂` was requested for a graph with fewer than 2 nodes.
    TooSmall {
        /// Node count of the offending graph.
        nodes: usize,
    },
    /// A speed vector had the wrong length or non-positive entries.
    BadSpeeds {
        /// Human-readable description of the violation.
        reason: &'static str,
    },
    /// Lanczos broke down before producing enough Ritz values.
    LanczosBreakdown {
        /// Krylov dimension reached before breakdown.
        dim: usize,
    },
}

impl fmt::Display for SpectralError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectralError::NoConvergence { sweeps, off_norm } => write!(
                f,
                "jacobi eigensolver did not converge after {sweeps} sweeps (off-diagonal norm {off_norm:.3e})"
            ),
            SpectralError::TooSmall { nodes } => {
                write!(f, "spectral quantities need at least 2 nodes, got {nodes}")
            }
            SpectralError::BadSpeeds { reason } => write!(f, "invalid speed vector: {reason}"),
            SpectralError::LanczosBreakdown { dim } => {
                write!(f, "lanczos iteration broke down at krylov dimension {dim}")
            }
        }
    }
}

impl std::error::Error for SpectralError {}
