//! Cyclic Jacobi eigendecomposition of dense symmetric matrices.
//!
//! The Jacobi method repeatedly zeroes off-diagonal elements with Givens
//! rotations; for symmetric matrices it converges quadratically once the
//! off-diagonal mass is small, is unconditionally stable, and produces a
//! fully orthogonal eigenbasis — exactly what Lemma 1.13 of the paper
//! requires when reasoning about the (generalized) Laplacian eigenbasis.

use crate::{SpectralError, SymmetricMatrix};

/// Maximum number of full Jacobi sweeps before reporting
/// [`SpectralError::NoConvergence`].
pub const MAX_SWEEPS: usize = 100;

/// Relative off-diagonal tolerance: convergence when
/// `off_norm ≤ TOLERANCE · frobenius_norm`.
pub const TOLERANCE: f64 = 1e-12;

/// An eigendecomposition `A = V·diag(λ)·Vᵀ` with eigenvalues ascending.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues, sorted ascending (`values[0] = λ₁ ≤ λ₂ ≤ …`).
    pub values: Vec<f64>,
    /// `vectors[k]` is the unit eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

impl EigenDecomposition {
    /// The second-smallest eigenvalue `λ₂`.
    ///
    /// # Panics
    ///
    /// Panics if the decomposition has fewer than two eigenvalues.
    pub fn lambda2(&self) -> f64 {
        assert!(self.values.len() >= 2, "need at least a 2x2 matrix");
        self.values[1]
    }

    /// The eigenvector of `λ₂` (the Fiedler vector when `A` is a graph
    /// Laplacian).
    ///
    /// # Panics
    ///
    /// Panics if the decomposition has fewer than two eigenvalues.
    pub fn fiedler_vector(&self) -> &[f64] {
        assert!(self.values.len() >= 2, "need at least a 2x2 matrix");
        &self.vectors[1]
    }

    /// Largest eigenvalue `λ_n`.
    pub fn lambda_max(&self) -> f64 {
        *self
            .values
            .last()
            .expect("decomposition always has at least one eigenvalue")
    }
}

/// Computes the full eigendecomposition of a symmetric matrix by the cyclic
/// Jacobi method.
///
/// # Errors
///
/// Returns [`SpectralError::NoConvergence`] if [`MAX_SWEEPS`] sweeps do not
/// reduce the off-diagonal norm below [`TOLERANCE`] relative to the
/// Frobenius norm (does not happen for well-scaled Laplacians).
///
/// # Example
///
/// ```
/// use slb_spectral::{eigen, SymmetricMatrix};
/// // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
/// let m = SymmetricMatrix::from_fn(2, |i, j| if i == j { 2.0 } else { 1.0 });
/// let d = eigen::decompose(&m)?;
/// assert!((d.values[0] - 1.0).abs() < 1e-10);
/// assert!((d.values[1] - 3.0).abs() < 1e-10);
/// # Ok::<(), slb_spectral::SpectralError>(())
/// ```
pub fn decompose(a: &SymmetricMatrix) -> Result<EigenDecomposition, SpectralError> {
    let n = a.dim();
    // Work on a mutable copy of the full matrix.
    let mut m: Vec<f64> = (0..n).flat_map(|i| a.row(i).to_vec()).collect();
    // V starts as the identity; columns accumulate the eigenvectors.
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let fro = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let mut sweeps = 0usize;
    loop {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off += 2.0 * m[i * n + j] * m[i * n + j];
            }
        }
        let off = off.sqrt();
        if off <= TOLERANCE * fro {
            break;
        }
        if sweeps >= MAX_SWEEPS {
            return Err(SpectralError::NoConvergence {
                sweeps,
                off_norm: off,
            });
        }
        sweeps += 1;

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= TOLERANCE * fro / (n as f64) {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                // Standard stable rotation computation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // A ← JᵀAJ applied to rows/columns p and q.
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp - s * akq;
                    m[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk - s * aqk;
                    m[q * n + k] = s * apk + c * aqk;
                }
                // V ← VJ.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m[i * n + i]
            .partial_cmp(&m[j * n + j])
            .expect("eigenvalues are finite")
    });
    let values: Vec<f64> = order.iter().map(|&i| m[i * n + i]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row * n + col]).collect())
        .collect();
    Ok(EigenDecomposition { values, vectors })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let mut m = SymmetricMatrix::zeros(3);
        m.set(0, 0, 3.0);
        m.set(1, 1, -1.0);
        m.set(2, 2, 2.0);
        let d = decompose(&m).unwrap();
        assert_eq!(d.values, vec![-1.0, 2.0, 3.0]);
        assert_eq!(d.lambda2(), 2.0);
        assert_eq!(d.lambda_max(), 3.0);
    }

    #[test]
    fn two_by_two_known() {
        let m = SymmetricMatrix::from_fn(2, |i, j| if i == j { 2.0 } else { 1.0 });
        let d = decompose(&m).unwrap();
        assert_close(d.values[0], 1.0, 1e-10);
        assert_close(d.values[1], 3.0, 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = SymmetricMatrix::from_fn(5, |i, j| 1.0 / (1.0 + (i + j) as f64));
        let d = decompose(&m).unwrap();
        for a in 0..5 {
            for b in 0..5 {
                let dot: f64 = d.vectors[a]
                    .iter()
                    .zip(d.vectors[b].iter())
                    .map(|(x, y)| x * y)
                    .sum();
                let expected = if a == b { 1.0 } else { 0.0 };
                assert_close(dot, expected, 1e-9);
            }
        }
    }

    #[test]
    fn reconstruction_satisfies_eigen_equation() {
        let m = SymmetricMatrix::from_fn(6, |i, j| ((i * 7 + j * 3) % 5) as f64);
        let d = decompose(&m).unwrap();
        for k in 0..6 {
            let av = m.matvec(&d.vectors[k]);
            for (ai, vi) in av.iter().zip(d.vectors[k].iter()) {
                assert_close(*ai, d.values[k] * vi, 1e-8);
            }
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let m = SymmetricMatrix::from_fn(8, |i, j| ((i + 2 * j) % 7) as f64 - 3.0);
        let d = decompose(&m).unwrap();
        let sum: f64 = d.values.iter().sum();
        assert_close(sum, m.trace(), 1e-8);
    }

    #[test]
    fn one_by_one_matrix() {
        let mut m = SymmetricMatrix::zeros(1);
        m.set(0, 0, 42.0);
        let d = decompose(&m).unwrap();
        assert_eq!(d.values, vec![42.0]);
        assert_eq!(d.lambda_max(), 42.0);
    }

    #[test]
    #[should_panic(expected = "need at least a 2x2 matrix")]
    fn lambda2_of_singleton_panics() {
        let mut m = SymmetricMatrix::zeros(1);
        m.set(0, 0, 1.0);
        let d = decompose(&m).unwrap();
        let _ = d.lambda2();
    }
}
