//! Graph Laplacians and the algebraic connectivity `λ₂`.
//!
//! Definition 1.1 of the paper: `L(G)` has `L_ii = deg(i)` and
//! `L_ij = −1` for `(i, j) ∈ E`. Lemma 1.2 gives the quadratic form
//! `xᵀLx = Σ_{(i,j)∈E}(x_i − x_j)²` and positive semi-definiteness; Lemma
//! 1.4 identifies the kernel with the connected components. The paper's
//! convergence bounds all run through `λ₂`, computed here either densely
//! (Jacobi) or sparsely (Lanczos, see [`crate::lanczos`]).

use crate::eigen::{self, EigenDecomposition};
use crate::{lanczos, SpectralError, SymmetricMatrix};
use slb_graphs::Graph;

/// Node-count threshold above which [`lambda2`] switches from the dense
/// Jacobi path to sparse Lanczos.
pub const DENSE_LIMIT: usize = 384;

/// Builds the dense Laplacian `L(G)` (Definition 1.1).
///
/// # Example
///
/// ```
/// use slb_graphs::generators;
/// use slb_spectral::laplacian;
/// let l = laplacian::dense(&generators::path(3));
/// assert_eq!(l.get(0, 0), 1.0); // deg(0) = 1
/// assert_eq!(l.get(1, 1), 2.0);
/// assert_eq!(l.get(0, 1), -1.0);
/// assert_eq!(l.get(0, 2), 0.0);
/// ```
pub fn dense(g: &Graph) -> SymmetricMatrix {
    let mut l = SymmetricMatrix::zeros(g.node_count());
    for v in g.nodes() {
        l.set(v.index(), v.index(), g.degree(v) as f64);
    }
    for (a, b) in g.edges() {
        l.set(a.index(), b.index(), -1.0);
    }
    l
}

/// Sparse application `y = L·x` without materializing the matrix:
/// `y_i = deg(i)·x_i − Σ_{j ∈ N(i)} x_j`.
///
/// # Panics
///
/// Panics if `x.len() != n`.
pub fn apply(g: &Graph, x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), g.node_count(), "vector length mismatch");
    let mut y = vec![0.0; x.len()];
    for v in g.nodes() {
        let mut acc = g.degree(v) as f64 * x[v.index()];
        for &u in g.neighbors(v) {
            acc -= x[u.index()];
        }
        y[v.index()] = acc;
    }
    y
}

/// The quadratic form `xᵀLx = Σ_{(i,j)∈E}(x_i − x_j)²` (Lemma 1.2(1)),
/// evaluated edge-wise in O(m).
///
/// # Panics
///
/// Panics if `x.len() != n`.
pub fn quadratic_form(g: &Graph, x: &[f64]) -> f64 {
    assert_eq!(x.len(), g.node_count(), "vector length mismatch");
    g.edges()
        .iter()
        .map(|(a, b)| {
            let d = x[a.index()] - x[b.index()];
            d * d
        })
        .sum()
}

/// Full dense eigendecomposition of `L(G)`.
///
/// # Errors
///
/// Propagates [`SpectralError`] from the Jacobi solver.
pub fn eigendecomposition(g: &Graph) -> Result<EigenDecomposition, SpectralError> {
    eigen::decompose(&dense(g))
}

/// The algebraic connectivity `λ₂(G)`.
///
/// Dense Jacobi for `n ≤` [`DENSE_LIMIT`], Lanczos beyond. For a connected
/// graph `λ₂ > 0`; for a disconnected graph this returns (numerically) 0 in
/// accordance with Lemma 1.4(2).
///
/// # Errors
///
/// Returns [`SpectralError::TooSmall`] for `n < 2` and propagates solver
/// errors.
pub fn lambda2(g: &Graph) -> Result<f64, SpectralError> {
    let n = g.node_count();
    if n < 2 {
        return Err(SpectralError::TooSmall { nodes: n });
    }
    if n <= DENSE_LIMIT {
        Ok(eigendecomposition(g)?.lambda2())
    } else {
        lanczos::lambda2(g)
    }
}

/// The Fiedler vector (eigenvector of `λ₂`), dense path only.
///
/// # Errors
///
/// Returns [`SpectralError::TooSmall`] for `n < 2` and propagates solver
/// errors.
pub fn fiedler_vector(g: &Graph) -> Result<Vec<f64>, SpectralError> {
    let n = g.node_count();
    if n < 2 {
        return Err(SpectralError::TooSmall { nodes: n });
    }
    Ok(eigendecomposition(g)?.fiedler_vector().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;
    use slb_graphs::generators;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = generators::torus(3, 4);
        let l = dense(&g);
        for i in 0..g.node_count() {
            let sum: f64 = l.row(i).iter().sum();
            assert_close(sum, 0.0, 1e-12);
        }
    }

    #[test]
    fn apply_matches_dense() {
        let g = generators::hypercube(3);
        let l = dense(&g);
        let x: Vec<f64> = (0..8).map(|i| (i as f64).sin()).collect();
        let sparse = apply(&g, &x);
        let densev = l.matvec(&x);
        for (a, b) in sparse.iter().zip(densev.iter()) {
            assert_close(*a, *b, 1e-12);
        }
    }

    #[test]
    fn quadratic_form_matches_lemma_1_2() {
        let g = generators::mesh(3, 3);
        let x: Vec<f64> = (0..9).map(|i| (i * i) as f64 * 0.1).collect();
        let by_edges = quadratic_form(&g, &x);
        let by_matrix = dense(&g).quadratic_form(&x);
        assert_close(by_edges, by_matrix, 1e-9);
        assert!(by_edges >= 0.0, "L is PSD (Lemma 1.2(2))");
    }

    #[test]
    fn all_ones_in_kernel() {
        let g = generators::ring(9);
        let ones = vec![1.0; 9];
        for v in apply(&g, &ones) {
            assert_close(v, 0.0, 1e-12);
        }
    }

    #[test]
    fn smallest_eigenvalue_is_zero() {
        let g = generators::complete(7);
        let d = eigendecomposition(&g).unwrap();
        assert_close(d.values[0], 0.0, 1e-9);
    }

    #[test]
    fn kernel_multiplicity_counts_components() {
        // Two disjoint triangles: eigenvalue 0 with multiplicity 2.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let d = eigendecomposition(&g).unwrap();
        let zero_count = d.values.iter().filter(|v| v.abs() < 1e-9).count();
        assert_eq!(zero_count, 2);
        // λ₂ of a disconnected graph is 0 (Lemma 1.4(2)).
        assert_close(lambda2(&g).unwrap(), 0.0, 1e-9);
    }

    #[test]
    fn lambda2_matches_closed_forms() {
        assert_close(
            lambda2(&generators::complete(10)).unwrap(),
            closed_form::lambda2_complete(10),
            1e-8,
        );
        assert_close(
            lambda2(&generators::ring(12)).unwrap(),
            closed_form::lambda2_ring(12),
            1e-8,
        );
        assert_close(
            lambda2(&generators::path(11)).unwrap(),
            closed_form::lambda2_path(11),
            1e-8,
        );
        assert_close(
            lambda2(&generators::hypercube(4)).unwrap(),
            closed_form::lambda2_hypercube(4),
            1e-8,
        );
        assert_close(
            lambda2(&generators::star(8)).unwrap(),
            closed_form::lambda2_star(8),
            1e-8,
        );
        assert_close(
            lambda2(&generators::mesh(4, 5)).unwrap(),
            closed_form::lambda2_mesh(4, 5),
            1e-8,
        );
        assert_close(
            lambda2(&generators::torus(4, 5)).unwrap(),
            closed_form::lambda2_torus(4, 5),
            1e-8,
        );
    }

    #[test]
    fn fiedler_vector_is_orthogonal_to_ones() {
        let g = generators::path(10);
        let f = fiedler_vector(&g).unwrap();
        let dot: f64 = f.iter().sum();
        assert_close(dot, 0.0, 1e-8);
        // Rayleigh quotient of the Fiedler vector equals λ₂.
        let rq = quadratic_form(&g, &f) / f.iter().map(|v| v * v).sum::<f64>();
        assert_close(rq, lambda2(&g).unwrap(), 1e-8);
    }

    #[test]
    fn too_small_rejected() {
        let g = Graph::from_edges(1, []).unwrap();
        assert_eq!(lambda2(&g), Err(SpectralError::TooSmall { nodes: 1 }));
        assert!(fiedler_vector(&g).is_err());
    }

    use slb_graphs::Graph;
}
