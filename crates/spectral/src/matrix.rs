//! Dense symmetric matrices.

use std::fmt;

/// A dense symmetric `n × n` matrix of `f64`, stored row-major in full.
///
/// The storage is deliberately simple: the matrices here are Laplacians of
/// experiment topologies (hundreds to a few thousand nodes), and the
/// eigensolver is the bottleneck, not storage. Symmetry is an invariant
/// maintained by the mutators ([`SymmetricMatrix::set`] writes both
/// triangles).
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymmetricMatrix {
    /// The `n × n` zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zeros(n: usize) -> Self {
        assert!(n > 0, "matrix dimension must be positive");
        SymmetricMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds from a function of `(row, col)`; only the upper triangle
    /// (including the diagonal) is sampled and mirrored, so `f` need not be
    /// symmetric itself.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(n: usize, mut f: F) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                m.data[i * n + j] = v;
                m.data[j * n + i] = v;
            }
        }
        m
    }

    /// Matrix dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        self.data[i * self.n + j]
    }

    /// Sets both `(i, j)` and `(j, i)` to `v`, preserving symmetry.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Adds `v` to both `(i, j)` and `(j, i)` (only once to the diagonal).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.n && j < self.n, "index out of range");
        self.data[i * self.n + j] += v;
        if i != j {
            self.data[j * self.n + i] += v;
        }
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "row out of range");
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "vector length mismatch");
        let mut y = vec![0.0; self.n];
        for (i, out) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *out = acc;
        }
        y
    }

    /// Quadratic form `xᵀ·A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != n`.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let ax = self.matvec(x);
        x.iter().zip(ax.iter()).map(|(a, b)| a * b).sum()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Frobenius norm of the off-diagonal part (the Jacobi convergence
    /// criterion).
    pub fn off_diagonal_norm(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.n {
            for j in 0..self.n {
                if i != j {
                    let v = self.data[i * self.n + j];
                    acc += v * v;
                }
            }
        }
        acc.sqrt()
    }

    /// The trace `Σ_i A_ii`.
    pub fn trace(&self) -> f64 {
        (0..self.n).map(|i| self.data[i * self.n + i]).sum()
    }

    /// Consumes the matrix, returning the raw row-major buffer.
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }
}

impl fmt::Display for SymmetricMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:9.4}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = SymmetricMatrix::zeros(3);
        assert_eq!(z.dim(), 3);
        assert_eq!(z.trace(), 0.0);
        let i = SymmetricMatrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn set_maintains_symmetry() {
        let mut m = SymmetricMatrix::zeros(3);
        m.set(0, 2, 5.0);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(2, 0), 5.0);
        m.add(0, 2, 1.0);
        assert_eq!(m.get(2, 0), 6.0);
        m.add(1, 1, 3.0);
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn from_fn_mirrors_upper_triangle() {
        // f is intentionally asymmetric; the upper triangle wins.
        let m = SymmetricMatrix::from_fn(3, |i, j| (10 * i + j) as f64);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.get(2, 1), 12.0);
    }

    #[test]
    fn matvec_and_quadratic_form() {
        let m = SymmetricMatrix::from_fn(2, |i, j| if i == j { 2.0 } else { 1.0 });
        let y = m.matvec(&[1.0, 3.0]);
        assert_eq!(y, vec![5.0, 7.0]);
        // xᵀAx = 1*5 + 3*7 = 26.
        assert_eq!(m.quadratic_form(&[1.0, 3.0]), 26.0);
    }

    #[test]
    fn norms() {
        let mut m = SymmetricMatrix::zeros(2);
        m.set(0, 1, 3.0);
        m.set(0, 0, 4.0);
        assert!((m.frobenius_norm() - (9.0f64 + 9.0 + 16.0).sqrt()).abs() < 1e-12);
        assert!((m.off_diagonal_norm() - (18.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn display_renders_rows() {
        let m = SymmetricMatrix::identity(2);
        let s = m.to_string();
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "matrix dimension must be positive")]
    fn zero_dim_panics() {
        let _ = SymmetricMatrix::zeros(0);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn matvec_length_mismatch_panics() {
        let m = SymmetricMatrix::identity(2);
        let _ = m.matvec(&[1.0]);
    }
}
