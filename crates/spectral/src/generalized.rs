//! The generalized Laplacian `L·S⁻¹` and the `⟨·,·⟩_S` inner product.
//!
//! Section A.2 of the paper: for machines with speeds `s_i` (collected in
//! the diagonal speed matrix `S`), migration dynamics are governed by the
//! generalized Laplacian `L·S⁻¹` (after Elsässer, Monien & Preis \[11\]).
//! `L·S⁻¹` is not symmetric, but `S^{-1/2}·L·S^{-1/2}` is, shares its
//! spectrum (Lemma 1.13), and its kernel is spanned by `S^{1/2}·1`. The
//! key estimate used in the convergence proof (Lemma 1.14) is
//! `⟨e, L·S⁻¹·e⟩_S ≥ µ₂·⟨e, e⟩_S` for every `e` with `⟨e, s⟩_S = 0`.

use crate::eigen::{self, EigenDecomposition};
use crate::{lanczos, SpectralError, SymmetricMatrix};
use slb_graphs::Graph;

/// Validates a speed vector against a graph: positive, finite, matching
/// length.
///
/// # Errors
///
/// Returns [`SpectralError::BadSpeeds`] describing the violation.
pub fn validate_speeds(g: &Graph, speeds: &[f64]) -> Result<(), SpectralError> {
    if speeds.len() != g.node_count() {
        return Err(SpectralError::BadSpeeds {
            reason: "speed vector length must equal node count",
        });
    }
    if speeds
        .iter()
        .any(|&s| s <= 0.0 || s.is_nan() || !s.is_finite())
    {
        return Err(SpectralError::BadSpeeds {
            reason: "speeds must be positive and finite",
        });
    }
    Ok(())
}

/// The generalized dot product `⟨x, y⟩_S = xᵀ·S⁻¹·y = Σ_i x_i·y_i/s_i`
/// (Definition 1.11).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn sdot(x: &[f64], y: &[f64], speeds: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "vector length mismatch");
    assert_eq!(x.len(), speeds.len(), "speed vector length mismatch");
    x.iter()
        .zip(y.iter())
        .zip(speeds.iter())
        .map(|((a, b), s)| a * b / s)
        .sum()
}

/// The `S`-norm `√⟨x, x⟩_S`.
pub fn snorm(x: &[f64], speeds: &[f64]) -> f64 {
    sdot(x, x, speeds).sqrt()
}

/// Applies the generalized Laplacian: `y = L·S⁻¹·x` (sparse, O(n + m)).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn apply(g: &Graph, speeds: &[f64], x: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), g.node_count(), "vector length mismatch");
    assert_eq!(speeds.len(), g.node_count(), "speed vector length mismatch");
    let scaled: Vec<f64> = x.iter().zip(speeds.iter()).map(|(v, s)| v / s).collect();
    crate::laplacian::apply(g, &scaled)
}

/// The dense symmetrization `S^{-1/2}·L·S^{-1/2}`, which shares the
/// spectrum of `L·S⁻¹` (proof of Lemma 1.13).
///
/// # Errors
///
/// Returns [`SpectralError::BadSpeeds`] for invalid speeds.
pub fn symmetrized_dense(g: &Graph, speeds: &[f64]) -> Result<SymmetricMatrix, SpectralError> {
    validate_speeds(g, speeds)?;
    let l = crate::laplacian::dense(g);
    let inv_sqrt: Vec<f64> = speeds.iter().map(|s| 1.0 / s.sqrt()).collect();
    let n = g.node_count();
    Ok(SymmetricMatrix::from_fn(n, |i, j| {
        l.get(i, j) * inv_sqrt[i] * inv_sqrt[j]
    }))
}

/// Full eigendecomposition of the symmetrized generalized Laplacian.
///
/// The eigenvalues are exactly the eigenvalues `µ_i` of `L·S⁻¹`; the
/// right-eigenvectors of `L·S⁻¹` are recovered as `S^{1/2}·y_k`
/// (Lemma 1.13(3)) but are not needed by the simulator, so the raw
/// orthonormal basis is returned.
///
/// # Errors
///
/// Propagates speed validation and solver errors.
pub fn eigendecomposition(g: &Graph, speeds: &[f64]) -> Result<EigenDecomposition, SpectralError> {
    eigen::decompose(&symmetrized_dense(g, speeds)?)
}

/// The second-smallest eigenvalue `µ₂` of `L·S⁻¹`.
///
/// Dense Jacobi below [`crate::laplacian::DENSE_LIMIT`] nodes, Lanczos
/// beyond.
///
/// # Errors
///
/// Returns [`SpectralError::TooSmall`] for `n < 2`, speed-validation
/// errors, and solver failures.
pub fn mu2(g: &Graph, speeds: &[f64]) -> Result<f64, SpectralError> {
    let n = g.node_count();
    if n < 2 {
        return Err(SpectralError::TooSmall { nodes: n });
    }
    validate_speeds(g, speeds)?;
    if n <= crate::laplacian::DENSE_LIMIT {
        Ok(eigendecomposition(g, speeds)?.lambda2())
    } else {
        lanczos::mu2(g, speeds)
    }
}

/// Verifies Lemma 1.14 numerically for a deviation vector `e` orthogonal to
/// the speed vector under `⟨·,·⟩_S`: returns the pair
/// `(⟨e, L·S⁻¹·e⟩_S, µ₂·⟨e, e⟩_S)`.
///
/// The first component must dominate the second; the test suites assert
/// this on random inputs, and the simulator's convergence diagnostics use
/// it to sanity-check measured potential drops.
///
/// # Errors
///
/// Propagates errors from [`mu2`].
pub fn lemma_1_14_sides(g: &Graph, speeds: &[f64], e: &[f64]) -> Result<(f64, f64), SpectralError> {
    let m2 = mu2(g, speeds)?;
    let lse = apply(g, speeds, e);
    Ok((sdot(e, &lse, speeds), m2 * sdot(e, e, speeds)))
}

/// Projects `x` onto the `⟨·,·⟩_S`-orthogonal complement of the speed
/// vector, i.e. returns `x − (⟨x,s⟩_S/⟨s,s⟩_S)·s`.
///
/// Deviation vectors `e = w − w̄` satisfy `⟨e, s⟩_S = Σe_i = 0` by
/// construction; this helper builds such vectors for tests and experiments.
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn project_off_speed(x: &[f64], speeds: &[f64]) -> Vec<f64> {
    let num = sdot(x, speeds, speeds);
    let den = sdot(speeds, speeds, speeds);
    x.iter()
        .zip(speeds.iter())
        .map(|(xi, si)| xi - num / den * si)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_graphs::generators;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn sdot_is_an_inner_product() {
        let speeds = [1.0, 2.0, 4.0];
        let x = [1.0, -1.0, 2.0];
        let y = [0.5, 3.0, -1.0];
        // Symmetry.
        assert_close(sdot(&x, &y, &speeds), sdot(&y, &x, &speeds), 1e-12);
        // Linearity in first argument.
        let ax: Vec<f64> = x.iter().map(|v| 2.5 * v).collect();
        assert_close(sdot(&ax, &y, &speeds), 2.5 * sdot(&x, &y, &speeds), 1e-12);
        // Positive definiteness.
        assert!(sdot(&x, &x, &speeds) > 0.0);
        assert_close(sdot(&[0.0; 3], &[0.0; 3], &speeds), 0.0, 1e-15);
    }

    #[test]
    fn cauchy_schwarz_holds() {
        let speeds = [1.0, 3.0, 2.0, 5.0];
        let x = [1.0, 2.0, -1.0, 0.5];
        let y = [-2.0, 1.0, 4.0, 1.5];
        let lhs = sdot(&x, &y, &speeds).powi(2);
        let rhs = sdot(&x, &x, &speeds) * sdot(&y, &y, &speeds);
        assert!(lhs <= rhs + 1e-12);
    }

    #[test]
    fn speed_vector_in_kernel() {
        // L·S⁻¹·s = L·1 = 0 (Lemma 1.13(1)).
        let g = generators::torus(3, 4);
        let speeds: Vec<f64> = (0..12).map(|i| 1.0 + (i % 3) as f64).collect();
        let out = apply(&g, &speeds, &speeds);
        for v in out {
            assert_close(v, 0.0, 1e-12);
        }
    }

    #[test]
    fn symmetrized_matches_operator() {
        let g = generators::mesh(3, 3);
        let speeds: Vec<f64> = (0..9).map(|i| 1.0 + i as f64 * 0.5).collect();
        let m = symmetrized_dense(&g, &speeds).unwrap();
        // M·y where y = S^{1/2}x must equal S^{1/2}... more directly:
        // S^{-1/2} L S^{-1/2} y == S^{-1/2} · (L S^{-1} · (S^{1/2} y)).
        let y: Vec<f64> = (0..9).map(|i| (i as f64).cos()).collect();
        let my = m.matvec(&y);
        let sy: Vec<f64> = y
            .iter()
            .zip(speeds.iter())
            .map(|(v, s)| v * s.sqrt())
            .collect();
        let lsy = apply(&g, &speeds, &sy);
        let expected: Vec<f64> = lsy
            .iter()
            .zip(speeds.iter())
            .map(|(v, s)| v / s.sqrt())
            .collect();
        for (a, b) in my.iter().zip(expected.iter()) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn mu2_positive_for_connected() {
        let g = generators::ring(10);
        let speeds: Vec<f64> = (0..10).map(|i| 1.0 + (i % 2) as f64 * 3.0).collect();
        let m = mu2(&g, &speeds).unwrap();
        assert!(m > 0.0);
    }

    #[test]
    fn interlacing_corollary_1_16() {
        let g = generators::complete(8);
        let speeds: Vec<f64> = (0..8).map(|i| 1.0 + i as f64).collect();
        let m = mu2(&g, &speeds).unwrap();
        let l = crate::laplacian::lambda2(&g).unwrap();
        let (smin, smax) = (1.0, 8.0);
        assert!(m >= l / smax - 1e-9);
        assert!(m <= l / smin + 1e-9);
    }

    #[test]
    fn lemma_1_14_numerically() {
        let g = generators::hypercube(4);
        let speeds: Vec<f64> = (0..16).map(|i| 1.0 + (i % 5) as f64 * 0.7).collect();
        let raw: Vec<f64> = (0..16).map(|i| ((i * 31 % 7) as f64) - 3.0).collect();
        let e = project_off_speed(&raw, &speeds);
        assert_close(sdot(&e, &speeds, &speeds), 0.0, 1e-9);
        let (lhs, rhs) = lemma_1_14_sides(&g, &speeds, &e).unwrap();
        assert!(
            lhs >= rhs - 1e-8,
            "Lemma 1.14 violated: ⟨e,LS⁻¹e⟩_S = {lhs} < µ₂⟨e,e⟩_S = {rhs}"
        );
    }

    #[test]
    fn projection_removes_speed_component() {
        let speeds = [2.0, 1.0, 3.0];
        let x = [1.0, 5.0, -2.0];
        let p = project_off_speed(&x, &speeds);
        assert_close(sdot(&p, &speeds, &speeds), 0.0, 1e-12);
        // Note ⟨e,s⟩_S = Σ e_i: projection zeroes the plain sum too.
        assert_close(p.iter().sum::<f64>(), 0.0, 1e-12);
    }

    #[test]
    fn validation_errors() {
        let g = generators::path(3);
        assert!(matches!(
            mu2(&g, &[1.0]),
            Err(SpectralError::BadSpeeds { .. })
        ));
        assert!(matches!(
            symmetrized_dense(&g, &[1.0, 0.0, 1.0]),
            Err(SpectralError::BadSpeeds { .. })
        ));
        let tiny = slb_graphs::Graph::from_edges(1, []).unwrap();
        assert!(matches!(
            mu2(&tiny, &[1.0]),
            Err(SpectralError::TooSmall { .. })
        ));
    }
}
