//! Fiedler-vector sweep cuts: scalable upper bounds on the Cheeger
//! constant.
//!
//! Exact computation of the isoperimetric number (Definition 1.9) is
//! exponential; the classic constructive side of Cheeger's inequality sorts
//! nodes by their Fiedler-vector value and scans prefix cuts. Every prefix
//! is *some* subset, so the best prefix quotient is a valid upper bound on
//! `i(G)` — and by Lemma 1.10 also certifies `λ₂ ≤ 2·i(G) ≤ 2·sweep`.

use crate::{laplacian, SpectralError};
use slb_graphs::{Graph, NodeId};

/// Result of a sweep cut.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCut {
    /// Upper bound on the isoperimetric number `i(G)`.
    pub expansion: f64,
    /// Nodes on the small side of the best prefix cut.
    pub subset: Vec<NodeId>,
    /// Number of boundary edges of that subset.
    pub boundary: usize,
}

/// Computes the best prefix cut along the Fiedler-vector ordering.
///
/// # Errors
///
/// Propagates eigensolver errors; requires a graph with `n ≥ 2`.
///
/// # Example
///
/// ```
/// use slb_graphs::{cheeger, generators};
/// use slb_spectral::sweep;
///
/// let g = generators::barbell(5, 0);
/// let cut = sweep::fiedler_sweep(&g)?;
/// let (exact, _) = cheeger::isoperimetric_number(&g);
/// assert!(cut.expansion >= exact - 1e-12); // upper bound
/// // On the barbell the sweep finds the optimal bridge cut.
/// assert!((cut.expansion - exact).abs() < 1e-9);
/// # Ok::<(), slb_spectral::SpectralError>(())
/// ```
pub fn fiedler_sweep(g: &Graph) -> Result<SweepCut, SpectralError> {
    let fiedler = laplacian::fiedler_vector(g)?;
    Ok(sweep_by_order(g, &fiedler))
}

/// Sweep cut along an arbitrary node scoring; exposed so experiments can
/// sweep by load, speed, or any embedding.
///
/// # Panics
///
/// Panics if `score.len() != n` or `n < 2`.
pub fn sweep_by_order(g: &Graph, score: &[f64]) -> SweepCut {
    let n = g.node_count();
    assert_eq!(score.len(), n, "score length mismatch");
    assert!(n >= 2, "sweep cut needs at least two nodes");
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        score[a]
            .partial_cmp(&score[b])
            .expect("scores must not be NaN")
    });

    let mut in_prefix = vec![false; n];
    let mut boundary = 0usize;
    let mut best = f64::INFINITY;
    let mut best_len = 0usize;
    let mut best_boundary = 0usize;
    for (len, &v) in order.iter().enumerate().take(n - 1) {
        // Adding v flips every edge incident to v across/inside the cut.
        for &u in g.neighbors(NodeId(v)) {
            if in_prefix[u.index()] {
                boundary -= 1;
            } else {
                boundary += 1;
            }
        }
        in_prefix[v] = true;
        let size = len + 1;
        if size > n / 2 {
            break;
        }
        let q = boundary as f64 / size as f64;
        if q < best {
            best = q;
            best_len = size;
            best_boundary = boundary;
        }
    }
    SweepCut {
        expansion: best,
        subset: order[..best_len].iter().map(|&v| NodeId(v)).collect(),
        boundary: best_boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_graphs::{cheeger, generators};

    #[test]
    fn sweep_upper_bounds_exact_cheeger() {
        for g in [
            generators::ring(12),
            generators::path(10),
            generators::complete(8),
            generators::star(9),
            generators::barbell(4, 2),
        ] {
            let cut = fiedler_sweep(&g).unwrap();
            let (exact, _) = cheeger::isoperimetric_number(&g);
            assert!(
                cut.expansion >= exact - 1e-9,
                "sweep {} below exact {exact}",
                cut.expansion
            );
            // Sanity: the reported subset matches the reported quotient.
            let q = cheeger::subset_expansion(&g, &cut.subset);
            assert!((q - cut.expansion).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_finds_ring_cut() {
        // On a ring the Fiedler ordering is monotone along the cycle, so
        // the sweep recovers the optimal arc cut with 2 boundary edges.
        let g = generators::ring(16);
        let cut = fiedler_sweep(&g).unwrap();
        assert_eq!(cut.boundary, 2);
        assert!((cut.expansion - 2.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_finds_barbell_bridge() {
        let g = generators::barbell(6, 0);
        let cut = fiedler_sweep(&g).unwrap();
        assert_eq!(cut.boundary, 1);
        assert_eq!(cut.subset.len(), 6);
    }

    #[test]
    fn sweep_by_custom_order() {
        let g = generators::path(6);
        let score: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let cut = sweep_by_order(&g, &score);
        // Prefix cuts of a path always cut exactly one edge; best size n/2.
        assert_eq!(cut.boundary, 1);
        assert!((cut.expansion - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cheeger_upper_certifies_lambda2() {
        let g = generators::torus(4, 4);
        let cut = fiedler_sweep(&g).unwrap();
        let l2 = crate::laplacian::lambda2(&g).unwrap();
        assert!(l2 <= 2.0 * cut.expansion + 1e-9);
    }

    #[test]
    #[should_panic(expected = "score length mismatch")]
    fn bad_score_length_panics() {
        let g = generators::path(4);
        let _ = sweep_by_order(&g, &[1.0, 2.0]);
    }
}
