//! Sparse `λ₂` via Lanczos iteration with kernel deflation.
//!
//! For graphs beyond the dense threshold, `λ₂` is obtained by running the
//! Lanczos process on the sparse Laplacian operator restricted to the
//! orthogonal complement of the kernel vector `1` (Lemma 1.4: `L·1 = 0`).
//! On that subspace the smallest eigenvalue of `L` *is* `λ₂`, and Lanczos
//! with full reorthogonalization recovers extreme Ritz values rapidly.
//!
//! The same machinery serves the generalized Laplacian: for machines with
//! speeds, the symmetrized operator `S^{-1/2}·L·S^{-1/2}` has kernel vector
//! `S^{1/2}·1` (proof of Lemma 1.13), and its second-smallest eigenvalue is
//! `µ₂` of `L·S⁻¹`.

use crate::SpectralError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slb_graphs::Graph;

/// Maximum Krylov dimension used by [`lambda2`].
pub const MAX_KRYLOV: usize = 220;

/// Convergence tolerance on the change of the smallest Ritz value between
/// Krylov growth steps.
pub const RITZ_TOLERANCE: f64 = 1e-10;

/// Fixed seed for the (deterministic) random start vector.
const START_SEED: u64 = 0x5eed_1a2c_05f1;

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

fn orthogonalize_against(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b.iter()).map(|(a, c)| a * c).sum();
        for (x, y) in v.iter_mut().zip(b.iter()) {
            *x -= dot * y;
        }
    }
}

/// Generic Lanczos: smallest eigenvalue of the symmetric operator `apply`
/// restricted to the complement of the unit-norm `kernel` vector.
///
/// `apply` must implement a symmetric PSD operator of dimension `n`.
///
/// # Errors
///
/// Returns [`SpectralError::LanczosBreakdown`] if the Krylov space
/// degenerates before any Ritz value is available.
pub fn smallest_deflated<F>(n: usize, apply: F, kernel: &[f64]) -> Result<f64, SpectralError>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    assert_eq!(kernel.len(), n, "kernel vector length mismatch");
    let mut rng = StdRng::seed_from_u64(START_SEED);
    let mut q: Vec<Vec<f64>> = Vec::new();
    let mut alpha: Vec<f64> = Vec::new();
    let mut beta: Vec<f64> = Vec::new();

    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    orthogonalize_against(&mut v, std::slice::from_ref(&kernel.to_vec()));
    if normalize(&mut v) == 0.0 {
        return Err(SpectralError::LanczosBreakdown { dim: 0 });
    }
    q.push(v);

    let mut last_ritz = f64::INFINITY;
    let kmax = MAX_KRYLOV.min(n.saturating_sub(1)).max(1);
    for k in 0..kmax {
        let mut w = apply(&q[k]);
        let a: f64 = w.iter().zip(q[k].iter()).map(|(x, y)| x * y).sum();
        alpha.push(a);
        // w ← w − a·q_k − β_{k−1}·q_{k−1}, then full reorthogonalization
        // against the whole basis and the deflated kernel direction.
        for (x, y) in w.iter_mut().zip(q[k].iter()) {
            *x -= a * y;
        }
        if k > 0 {
            let b = beta[k - 1];
            for (x, y) in w.iter_mut().zip(q[k - 1].iter()) {
                *x -= b * y;
            }
        }
        orthogonalize_against(&mut w, std::slice::from_ref(&kernel.to_vec()));
        orthogonalize_against(&mut w, &q);

        // Smallest Ritz value of the tridiagonal T_k via Sturm bisection.
        let dim = alpha.len();
        let ritz = tridiagonal_smallest(&alpha[..dim], &beta[..dim.saturating_sub(1)]);
        if (last_ritz - ritz).abs() <= RITZ_TOLERANCE * ritz.abs().max(1.0) && dim >= 8 {
            return Ok(ritz);
        }
        last_ritz = ritz;

        let b = normalize(&mut w);
        if b <= 1e-13 {
            // Krylov space exhausted: the Ritz value is exact.
            return Ok(ritz);
        }
        beta.push(b);
        q.push(w);
    }
    Ok(last_ritz)
}

/// Number of eigenvalues of the symmetric tridiagonal matrix
/// `T = tridiag(beta, alpha, beta)` strictly below `x`, via the Sturm
/// sequence of the `LDLᵀ` pivots.
fn sturm_count_below(alpha: &[f64], beta: &[f64], x: f64) -> usize {
    let mut count = 0usize;
    let mut d = 1.0f64;
    for (i, &a) in alpha.iter().enumerate() {
        let b2 = if i == 0 {
            0.0
        } else {
            beta[i - 1] * beta[i - 1]
        };
        d = a - x - b2 / d;
        if d == 0.0 {
            d = 1e-300;
        }
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Smallest eigenvalue of a symmetric tridiagonal matrix by bisection with
/// Sturm counts; `alpha` is the diagonal (length `k`), `beta` the
/// off-diagonal (length `k − 1`). O(k) per bisection step.
pub(crate) fn tridiagonal_smallest(alpha: &[f64], beta: &[f64]) -> f64 {
    debug_assert_eq!(beta.len(), alpha.len().saturating_sub(1));
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, &a) in alpha.iter().enumerate() {
        let mut radius = 0.0;
        if i > 0 {
            radius += beta[i - 1].abs();
        }
        if i < beta.len() {
            radius += beta[i].abs();
        }
        lo = lo.min(a - radius);
        hi = hi.max(a + radius);
    }
    if !lo.is_finite() || !hi.is_finite() {
        return f64::NAN;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sturm_count_below(alpha, beta, mid) >= 1 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo <= 1e-14 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Conjugate-gradient solve of `A·y = b` on the orthogonal complement of
/// `kernel` (where the PSD operator `A` is positive definite). Iterates
/// until the residual drops below `tol·‖b‖` or `max_iter` steps.
fn cg_solve_deflated<F>(
    n: usize,
    apply: &F,
    b: &[f64],
    kernel: &[f64],
    tol: f64,
    max_iter: usize,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let proj = |v: &mut Vec<f64>| {
        let dot: f64 = v.iter().zip(kernel.iter()).map(|(a, k)| a * k).sum();
        for (x, k) in v.iter_mut().zip(kernel.iter()) {
            *x -= dot * k;
        }
    };
    let mut x = vec![0.0f64; n];
    let mut r = b.to_vec();
    proj(&mut r);
    let bnorm = r.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    let mut p = r.clone();
    let mut rs_old: f64 = r.iter().map(|v| v * v).sum();
    for _ in 0..max_iter {
        if rs_old.sqrt() <= tol * bnorm {
            break;
        }
        let mut ap = apply(&p);
        proj(&mut ap);
        let p_ap: f64 = p.iter().zip(ap.iter()).map(|(a, c)| a * c).sum();
        if p_ap <= 0.0 {
            break; // lost positive definiteness (e.g. hidden kernel)
        }
        let alpha = rs_old / p_ap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rs_new / rs_old;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs_old = rs_new;
    }
    proj(&mut x);
    x
}

/// Largest eigenvalue of a symmetric tridiagonal matrix (negate-and-reuse
/// of [`tridiagonal_smallest`]).
fn tridiagonal_largest(alpha: &[f64], beta: &[f64]) -> f64 {
    let neg: Vec<f64> = alpha.iter().map(|a| -a).collect();
    -tridiagonal_smallest(&neg, beta)
}

/// Smallest eigenvalue of the deflated operator by **shift-invert Lanczos**:
/// the Lanczos process runs on `A⁻¹` (each application is a deflated CG
/// solve), whose *largest* eigenvalue `1/λ_min` is an extreme, well
/// separated Ritz target.
///
/// Plain Lanczos on `A` converges slowly when the small eigenvalues cluster
/// (ring/path/torus Laplacians have `λ₂/λ₃` close to 1); on `A⁻¹` the same
/// cluster sits at the *top* of the spectrum where Lanczos' Chebyshev
/// acceleration applies, giving machine precision in a few dozen
/// iterations.
///
/// # Errors
///
/// Returns [`SpectralError::LanczosBreakdown`] if the start vector
/// degenerates.
pub fn smallest_deflated_refined<F>(
    n: usize,
    apply: F,
    kernel: &[f64],
) -> Result<f64, SpectralError>
where
    F: Fn(&[f64]) -> Vec<f64>,
{
    let mut rng = StdRng::seed_from_u64(START_SEED ^ 0x9e37_79b9_7f4a_7c15);
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    orthogonalize_against(&mut v, std::slice::from_ref(&kernel.to_vec()));
    if normalize(&mut v) == 0.0 {
        return Err(SpectralError::LanczosBreakdown { dim: 0 });
    }

    let mut q: Vec<Vec<f64>> = vec![v];
    let mut alpha: Vec<f64> = Vec::new();
    let mut beta: Vec<f64> = Vec::new();
    let mut last = f64::INFINITY;
    let kmax = 90usize.min(n.saturating_sub(1)).max(1);
    for k in 0..kmax {
        // w = A⁻¹ q_k by deflated CG.
        let mut w = cg_solve_deflated(n, &apply, &q[k], kernel, 1e-13, 20 * n + 200);
        let a: f64 = w.iter().zip(q[k].iter()).map(|(x, y)| x * y).sum();
        alpha.push(a);
        for (x, y) in w.iter_mut().zip(q[k].iter()) {
            *x -= a * y;
        }
        if k > 0 {
            let b = beta[k - 1];
            for (x, y) in w.iter_mut().zip(q[k - 1].iter()) {
                *x -= b * y;
            }
        }
        orthogonalize_against(&mut w, std::slice::from_ref(&kernel.to_vec()));
        orthogonalize_against(&mut w, &q);

        let theta = tridiagonal_largest(&alpha, &beta);
        let lambda = if theta.abs() > 1e-300 {
            1.0 / theta
        } else {
            0.0
        };
        let converged =
            (last - lambda).abs() <= 1e-13 * lambda.abs().max(1e-12) && alpha.len() >= 6;
        last = lambda;
        if converged {
            return Ok(lambda);
        }
        let b = normalize(&mut w);
        if b <= 1e-13 {
            return Ok(lambda); // Krylov space exhausted: exact.
        }
        beta.push(b);
        q.push(w);
    }
    Ok(last)
}

/// `λ₂(G)` via Lanczos + inverse iteration on the sparse Laplacian with the
/// all-ones kernel deflated.
///
/// # Errors
///
/// Returns [`SpectralError::TooSmall`] for `n < 2` and propagates Lanczos
/// breakdowns.
pub fn lambda2(g: &Graph) -> Result<f64, SpectralError> {
    let n = g.node_count();
    if n < 2 {
        return Err(SpectralError::TooSmall { nodes: n });
    }
    let kernel: Vec<f64> = vec![1.0 / (n as f64).sqrt(); n];
    smallest_deflated_refined(n, |x| crate::laplacian::apply(g, x), &kernel)
}

/// `µ₂` of the generalized Laplacian `L·S⁻¹` via Lanczos on the symmetrized
/// operator `S^{-1/2}·L·S^{-1/2}` with kernel `S^{1/2}·1` deflated.
///
/// # Errors
///
/// Returns [`SpectralError::BadSpeeds`] for invalid speeds,
/// [`SpectralError::TooSmall`] for `n < 2`, and propagates breakdowns.
pub fn mu2(g: &Graph, speeds: &[f64]) -> Result<f64, SpectralError> {
    let n = g.node_count();
    if n < 2 {
        return Err(SpectralError::TooSmall { nodes: n });
    }
    if speeds.len() != n {
        return Err(SpectralError::BadSpeeds {
            reason: "speed vector length must equal node count",
        });
    }
    if speeds
        .iter()
        .any(|&s| s <= 0.0 || s.is_nan() || !s.is_finite())
    {
        return Err(SpectralError::BadSpeeds {
            reason: "speeds must be positive and finite",
        });
    }
    let sqrt_s: Vec<f64> = speeds.iter().map(|s| s.sqrt()).collect();
    let mut kernel: Vec<f64> = sqrt_s.clone();
    normalize(&mut kernel);
    let apply = |x: &[f64]| {
        let scaled: Vec<f64> = x.iter().zip(sqrt_s.iter()).map(|(v, s)| v / s).collect();
        let lx = crate::laplacian::apply(g, &scaled);
        lx.iter().zip(sqrt_s.iter()).map(|(v, s)| v / s).collect()
    };
    smallest_deflated_refined(n, apply, &kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed_form;
    use slb_graphs::generators;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn tridiagonal_smallest_known_values() {
        // diag(3, 1, 2) → smallest is 1.
        assert_close(
            tridiagonal_smallest(&[3.0, 1.0, 2.0], &[0.0, 0.0]),
            1.0,
            1e-12,
        );
        // [[2,1],[1,2]] → eigenvalues {1, 3}.
        assert_close(tridiagonal_smallest(&[2.0, 2.0], &[1.0]), 1.0, 1e-10);
        // Laplacian of P_3 as tridiagonal: diag(1,2,1), off(-1,-1) → 0.
        assert_close(
            tridiagonal_smallest(&[1.0, 2.0, 1.0], &[-1.0, -1.0]),
            0.0,
            1e-10,
        );
        // 1x1 matrix.
        assert_close(tridiagonal_smallest(&[5.0], &[]), 5.0, 1e-12);
    }

    #[test]
    fn sturm_counts_are_monotone() {
        let alpha = [1.0, 2.0, 3.0, 4.0];
        let beta = [0.5, 0.5, 0.5];
        let mut last = 0;
        for x in [-1.0, 0.5, 1.5, 2.5, 3.5, 5.0] {
            let c = sturm_count_below(&alpha, &beta, x);
            assert!(c >= last, "count must be nondecreasing in x");
            last = c;
        }
        assert_eq!(sturm_count_below(&alpha, &beta, 10.0), 4);
        assert_eq!(sturm_count_below(&alpha, &beta, -10.0), 0);
    }

    #[test]
    fn lanczos_matches_closed_form_small() {
        assert_close(
            lambda2(&generators::ring(16)).unwrap(),
            closed_form::lambda2_ring(16),
            1e-7,
        );
        assert_close(
            lambda2(&generators::hypercube(4)).unwrap(),
            closed_form::lambda2_hypercube(4),
            1e-7,
        );
    }

    #[test]
    fn lanczos_matches_closed_form_large() {
        // Beyond the dense limit: 1024-node hypercube and a 600-node ring.
        assert_close(lambda2(&generators::hypercube(10)).unwrap(), 2.0, 1e-6);
        assert_close(
            lambda2(&generators::ring(600)).unwrap(),
            closed_form::lambda2_ring(600),
            1e-8,
        );
        assert_close(
            lambda2(&generators::torus(24, 25)).unwrap(),
            closed_form::lambda2_torus(24, 25),
            1e-7,
        );
    }

    #[test]
    fn plain_lanczos_matches_on_well_separated_spectra() {
        // The raw Lanczos path (no inverse-iteration refinement) is exact
        // on spectra without clustering near λ₂.
        let g = generators::hypercube(6);
        let n = g.node_count();
        let kernel = vec![1.0 / (n as f64).sqrt(); n];
        let raw = smallest_deflated(n, |x| crate::laplacian::apply(&g, x), &kernel).unwrap();
        assert_close(raw, 2.0, 1e-7);
    }

    #[test]
    fn refined_handles_path_clustering() {
        // Path Laplacians have λ₂ ≈ λ₃/4 → the hard case for plain Lanczos.
        let g = generators::path(500);
        assert_close(lambda2(&g).unwrap(), closed_form::lambda2_path(500), 1e-10);
    }

    #[test]
    fn lanczos_matches_dense_on_irregular_graph() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let g = generators::gnp_connected(60, 0.1, &mut rng);
        let dense = crate::laplacian::eigendecomposition(&g).unwrap().lambda2();
        let sparse = lambda2(&g).unwrap();
        assert_close(dense, sparse, 1e-6);
    }

    #[test]
    fn mu2_equals_lambda2_for_unit_speeds() {
        let g = generators::mesh(5, 5);
        let speeds = vec![1.0; 25];
        let m = mu2(&g, &speeds).unwrap();
        let l = crate::laplacian::lambda2(&g).unwrap();
        assert_close(m, l, 1e-7);
    }

    #[test]
    fn mu2_scales_inversely_with_uniform_speeds() {
        // With S = s·I, L·S⁻¹ = L/s, so µ₂ = λ₂/s.
        let g = generators::ring(20);
        let s = 4.0;
        let speeds = vec![s; 20];
        let m = mu2(&g, &speeds).unwrap();
        let l = crate::laplacian::lambda2(&g).unwrap();
        assert_close(m, l / s, 1e-8);
    }

    #[test]
    fn mu2_respects_corollary_1_16() {
        // λ₂/s_max ≤ µ₂ ≤ λ₂/s_min.
        let g = generators::hypercube(5);
        let speeds: Vec<f64> = (0..32).map(|i| 1.0 + (i % 4) as f64).collect();
        let m = mu2(&g, &speeds).unwrap();
        let l = crate::laplacian::lambda2(&g).unwrap();
        assert!(m >= l / 4.0 - 1e-8, "µ₂={m} < λ₂/s_max={}", l / 4.0);
        assert!(m <= l / 1.0 + 1e-8, "µ₂={m} > λ₂/s_min={l}");
    }

    #[test]
    fn bad_speeds_rejected() {
        let g = generators::path(4);
        assert!(matches!(
            mu2(&g, &[1.0, 1.0]),
            Err(SpectralError::BadSpeeds { .. })
        ));
        assert!(matches!(
            mu2(&g, &[1.0, -2.0, 1.0, 1.0]),
            Err(SpectralError::BadSpeeds { .. })
        ));
        assert!(matches!(
            mu2(&g, &[1.0, f64::NAN, 1.0, 1.0]),
            Err(SpectralError::BadSpeeds { .. })
        ));
    }

    #[test]
    fn too_small_rejected() {
        let g = slb_graphs::Graph::from_edges(1, []).unwrap();
        assert!(matches!(lambda2(&g), Err(SpectralError::TooSmall { .. })));
    }
}
