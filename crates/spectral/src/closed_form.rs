//! Exact algebraic connectivity for the named graph families of Table 1.
//!
//! These closed forms serve two purposes: they validate the numeric
//! eigensolvers in the test suites, and they let the experiment harness
//! evaluate the paper's bounds without paying an eigensolve for every
//! topology size in a sweep.
//!
//! Derivations are classical (see Fan Chung's *Spectral Graph Theory* \[9\]):
//! the spectra of `K_n`, `C_n`, `P_n`, `S_n`, `K_{a,b}`, and `Q_d` are
//! explicit, and the Laplacian spectrum of a Cartesian product `G □ H` is
//! the pairwise sum `{λ_i(G) + λ_j(H)}` — which covers the mesh
//! (`P_r □ P_c`) and torus (`C_r □ C_c`).

use slb_graphs::generators::Family;
use std::f64::consts::PI;

/// `λ₂(K_n) = n`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn lambda2_complete(n: usize) -> f64 {
    assert!(n >= 2, "need at least two nodes");
    n as f64
}

/// `λ₂(C_n) = 2·(1 − cos(2π/n))`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn lambda2_ring(n: usize) -> f64 {
    assert!(n >= 3, "ring needs at least three nodes");
    2.0 * (1.0 - (2.0 * PI / n as f64).cos())
}

/// `λ₂(P_n) = 2·(1 − cos(π/n)) = 4·sin²(π/2n)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn lambda2_path(n: usize) -> f64 {
    assert!(n >= 2, "path needs at least two nodes");
    2.0 * (1.0 - (PI / n as f64).cos())
}

/// `λ₂(Q_d) = 2` for every dimension `d ≥ 1`.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn lambda2_hypercube(d: u32) -> f64 {
    assert!(d >= 1, "hypercube needs dimension at least 1");
    2.0
}

/// `λ₂(S_n) = 1` for `n ≥ 3` (spectrum `{0, 1^(n−2), n}`); the degenerate
/// `S_2 = K_2` has spectrum `{0, 2}`, so `λ₂ = 2`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn lambda2_star(n: usize) -> f64 {
    assert!(n >= 2, "star needs at least two nodes");
    if n == 2 {
        2.0
    } else {
        1.0
    }
}

/// `λ₂(K_{a,b})` from the spectrum `{0, a^(b−1), b^(a−1), a+b}`: the
/// second-smallest is `min(a, b)` whenever the corresponding multiplicity
/// is positive, i.e. unless `a = b = 1` (a single edge, `λ₂ = 2`).
///
/// # Panics
///
/// Panics if `a == 0 || b == 0`.
pub fn lambda2_complete_bipartite(a: usize, b: usize) -> f64 {
    assert!(a > 0 && b > 0, "both sides must be nonempty");
    if a == 1 && b == 1 {
        2.0
    } else {
        a.min(b) as f64
    }
}

/// `λ₂(mesh r×c) = min(λ₂(P_r), λ₂(P_c))` by the Cartesian product rule
/// (degenerating to the path value when one dimension is 1).
///
/// # Panics
///
/// Panics if `rows·cols < 2` or either dimension is 0.
pub fn lambda2_mesh(rows: usize, cols: usize) -> f64 {
    assert!(rows > 0 && cols > 0, "dimensions must be positive");
    assert!(rows * cols >= 2, "mesh needs at least two nodes");
    match (rows, cols) {
        (1, c) => lambda2_path(c),
        (r, 1) => lambda2_path(r),
        (r, c) => lambda2_path(r).min(lambda2_path(c)),
    }
}

/// `λ₂(torus r×c) = min(λ₂(C_r), λ₂(C_c))`.
///
/// # Panics
///
/// Panics if either dimension is `< 3`.
pub fn lambda2_torus(rows: usize, cols: usize) -> f64 {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    lambda2_ring(rows).min(lambda2_ring(cols))
}

/// Closed-form `λ₂` for a [`Family`] value, when one is known.
pub fn lambda2_family(family: Family) -> f64 {
    match family {
        Family::Complete { n } => lambda2_complete(n),
        Family::Ring { n } => lambda2_ring(n),
        Family::Path { n } => lambda2_path(n),
        Family::Mesh { rows, cols } => lambda2_mesh(rows, cols),
        Family::Torus { rows, cols } => lambda2_torus(rows, cols),
        Family::Hypercube { d } => lambda2_hypercube(d),
        Family::Star { n } => lambda2_star(n),
    }
}

/// Asymptotic scaling exponent `k` such that `λ₂ = Θ(n^{-k})` for the
/// family (0 for complete — where `λ₂` actually grows — and hypercube;
/// 2 for ring/path and square mesh/torus).
///
/// Used by the Table 1 harness to annotate fitted convergence exponents.
pub fn lambda2_decay_exponent(family: Family) -> f64 {
    match family {
        Family::Complete { .. } => 0.0,
        Family::Ring { .. } | Family::Path { .. } => 2.0,
        // For square meshes/tori with n = r·c nodes, λ₂ ~ c/n.
        Family::Mesh { .. } | Family::Torus { .. } => 1.0,
        Family::Hypercube { .. } => 0.0,
        Family::Star { .. } => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian;
    use slb_graphs::generators;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn closed_forms_match_numerics() {
        assert_close(
            lambda2_complete(9),
            laplacian::lambda2(&generators::complete(9)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_ring(15),
            laplacian::lambda2(&generators::ring(15)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_path(14),
            laplacian::lambda2(&generators::path(14)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_star(11),
            laplacian::lambda2(&generators::star(11)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_complete_bipartite(3, 5),
            laplacian::lambda2(&generators::complete_bipartite(3, 5)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_complete_bipartite(1, 1),
            laplacian::lambda2(&generators::complete_bipartite(1, 1)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_star(2),
            laplacian::lambda2(&generators::star(2)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_mesh(3, 6),
            laplacian::lambda2(&generators::mesh(3, 6)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_mesh(1, 7),
            laplacian::lambda2(&generators::mesh(1, 7)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_torus(3, 7),
            laplacian::lambda2(&generators::torus(3, 7)).unwrap(),
            1e-8,
        );
        assert_close(
            lambda2_hypercube(3),
            laplacian::lambda2(&generators::hypercube(3)).unwrap(),
            1e-8,
        );
    }

    #[test]
    fn family_dispatch() {
        use Family::*;
        for (fam, expected) in [
            (Complete { n: 6 }, 6.0),
            (Hypercube { d: 7 }, 2.0),
            (Star { n: 9 }, 1.0),
        ] {
            assert_close(lambda2_family(fam), expected, 1e-12);
        }
        assert_close(
            lambda2_family(Family::Torus { rows: 4, cols: 9 }),
            lambda2_ring(9),
            1e-12,
        );
        assert_close(
            lambda2_family(Family::Mesh { rows: 2, cols: 9 }),
            lambda2_path(9),
            1e-12,
        );
        assert_close(
            lambda2_family(Family::Ring { n: 10 }),
            lambda2_ring(10),
            1e-12,
        );
        assert_close(
            lambda2_family(Family::Path { n: 10 }),
            lambda2_path(10),
            1e-12,
        );
    }

    #[test]
    fn decay_exponents() {
        assert_eq!(lambda2_decay_exponent(Family::Complete { n: 8 }), 0.0);
        assert_eq!(lambda2_decay_exponent(Family::Ring { n: 8 }), 2.0);
        assert_eq!(lambda2_decay_exponent(Family::Path { n: 8 }), 2.0);
        assert_eq!(
            lambda2_decay_exponent(Family::Torus { rows: 3, cols: 3 }),
            1.0
        );
        assert_eq!(lambda2_decay_exponent(Family::Hypercube { d: 3 }), 0.0);
    }

    #[test]
    fn small_angle_asymptotics() {
        // λ₂(C_n) ≈ (2π/n)² for large n.
        let n = 1000;
        let exact = lambda2_ring(n);
        let approx = (2.0 * PI / n as f64).powi(2);
        assert!((exact - approx).abs() / approx < 1e-3);
    }

    #[test]
    #[should_panic(expected = "ring needs at least three nodes")]
    fn ring_too_small() {
        let _ = lambda2_ring(2);
    }

    #[test]
    fn product_spectrum_is_pairwise_sum() {
        // λ(G □ H) = {λ_i(G) + λ_j(H)} — the identity behind the mesh and
        // torus closed forms, checked on an irregular product.
        use slb_graphs::product;
        let g = generators::star(4);
        let h = generators::path(3);
        let p = product::cartesian(&g, &h);
        let mut expected: Vec<f64> = Vec::new();
        let dg = crate::laplacian::eigendecomposition(&g).unwrap().values;
        let dh = crate::laplacian::eigendecomposition(&h).unwrap().values;
        for a in &dg {
            for b in &dh {
                expected.push(a + b);
            }
        }
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let actual = crate::laplacian::eigendecomposition(&p).unwrap().values;
        assert_eq!(actual.len(), expected.len());
        for (a, e) in actual.iter().zip(expected.iter()) {
            assert_close(*a, *e, 1e-7);
        }
    }
}
