//! Machine-speed distributions.
//!
//! Speeds drive two distinct knobs in the paper's bounds: `s_max` appears
//! polynomially in every theorem, and the *granularity* `ε` (speeds as
//! integer multiples of `ε`, §3.2) appears as `1/ε²` in Theorem 1.2. The
//! generators therefore emit [`SpeedVector`]s with the granularity declared
//! whenever it exists, so the theory calculator can evaluate the exact-NE
//! bound.

use rand::Rng;
use slb_core::model::SpeedVector;

/// A machine-speed distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpeedDistribution {
    /// All speeds 1 (uniform machines).
    Uniform,
    /// Integer speeds drawn uniformly from `1..=max` (granularity 1).
    IntegerUniform {
        /// Largest speed.
        max: u64,
    },
    /// Two machine classes: speed 1 with probability `1 − fast_fraction`,
    /// else integer speed `fast` (granularity 1).
    TwoClass {
        /// Speed of the fast class (≥ 1).
        fast: u64,
        /// Probability of a machine being fast.
        fast_fraction: f64,
    },
    /// A deterministic ramp: node `i` gets speed `1 + i·(max − 1)/(n − 1)`
    /// rounded to the granularity `ε` (so `s_max ≈ max`).
    Ramp {
        /// Largest speed.
        max: f64,
        /// Granularity to round to (in `(0, 1]`).
        granularity: f64,
    },
    /// Deterministic alternating classes: node `i` gets integer speed
    /// `1 + (i mod classes)` (granularity 1). `classes = 1` degenerates to
    /// uniform machines; draws no randomness, which keeps sweep cells that
    /// use it reproducible under any RNG-consumption order.
    Alternating {
        /// Number of speed classes (≥ 1); `s_max = classes`.
        classes: u64,
    },
}

impl SpeedDistribution {
    /// Samples a speed vector for `n` machines.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (`max == 0`, fractions outside
    /// `[0, 1]`, granularity outside `(0, 1]`, `n == 0`).
    pub fn sample<R: Rng + ?Sized>(self, n: usize, rng: &mut R) -> SpeedVector {
        assert!(n > 0, "need at least one machine");
        match self {
            SpeedDistribution::Uniform => SpeedVector::uniform(n),
            SpeedDistribution::IntegerUniform { max } => {
                assert!(max >= 1, "max speed must be at least 1");
                let mut speeds: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=max)).collect();
                // Guarantee s_min = 1 (the paper's normalization).
                speeds[0] = 1;
                SpeedVector::integer(speeds).expect("integer speeds are valid")
            }
            SpeedDistribution::TwoClass {
                fast,
                fast_fraction,
            } => {
                assert!(fast >= 1, "fast speed must be at least 1");
                assert!(
                    (0.0..=1.0).contains(&fast_fraction),
                    "fraction must lie in [0, 1]"
                );
                let mut speeds: Vec<u64> = (0..n)
                    .map(|_| if rng.gen_bool(fast_fraction) { fast } else { 1 })
                    .collect();
                speeds[0] = 1;
                SpeedVector::integer(speeds).expect("integer speeds are valid")
            }
            SpeedDistribution::Ramp { max, granularity } => {
                assert!(max >= 1.0, "max speed must be at least 1");
                assert!(
                    granularity > 0.0 && granularity <= 1.0,
                    "granularity must lie in (0, 1]"
                );
                let speeds: Vec<f64> = (0..n)
                    .map(|i| {
                        let t = if n == 1 {
                            0.0
                        } else {
                            i as f64 / (n - 1) as f64
                        };
                        let raw = 1.0 + t * (max - 1.0);
                        // Round to the granularity grid, staying ≥ 1.
                        ((raw / granularity).round() * granularity).max(1.0)
                    })
                    .collect();
                SpeedVector::with_granularity(speeds, granularity)
                    .expect("grid-rounded speeds respect the granularity")
            }
            SpeedDistribution::Alternating { classes } => {
                assert!(classes >= 1, "alternating needs at least one class");
                SpeedVector::integer((0..n as u64).map(|i| 1 + i % classes).collect())
                    .expect("integer speeds are valid")
            }
        }
    }

    /// A short label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            SpeedDistribution::Uniform => "uniform",
            SpeedDistribution::IntegerUniform { .. } => "integer-uniform",
            SpeedDistribution::TwoClass { .. } => "two-class",
            SpeedDistribution::Ramp { .. } => "ramp",
            SpeedDistribution::Alternating { .. } => "alternating",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_speeds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = SpeedDistribution::Uniform.sample(5, &mut rng);
        assert!(s.is_uniform());
        assert_eq!(s.granularity(), Some(1.0));
    }

    #[test]
    fn integer_uniform_in_range_with_smin_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = SpeedDistribution::IntegerUniform { max: 5 }.sample(100, &mut rng);
        assert_eq!(s.min(), 1.0);
        assert!(s.max() <= 5.0);
        assert!(s.max() > 1.0, "with 100 draws some speed exceeds 1 a.s.");
        assert_eq!(s.granularity(), Some(1.0));
        for i in 0..100 {
            let v = s.speed(i);
            assert_eq!(v, v.round(), "integer speeds only");
        }
    }

    #[test]
    fn two_class_mixture() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = SpeedDistribution::TwoClass {
            fast: 8,
            fast_fraction: 0.25,
        }
        .sample(400, &mut rng);
        let fast = (0..400).filter(|&i| s.speed(i) == 8.0).count();
        assert!((60..140).contains(&fast), "got {fast} fast of ~100");
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 8.0);
    }

    #[test]
    fn ramp_is_monotone_and_on_grid() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = SpeedDistribution::Ramp {
            max: 4.0,
            granularity: 0.5,
        }
        .sample(7, &mut rng);
        assert_eq!(s.min(), 1.0);
        assert!((s.max() - 4.0).abs() < 0.5 + 1e-9);
        assert_eq!(s.granularity(), Some(0.5));
        for i in 1..7 {
            assert!(s.speed(i) >= s.speed(i - 1), "ramp must be nondecreasing");
        }
    }

    #[test]
    fn single_machine_ramp() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = SpeedDistribution::Ramp {
            max: 9.0,
            granularity: 1.0,
        }
        .sample(1, &mut rng);
        assert_eq!(s.speed(0), 1.0);
    }

    #[test]
    fn alternating_is_deterministic_and_cyclic() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = SpeedDistribution::Alternating { classes: 3 }.sample(7, &mut rng);
        let got: Vec<f64> = (0..7).map(|i| s.speed(i)).collect();
        assert_eq!(got, vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0]);
        assert_eq!(s.granularity(), Some(1.0));
        // One class degenerates to uniform machines.
        let u = SpeedDistribution::Alternating { classes: 1 }.sample(4, &mut rng);
        assert!(u.is_uniform());
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            SpeedDistribution::Uniform.label(),
            SpeedDistribution::Alternating { classes: 2 }.label(),
            SpeedDistribution::IntegerUniform { max: 2 }.label(),
            SpeedDistribution::TwoClass {
                fast: 2,
                fast_fraction: 0.5,
            }
            .label(),
            SpeedDistribution::Ramp {
                max: 2.0,
                granularity: 1.0,
            }
            .label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    #[should_panic(expected = "max speed must be at least 1")]
    fn zero_max_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = SpeedDistribution::IntegerUniform { max: 0 }.sample(2, &mut rng);
    }
}
