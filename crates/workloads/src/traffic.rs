//! Synthetic traffic specifications for the `slb serve` harness.
//!
//! A [`TrafficSpec`] combines up to two job sources:
//!
//! * an **open loop** — jobs arrive at a fixed offered rate regardless of
//!   how the system is doing (Poisson counts per unit time slot, the
//!   classic M/·/· arrival side), and
//! * a **closed loop** — a bounded population of users, each submitting
//!   one job, waiting for its completion, thinking for a fixed time, and
//!   submitting again (bounded concurrency: at most `users` closed-loop
//!   jobs are ever outstanding).
//!
//! The grammar mirrors the sweep grid tokens: `traffic=poisson:RATE` or
//! `traffic=none`, and `closed=USERS:THINK` or `closed=none`. At least
//! one source must be active for a runnable spec.

use crate::sweep::SweepParseError;

/// Open-loop arrival side: Poisson counts at `rate` jobs per unit time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoop {
    /// Offered load in jobs per unit of virtual time (must be positive
    /// and finite).
    pub rate: f64,
}

/// Closed-loop side: `users` clients cycling submit → wait → think.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoop {
    /// Concurrent user population (bounds outstanding closed-loop jobs).
    pub users: usize,
    /// Think time between a job's completion and the user's next
    /// submission, in units of virtual time (must be positive).
    pub think: f64,
}

/// A complete traffic specification: open loop, closed loop, or both.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficSpec {
    /// The open-loop side, if any.
    pub open: Option<OpenLoop>,
    /// The closed-loop side, if any.
    pub closed: Option<ClosedLoop>,
}

impl TrafficSpec {
    /// Does this spec generate any jobs at all?
    pub fn is_empty(&self) -> bool {
        self.open.is_none() && self.closed.is_none()
    }
}

/// Parses the open-loop token: `poisson:RATE` or `none`.
pub fn parse_traffic(token: &str) -> Result<Option<OpenLoop>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid traffic `{token}`"));
    let rest = token.strip_prefix("poisson:").ok_or_else(bad)?;
    let rate: f64 = rest.parse().map_err(|_| bad())?;
    if !(rate.is_finite() && rate > 0.0) {
        return Err(SweepParseError::new(format!(
            "traffic rate must be positive and finite, got `{rest}`"
        )));
    }
    Ok(Some(OpenLoop { rate }))
}

/// Parses the closed-loop token: `USERS:THINK` or `none`.
pub fn parse_closed(token: &str) -> Result<Option<ClosedLoop>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid closed loop `{token}`"));
    let (users, think) = token.split_once(':').ok_or_else(bad)?;
    let users: usize = users.parse().map_err(|_| bad())?;
    let think: f64 = think.parse().map_err(|_| bad())?;
    if users == 0 {
        return Err(SweepParseError::new(
            "closed loop needs at least one user".to_string(),
        ));
    }
    if !(think.is_finite() && think > 0.0) {
        return Err(SweepParseError::new(format!(
            "think time must be positive and finite, got `{think}`"
        )));
    }
    Ok(Some(ClosedLoop { users, think }))
}

/// Round-trip label of the open-loop side (the `traffic=` token).
pub fn traffic_label(open: Option<OpenLoop>) -> String {
    match open {
        None => "none".to_string(),
        Some(OpenLoop { rate }) => format!("poisson:{rate}"),
    }
}

/// Round-trip label of the closed-loop side (the `closed=` token).
pub fn closed_label(closed: Option<ClosedLoop>) -> String {
    match closed {
        None => "none".to_string(),
        Some(ClosedLoop { users, think }) => format!("{users}:{think}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_tokens_roundtrip() {
        for token in ["none", "poisson:2.5", "poisson:1000"] {
            let parsed = parse_traffic(token).expect("valid token");
            assert_eq!(traffic_label(parsed), token);
        }
        for token in ["none", "4:2.5", "16:1"] {
            let parsed = parse_closed(token).expect("valid token");
            assert_eq!(closed_label(parsed), token);
        }
    }

    #[test]
    fn traffic_rejects_degenerate_rates() {
        assert!(parse_traffic("poisson:0").is_err());
        assert!(parse_traffic("poisson:-1").is_err());
        assert!(parse_traffic("poisson:inf").is_err());
        assert!(parse_traffic("uniform:3").is_err());
        assert!(parse_traffic("poisson:").is_err());
    }

    #[test]
    fn closed_rejects_degenerate_populations() {
        assert!(parse_closed("0:1.0").is_err());
        assert!(parse_closed("4:0").is_err());
        assert!(parse_closed("4:-2").is_err());
        assert!(parse_closed("4").is_err());
        assert!(parse_closed("x:1").is_err());
    }

    #[test]
    fn empty_spec_is_detected() {
        assert!(TrafficSpec::default().is_empty());
        let open = TrafficSpec {
            open: parse_traffic("poisson:1").expect("valid"),
            closed: None,
        };
        assert!(!open.is_empty());
        let closed = TrafficSpec {
            open: None,
            closed: parse_closed("2:1.0").expect("valid"),
        };
        assert!(!closed.is_empty());
    }
}
