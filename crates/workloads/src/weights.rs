//! Task-weight distributions on `(0, 1]`.
//!
//! §2 of the paper constrains weighted tasks to `w_ℓ ∈ (0, 1]`; the
//! variance bound of Lemma 4.3 (`w_ℓ² ≤ w_ℓ`) depends on it. Every
//! generator here returns weights already clamped into that interval, so
//! the resulting vectors always satisfy
//! [`TaskSet::weighted`](slb_core::model::TaskSet::weighted).

use rand::Rng;

/// A task-weight distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightDistribution {
    /// All weights exactly 1 (the uniform-task case as a weighted set).
    Unit,
    /// Independent uniform draws from `[lo, hi] ⊆ (0, 1]`.
    UniformRange {
        /// Lower bound (exclusive of 0).
        lo: f64,
        /// Upper bound (≤ 1).
        hi: f64,
    },
    /// Bounded Pareto (power law) with shape `alpha`, rescaled into
    /// `[min, 1]`: many light tasks, few heavy ones — the classic
    /// heavy-tailed job-size model.
    BoundedPowerLaw {
        /// Pareto shape (> 0); smaller = heavier tail.
        alpha: f64,
        /// Smallest weight (> 0).
        min: f64,
    },
    /// A two-point mixture: weight `light` with probability `1 − heavy_fraction`,
    /// else `heavy`.
    Bimodal {
        /// The light weight (in `(0, 1]`).
        light: f64,
        /// The heavy weight (in `(0, 1]`).
        heavy: f64,
        /// Probability of drawing `heavy`.
        heavy_fraction: f64,
    },
}

impl WeightDistribution {
    /// Samples `m` weights.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (bounds outside `(0, 1]`, `lo > hi`,
    /// non-positive `alpha`, fractions outside `[0, 1]`).
    pub fn sample<R: Rng + ?Sized>(self, m: usize, rng: &mut R) -> Vec<f64> {
        match self {
            WeightDistribution::Unit => vec![1.0; m],
            WeightDistribution::UniformRange { lo, hi } => {
                assert!(lo > 0.0 && hi <= 1.0 && lo <= hi, "need 0 < lo ≤ hi ≤ 1");
                (0..m).map(|_| rng.gen_range(lo..=hi)).collect()
            }
            WeightDistribution::BoundedPowerLaw { alpha, min } => {
                assert!(alpha > 0.0, "alpha must be positive");
                assert!(min > 0.0 && min < 1.0, "min must lie in (0, 1)");
                // Inverse-CDF of a Pareto truncated to [min, 1]:
                // F(x) = (min^-a − x^-a)/(min^-a − 1).
                let a = alpha;
                let lo_pow = min.powf(-a);
                (0..m)
                    .map(|_| {
                        let u: f64 = rng.gen_range(0.0..1.0);
                        let x = (lo_pow - u * (lo_pow - 1.0)).powf(-1.0 / a);
                        x.clamp(min, 1.0)
                    })
                    .collect()
            }
            WeightDistribution::Bimodal {
                light,
                heavy,
                heavy_fraction,
            } => {
                assert!(light > 0.0 && light <= 1.0, "light weight in (0, 1]");
                assert!(heavy > 0.0 && heavy <= 1.0, "heavy weight in (0, 1]");
                assert!((0.0..=1.0).contains(&heavy_fraction), "fraction in [0, 1]");
                (0..m)
                    .map(|_| {
                        if rng.gen_bool(heavy_fraction) {
                            heavy
                        } else {
                            light
                        }
                    })
                    .collect()
            }
        }
    }

    /// A short label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            WeightDistribution::Unit => "unit",
            WeightDistribution::UniformRange { .. } => "uniform-range",
            WeightDistribution::BoundedPowerLaw { .. } => "power-law",
            WeightDistribution::Bimodal { .. } => "bimodal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slb_core::model::TaskSet;

    fn valid_weights(dist: WeightDistribution, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = dist.sample(500, &mut rng);
        assert_eq!(w.len(), 500);
        assert!(
            w.iter().all(|&x| x > 0.0 && x <= 1.0),
            "{dist:?} left the (0, 1] interval"
        );
        // Every generated vector must be accepted by the model layer.
        TaskSet::weighted(w.clone()).unwrap();
        w
    }

    #[test]
    fn unit_weights() {
        let w = valid_weights(WeightDistribution::Unit, 1);
        assert!(w.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn uniform_range_within_bounds() {
        let w = valid_weights(WeightDistribution::UniformRange { lo: 0.2, hi: 0.8 }, 2);
        assert!(w.iter().all(|&x| (0.2..=0.8).contains(&x)));
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 0.5).abs() < 0.05);
    }

    #[test]
    fn power_law_is_heavy_tailed() {
        // Shape 0.5 keeps a fat tail: P(X > 0.5) ≈ 4.6% on [0.01, 1].
        let w = valid_weights(
            WeightDistribution::BoundedPowerLaw {
                alpha: 0.5,
                min: 0.01,
            },
            3,
        );
        let light = w.iter().filter(|&&x| x < 0.1).count();
        let heavy = w.iter().filter(|&&x| x > 0.5).count();
        assert!(
            light > heavy,
            "power law should skew light: {light} vs {heavy}"
        );
        assert!(heavy > 0, "but the tail should exist");
    }

    #[test]
    fn bimodal_mixes() {
        let w = valid_weights(
            WeightDistribution::Bimodal {
                light: 0.1,
                heavy: 1.0,
                heavy_fraction: 0.3,
            },
            4,
        );
        let heavy = w.iter().filter(|&&x| x == 1.0).count();
        assert!((100..200).contains(&heavy), "got {heavy} heavy of ~150");
        assert!(w.iter().all(|&x| x == 0.1 || x == 1.0));
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            WeightDistribution::Unit.label(),
            WeightDistribution::UniformRange { lo: 0.1, hi: 1.0 }.label(),
            WeightDistribution::BoundedPowerLaw {
                alpha: 1.0,
                min: 0.1,
            }
            .label(),
            WeightDistribution::Bimodal {
                light: 0.1,
                heavy: 1.0,
                heavy_fraction: 0.5,
            }
            .label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    #[should_panic(expected = "need 0 < lo ≤ hi ≤ 1")]
    fn bad_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = WeightDistribution::UniformRange { lo: 0.9, hi: 0.1 }.sample(1, &mut rng);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn bad_alpha_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = WeightDistribution::BoundedPowerLaw {
            alpha: 0.0,
            min: 0.1,
        }
        .sample(1, &mut rng);
    }
}
