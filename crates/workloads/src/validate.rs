//! Declarative theorem-validation ladders: the `ValidateSpec` and its
//! `key=value[,value…]` parser.
//!
//! Where a [`SweepSpec`](crate::sweep::SweepSpec) names a grid of fully
//! sized topologies, a `ValidateSpec` names *scaling ladders*: a set of
//! sizeless graph [`FamilyShape`]s, a geometric ladder of node counts `n`,
//! and a ladder of loads `m/n`. The analysis layer
//! (`slb_analysis::validate`) runs every `(protocol, family, regime,
//! load)` row over all ladder sizes, fits the empirical scaling exponent
//! `T ∝ n^k`, and checks it against the paper's Table 1 predictions.
//!
//! # Ladder syntax
//!
//! ```text
//! family=ring,complete        n=8..64:x2    load=16,delta:2
//! protocol=alg1,alg2,bhs,diffusion,best-response
//! regime=approx,eps,exact     eps=0.25      factor=2    exp-tol=0.3
//! speeds=uniform              weights=unit  placement=hot
//! trials=3                    max-rounds=200000
//! ```
//!
//! `n` accepts either comma lists (`n=8,16,32`) or geometric ladders
//! `START..END:xMULT` (`n=8..64:x2` → 8, 16, 32, 64); sizes must be
//! strictly increasing and at least two (a log–log slope needs two
//! points). `load` values are per-node task counts (`m = k·n`; geometric
//! ladders allowed) or `delta:X` rules (`m = ⌈8δn²⌉·n`, Theorem 1.1's
//! threshold — the scaling under which the `Ψ₀ ≤ 4ψ_c` hitting time
//! actually exercises the multiplicative-drop phase at every ladder
//! size). `family` takes sizeless names; each is resolved against every
//! ladder size (`hypercube` needs powers of two, `mesh`/`torus` perfect
//! squares).

use crate::placement::Placement;
use crate::speeds::SpeedDistribution;
use crate::sweep::{
    parse_placement, parse_speeds, parse_weights, placement_grid_label, speeds_grid_label,
    weights_grid_label, ProtocolKind, SweepParseError,
};
use crate::weights::WeightDistribution;
use slb_graphs::generators::Family;
use std::fmt;

/// A graph family *shape*: the Table 1 family without a size, resolved
/// against each ladder size `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyShape {
    /// Cycle `C_n` (`n ≥ 3`).
    Ring,
    /// Path `P_n` (`n ≥ 2`).
    Path,
    /// Complete graph `K_n` (`n ≥ 2`).
    Complete,
    /// Star `S_n` (`n ≥ 2`; not a Table 1 row).
    Star,
    /// Hypercube `Q_d` (`n` must be a power of two, `2 ≤ n ≤ 2²⁰`).
    Hypercube,
    /// Square mesh `P_r □ P_r` (`n = r²`, `r ≥ 2`).
    Mesh,
    /// Square torus `C_r □ C_r` (`n = r²`, `r ≥ 3`).
    Torus,
}

impl FamilyShape {
    /// All shapes, in grid order.
    pub const ALL: [FamilyShape; 7] = [
        FamilyShape::Ring,
        FamilyShape::Path,
        FamilyShape::Complete,
        FamilyShape::Star,
        FamilyShape::Hypercube,
        FamilyShape::Mesh,
        FamilyShape::Torus,
    ];

    /// The canonical ladder token (`ring`, `path`, …).
    pub fn label(self) -> &'static str {
        match self {
            FamilyShape::Ring => "ring",
            FamilyShape::Path => "path",
            FamilyShape::Complete => "complete",
            FamilyShape::Star => "star",
            FamilyShape::Hypercube => "hypercube",
            FamilyShape::Mesh => "mesh",
            FamilyShape::Torus => "torus",
        }
    }

    fn parse(token: &str) -> Result<Self, SweepParseError> {
        FamilyShape::ALL
            .into_iter()
            .find(|f| f.label() == token)
            .ok_or_else(|| {
                SweepParseError::new(format!(
                    "unknown family `{token}` (use ring|path|complete|star|hypercube|mesh|torus; \
                     ladders take sizeless names)"
                ))
            })
    }

    /// Resolves the shape at `n` nodes into a sized [`Family`].
    ///
    /// # Errors
    ///
    /// Returns a [`SweepParseError`] when the shape admits no `n`-node
    /// member (e.g. a non-power-of-two hypercube).
    pub fn resolve(self, n: usize) -> Result<Family, SweepParseError> {
        let err = |need: &str| {
            Err(SweepParseError::new(format!(
                "family `{}` has no {n}-node member ({need})",
                self.label()
            )))
        };
        match self {
            FamilyShape::Ring => {
                if n < 3 {
                    return err("need n ≥ 3");
                }
                Ok(Family::Ring { n })
            }
            FamilyShape::Path => {
                if n < 2 {
                    return err("need n ≥ 2");
                }
                Ok(Family::Path { n })
            }
            FamilyShape::Complete => {
                if n < 2 {
                    return err("need n ≥ 2");
                }
                Ok(Family::Complete { n })
            }
            FamilyShape::Star => {
                if n < 2 {
                    return err("need n ≥ 2");
                }
                Ok(Family::Star { n })
            }
            FamilyShape::Hypercube => {
                if n < 2 || !n.is_power_of_two() || n > (1 << 20) {
                    return err("need a power of two in 2..=2^20");
                }
                Ok(Family::Hypercube {
                    d: n.trailing_zeros(),
                })
            }
            FamilyShape::Mesh => {
                let r = (n as f64).sqrt().round() as usize;
                if r < 2 || r * r != n {
                    return err("need a perfect square n = r² with r ≥ 2");
                }
                Ok(Family::Mesh { rows: r, cols: r })
            }
            FamilyShape::Torus => {
                let r = (n as f64).sqrt().round() as usize;
                if r < 3 || r * r != n {
                    return err("need a perfect square n = r² with r ≥ 3");
                }
                Ok(Family::Torus { rows: r, cols: r })
            }
        }
    }
}

impl fmt::Display for FamilyShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Which convergence target a validation row measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Rounds to Theorem 1.1/1.3's own target `Ψ₀ ≤ 4ψ_c` — the state the
    /// ε-approximate column of Table 1 bounds the time to. The reached
    /// state's Nash gap is recorded alongside, validating the theorems'
    /// second claim (that the state is a `2/(1+δ)`-approximate NE once
    /// `δ > 1`).
    Approx,
    /// Rounds to a *fixed*-ε approximate Nash equilibrium (the spec's
    /// `eps`). A direct relative-balance hitting time; measured and
    /// reported, but annotated with no Table 1 prediction — at reachable
    /// sizes it is dominated by the early spreading phase, not the
    /// asymptotic mixing the table's exponents describe.
    Eps,
    /// Rounds to an exact Nash equilibrium; compared against the exact
    /// column (Theorem 1.2).
    Exact,
}

impl Regime {
    /// The canonical ladder token (`approx`, `eps`, `exact`).
    pub fn label(self) -> &'static str {
        match self {
            Regime::Approx => "approx",
            Regime::Eps => "eps",
            Regime::Exact => "exact",
        }
    }

    fn parse(token: &str) -> Result<Self, SweepParseError> {
        match token {
            "approx" => Ok(Regime::Approx),
            "eps" => Ok(Regime::Eps),
            "exact" => Ok(Regime::Exact),
            other => Err(SweepParseError::new(format!(
                "unknown regime `{other}` (use approx|eps|exact)"
            ))),
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// How the task count scales along the size ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadRule {
    /// `m = k·n` — fixed average load; the natural reading of the exact
    /// column (Theorem 1.2's bound is `m`-free).
    PerNode(usize),
    /// `m = ⌈8·δ·n²⌉·n` — Theorem 1.1's task threshold at fixed `δ`
    /// (uniform-speed form `s_max = 1, S = n`), so the reached
    /// `Ψ₀ ≤ 4ψ_c` state carries the `2/(1+δ)`-approximation guarantee
    /// once `δ > 1`; the natural reading of the ε-approximate column.
    DeltaFixed(f64),
}

impl LoadRule {
    /// Tasks per node at ladder size `n`.
    pub fn tasks_per_node(self, n: usize) -> usize {
        match self {
            LoadRule::PerNode(k) => k,
            LoadRule::DeltaFixed(delta) => ((8.0 * delta * (n * n) as f64).ceil() as usize).max(1),
        }
    }

    /// The canonical ladder token (`16`, `delta:2`).
    pub fn label(self) -> String {
        match self {
            LoadRule::PerNode(k) => k.to_string(),
            LoadRule::DeltaFixed(delta) => format!("delta:{delta}"),
        }
    }

    fn parse(token: &str) -> Result<Self, SweepParseError> {
        if let Some(rest) = token.strip_prefix("delta:") {
            let delta: f64 = rest
                .parse()
                .map_err(|_| SweepParseError::new(format!("invalid load delta `{rest}`")))?;
            if !(delta.is_finite() && delta > 0.0) {
                return Err(SweepParseError::new(
                    "load delta must be finite and positive".into(),
                ));
            }
            return Ok(LoadRule::DeltaFixed(delta));
        }
        let k: usize = token
            .parse()
            .map_err(|_| SweepParseError::new(format!("invalid load value `{token}`")))?;
        if k == 0 {
            return Err(SweepParseError::new("load must be positive".into()));
        }
        Ok(LoadRule::PerNode(k))
    }
}

impl fmt::Display for LoadRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One validation row: an exponent is fitted per (protocol, family,
/// regime, load) over the spec's size ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowSpec {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Graph family shape (resolved at each ladder size).
    pub family: FamilyShape,
    /// Convergence target.
    pub regime: Regime,
    /// Task scaling along the ladder.
    pub load: LoadRule,
}

/// A declarative theorem-validation ladder set.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidateSpec {
    /// Family axis (sizeless shapes).
    pub families: Vec<FamilyShape>,
    /// The node-count ladder (strictly increasing, ≥ 2 entries).
    pub sizes: Vec<usize>,
    /// The task-scaling axis (`m/n` values and/or `delta:X` rules).
    pub loads: Vec<LoadRule>,
    /// Protocol axis.
    pub protocols: Vec<ProtocolKind>,
    /// Regime axis (convergence targets).
    pub regimes: Vec<Regime>,
    /// Machine-speed distribution (one per spec).
    pub speeds: SpeedDistribution,
    /// Task-weight distribution (one per spec).
    pub weights: WeightDistribution,
    /// Initial placement (one per spec).
    pub placement: Placement,
    /// The ε of the `eps` regime's stop rule.
    pub eps: f64,
    /// Constant-factor tolerance for the absolute-rounds bound check
    /// (measured mean must stay within `factor ×` the theorem bound).
    pub factor: f64,
    /// Additive tolerance on the fitted exponent vs the Table 1 bound's
    /// ladder slope (absorbs finite-size transients the asymptotic
    /// analysis drops; the analogue of `factor` for the scaling check).
    pub exp_tol: f64,
    /// Trials per ladder point.
    pub trials: usize,
    /// Round budget per trial.
    pub max_rounds: u64,
}

impl Default for ValidateSpec {
    fn default() -> Self {
        ValidateSpec {
            families: vec![FamilyShape::Ring],
            sizes: vec![8, 16, 32],
            loads: vec![LoadRule::PerNode(16)],
            protocols: vec![ProtocolKind::Alg1],
            regimes: vec![Regime::Approx],
            speeds: SpeedDistribution::Uniform,
            weights: WeightDistribution::Unit,
            placement: Placement::AllOnNode(0),
            eps: 0.25,
            factor: 2.0,
            exp_tol: 0.3,
            trials: 3,
            max_rounds: 200_000,
        }
    }
}

impl ValidateSpec {
    /// Parses a spec from `key=value[,value…]` tokens. Omitted keys keep
    /// their [`Default`] values; duplicated keys are rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepParseError`] naming the offending token.
    pub fn parse<S: AsRef<str>>(tokens: &[S]) -> Result<ValidateSpec, SweepParseError> {
        let mut spec = ValidateSpec::default();
        let mut seen: Vec<&str> = Vec::new();
        for token in tokens {
            let token = token.as_ref();
            let (key, values) = token.split_once('=').ok_or_else(|| {
                SweepParseError::new(format!("expected key=value[,value…], got `{token}`"))
            })?;
            if seen.contains(&key) {
                return Err(SweepParseError::new(format!(
                    "ladder key `{key}` given twice"
                )));
            }
            let list: Vec<&str> = values.split(',').collect();
            if list.iter().any(|v| v.is_empty()) {
                return Err(SweepParseError::new(format!(
                    "empty value in `{key}={values}`"
                )));
            }
            let single = |list: &[&str]| -> Result<String, SweepParseError> {
                if list.len() != 1 {
                    return Err(SweepParseError::new(format!(
                        "`{key}` takes a single value, not a list"
                    )));
                }
                Ok(list[0].to_string())
            };
            match key {
                "family" => {
                    spec.families = list
                        .iter()
                        .map(|v| FamilyShape::parse(v))
                        .collect::<Result<_, _>>()?
                }
                "n" => spec.sizes = parse_ladder("n", &list)?,
                "load" => {
                    // Geometric per-node ladders expand; otherwise each
                    // token is a per-node count or a `delta:X` rule.
                    if list.len() == 1 && list[0].contains("..") {
                        spec.loads = parse_ladder("load", &list)?
                            .into_iter()
                            .map(LoadRule::PerNode)
                            .collect();
                    } else {
                        spec.loads = list
                            .iter()
                            .map(|v| LoadRule::parse(v))
                            .collect::<Result<_, _>>()?;
                    }
                }
                "protocol" => {
                    spec.protocols = list
                        .iter()
                        .map(|v| {
                            ProtocolKind::ALL
                                .into_iter()
                                .find(|p| p.grid_label() == *v)
                                .ok_or_else(|| {
                                    SweepParseError::new(format!(
                                        "unknown protocol `{v}` (use alg1|alg2|bhs|diffusion|\
                                         best-response)"
                                    ))
                                })
                        })
                        .collect::<Result<_, _>>()?
                }
                "regime" => {
                    spec.regimes = list
                        .iter()
                        .map(|v| Regime::parse(v))
                        .collect::<Result<_, _>>()?
                }
                "speeds" => spec.speeds = parse_speeds(&single(&list)?)?,
                "weights" => spec.weights = parse_weights(&single(&list)?)?,
                "placement" => spec.placement = parse_placement(&single(&list)?)?,
                "eps" => {
                    let raw = single(&list)?;
                    spec.eps = raw
                        .parse()
                        .map_err(|_| SweepParseError::new(format!("invalid eps `{raw}`")))?;
                    if !(spec.eps > 0.0 && spec.eps <= 1.0) {
                        return Err(SweepParseError::new("eps must lie in (0, 1]".into()));
                    }
                }
                "factor" => {
                    let raw = single(&list)?;
                    spec.factor = raw
                        .parse()
                        .map_err(|_| SweepParseError::new(format!("invalid factor `{raw}`")))?;
                    if !(spec.factor.is_finite() && spec.factor > 0.0) {
                        return Err(SweepParseError::new(
                            "factor must be finite and positive".into(),
                        ));
                    }
                }
                "exp-tol" => {
                    let raw = single(&list)?;
                    spec.exp_tol = raw
                        .parse()
                        .map_err(|_| SweepParseError::new(format!("invalid exp-tol `{raw}`")))?;
                    if !(spec.exp_tol.is_finite() && spec.exp_tol >= 0.0) {
                        return Err(SweepParseError::new(
                            "exp-tol must be finite and nonnegative".into(),
                        ));
                    }
                }
                "trials" => {
                    let raw = single(&list)?;
                    spec.trials = raw
                        .parse()
                        .map_err(|_| SweepParseError::new(format!("invalid trials `{raw}`")))?;
                    if spec.trials == 0 {
                        return Err(SweepParseError::new("trials must be positive".into()));
                    }
                }
                "max-rounds" => {
                    let raw = single(&list)?;
                    spec.max_rounds = raw
                        .parse()
                        .map_err(|_| SweepParseError::new(format!("invalid max-rounds `{raw}`")))?;
                    if spec.max_rounds == 0 {
                        return Err(SweepParseError::new("max-rounds must be positive".into()));
                    }
                }
                other => {
                    return Err(SweepParseError::new(format!(
                        "unknown ladder key `{other}` (use family|n|load|protocol|regime|speeds|\
                         weights|placement|eps|factor|exp-tol|trials|max-rounds)"
                    )))
                }
            }
            seen.push(key);
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks the spec's internal consistency: ladders are strictly
    /// increasing with at least two sizes, and every family resolves at
    /// every size.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepParseError`] naming the first inconsistency.
    pub fn validate(&self) -> Result<(), SweepParseError> {
        if self.sizes.len() < 2 {
            return Err(SweepParseError::new(
                "the n ladder needs at least two sizes (a log–log slope needs two points)".into(),
            ));
        }
        if self.sizes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(SweepParseError::new(
                "the n ladder must be strictly increasing".into(),
            ));
        }
        if self.loads.is_empty() {
            return Err(SweepParseError::new(
                "the load axis must be nonempty".into(),
            ));
        }
        if self.loads.iter().any(|l| matches!(l, LoadRule::PerNode(0))) {
            return Err(SweepParseError::new("load must be positive".into()));
        }
        for &family in &self.families {
            for &n in &self.sizes {
                family.resolve(n)?;
                if let Placement::AllOnNode(v) = self.placement {
                    if v >= n {
                        return Err(SweepParseError::new(format!(
                            "placement `node:{v}` is out of range at ladder size {n}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of rows (exponent fits) the spec produces.
    pub fn row_count(&self) -> usize {
        self.families.len() * self.loads.len() * self.protocols.len() * self.regimes.len()
    }

    /// The rows, in a stable nesting order (family outermost, regime
    /// innermost). Row indices — and hence the per-row seeds derived from
    /// them — follow this order.
    pub fn rows(&self) -> Vec<RowSpec> {
        let mut out = Vec::with_capacity(self.row_count());
        for &family in &self.families {
            for &load in &self.loads {
                for &protocol in &self.protocols {
                    for &regime in &self.regimes {
                        out.push(RowSpec {
                            protocol,
                            family,
                            regime,
                            load,
                        });
                    }
                }
            }
        }
        out
    }

    /// The canonical token describing the size ladder (`8-16-32`).
    pub fn sizes_label(&self) -> String {
        self.sizes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join("-")
    }

    /// The single-value axis tokens, for report preambles.
    pub fn scenario_label(&self) -> String {
        format!(
            "speeds={} weights={} placement={}",
            speeds_grid_label(self.speeds),
            weights_grid_label(self.weights),
            placement_grid_label(self.placement),
        )
    }
}

/// Parses a ladder axis: either a comma list (already split into `list`)
/// or one geometric token `START..END:xMULT`.
fn parse_ladder(key: &str, list: &[&str]) -> Result<Vec<usize>, SweepParseError> {
    let number = |raw: &str| -> Result<usize, SweepParseError> {
        raw.parse()
            .map_err(|_| SweepParseError::new(format!("invalid {key} value `{raw}`")))
    };
    if list.len() == 1 && list[0].contains("..") {
        let (range, mult) = list[0].split_once(':').ok_or_else(|| {
            SweepParseError::new(format!(
                "geometric {key} ladder needs a multiplier, e.g. `{key}=8..64:x2`"
            ))
        })?;
        let (start, end) = range.split_once("..").expect("checked contains");
        let start = number(start)?;
        let end = number(end)?;
        let mult = mult
            .strip_prefix('x')
            .and_then(|m| m.parse::<usize>().ok())
            .ok_or_else(|| {
                SweepParseError::new(format!("invalid {key} multiplier `{mult}` (use xK)"))
            })?;
        if start == 0 || end < start || mult < 2 {
            return Err(SweepParseError::new(format!(
                "geometric {key} ladder needs 0 < START ≤ END and a multiplier ≥ 2"
            )));
        }
        let mut out = Vec::new();
        let mut v = start;
        while v <= end {
            out.push(v);
            match v.checked_mul(mult) {
                Some(next) => v = next,
                None => break,
            }
        }
        return Ok(out);
    }
    let out: Vec<usize> = list.iter().map(|v| number(v)).collect::<Result<_, _>>()?;
    if out.contains(&0) {
        return Err(SweepParseError::new(format!("{key} must be positive")));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_a_ring_ladder() {
        let spec = ValidateSpec::default();
        assert_eq!(spec.row_count(), 1);
        spec.validate().unwrap();
        let rows = spec.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].family, FamilyShape::Ring);
        assert_eq!(rows[0].regime, Regime::Approx);
        assert_eq!(spec.sizes_label(), "8-16-32");
        assert!(spec.scenario_label().contains("speeds=uniform"));
    }

    #[test]
    fn geometric_ladders_expand() {
        let spec = ValidateSpec::parse(&["n=8..64:x2", "load=4..16:x4"]).unwrap();
        assert_eq!(spec.sizes, vec![8, 16, 32, 64]);
        assert_eq!(
            spec.loads,
            vec![LoadRule::PerNode(4), LoadRule::PerNode(16)]
        );
        // END is inclusive only when hit exactly.
        let spec = ValidateSpec::parse(&["n=8..60:x2"]).unwrap();
        assert_eq!(spec.sizes, vec![8, 16, 32]);
    }

    #[test]
    fn load_rules_parse_and_resolve() {
        let spec = ValidateSpec::parse(&["load=8,delta:2"]).unwrap();
        assert_eq!(
            spec.loads,
            vec![LoadRule::PerNode(8), LoadRule::DeltaFixed(2.0)]
        );
        assert_eq!(LoadRule::PerNode(8).tasks_per_node(32), 8);
        // 8·δ·n² with δ = 2, n = 4 → 256 per node (m = 8δn³).
        assert_eq!(LoadRule::DeltaFixed(2.0).tasks_per_node(4), 256);
        assert_eq!(LoadRule::DeltaFixed(2.0).label(), "delta:2");
        assert_eq!(LoadRule::PerNode(8).to_string(), "8");
    }

    #[test]
    fn full_parse_roundtrip() {
        let spec = ValidateSpec::parse(&[
            "family=ring,complete",
            "n=4,8,16",
            "load=8,32",
            "protocol=alg1,bhs",
            "regime=approx,exact",
            "speeds=alternating:2",
            "weights=bimodal:0.25:1:0.5",
            "placement=hot",
            "eps=0.5",
            "factor=3",
            "exp-tol=0.5",
            "trials=5",
            "max-rounds=1000",
        ])
        .unwrap();
        assert_eq!(spec.row_count(), 2 * 2 * 2 * 2);
        assert_eq!(spec.eps, 0.5);
        assert_eq!(spec.factor, 3.0);
        assert_eq!(spec.exp_tol, 0.5);
        assert_eq!(spec.trials, 5);
        assert_eq!(spec.max_rounds, 1000);
        // Stable nesting: family outermost, regime innermost.
        let rows = spec.rows();
        assert_eq!(rows[0].family, FamilyShape::Ring);
        assert_eq!(rows[0].regime, Regime::Approx);
        assert_eq!(rows[1].regime, Regime::Exact);
        assert_eq!(rows[8].family, FamilyShape::Complete);
    }

    #[test]
    fn family_shapes_resolve_with_constraints() {
        assert_eq!(FamilyShape::Ring.resolve(8).unwrap(), Family::Ring { n: 8 });
        assert_eq!(
            FamilyShape::Hypercube.resolve(16).unwrap(),
            Family::Hypercube { d: 4 }
        );
        assert_eq!(
            FamilyShape::Mesh.resolve(9).unwrap(),
            Family::Mesh { rows: 3, cols: 3 }
        );
        assert_eq!(
            FamilyShape::Torus.resolve(16).unwrap(),
            Family::Torus { rows: 4, cols: 4 }
        );
        assert!(FamilyShape::Ring.resolve(2).is_err());
        assert!(FamilyShape::Hypercube.resolve(12).is_err());
        assert!(FamilyShape::Mesh.resolve(8).is_err());
        assert!(FamilyShape::Torus.resolve(4).is_err(), "2×2 torus invalid");
        for shape in FamilyShape::ALL {
            assert_eq!(FamilyShape::parse(shape.label()).unwrap(), shape);
        }
    }

    #[test]
    fn rejects_malformed_ladders() {
        for bad in [
            &["family=blob"][..],
            &["family=ring:8"],
            &["n=8"],
            &["n=8,8"],
            &["n=32,16"],
            &["n=0,8"],
            &["n=8..4:x2"],
            &["n=8..64:x1"],
            &["n=8..64:2"],
            &["n=8..64"],
            &["load=0"],
            &["load=delta:0"],
            &["load=delta:inf"],
            &["load=heavy"],
            &["protocol=teleport"],
            &["regime=sometime"],
            &["eps=0"],
            &["eps=1.5"],
            &["eps=0.2,0.3"],
            &["factor=-1"],
            &["exp-tol=-0.1"],
            &["exp-tol=nan"],
            &["trials=0"],
            &["max-rounds=0"],
            &["speeds=warp"],
            &["weights=heavy"],
            &["placement=везде"],
            &["family=hypercube", "n=8,12"],
            &["family=mesh", "n=9,10"],
            &["placement=node:50", "n=8,16"],
            &["notakey=1"],
            &["n"],
            &["n=8", "n=16"],
        ] {
            let err = ValidateSpec::parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("sweep grid error"),
                "token {bad:?} → {err}"
            );
        }
    }

    #[test]
    fn labels_display() {
        assert_eq!(FamilyShape::Hypercube.to_string(), "hypercube");
        assert_eq!(Regime::Exact.to_string(), "exact");
    }
}
