//! Named scenario presets: topology × speeds × weights × placement.
//!
//! The examples and the experiment harness want "give me a realistic
//! instance" one-liners; these presets are the motivating workloads of the
//! paper's introduction (large heterogeneous compute networks with locality
//! constraints) rendered concrete.

use crate::placement::Placement;
use crate::speeds::SpeedDistribution;
use crate::weights::WeightDistribution;
use rand::Rng;
use slb_core::model::{ModelError, SpeedError, System, TaskError, TaskSet, TaskState};
use slb_graphs::Graph;
use std::fmt;

/// Errors from building a scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// Model assembly failed.
    Model(ModelError),
    /// Task construction failed.
    Task(TaskError),
    /// Speed construction failed.
    Speed(SpeedError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Model(e) => write!(f, "scenario model error: {e}"),
            ScenarioError::Task(e) => write!(f, "scenario task error: {e}"),
            ScenarioError::Speed(e) => write!(f, "scenario speed error: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::Model(e) => Some(e),
            ScenarioError::Task(e) => Some(e),
            ScenarioError::Speed(e) => Some(e),
        }
    }
}

impl From<ModelError> for ScenarioError {
    fn from(e: ModelError) -> Self {
        ScenarioError::Model(e)
    }
}
impl From<TaskError> for ScenarioError {
    fn from(e: TaskError) -> Self {
        ScenarioError::Task(e)
    }
}
impl From<SpeedError> for ScenarioError {
    fn from(e: SpeedError) -> Self {
        ScenarioError::Speed(e)
    }
}

/// A fully built scenario: the instance and its initial state.
#[derive(Debug, Clone)]
pub struct BuiltScenario {
    /// The immutable instance.
    pub system: System,
    /// The initial state `X₀`.
    pub initial: TaskState,
    /// Human-readable description (topology, speeds, weights, placement).
    pub description: String,
}

/// Generic scenario assembly from the four axes.
///
/// `tasks_per_node` scales `m = tasks_per_node · n`.
///
/// # Errors
///
/// Propagates model/task/speed construction failures.
pub fn build<R: Rng + ?Sized>(
    graph: Graph,
    speed_dist: SpeedDistribution,
    weight_dist: WeightDistribution,
    placement: Placement,
    tasks_per_node: usize,
    rng: &mut R,
) -> Result<BuiltScenario, ScenarioError> {
    let n = graph.node_count();
    let m = tasks_per_node * n;
    let speeds = speed_dist.sample(n, rng);
    let tasks = match weight_dist {
        WeightDistribution::Unit => TaskSet::uniform(m),
        other => TaskSet::weighted(other.sample(m, rng))?,
    };
    let description = format!(
        "n={n}, m={m}, speeds={}, weights={}, placement={}",
        speed_dist.label(),
        weight_dist.label(),
        placement.label()
    );
    let system = System::new(graph, speeds, tasks)?;
    let initial = placement.state(&system, rng);
    Ok(BuiltScenario {
        system,
        initial,
        description,
    })
}

/// A heterogeneous datacenter rack row: `rows × cols` torus, two machine
/// classes (25% of nodes 4× faster), heavy-tailed job sizes, everything
/// initially queued on one ingest node.
///
/// # Errors
///
/// Propagates construction failures.
pub fn heterogeneous_torus<R: Rng + ?Sized>(
    rows: usize,
    cols: usize,
    tasks_per_node: usize,
    rng: &mut R,
) -> Result<BuiltScenario, ScenarioError> {
    build(
        slb_graphs::generators::torus(rows, cols),
        SpeedDistribution::TwoClass {
            fast: 4,
            fast_fraction: 0.25,
        },
        WeightDistribution::BoundedPowerLaw {
            alpha: 1.2,
            min: 0.05,
        },
        Placement::AllOnNode(0),
        tasks_per_node,
        rng,
    )
}

/// A peer-to-peer overlay: random 4-regular expander, uniform machines,
/// unit tasks scattered randomly.
///
/// # Errors
///
/// Propagates construction failures.
pub fn p2p_overlay<R: Rng + ?Sized>(
    n: usize,
    tasks_per_node: usize,
    rng: &mut R,
) -> Result<BuiltScenario, ScenarioError> {
    let graph = slb_graphs::generators::random_regular(n, 4, rng);
    build(
        graph,
        SpeedDistribution::Uniform,
        WeightDistribution::Unit,
        Placement::UniformRandom,
        tasks_per_node,
        rng,
    )
}

/// The worst-case theory instance: a ring (smallest `λ₂` per node count
/// among the Table 1 families), integer speeds up to `s_max`, unit tasks,
/// all on the slowest node.
///
/// # Errors
///
/// Propagates construction failures.
pub fn adversarial_ring<R: Rng + ?Sized>(
    n: usize,
    s_max: u64,
    tasks_per_node: usize,
    rng: &mut R,
) -> Result<BuiltScenario, ScenarioError> {
    build(
        slb_graphs::generators::ring(n),
        SpeedDistribution::IntegerUniform { max: s_max },
        WeightDistribution::Unit,
        Placement::AllOnSlowest,
        tasks_per_node,
        rng,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slb_graphs::NodeId;

    #[test]
    fn heterogeneous_torus_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = heterogeneous_torus(3, 4, 20, &mut rng).unwrap();
        assert_eq!(b.system.node_count(), 12);
        assert_eq!(b.system.task_count(), 240);
        assert!(!b.system.tasks().is_uniform());
        assert_eq!(b.initial.node_task_count(NodeId(0)), 240);
        assert!(b.description.contains("two-class"));
        b.initial.check_invariants(&b.system).unwrap();
    }

    #[test]
    fn p2p_overlay_shape() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = p2p_overlay(20, 8, &mut rng).unwrap();
        assert_eq!(b.system.node_count(), 20);
        assert_eq!(b.system.graph().regularity(), Some(4));
        assert!(b.system.tasks().is_uniform());
        assert!(b.system.speeds().is_uniform());
    }

    #[test]
    fn adversarial_ring_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = adversarial_ring(10, 5, 50, &mut rng).unwrap();
        assert_eq!(b.system.node_count(), 10);
        assert_eq!(b.system.speeds().min(), 1.0);
        assert_eq!(b.system.speeds().granularity(), Some(1.0));
        // All tasks on one (slowest) node.
        let counts: Vec<usize> = (0..10)
            .map(|i| b.initial.node_task_count(NodeId(i)))
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 500);
        assert_eq!(counts.iter().filter(|&&c| c > 0).count(), 1);
    }

    #[test]
    fn generic_build_with_weighted_tasks() {
        let mut rng = StdRng::seed_from_u64(4);
        let b = build(
            slb_graphs::generators::hypercube(3),
            SpeedDistribution::Ramp {
                max: 3.0,
                granularity: 0.5,
            },
            WeightDistribution::UniformRange { lo: 0.1, hi: 0.9 },
            Placement::SpeedProportional,
            10,
            &mut rng,
        )
        .unwrap();
        assert_eq!(b.system.task_count(), 80);
        assert_eq!(b.system.speeds().granularity(), Some(0.5));
        b.initial.check_invariants(&b.system).unwrap();
    }

    #[test]
    fn determinism_under_seed() {
        let build_once = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            heterogeneous_torus(3, 3, 10, &mut rng).unwrap()
        };
        let a = build_once(9);
        let b = build_once(9);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.system.speeds(), b.system.speeds());
        let c = build_once(10);
        assert_ne!(
            (a.initial, a.system.speeds().clone()),
            (c.initial, c.system.speeds().clone())
        );
    }

    #[test]
    fn error_display_chains() {
        let e = ScenarioError::Task(TaskError::Empty);
        assert!(e.to_string().contains("task error"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
