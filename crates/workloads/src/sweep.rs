//! Declarative experiment grids: the `SweepSpec` and its `key=a,b,c`
//! parser.
//!
//! Every reported number of the reproduction is a mean over seeded trials
//! of *protocol × topology × weights × speeds × placement × stop rule*.
//! A [`SweepSpec`] names one such grid declaratively; the cartesian
//! product of its axes yields [`CellSpec`]s in a stable order, which the
//! analysis layer executes (`slb_analysis::sweep`) and the CLI exposes
//! (`slb sweep`).
//!
//! # Grid syntax
//!
//! A spec is a list of `key=value[,value…]` tokens, one per axis; omitted
//! axes fall back to a single default value. Values carry their parameters
//! after `:` (and `x` inside dimensions, `..` inside ranges):
//!
//! ```text
//! graph=ring:8,torus:3x3   tasks-per-node=8,32
//! speeds=uniform,alternating:2,two-class:4:0.25
//! weights=unit,uniform:0.1..0.9   placement=hot,random
//! protocol=alg1,alg2,bhs,diffusion,best-response
//! until=nash,quiescent:50,psi0:100   trials=5   max-rounds=100000
//! ```
//!
//! The dynamic-scenario axes (all default to `none`, which keeps the
//! classic static run) select the event layer of
//! [`slb_core::engine::dynamic`]:
//!
//! ```text
//! arrivals=none,poisson:0.5,batch:64:10
//! completions=none,rate:0.05,count:32
//! churn=none,rate:0.02
//! speed-dyn=none,drift:0.1,shock:150:0.25,feedback:0.2
//! ```
//!
//! Every parsed value renders back to its canonical token via the
//! `grid_label` functions, so sweep artifacts (CSV rows) are
//! round-trippable into specs.

use crate::placement::Placement;
use crate::speeds::SpeedDistribution;
use crate::weights::WeightDistribution;
use slb_core::engine::dynamic::{
    ArrivalProcess, ChurnProcess, CompletionProcess, DynamicConfig, SpeedDynamics,
};
use slb_graphs::generators::Family;
use std::fmt;

/// Which protocol a sweep cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Algorithm 1 (`selfish-uniform`); on weighted tasks the cell runs
    /// the paper's weighted generalization of the same dynamics (the
    /// Definition-4.1 rule) on the count-based weight-class engine.
    Alg1,
    /// Algorithm 2 (`selfish-weighted`); runs count-based on the
    /// speed-aware weight-class engine (`SpeedFastSim`) in both task
    /// modes — the weight-independent §4 rule makes equal-weight tasks
    /// exchangeable under any speed vector.
    Alg2,
    /// The \[6\] baseline (`bhs-baseline`); runs count-based on
    /// `SpeedFastSim` with the per-task own-weight threshold applied per
    /// weight class (quantized thresholds for continuous weight
    /// distributions — the engine's documented approximation).
    Bhs,
    /// Deterministic discrete diffusion.
    Diffusion,
    /// Sequential best-response dynamics (the coordinated baseline).
    BestResponse,
}

impl ProtocolKind {
    /// All protocols, in grid order.
    pub const ALL: [ProtocolKind; 5] = [
        ProtocolKind::Alg1,
        ProtocolKind::Alg2,
        ProtocolKind::Bhs,
        ProtocolKind::Diffusion,
        ProtocolKind::BestResponse,
    ];

    /// The canonical grid token (`alg1`, `alg2`, `bhs`, `diffusion`,
    /// `best-response`).
    pub fn grid_label(self) -> &'static str {
        match self {
            ProtocolKind::Alg1 => "alg1",
            ProtocolKind::Alg2 => "alg2",
            ProtocolKind::Bhs => "bhs",
            ProtocolKind::Diffusion => "diffusion",
            ProtocolKind::BestResponse => "best-response",
        }
    }

    fn parse(token: &str) -> Result<Self, SweepParseError> {
        ProtocolKind::ALL
            .into_iter()
            .find(|p| p.grid_label() == token)
            .ok_or_else(|| {
                SweepParseError::new(format!(
                    "unknown protocol `{token}` (use alg1|alg2|bhs|diffusion|best-response)"
                ))
            })
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.grid_label())
    }
}

/// When a sweep cell's run stops (resolved into an engine stop condition
/// by the analysis layer).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopRule {
    /// Exact Nash equilibrium (threshold picked from the task mode).
    Nash,
    /// No migration for this many consecutive rounds.
    Quiescent(u64),
    /// `Ψ₀ ≤ bound`.
    Psi0Below(f64),
}

impl StopRule {
    /// The canonical grid token (`nash`, `quiescent:K`, `psi0:X`).
    pub fn grid_label(self) -> String {
        match self {
            StopRule::Nash => "nash".to_string(),
            StopRule::Quiescent(k) => format!("quiescent:{k}"),
            StopRule::Psi0Below(x) => format!("psi0:{x}"),
        }
    }

    fn parse(token: &str) -> Result<Self, SweepParseError> {
        if token == "nash" {
            return Ok(StopRule::Nash);
        }
        if let Some(rest) = token.strip_prefix("quiescent:") {
            let k: u64 = rest
                .parse()
                .map_err(|_| SweepParseError::new(format!("invalid quiescent rounds `{rest}`")))?;
            if k == 0 {
                return Err(SweepParseError::new(
                    "quiescent rounds must be positive".into(),
                ));
            }
            return Ok(StopRule::Quiescent(k));
        }
        if let Some(rest) = token.strip_prefix("psi0:") {
            let x: f64 = rest
                .parse()
                .map_err(|_| SweepParseError::new(format!("invalid psi0 bound `{rest}`")))?;
            if !x.is_finite() || x < 0.0 {
                return Err(SweepParseError::new(
                    "psi0 bound must be finite and nonnegative".into(),
                ));
            }
            return Ok(StopRule::Psi0Below(x));
        }
        Err(SweepParseError::new(format!(
            "unknown stop rule `{token}` (use nash|quiescent:K|psi0:X)"
        )))
    }
}

/// A grid-syntax parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepParseError {
    message: String,
}

impl SweepParseError {
    /// Wraps a message in the grid-syntax error type. Public so sibling
    /// crates extending the grammar (e.g. `slb_serve`'s policy tokens)
    /// report errors uniformly.
    pub fn new(message: String) -> Self {
        SweepParseError { message }
    }
}

impl fmt::Display for SweepParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep grid error: {}", self.message)
    }
}

impl std::error::Error for SweepParseError {}

/// One cell of the experiment grid: a fully specified configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// The topology.
    pub graph: Family,
    /// Tasks per node (`m = tasks_per_node · n`).
    pub tasks_per_node: usize,
    /// Machine-speed distribution.
    pub speeds: SpeedDistribution,
    /// Task-weight distribution.
    pub weights: WeightDistribution,
    /// Initial placement.
    pub placement: Placement,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Stop rule.
    pub stop: StopRule,
    /// Task arrivals (`None` keeps the static run).
    pub arrivals: Option<ArrivalProcess>,
    /// Task completions (`None` keeps the static run).
    pub completions: Option<CompletionProcess>,
    /// Node churn (`None` keeps the static run).
    pub churn: Option<ChurnProcess>,
    /// Speed dynamics (`None` keeps the static run).
    pub speed_dyn: Option<SpeedDynamics>,
}

impl CellSpec {
    /// Whether the cell's tasks are uniform (unit weights).
    pub fn is_uniform_tasks(&self) -> bool {
        self.weights == WeightDistribution::Unit
    }

    /// Whether any dynamic axis is active (the cell runs on the dynamic
    /// engine for a fixed horizon instead of to a stop rule).
    pub fn is_dynamic(&self) -> bool {
        self.dynamic_config().is_dynamic()
    }

    /// The cell's event layer, for [`slb_core::engine::dynamic::DynamicSim`].
    pub fn dynamic_config(&self) -> DynamicConfig {
        DynamicConfig {
            arrivals: self.arrivals,
            completions: self.completions,
            churn: self.churn,
            speed_dynamics: self.speed_dyn,
        }
    }
}

/// A declarative experiment grid: the cartesian product of its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Topology axis.
    pub graphs: Vec<Family>,
    /// Tasks-per-node axis.
    pub tasks_per_node: Vec<usize>,
    /// Speed-distribution axis.
    pub speeds: Vec<SpeedDistribution>,
    /// Weight-distribution axis.
    pub weights: Vec<WeightDistribution>,
    /// Placement axis.
    pub placements: Vec<Placement>,
    /// Protocol axis.
    pub protocols: Vec<ProtocolKind>,
    /// Stop-rule axis.
    pub stops: Vec<StopRule>,
    /// Arrival-process axis (`None` = static).
    pub arrivals: Vec<Option<ArrivalProcess>>,
    /// Completion-process axis (`None` = static).
    pub completions: Vec<Option<CompletionProcess>>,
    /// Churn axis (`None` = static).
    pub churns: Vec<Option<ChurnProcess>>,
    /// Speed-dynamics axis (`None` = static).
    pub speed_dyns: Vec<Option<SpeedDynamics>>,
    /// Trials per cell.
    pub trials: usize,
    /// Round budget per trial.
    pub max_rounds: u64,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            graphs: vec![Family::Ring { n: 8 }],
            tasks_per_node: vec![16],
            speeds: vec![SpeedDistribution::Uniform],
            weights: vec![WeightDistribution::Unit],
            placements: vec![Placement::AllOnNode(0)],
            protocols: vec![ProtocolKind::Alg1],
            stops: vec![StopRule::Nash],
            arrivals: vec![None],
            completions: vec![None],
            churns: vec![None],
            speed_dyns: vec![None],
            trials: 3,
            max_rounds: 200_000,
        }
    }
}

impl SweepSpec {
    /// Parses a spec from `key=value[,value…]` tokens. Omitted keys keep
    /// their [`Default`] single-value axes; duplicated keys are rejected.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepParseError`] naming the offending token.
    pub fn parse<S: AsRef<str>>(tokens: &[S]) -> Result<SweepSpec, SweepParseError> {
        let mut spec = SweepSpec::default();
        let mut seen: Vec<&str> = Vec::new();
        for token in tokens {
            let token = token.as_ref();
            let (key, values) = token.split_once('=').ok_or_else(|| {
                SweepParseError::new(format!("expected key=value[,value…], got `{token}`"))
            })?;
            if seen.contains(&key) {
                return Err(SweepParseError::new(format!(
                    "grid key `{key}` given twice"
                )));
            }
            let list: Vec<&str> = values.split(',').collect();
            if list.iter().any(|v| v.is_empty()) {
                return Err(SweepParseError::new(format!(
                    "empty value in `{key}={values}`"
                )));
            }
            match key {
                "graph" => spec.graphs = parse_all(&list, parse_family)?,
                "tasks-per-node" => {
                    spec.tasks_per_node = parse_all(&list, |v| {
                        let k: usize = v.parse().map_err(|_| {
                            SweepParseError::new(format!("invalid tasks-per-node `{v}`"))
                        })?;
                        if k == 0 {
                            return Err(SweepParseError::new(
                                "tasks-per-node must be positive".into(),
                            ));
                        }
                        Ok(k)
                    })?
                }
                "speeds" => spec.speeds = parse_all(&list, parse_speeds)?,
                "weights" => spec.weights = parse_all(&list, parse_weights)?,
                "placement" => spec.placements = parse_all(&list, parse_placement)?,
                "protocol" => spec.protocols = parse_all(&list, ProtocolKind::parse)?,
                "until" => spec.stops = parse_all(&list, StopRule::parse)?,
                "arrivals" => spec.arrivals = parse_all(&list, parse_arrivals)?,
                "completions" => spec.completions = parse_all(&list, parse_completions)?,
                "churn" => spec.churns = parse_all(&list, parse_churn)?,
                "speed-dyn" => spec.speed_dyns = parse_all(&list, parse_speed_dyn)?,
                "trials" => {
                    spec.trials = parse_single(key, &list)?.parse().map_err(|_| {
                        SweepParseError::new(format!("invalid trials `{}`", list[0]))
                    })?;
                    if spec.trials == 0 {
                        return Err(SweepParseError::new("trials must be positive".into()));
                    }
                }
                "max-rounds" => {
                    spec.max_rounds = parse_single(key, &list)?.parse().map_err(|_| {
                        SweepParseError::new(format!("invalid max-rounds `{}`", list[0]))
                    })?;
                    if spec.max_rounds == 0 {
                        return Err(SweepParseError::new("max-rounds must be positive".into()));
                    }
                }
                other => {
                    return Err(SweepParseError::new(format!(
                        "unknown grid key `{other}` (use graph|tasks-per-node|speeds|weights|\
                         placement|protocol|until|arrivals|completions|churn|speed-dyn|trials|\
                         max-rounds)"
                    )))
                }
            }
            seen.push(key);
        }
        Ok(spec)
    }

    /// Number of cells in the grid.
    pub fn cell_count(&self) -> usize {
        self.graphs.len()
            * self.tasks_per_node.len()
            * self.speeds.len()
            * self.weights.len()
            * self.placements.len()
            * self.protocols.len()
            * self.stops.len()
            * self.arrivals.len()
            * self.completions.len()
            * self.churns.len()
            * self.speed_dyns.len()
    }

    /// The cartesian product of the axes, in a stable nesting order
    /// (graph outermost, speed dynamics innermost). Cell indices — and
    /// hence the per-cell seeds derived from them — follow this order;
    /// the dynamic axes nest inside the stop rule so grids that leave
    /// them at their `none` defaults keep their historical indices.
    pub fn cells(&self) -> Vec<CellSpec> {
        let mut out = Vec::with_capacity(self.cell_count());
        for &graph in &self.graphs {
            for &tasks_per_node in &self.tasks_per_node {
                for &speeds in &self.speeds {
                    for &weights in &self.weights {
                        for &placement in &self.placements {
                            for &protocol in &self.protocols {
                                for &stop in &self.stops {
                                    for &arrivals in &self.arrivals {
                                        for &completions in &self.completions {
                                            for &churn in &self.churns {
                                                for &speed_dyn in &self.speed_dyns {
                                                    out.push(CellSpec {
                                                        graph,
                                                        tasks_per_node,
                                                        speeds,
                                                        weights,
                                                        placement,
                                                        protocol,
                                                        stop,
                                                        arrivals,
                                                        completions,
                                                        churn,
                                                        speed_dyn,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn parse_all<T>(
    list: &[&str],
    f: impl Fn(&str) -> Result<T, SweepParseError>,
) -> Result<Vec<T>, SweepParseError> {
    list.iter().map(|v| f(v)).collect()
}

fn parse_single<'a>(key: &str, list: &[&'a str]) -> Result<&'a str, SweepParseError> {
    if list.len() != 1 {
        return Err(SweepParseError::new(format!(
            "`{key}` takes a single value, not a list"
        )));
    }
    Ok(list[0])
}

/// Parses a topology token: `ring:8`, `path:8`, `complete:8`, `star:8`,
/// `hypercube:4`, `mesh:3x5`, `torus:3x5`.
pub fn parse_family(token: &str) -> Result<Family, SweepParseError> {
    let (name, params) = token.split_once(':').ok_or_else(|| {
        SweepParseError::new(format!("graph `{token}` needs parameters, e.g. `ring:8`"))
    })?;
    let size = |p: &str| -> Result<usize, SweepParseError> {
        p.parse()
            .map_err(|_| SweepParseError::new(format!("invalid size `{p}` in `{token}`")))
    };
    let dims = |p: &str| -> Result<(usize, usize), SweepParseError> {
        let (r, c) = p.split_once('x').ok_or_else(|| {
            SweepParseError::new(format!("`{token}` needs RxC dimensions, e.g. `{name}:3x4`"))
        })?;
        Ok((size(r)?, size(c)?))
    };
    match name {
        "ring" => Ok(Family::Ring { n: size(params)? }),
        "path" => Ok(Family::Path { n: size(params)? }),
        "complete" => Ok(Family::Complete { n: size(params)? }),
        "star" => Ok(Family::Star { n: size(params)? }),
        "hypercube" => {
            let d: u32 = params
                .parse()
                .map_err(|_| SweepParseError::new(format!("invalid dimension in `{token}`")))?;
            if !(1..=20).contains(&d) {
                return Err(SweepParseError::new(format!(
                    "hypercube dimension must lie in 1..=20, got `{d}`"
                )));
            }
            Ok(Family::Hypercube { d })
        }
        "mesh" => {
            let (rows, cols) = dims(params)?;
            Ok(Family::Mesh { rows, cols })
        }
        "torus" => {
            let (rows, cols) = dims(params)?;
            Ok(Family::Torus { rows, cols })
        }
        other => Err(SweepParseError::new(format!(
            "unknown graph family `{other}` (use ring|path|complete|star|hypercube|mesh|torus)"
        ))),
    }
}

/// The canonical grid token of a family (`ring:8`, `torus:3x4`, …).
pub fn family_grid_label(family: Family) -> String {
    match family {
        Family::Complete { n } => format!("complete:{n}"),
        Family::Ring { n } => format!("ring:{n}"),
        Family::Path { n } => format!("path:{n}"),
        Family::Star { n } => format!("star:{n}"),
        Family::Mesh { rows, cols } => format!("mesh:{rows}x{cols}"),
        Family::Torus { rows, cols } => format!("torus:{rows}x{cols}"),
        Family::Hypercube { d } => format!("hypercube:{d}"),
    }
}

/// Parses a speed token: `uniform`, `alternating:K`, `integer:MAX`,
/// `two-class:FAST:FRAC`, `ramp:MAX:GRAN`.
pub fn parse_speeds(token: &str) -> Result<SpeedDistribution, SweepParseError> {
    if token == "uniform" {
        return Ok(SpeedDistribution::Uniform);
    }
    let bad = || SweepParseError::new(format!("invalid speeds `{token}`"));
    if let Some(rest) = token.strip_prefix("alternating:") {
        let classes: u64 = rest.parse().map_err(|_| bad())?;
        if classes == 0 {
            return Err(SweepParseError::new(
                "alternating speed classes must be at least 1".into(),
            ));
        }
        return Ok(SpeedDistribution::Alternating { classes });
    }
    if let Some(rest) = token.strip_prefix("integer:") {
        let max: u64 = rest.parse().map_err(|_| bad())?;
        if max == 0 {
            return Err(SweepParseError::new(
                "integer speed max must be at least 1".into(),
            ));
        }
        return Ok(SpeedDistribution::IntegerUniform { max });
    }
    if let Some(rest) = token.strip_prefix("two-class:") {
        let (fast, frac) = rest.split_once(':').ok_or_else(bad)?;
        let fast: u64 = fast.parse().map_err(|_| bad())?;
        let fast_fraction: f64 = frac.parse().map_err(|_| bad())?;
        if fast == 0 {
            return Err(SweepParseError::new(
                "two-class fast speed must be at least 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&fast_fraction) {
            return Err(SweepParseError::new(
                "two-class fraction must lie in [0, 1]".into(),
            ));
        }
        return Ok(SpeedDistribution::TwoClass {
            fast,
            fast_fraction,
        });
    }
    if let Some(rest) = token.strip_prefix("ramp:") {
        let (max, gran) = rest.split_once(':').ok_or_else(bad)?;
        let max: f64 = max.parse().map_err(|_| bad())?;
        let granularity: f64 = gran.parse().map_err(|_| bad())?;
        if !(max.is_finite() && max >= 1.0) {
            return Err(SweepParseError::new(
                "ramp max speed must be finite and at least 1".into(),
            ));
        }
        if !(granularity > 0.0 && granularity <= 1.0) {
            return Err(SweepParseError::new(
                "ramp granularity must lie in (0, 1]".into(),
            ));
        }
        return Ok(SpeedDistribution::Ramp { max, granularity });
    }
    Err(SweepParseError::new(format!(
        "unknown speeds `{token}` (use uniform|alternating:K|integer:MAX|two-class:FAST:FRAC|\
         ramp:MAX:GRAN)"
    )))
}

/// The canonical grid token of a speed distribution.
pub fn speeds_grid_label(dist: SpeedDistribution) -> String {
    match dist {
        SpeedDistribution::Uniform => "uniform".to_string(),
        SpeedDistribution::Alternating { classes } => format!("alternating:{classes}"),
        SpeedDistribution::IntegerUniform { max } => format!("integer:{max}"),
        SpeedDistribution::TwoClass {
            fast,
            fast_fraction,
        } => format!("two-class:{fast}:{fast_fraction}"),
        SpeedDistribution::Ramp { max, granularity } => format!("ramp:{max}:{granularity}"),
    }
}

/// Parses a weight token: `unit`, `uniform:LO..HI`, `power-law:ALPHA:MIN`,
/// `bimodal:LIGHT:HEAVY:FRAC`.
pub fn parse_weights(token: &str) -> Result<WeightDistribution, SweepParseError> {
    if token == "unit" {
        return Ok(WeightDistribution::Unit);
    }
    let bad = || SweepParseError::new(format!("invalid weights `{token}`"));
    if let Some(rest) = token.strip_prefix("uniform:") {
        let (lo, hi) = rest.split_once("..").ok_or_else(bad)?;
        let lo: f64 = lo.parse().map_err(|_| bad())?;
        let hi: f64 = hi.parse().map_err(|_| bad())?;
        if !(lo > 0.0 && hi <= 1.0 && lo <= hi) {
            return Err(SweepParseError::new(format!(
                "weights range `{token}` needs 0 < LO ≤ HI ≤ 1"
            )));
        }
        return Ok(WeightDistribution::UniformRange { lo, hi });
    }
    if let Some(rest) = token.strip_prefix("power-law:") {
        let (alpha, min) = rest.split_once(':').ok_or_else(bad)?;
        let alpha: f64 = alpha.parse().map_err(|_| bad())?;
        let min: f64 = min.parse().map_err(|_| bad())?;
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(SweepParseError::new(
                "power-law alpha must be finite and positive".into(),
            ));
        }
        if !(min > 0.0 && min < 1.0) {
            return Err(SweepParseError::new(
                "power-law min must lie in (0, 1)".into(),
            ));
        }
        return Ok(WeightDistribution::BoundedPowerLaw { alpha, min });
    }
    if let Some(rest) = token.strip_prefix("bimodal:") {
        let mut parts = rest.split(':');
        let mut next = || -> Result<f64, SweepParseError> {
            parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())
        };
        let (light, heavy, heavy_fraction) = (next()?, next()?, next()?);
        if !(light > 0.0 && light <= 1.0 && heavy > 0.0 && heavy <= 1.0) {
            return Err(SweepParseError::new(
                "bimodal weights must lie in (0, 1]".into(),
            ));
        }
        if !(0.0..=1.0).contains(&heavy_fraction) {
            return Err(SweepParseError::new(
                "bimodal fraction must lie in [0, 1]".into(),
            ));
        }
        return Ok(WeightDistribution::Bimodal {
            light,
            heavy,
            heavy_fraction,
        });
    }
    Err(SweepParseError::new(format!(
        "unknown weights `{token}` (use unit|uniform:LO..HI|power-law:ALPHA:MIN|\
         bimodal:LIGHT:HEAVY:FRAC)"
    )))
}

/// The canonical grid token of a weight distribution.
pub fn weights_grid_label(dist: WeightDistribution) -> String {
    match dist {
        WeightDistribution::Unit => "unit".to_string(),
        WeightDistribution::UniformRange { lo, hi } => format!("uniform:{lo}..{hi}"),
        WeightDistribution::BoundedPowerLaw { alpha, min } => format!("power-law:{alpha}:{min}"),
        WeightDistribution::Bimodal {
            light,
            heavy,
            heavy_fraction,
        } => format!("bimodal:{light}:{heavy}:{heavy_fraction}"),
    }
}

/// Parses a placement token: `hot`, `node:V`, `slowest`, `random`,
/// `proportional`, `round-robin`.
pub fn parse_placement(token: &str) -> Result<Placement, SweepParseError> {
    match token {
        "hot" => Ok(Placement::AllOnNode(0)),
        "slowest" => Ok(Placement::AllOnSlowest),
        "random" => Ok(Placement::UniformRandom),
        "proportional" => Ok(Placement::SpeedProportional),
        "round-robin" => Ok(Placement::RoundRobin),
        other => {
            if let Some(rest) = other.strip_prefix("node:") {
                let v: usize = rest.parse().map_err(|_| {
                    SweepParseError::new(format!("invalid placement node `{rest}`"))
                })?;
                return Ok(Placement::AllOnNode(v));
            }
            Err(SweepParseError::new(format!(
                "unknown placement `{other}` (use hot|node:V|slowest|random|proportional|\
                 round-robin)"
            )))
        }
    }
}

/// The canonical grid token of a placement.
pub fn placement_grid_label(placement: Placement) -> String {
    match placement {
        Placement::AllOnNode(0) => "hot".to_string(),
        Placement::AllOnNode(v) => format!("node:{v}"),
        Placement::AllOnSlowest => "slowest".to_string(),
        Placement::UniformRandom => "random".to_string(),
        Placement::SpeedProportional => "proportional".to_string(),
        Placement::RoundRobin => "round-robin".to_string(),
    }
}

/// Parses an arrivals token: `none`, `poisson:RATE`, `batch:SIZE:PERIOD`.
pub fn parse_arrivals(token: &str) -> Result<Option<ArrivalProcess>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid arrivals `{token}`"));
    if let Some(rest) = token.strip_prefix("poisson:") {
        let rate: f64 = rest.parse().map_err(|_| bad())?;
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SweepParseError::new(
                "poisson arrival rate must be finite and positive".into(),
            ));
        }
        return Ok(Some(ArrivalProcess::Poisson { rate }));
    }
    if let Some(rest) = token.strip_prefix("batch:") {
        let (size, period) = rest.split_once(':').ok_or_else(bad)?;
        let size: u64 = size.parse().map_err(|_| bad())?;
        let period: u64 = period.parse().map_err(|_| bad())?;
        if size == 0 || period == 0 {
            return Err(SweepParseError::new(
                "batch size and period must be positive".into(),
            ));
        }
        return Ok(Some(ArrivalProcess::Batch { size, period }));
    }
    Err(SweepParseError::new(format!(
        "unknown arrivals `{token}` (use none|poisson:RATE|batch:SIZE:PERIOD)"
    )))
}

/// The canonical grid token of an arrival process.
pub fn arrivals_grid_label(process: Option<ArrivalProcess>) -> String {
    match process {
        None => "none".to_string(),
        Some(ArrivalProcess::Poisson { rate }) => format!("poisson:{rate}"),
        Some(ArrivalProcess::Batch { size, period }) => format!("batch:{size}:{period}"),
    }
}

/// Parses a completions token: `none`, `rate:MU`, `count:C`.
pub fn parse_completions(token: &str) -> Result<Option<CompletionProcess>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid completions `{token}`"));
    if let Some(rest) = token.strip_prefix("rate:") {
        let mu: f64 = rest.parse().map_err(|_| bad())?;
        if !(mu.is_finite() && mu > 0.0 && mu <= 1.0) {
            return Err(SweepParseError::new(
                "completion rate must lie in (0, 1]".into(),
            ));
        }
        return Ok(Some(CompletionProcess::Rate { mu }));
    }
    if let Some(rest) = token.strip_prefix("count:") {
        let count: u64 = rest.parse().map_err(|_| bad())?;
        if count == 0 {
            return Err(SweepParseError::new(
                "completion count must be positive".into(),
            ));
        }
        return Ok(Some(CompletionProcess::PerRound { count }));
    }
    Err(SweepParseError::new(format!(
        "unknown completions `{token}` (use none|rate:MU|count:C)"
    )))
}

/// The canonical grid token of a completion process.
pub fn completions_grid_label(process: Option<CompletionProcess>) -> String {
    match process {
        None => "none".to_string(),
        Some(CompletionProcess::Rate { mu }) => format!("rate:{mu}"),
        Some(CompletionProcess::PerRound { count }) => format!("count:{count}"),
    }
}

/// Parses a churn token: `none`, `rate:P`.
pub fn parse_churn(token: &str) -> Result<Option<ChurnProcess>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    if let Some(rest) = token.strip_prefix("rate:") {
        let rate: f64 = rest
            .parse()
            .map_err(|_| SweepParseError::new(format!("invalid churn `{token}`")))?;
        if !(rate.is_finite() && rate > 0.0 && rate <= 1.0) {
            return Err(SweepParseError::new("churn rate must lie in (0, 1]".into()));
        }
        return Ok(Some(ChurnProcess { rate }));
    }
    Err(SweepParseError::new(format!(
        "unknown churn `{token}` (use none|rate:P)"
    )))
}

/// The canonical grid token of a churn process.
pub fn churn_grid_label(process: Option<ChurnProcess>) -> String {
    match process {
        None => "none".to_string(),
        Some(ChurnProcess { rate }) => format!("rate:{rate}"),
    }
}

/// Parses a speed-dynamics token: `none`, `drift:SIGMA`,
/// `shock:ROUND:FRAC`, `feedback:ETA`.
pub fn parse_speed_dyn(token: &str) -> Result<Option<SpeedDynamics>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid speed-dyn `{token}`"));
    if let Some(rest) = token.strip_prefix("drift:") {
        let sigma: f64 = rest.parse().map_err(|_| bad())?;
        if !(sigma.is_finite() && sigma > 0.0) {
            return Err(SweepParseError::new(
                "drift sigma must be finite and positive".into(),
            ));
        }
        return Ok(Some(SpeedDynamics::Drift { sigma }));
    }
    if let Some(rest) = token.strip_prefix("shock:") {
        let (round, frac) = rest.split_once(':').ok_or_else(bad)?;
        let round: u64 = round.parse().map_err(|_| bad())?;
        let fraction: f64 = frac.parse().map_err(|_| bad())?;
        if !(fraction.is_finite() && fraction > 0.0 && fraction <= 1.0) {
            return Err(SweepParseError::new(
                "shock fraction must lie in (0, 1]".into(),
            ));
        }
        return Ok(Some(SpeedDynamics::Shock { round, fraction }));
    }
    if let Some(rest) = token.strip_prefix("feedback:") {
        let eta: f64 = rest.parse().map_err(|_| bad())?;
        if !(eta.is_finite() && eta > 0.0 && eta <= 1.0) {
            return Err(SweepParseError::new(
                "feedback eta must lie in (0, 1]".into(),
            ));
        }
        return Ok(Some(SpeedDynamics::Feedback { eta }));
    }
    Err(SweepParseError::new(format!(
        "unknown speed-dyn `{token}` (use none|drift:SIGMA|shock:ROUND:FRAC|feedback:ETA)"
    )))
}

/// The canonical grid token of a speed-dynamics mode.
pub fn speed_dyn_grid_label(dynamics: Option<SpeedDynamics>) -> String {
    match dynamics {
        None => "none".to_string(),
        Some(SpeedDynamics::Drift { sigma }) => format!("drift:{sigma}"),
        Some(SpeedDynamics::Shock { round, fraction }) => format!("shock:{round}:{fraction}"),
        Some(SpeedDynamics::Feedback { eta }) => format!("feedback:{eta}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_one_cell() {
        let spec = SweepSpec::default();
        assert_eq!(spec.cell_count(), 1);
        let cells = spec.cells();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].protocol, ProtocolKind::Alg1);
        assert!(cells[0].is_uniform_tasks());
    }

    #[test]
    fn parse_full_grid() {
        let spec = SweepSpec::parse(&[
            "graph=ring:8,torus:3x3",
            "tasks-per-node=8,32",
            "speeds=uniform,alternating:2",
            "weights=unit,uniform:0.1..0.9",
            "placement=hot,random",
            "protocol=alg1,bhs",
            "until=nash,quiescent:50",
            "trials=5",
            "max-rounds=1000",
        ])
        .unwrap();
        assert_eq!(spec.cell_count(), 2 * 2 * 2 * 2 * 2 * 2 * 2);
        assert_eq!(spec.trials, 5);
        assert_eq!(spec.max_rounds, 1000);
        assert_eq!(spec.graphs[1], Family::Torus { rows: 3, cols: 3 });
        assert_eq!(
            spec.speeds[1],
            SpeedDistribution::Alternating { classes: 2 }
        );
        assert_eq!(
            spec.weights[1],
            WeightDistribution::UniformRange { lo: 0.1, hi: 0.9 }
        );
        assert_eq!(spec.stops[1], StopRule::Quiescent(50));
    }

    #[test]
    fn cells_enumerate_innermost_axis_fastest() {
        let spec = SweepSpec::parse(&["protocol=alg1,bhs", "until=nash,quiescent:9"]).unwrap();
        let cells = spec.cells();
        let got: Vec<(ProtocolKind, StopRule)> =
            cells.iter().map(|c| (c.protocol, c.stop)).collect();
        assert_eq!(
            got,
            vec![
                (ProtocolKind::Alg1, StopRule::Nash),
                (ProtocolKind::Alg1, StopRule::Quiescent(9)),
                (ProtocolKind::Bhs, StopRule::Nash),
                (ProtocolKind::Bhs, StopRule::Quiescent(9)),
            ]
        );
    }

    #[test]
    fn alg1_weighted_cells_are_first_class() {
        // alg1 × weighted is a real grid cell (the paper's headline
        // regime); the analysis layer dispatches it to the weight-class
        // engine rather than zeroing it out.
        let spec =
            SweepSpec::parse(&["protocol=alg1,alg2", "weights=unit,uniform:0.2..0.8"]).unwrap();
        let cells = spec.cells();
        let weighted_alg1: Vec<_> = cells
            .iter()
            .filter(|c| c.protocol == ProtocolKind::Alg1 && !c.is_uniform_tasks())
            .collect();
        assert_eq!(weighted_alg1.len(), 1);
        assert_eq!(
            weighted_alg1[0].weights,
            WeightDistribution::UniformRange { lo: 0.2, hi: 0.8 }
        );
    }

    #[test]
    fn grid_labels_roundtrip() {
        for token in [
            "ring:8",
            "path:5",
            "complete:6",
            "star:7",
            "hypercube:3",
            "mesh:2x5",
            "torus:3x4",
        ] {
            assert_eq!(family_grid_label(parse_family(token).unwrap()), token);
        }
        for token in [
            "uniform",
            "alternating:3",
            "integer:5",
            "two-class:4:0.25",
            "ramp:4:0.5",
        ] {
            assert_eq!(speeds_grid_label(parse_speeds(token).unwrap()), token);
        }
        for token in [
            "unit",
            "uniform:0.1..0.9",
            "power-law:1.2:0.05",
            "bimodal:0.1:1:0.3",
        ] {
            assert_eq!(weights_grid_label(parse_weights(token).unwrap()), token);
        }
        for token in [
            "hot",
            "node:3",
            "slowest",
            "random",
            "proportional",
            "round-robin",
        ] {
            assert_eq!(placement_grid_label(parse_placement(token).unwrap()), token);
        }
        for token in ["nash", "quiescent:17", "psi0:12.5"] {
            assert_eq!(StopRule::parse(token).unwrap().grid_label(), token);
        }
        for token in ["none", "poisson:0.5", "batch:64:10"] {
            assert_eq!(arrivals_grid_label(parse_arrivals(token).unwrap()), token);
        }
        for token in ["none", "rate:0.05", "count:32"] {
            assert_eq!(
                completions_grid_label(parse_completions(token).unwrap()),
                token
            );
        }
        for token in ["none", "rate:0.02"] {
            assert_eq!(churn_grid_label(parse_churn(token).unwrap()), token);
        }
        for token in ["none", "drift:0.1", "shock:150:0.25", "feedback:0.2"] {
            assert_eq!(speed_dyn_grid_label(parse_speed_dyn(token).unwrap()), token);
        }
        for p in ProtocolKind::ALL {
            assert_eq!(ProtocolKind::parse(p.grid_label()).unwrap(), p);
        }
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in [
            &["graph=blob:4"][..],
            &["graph=ring"],
            &["graph=ring:zero"],
            &["graph=torus:4"],
            &["notakey=1"],
            &["graph"],
            &["trials=0"],
            &["trials=2,3"],
            &["max-rounds=0"],
            &["protocol=teleport"],
            &["until=psi0:-1"],
            &["until=sometime"],
            &["speeds=warp"],
            &["speeds=alternating:0"],
            &["speeds=integer:0"],
            &["speeds=two-class:0:0.5"],
            &["speeds=two-class:4:1.5"],
            &["speeds=ramp:0.5:0.5"],
            &["speeds=ramp:4:0"],
            &["graph=hypercube:0"],
            &["graph=hypercube:64"],
            &["weights=uniform:0.9..0.1"],
            &["weights=heavy"],
            &["weights=power-law:0:0.1"],
            &["weights=power-law:1.2:1"],
            &["weights=bimodal:0:1:0.5"],
            &["weights=bimodal:0.1:1:1.5"],
            &["placement=везде"],
            &["tasks-per-node=0"],
            &["graph="],
            &["arrivals=sometimes"],
            &["arrivals=poisson:-1"],
            &["arrivals=poisson:inf"],
            &["arrivals=batch:0:5"],
            &["arrivals=batch:64:0"],
            &["arrivals=batch:64"],
            &["completions=rate:0"],
            &["completions=rate:1.5"],
            &["completions=count:0"],
            &["completions=never"],
            &["churn=rate:0"],
            &["churn=rate:2"],
            &["churn=often"],
            &["speed-dyn=drift:0"],
            &["speed-dyn=drift:nan"],
            &["speed-dyn=shock:10:0"],
            &["speed-dyn=shock:10:1.5"],
            &["speed-dyn=shock:10"],
            &["speed-dyn=feedback:0"],
            &["speed-dyn=feedback:1.1"],
            &["speed-dyn=jitter"],
        ] {
            let err = SweepSpec::parse(bad).unwrap_err();
            assert!(
                err.to_string().contains("sweep grid error"),
                "token {bad:?} → {err}"
            );
        }
    }

    #[test]
    fn dynamic_axes_default_to_none_and_nest_innermost() {
        // A grid that never names the dynamic keys produces the same
        // cells (and hence per-cell seeds) it always did.
        let spec = SweepSpec::parse(&["protocol=alg1,bhs"]).unwrap();
        assert_eq!(spec.cell_count(), 2);
        assert!(spec.cells().iter().all(|c| !c.is_dynamic()));

        let spec = SweepSpec::parse(&[
            "protocol=alg2",
            "arrivals=poisson:0.5",
            "completions=rate:0.05,count:8",
            "churn=rate:0.02",
            "speed-dyn=none,drift:0.1",
        ])
        .unwrap();
        assert_eq!(spec.cell_count(), 4);
        let cells = spec.cells();
        assert!(cells.iter().all(|c| c.is_dynamic()));
        // speed-dyn is the innermost axis.
        assert_eq!(cells[0].speed_dyn, None);
        assert_eq!(
            cells[1].speed_dyn,
            Some(SpeedDynamics::Drift { sigma: 0.1 })
        );
        assert_eq!(
            cells[0].completions,
            Some(CompletionProcess::Rate { mu: 0.05 })
        );
        assert_eq!(
            cells[2].completions,
            Some(CompletionProcess::PerRound { count: 8 })
        );
        let cfg = cells[1].dynamic_config();
        assert_eq!(cfg.arrivals, Some(ArrivalProcess::Poisson { rate: 0.5 }));
        assert_eq!(cfg.churn, Some(ChurnProcess { rate: 0.02 }));
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = SweepSpec::parse(&["trials=2", "trials=3"]).unwrap_err();
        assert!(err.to_string().contains("given twice"), "{err}");
    }

    #[test]
    fn error_implements_std_error() {
        let err = SweepSpec::parse(&["oops"]).unwrap_err();
        let _: &dyn std::error::Error = &err;
        assert!(err.to_string().contains("key=value"));
    }
}
