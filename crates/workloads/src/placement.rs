//! Initial task placements.
//!
//! The placement fixes the initial state `X₀` of a run. The paper's
//! convergence bounds hold from *any* start; experiments use the
//! adversarial single-node start for worst-case measurements (it maximizes
//! `Ψ₀(X₀)` up to the choice of node) and random starts for average-case
//! curves.

use rand::Rng;
use slb_core::model::{System, TaskState};
use slb_graphs::NodeId;

/// An initial-placement policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Every task on one explicit node.
    AllOnNode(usize),
    /// Every task on the slowest node (ties → smallest index): the
    /// worst-case start for `Ψ₀` noted in the proof of Lemma 3.15.
    AllOnSlowest,
    /// Each task on an independent uniformly random node.
    UniformRandom,
    /// Each task on a random node chosen proportionally to speed — the
    /// "already roughly balanced" start (deviations are
    /// `O(√(m/n))`-scale).
    SpeedProportional,
    /// Deterministic round-robin over nodes in index order.
    RoundRobin,
}

impl Placement {
    /// Generates an assignment vector (`result[ℓ]` = node of task `ℓ`).
    ///
    /// # Panics
    ///
    /// Panics if `AllOnNode(v)` has `v` out of range.
    pub fn assign<R: Rng + ?Sized>(self, system: &System, rng: &mut R) -> Vec<usize> {
        let n = system.node_count();
        let m = system.task_count();
        match self {
            Placement::AllOnNode(v) => {
                assert!(v < n, "placement node {v} out of range for {n} nodes");
                vec![v; m]
            }
            Placement::AllOnSlowest => {
                let slowest = (0..n)
                    .min_by(|&a, &b| {
                        system
                            .speeds()
                            .speed(a)
                            .partial_cmp(&system.speeds().speed(b))
                            .expect("speeds are finite")
                    })
                    .expect("at least one node");
                vec![slowest; m]
            }
            Placement::UniformRandom => (0..m).map(|_| rng.gen_range(0..n)).collect(),
            Placement::SpeedProportional => {
                let total = system.speeds().total();
                (0..m)
                    .map(|_| {
                        let mut x = rng.gen_range(0.0..total);
                        for v in 0..n {
                            let s = system.speeds().speed(v);
                            if x < s {
                                return v;
                            }
                            x -= s;
                        }
                        n - 1
                    })
                    .collect()
            }
            Placement::RoundRobin => (0..m).map(|t| t % n).collect(),
        }
    }

    /// Generates the [`TaskState`] directly.
    ///
    /// # Panics
    ///
    /// Panics as in [`Placement::assign`].
    pub fn state<R: Rng + ?Sized>(self, system: &System, rng: &mut R) -> TaskState {
        let assignment = self.assign(system, rng);
        TaskState::from_assignment(system, &assignment)
            .expect("generated assignments are always valid")
    }

    /// A short label for CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Placement::AllOnNode(_) => "all-on-node",
            Placement::AllOnSlowest => "all-on-slowest",
            Placement::UniformRandom => "uniform-random",
            Placement::SpeedProportional => "speed-proportional",
            Placement::RoundRobin => "round-robin",
        }
    }
}

/// Convenience: the adversarial hot-spot state on node 0.
pub fn hot_spot(system: &System) -> TaskState {
    TaskState::all_on_node(system, NodeId(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slb_core::model::{SpeedVector, TaskSet};
    use slb_core::potential;
    use slb_graphs::generators;

    fn system(speeds: Vec<f64>, m: usize) -> System {
        System::new(
            generators::ring(speeds.len()),
            SpeedVector::new(speeds).unwrap(),
            TaskSet::uniform(m),
        )
        .unwrap()
    }

    #[test]
    fn all_on_node_places_everything() {
        let sys = system(vec![1.0; 5], 50);
        let mut rng = StdRng::seed_from_u64(1);
        let st = Placement::AllOnNode(3).state(&sys, &mut rng);
        assert_eq!(st.node_task_count(NodeId(3)), 50);
        st.check_invariants(&sys).unwrap();
    }

    #[test]
    fn all_on_slowest_finds_the_slow_node() {
        let sys = system(vec![2.0, 1.0, 4.0, 1.0, 3.0], 10);
        let mut rng = StdRng::seed_from_u64(2);
        let a = Placement::AllOnSlowest.assign(&sys, &mut rng);
        assert!(a.iter().all(|&v| v == 1), "ties break to smallest index");
    }

    #[test]
    fn uniform_random_covers_nodes() {
        let sys = system(vec![1.0; 8], 4000);
        let mut rng = StdRng::seed_from_u64(3);
        let st = Placement::UniformRandom.state(&sys, &mut rng);
        for v in 0..8 {
            let c = st.node_task_count(NodeId(v));
            assert!(c > 300, "node {v} got only {c} of ~500 expected");
        }
    }

    #[test]
    fn speed_proportional_tracks_speeds() {
        let sys = system(vec![1.0, 1.0, 8.0, 1.0, 1.0], 6000);
        let mut rng = StdRng::seed_from_u64(4);
        let st = Placement::SpeedProportional.state(&sys, &mut rng);
        // Node 2 has 8/12 of capacity → ~4000 tasks.
        let c = st.node_task_count(NodeId(2));
        assert!((3600..4400).contains(&c), "fast node got {c}");
        // The start is near balance: Ψ₀ far below the hot-spot start.
        let hot = potential::report(&sys, &hot_spot(&sys)).psi0;
        let prop = potential::report(&sys, &st).psi0;
        assert!(prop < hot / 100.0);
    }

    #[test]
    fn round_robin_is_deterministic_and_even() {
        let sys = system(vec![1.0; 4], 10);
        let mut rng = StdRng::seed_from_u64(5);
        let a = Placement::RoundRobin.assign(&sys, &mut rng);
        assert_eq!(a, vec![0, 1, 2, 3, 0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Placement::AllOnNode(0).label(),
            Placement::AllOnSlowest.label(),
            Placement::UniformRandom.label(),
            Placement::SpeedProportional.label(),
            Placement::RoundRobin.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), labels.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_node_panics() {
        let sys = system(vec![1.0; 3], 3);
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Placement::AllOnNode(9).assign(&sys, &mut rng);
    }
}
