//! Fault, signal-degradation, and retry specifications for `slb serve`.
//!
//! Three orthogonal axes degrade the perfect-information service harness:
//!
//! * **Faults** ([`FaultSpec`], `faults=crash:MTTF:MTTR`) — every backend
//!   runs an alternating renewal process: up for an exponential time with
//!   mean `MTTF`, down for an exponential time with mean `MTTR`. A crash
//!   evicts the backend's queue; a recovery returns it empty.
//! * **Signal** ([`SignalSpec`], `signal=stale:D` / `loss:P` /
//!   `stale:D+loss:P`) — policies stop seeing live state and instead see
//!   snapshots refreshed every `D` units; each refresh loses each
//!   backend's probe independently with probability `P`, leaving the
//!   previous (now older) snapshot in place.
//! * **Retry** ([`RetrySpec`], `retry=max:R:base:B`) — a job that lands
//!   on a dead backend (or is evicted by a crash) is resubmitted up to
//!   `R` times with exponential backoff `B·2^(a−1)` units and
//!   deterministic jitter; a job exhausting its budget is a *failed*
//!   job, counted, never silently dropped.
//!
//! Every parser mirrors [`crate::traffic`]: `none` disables the axis and
//! every label round-trips through its parser.

use crate::sweep::SweepParseError;
use slb_core::rng::streams::serve::RETRY_ATTEMPT_STRIDE;

/// Per-backend crash/recover renewal process (`faults=crash:MTTF:MTTR`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Mean time to failure in units of virtual time (exponential).
    pub mttf: f64,
    /// Mean time to recovery in units of virtual time (exponential).
    pub mttr: f64,
}

/// Signal-degradation model (`signal=stale:D+loss:P`).
///
/// The default (`stale = 0`, `loss = 0`) is the perfect-information view:
/// snapshots are rebuilt at every routing decision and never lost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SignalSpec {
    /// Probe refresh interval in units of virtual time. Zero means fresh
    /// state at every decision (the perfect-information default).
    pub stale: f64,
    /// Per-backend probe loss probability per refresh, in `[0, 1)`.
    pub loss: f64,
}

impl SignalSpec {
    /// Whether this spec degrades the view at all.
    pub fn is_degraded(&self) -> bool {
        self.stale > 0.0
    }
}

/// Bounded retry with exponential backoff (`retry=max:R:base:B`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetrySpec {
    /// Maximum resubmissions per job (attempts beyond the first), at
    /// least 1 and below [`RETRY_ATTEMPT_STRIDE`].
    pub max: u32,
    /// Backoff base in units of virtual time: attempt `a ≥ 1` waits
    /// `base · 2^(a−1)` units, scaled by the jitter draw.
    pub base: f64,
}

/// Parses the fault token: `crash:MTTF:MTTR` or `none`.
pub fn parse_faults(token: &str) -> Result<Option<FaultSpec>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid faults `{token}`"));
    let rest = token.strip_prefix("crash:").ok_or_else(bad)?;
    let (mttf, mttr) = rest.split_once(':').ok_or_else(bad)?;
    let mttf: f64 = mttf.parse().map_err(|_| bad())?;
    let mttr: f64 = mttr.parse().map_err(|_| bad())?;
    if !(mttf.is_finite() && mttf > 0.0) {
        return Err(SweepParseError::new(format!(
            "fault mttf must be positive and finite, got `{mttf}`"
        )));
    }
    if !(mttr.is_finite() && mttr > 0.0) {
        return Err(SweepParseError::new(format!(
            "fault mttr must be positive and finite, got `{mttr}`"
        )));
    }
    Ok(Some(FaultSpec { mttf, mttr }))
}

/// Parses the signal token: `stale:D`, `loss:P`, `stale:D+loss:P` (any
/// clause order, each at most once), or `none`. Clauses join with `+`,
/// not `,`, so the round-trip label stays a single CSV field.
pub fn parse_signal(token: &str) -> Result<SignalSpec, SweepParseError> {
    if token == "none" {
        return Ok(SignalSpec::default());
    }
    let mut stale: Option<f64> = None;
    let mut loss: Option<f64> = None;
    // `+` separates clauses so the label stays a single CSV field (a comma
    // would make any row carrying it ragged against the header).
    for clause in token.split('+') {
        let bad = || SweepParseError::new(format!("invalid signal clause `{clause}`"));
        let (key, value) = clause.split_once(':').ok_or_else(bad)?;
        match key {
            "stale" => {
                if stale.is_some() {
                    return Err(SweepParseError::new(
                        "signal clause `stale` given twice".to_string(),
                    ));
                }
                let d: f64 = value.parse().map_err(|_| bad())?;
                if !(d.is_finite() && d > 0.0) {
                    return Err(SweepParseError::new(format!(
                        "signal staleness must be positive and finite, got `{value}`"
                    )));
                }
                stale = Some(d);
            }
            "loss" => {
                if loss.is_some() {
                    return Err(SweepParseError::new(
                        "signal clause `loss` given twice".to_string(),
                    ));
                }
                let p: f64 = value.parse().map_err(|_| bad())?;
                if !(p.is_finite() && (0.0..1.0).contains(&p)) {
                    return Err(SweepParseError::new(format!(
                        "signal loss must lie in [0, 1), got `{value}`"
                    )));
                }
                loss = Some(p);
            }
            _ => return Err(bad()),
        }
    }
    let spec = SignalSpec {
        stale: stale.unwrap_or(0.0),
        loss: loss.unwrap_or(0.0),
    };
    if spec.loss > 0.0 && spec.stale == 0.0 {
        return Err(SweepParseError::new(
            "signal loss needs a probe interval: combine `loss:P` with `stale:D`".to_string(),
        ));
    }
    Ok(spec)
}

/// Parses the retry token: `max:R:base:B` or `none`.
pub fn parse_retry(token: &str) -> Result<Option<RetrySpec>, SweepParseError> {
    if token == "none" {
        return Ok(None);
    }
    let bad = || SweepParseError::new(format!("invalid retry `{token}`"));
    let rest = token.strip_prefix("max:").ok_or_else(bad)?;
    let (max, rest) = rest.split_once(':').ok_or_else(bad)?;
    let base = rest.strip_prefix("base:").ok_or_else(bad)?;
    let max: u32 = max.parse().map_err(|_| bad())?;
    let base: f64 = base.parse().map_err(|_| bad())?;
    if max == 0 {
        return Err(SweepParseError::new(
            "retry budget needs at least one attempt".to_string(),
        ));
    }
    if u64::from(max) >= RETRY_ATTEMPT_STRIDE {
        return Err(SweepParseError::new(format!(
            "retry budget must stay below the stream stride {RETRY_ATTEMPT_STRIDE}, got `{max}`"
        )));
    }
    if !(base.is_finite() && base > 0.0) {
        return Err(SweepParseError::new(format!(
            "retry backoff base must be positive and finite, got `{base}`"
        )));
    }
    Ok(Some(RetrySpec { max, base }))
}

/// Round-trip label of the fault axis (the `faults=` token).
pub fn faults_label(faults: Option<FaultSpec>) -> String {
    match faults {
        None => "none".to_string(),
        Some(FaultSpec { mttf, mttr }) => format!("crash:{mttf}:{mttr}"),
    }
}

/// Round-trip label of the signal axis (the `signal=` token).
pub fn signal_label(signal: SignalSpec) -> String {
    match (signal.stale > 0.0, signal.loss > 0.0) {
        (false, _) => "none".to_string(),
        (true, false) => format!("stale:{}", signal.stale),
        (true, true) => format!("stale:{}+loss:{}", signal.stale, signal.loss),
    }
}

/// Round-trip label of the retry axis (the `retry=` token).
pub fn retry_label(retry: Option<RetrySpec>) -> String {
    match retry {
        None => "none".to_string(),
        Some(RetrySpec { max, base }) => format!("max:{max}:base:{base}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_tokens_roundtrip() {
        for token in ["none", "crash:8:2", "crash:0.5:0.25"] {
            let parsed = parse_faults(token).expect("valid token");
            assert_eq!(faults_label(parsed), token);
        }
    }

    #[test]
    fn fault_rejects_malformed_tokens() {
        for token in [
            "crash:",
            "crash:8",
            "crash:8:",
            "crash:0:2",
            "crash:8:-1",
            "crash:inf:2",
            "burn:8:2",
            "",
        ] {
            assert!(parse_faults(token).is_err(), "accepted `{token}`");
        }
        // Each malformed shape names its own failure.
        let err = parse_faults("crash:0:2").expect_err("zero mttf");
        assert!(err.to_string().contains("mttf"), "{err}");
        let err = parse_faults("crash:8:nan").expect_err("nan mttr");
        assert!(err.to_string().contains("mttr"), "{err}");
    }

    #[test]
    fn signal_tokens_roundtrip() {
        for token in ["none", "stale:0.5", "stale:2+loss:0.25"] {
            let parsed = parse_signal(token).expect("valid token");
            assert_eq!(signal_label(parsed), token);
        }
        // Clause order is free; the label canonicalizes.
        let parsed = parse_signal("loss:0.1+stale:1").expect("valid token");
        assert_eq!(signal_label(parsed), "stale:1+loss:0.1");
    }

    #[test]
    fn signal_rejects_malformed_tokens() {
        for token in [
            "stale:-1",
            "stale:0",
            "stale:",
            "loss:1",
            "loss:-0.1",
            "loss:0.5",
            "stale:1+stale:2",
            "stale:1+loss:0.1,loss:0.2",
            "fresh:1",
            "",
        ] {
            assert!(parse_signal(token).is_err(), "accepted `{token}`");
        }
        let err = parse_signal("stale:-1").expect_err("negative staleness");
        assert!(err.to_string().contains("positive"), "{err}");
        let err = parse_signal("stale:1+stale:2").expect_err("duplicate clause");
        assert!(err.to_string().contains("twice"), "{err}");
        let err = parse_signal("loss:0.5").expect_err("loss without stale");
        assert!(err.to_string().contains("probe interval"), "{err}");
    }

    #[test]
    fn retry_tokens_roundtrip() {
        for token in ["none", "max:3:base:0.25", "max:31:base:1"] {
            let parsed = parse_retry(token).expect("valid token");
            assert_eq!(retry_label(parsed), token);
        }
    }

    #[test]
    fn retry_rejects_malformed_tokens() {
        for token in [
            "max:",
            "max:3",
            "max:3:0.25",
            "max:0:base:1",
            "max:32:base:1",
            "max:3:base:0",
            "max:3:base:-1",
            "max:3:base:inf",
            "base:1:max:3",
            "",
        ] {
            assert!(parse_retry(token).is_err(), "accepted `{token}`");
        }
        let err = parse_retry("max:32:base:1").expect_err("stride overflow");
        assert!(err.to_string().contains("stride"), "{err}");
        let err = parse_retry("max:0:base:1").expect_err("zero budget");
        assert!(err.to_string().contains("at least one"), "{err}");
    }
}
