//! Weight-class quantization for the count-based weighted engine.
//!
//! The weight-class engine
//! ([`WeightedFastSim`](slb_core::engine::weighted_fast::WeightedFastSim))
//! represents state as per-(node, class) counts, so it needs a *small*
//! set of distinct weights. Every distribution in [`crate::weights`] is
//! either finite-support (unit, bimodal — mapped losslessly) or
//! continuous (uniform range, bounded power law), which [`WeightClasses`]
//! quantizes to a bounded number of equal-width bins, each represented by
//! its midpoint. Quantization is the documented approximation of the fast
//! weighted path: per-task weights move to the nearest class level, so
//! aggregate weight is preserved to within half a bin width per task
//! (`(hi − lo)/(2·max_classes)`), and the engine's `Ψ₀`/equilibrium
//! predicates are evaluated against the quantized weights.

use slb_core::model::TaskSet;

/// A small, sorted set of weight classes with a total map from sampled
/// weights to class indices.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightClasses {
    /// Class weights, ascending and distinct, all in `(0, 1]`.
    weights: Vec<f64>,
    /// Whether the mapping is lossless (every sample equals its class).
    exact: bool,
    /// Bin range for the quantized case.
    lo: f64,
    hi: f64,
}

impl WeightClasses {
    /// Default class budget: enough for every finite-support distribution
    /// in [`crate::weights`] with room to spare, small enough that the
    /// engine's per-round `O(|E| + n·k)` work stays |E|-dominated.
    pub const DEFAULT_MAX_CLASSES: usize = 16;

    /// Builds classes from sampled task weights: lossless when the sample
    /// has at most `max_classes` distinct values, otherwise `max_classes`
    /// equal-width bins over the sample range (midpoint representatives).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `max_classes == 0`, or any sample
    /// lies outside `(0, 1]`.
    pub fn from_samples(samples: &[f64], max_classes: usize) -> Self {
        assert!(!samples.is_empty(), "need at least one sampled weight");
        assert!(max_classes > 0, "need at least one class");
        assert!(
            samples
                .iter()
                .all(|&w| w > 0.0 && w <= 1.0 && w.is_finite()),
            "sampled weights must lie in (0, 1]"
        );
        let mut distinct = samples.to_vec();
        distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite weights"));
        distinct.dedup();
        let (lo, hi) = (distinct[0], *distinct.last().expect("nonempty"));
        if distinct.len() <= max_classes {
            return WeightClasses {
                weights: distinct,
                exact: true,
                lo,
                hi,
            };
        }
        let k = max_classes;
        let width = (hi - lo) / k as f64;
        let weights = (0..k)
            .map(|c| (lo + (c as f64 + 0.5) * width).min(1.0))
            .collect();
        WeightClasses {
            weights,
            exact: false,
            lo,
            hi,
        }
    }

    /// The class weights, ascending.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of classes `k`.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the set is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Whether the sample→class map is lossless.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The class index of a weight: its exact position when lossless, its
    /// bin otherwise (out-of-range weights clamp to the outer bins).
    pub fn class_of(&self, w: f64) -> usize {
        if self.exact {
            // Nearest class (samples always match one exactly).
            return match self
                .weights
                .binary_search_by(|c| c.partial_cmp(&w).expect("finite weights"))
            {
                Ok(i) => i,
                Err(0) => 0,
                Err(i) if i == self.weights.len() => i - 1,
                Err(i) => {
                    if w - self.weights[i - 1] <= self.weights[i] - w {
                        i - 1
                    } else {
                        i
                    }
                }
            };
        }
        let k = self.weights.len();
        let span = self.hi - self.lo;
        if span <= 0.0 {
            return 0;
        }
        (((w - self.lo) / span * k as f64).floor() as usize).min(k - 1)
    }

    /// The class-level weight a sampled weight maps to.
    pub fn quantize(&self, w: f64) -> f64 {
        self.weights[self.class_of(w)]
    }

    /// Per-(node, class) counts for tasks assigned to nodes — the initial
    /// state of the weight-class engine. `task_nodes[t]` is the hosting
    /// node of the task with weight `task_weights[t]`.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or a node index is out of
    /// range.
    pub fn node_class_counts(
        &self,
        task_weights: &[f64],
        task_nodes: &[usize],
        nodes: usize,
    ) -> Vec<Vec<u64>> {
        assert_eq!(
            task_weights.len(),
            task_nodes.len(),
            "one node per task weight"
        );
        let mut counts = vec![vec![0u64; self.len()]; nodes];
        for (&w, &v) in task_weights.iter().zip(task_nodes) {
            assert!(v < nodes, "task node {v} out of range");
            counts[v][self.class_of(w)] += 1;
        }
        counts
    }

    /// The quantized per-task weights as a [`TaskSet`] — what the fast
    /// engine effectively simulates; useful for comparing against the
    /// per-task engines on the same (quantized) instance.
    ///
    /// # Errors
    ///
    /// Propagates [`TaskSet::weighted`] validation (cannot fail for
    /// classes built by [`WeightClasses::from_samples`]).
    pub fn quantized_task_set(
        &self,
        task_weights: &[f64],
    ) -> Result<TaskSet, slb_core::model::TaskError> {
        TaskSet::weighted(task_weights.iter().map(|&w| self.quantize(w)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weights::WeightDistribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn finite_support_is_lossless() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples = WeightDistribution::Bimodal {
            light: 0.2,
            heavy: 1.0,
            heavy_fraction: 0.3,
        }
        .sample(500, &mut rng);
        let classes = WeightClasses::from_samples(&samples, WeightClasses::DEFAULT_MAX_CLASSES);
        assert!(classes.is_exact());
        assert!(!classes.is_empty());
        assert_eq!(classes.weights(), &[0.2, 1.0]);
        for &w in &samples {
            assert_eq!(classes.quantize(w), w);
        }
        // Unit weights collapse to one class.
        let unit = WeightClasses::from_samples(&[1.0; 10], 4);
        assert_eq!(unit.len(), 1);
        assert!(unit.is_exact());
        assert_eq!(unit.class_of(1.0), 0);
    }

    #[test]
    fn continuous_sample_quantizes_to_midpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples = WeightDistribution::UniformRange { lo: 0.1, hi: 0.9 }.sample(2000, &mut rng);
        let classes = WeightClasses::from_samples(&samples, 8);
        assert!(!classes.is_exact());
        assert_eq!(classes.len(), 8);
        // Midpoints ascend, stay inside (0, 1], and every sample maps to
        // a class within half a bin width.
        let width = (samples.iter().cloned().fold(f64::MIN, f64::max)
            - samples.iter().cloned().fold(f64::MAX, f64::min))
            / 8.0;
        for pair in classes.weights().windows(2) {
            assert!(pair[0] < pair[1]);
        }
        for &w in &samples {
            let q = classes.quantize(w);
            assert!(q > 0.0 && q <= 1.0);
            assert!(
                (q - w).abs() <= width / 2.0 + 1e-12,
                "sample {w} maps to distant class {q}"
            );
        }
        // The quantized TaskSet is valid and close in total weight.
        let total: f64 = samples.iter().sum();
        let qset = classes.quantized_task_set(&samples).unwrap();
        assert!((qset.total_weight() - total).abs() <= samples.len() as f64 * width / 2.0);
    }

    #[test]
    fn power_law_sample_stays_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples = WeightDistribution::BoundedPowerLaw {
            alpha: 1.2,
            min: 0.05,
        }
        .sample(3000, &mut rng);
        let classes = WeightClasses::from_samples(&samples, WeightClasses::DEFAULT_MAX_CLASSES);
        assert_eq!(classes.len(), WeightClasses::DEFAULT_MAX_CLASSES);
        assert!(classes.weights().iter().all(|&w| w > 0.0 && w <= 1.0));
    }

    #[test]
    fn node_class_counts_shape() {
        let classes = WeightClasses::from_samples(&[0.25, 1.0, 0.25, 1.0], 4);
        let counts = classes.node_class_counts(&[0.25, 1.0, 0.25, 1.0], &[0, 0, 2, 1], 3);
        assert_eq!(counts, vec![vec![1, 1], vec![0, 1], vec![1, 0]]);
        let total: u64 = counts.iter().flatten().sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn class_of_handles_between_and_out_of_range_queries() {
        let classes = WeightClasses::from_samples(&[0.2, 0.6, 1.0], 8);
        assert!(classes.is_exact());
        assert_eq!(classes.class_of(0.2), 0);
        assert_eq!(classes.class_of(0.35), 0); // nearer 0.2
        assert_eq!(classes.class_of(0.5), 1); // nearer 0.6
        assert_eq!(classes.class_of(0.05), 0);
        assert_eq!(classes.class_of(1.0), 2);
    }

    #[test]
    #[should_panic(expected = "sampled weights must lie in (0, 1]")]
    fn rejects_out_of_range_samples() {
        let _ = WeightClasses::from_samples(&[0.5, 1.5], 4);
    }

    #[test]
    #[should_panic(expected = "need at least one class")]
    fn rejects_zero_classes() {
        let _ = WeightClasses::from_samples(&[0.5], 0);
    }
}
