//! Workload generators for selfish load-balancing experiments.
//!
//! The paper's theorems are worst-case over initial states, weights, and
//! speeds; its experimental reproduction therefore needs controlled
//! generators for each axis:
//!
//! * [`placement`] — initial task placements, from the adversarial
//!   "everything on one node" start (the `Ψ₀(X₀) ≤ m²` worst case used in
//!   Lemma 3.15) to random and near-balanced starts,
//! * [`weights`] — task-weight distributions on `(0, 1]` (uniform, ranges,
//!   bounded power laws, bimodal mixes),
//! * [`weight_classes`] — quantization of sampled weights into the small
//!   class sets consumed by the count-based weighted engine
//!   (`slb_core::engine::weighted_fast`),
//! * [`speeds`] — machine-speed distributions, including the
//!   integer-granularity families required by Theorem 1.2,
//! * [`scenario`] — named presets bundling a topology, speeds, weights and
//!   placement into a ready-to-run [`System`](slb_core::model::System),
//! * [`sweep`] — declarative experiment grids ([`SweepSpec`]) with the
//!   `key=a,b,c` grid syntax consumed by `slb sweep` and the analysis
//!   layer's sweep runner,
//! * [`traffic`] — synthetic open/closed-loop traffic specifications
//!   ([`TrafficSpec`]) for the `slb serve` harness,
//! * [`faults`] — fault-injection, signal-degradation, and retry
//!   specifications ([`FaultSpec`], [`SignalSpec`], [`RetrySpec`]) for
//!   the `slb serve` harness's degraded modes,
//! * [`validate`] — declarative theorem-validation ladders
//!   ([`ValidateSpec`]): sizeless graph families × geometric `n` and
//!   `m/n` ladders, consumed by `slb validate` and the analysis layer's
//!   conformance runner.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use slb_workloads::{placement::Placement, scenario};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let built = scenario::heterogeneous_torus(4, 4, 10, &mut rng)?;
//! assert_eq!(built.system.node_count(), 16);
//! assert_eq!(built.system.task_count(), 160);
//! # Ok::<(), slb_workloads::ScenarioError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod placement;
pub mod scenario;
pub mod speeds;
pub mod sweep;
pub mod traffic;
pub mod validate;
pub mod weight_classes;
pub mod weights;

pub use faults::{FaultSpec, RetrySpec, SignalSpec};
pub use scenario::{BuiltScenario, ScenarioError};
pub use sweep::{CellSpec, ProtocolKind, StopRule, SweepParseError, SweepSpec};
pub use traffic::{ClosedLoop, OpenLoop, TrafficSpec};
pub use validate::{FamilyShape, LoadRule, Regime, RowSpec, ValidateSpec};
pub use weight_classes::WeightClasses;
