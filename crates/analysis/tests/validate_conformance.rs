//! Statistical conformance of the validation ladders against Table 1:
//! the repo's core scientific deliverable, asserted as a test.
//!
//! The fast tests run Algorithm 1 and Algorithm 2 on ring and complete
//! ladders in the Theorem 1.1/1.3 regime (`load=delta:2`, so `m = 16n³`
//! and the reached `Ψ₀ ≤ 4ψ_c` state carries a real `2/(1+δ)`
//! approximation guarantee) and assert that the fitted exponent's 95% CI
//! brackets the Table 1 prediction within the spec's declared exponent
//! tolerance — the prediction being the bound shape evaluated over the
//! same ladder (`pred_ladder`), which carries the `log` factors the
//! asymptotic exponents drop. The alg2 ladders became runnable at these
//! depths when alg2 moved onto the count-based `SpeedFastSim` (one
//! multinomial per node and weight class instead of `O(m)` per-task
//! work per round).
//!
//! The deeper ladders (one more size doubling, both regimes — Theorem
//! 1.2's exact column included — and the alg2/bhs speed-aware rows) used
//! to be `#[ignore]`-gated for a manual slow profile. With the sharded
//! round kernel and the optimized dev builds of the numeric crates
//! (`profile.dev.package.*` in the workspace root) they finish in
//! seconds, so they now run un-gated in plain `cargo test -q` — as does
//! the alg1 hypercube ladder, which reaches n = 4096.

use slb_analysis::validate::{run_validate, RowResult, ValidateConfig};
use slb_workloads::{Regime, ValidateSpec};

/// The CI, widened by the spec's declared exponent tolerance, must
/// bracket the finite-size Table 1 prediction.
fn assert_brackets_within_tolerance(row: &RowResult, exp_tol: f64) {
    let pred = row
        .predicted_shape
        .expect("paper protocols carry a Table 1 prediction");
    let (lo, hi) = (row.fit.ci_lo - exp_tol, row.fit.ci_hi + exp_tol);
    assert!(
        lo <= pred && pred <= hi,
        "{} × {} {}: prediction {pred:.3} outside CI±tol [{lo:.3}, {hi:.3}] \
         (fitted {:.3}, CI [{:.3}, {:.3}])",
        row.spec.protocol.grid_label(),
        row.spec.family.label(),
        row.spec.regime.label(),
        row.fit.exponent,
        row.fit.ci_lo,
        row.fit.ci_hi,
    );
    assert_eq!(row.exponent_ok, Some(true), "exponent check must pass");
    assert_eq!(row.bound_ok, Some(true), "theorem bound check must pass");
}

#[test]
fn alg1_ring_and_complete_exponents_bracket_table1() {
    let spec = ValidateSpec::parse(&[
        "family=ring,complete",
        "n=8..32:x2",
        "load=delta:2",
        "protocol=alg1",
        "regime=approx",
        "trials=3",
        "max-rounds=500000",
    ])
    .unwrap();
    let out = run_validate(&spec, ValidateConfig::parallel(0xA11CE)).unwrap();
    assert_eq!(out.rows.len(), 2);
    for row in &out.rows {
        assert!(!row.censored(), "{} censored", row.spec.family.label());
        assert_brackets_within_tolerance(row, spec.exp_tol);
        // δ = 2 > 1: the 2/(1+δ) quality guarantee is non-vacuous here,
        // and must hold with a large margin.
        assert_eq!(row.gap_ok, Some(true));
        for p in &row.points {
            assert!((p.eps_delta - 2.0 / 3.0).abs() < 0.01, "δ must be 2");
            assert!(p.gap.mean < p.eps_delta, "gap {} too large", p.gap.mean);
        }
        assert!(row.conforms());
    }
    // The two families are distinguishable: ring scales ≈ n², complete
    // ≈ log n — the measured exponents must be far apart.
    let ring = &out.rows[0];
    let complete = &out.rows[1];
    assert!(
        ring.fit.exponent > complete.fit.exponent + 1.0,
        "ring ({}) must scale visibly faster than complete ({})",
        ring.fit.exponent,
        complete.fit.exponent,
    );
}

/// The alg2 ladder at the same depth as the alg1 fast test — previously
/// out of reach (the per-task engine pays `O(m) = O(16n³)` per round;
/// the count-based `SpeedFastSim` pays `O(|E| + n·k)`). Weighted bimodal
/// tasks put the row in the Theorem 1.3 regime: the Ψ₀ hitting-time
/// exponent must bracket Table 1's approximate column and the reached
/// state must satisfy the `2/(1+δ)` quality guarantee per trial.
#[test]
fn alg2_weighted_ring_and_complete_exponents_bracket_table1() {
    let spec = ValidateSpec::parse(&[
        "family=ring,complete",
        "n=8..32:x2",
        "load=delta:2",
        "protocol=alg2",
        "weights=bimodal:0.25:1:0.5",
        "regime=approx",
        "trials=3",
        "max-rounds=500000",
    ])
    .unwrap();
    let out = run_validate(&spec, ValidateConfig::parallel(0xA11CE)).unwrap();
    assert_eq!(out.rows.len(), 2);
    for row in &out.rows {
        assert!(!row.censored(), "{} censored", row.spec.family.label());
        assert_brackets_within_tolerance(row, spec.exp_tol);
        // The Theorem 1.3 gap guarantee is checked per trial against each
        // trial's own sampled instance.
        assert_eq!(row.gap_ok, Some(true));
        for p in &row.points {
            assert!(p.gap.mean <= p.eps_delta + 1e-9, "gap {}", p.gap.mean);
        }
        assert!(row.conforms());
    }
}

#[test]
fn alg1_deep_ladder_conformance_including_exact() {
    let spec = ValidateSpec::parse(&[
        "family=ring,complete",
        "n=8..64:x2",
        "load=delta:2",
        "protocol=alg1",
        "regime=approx,exact",
        "trials=3",
        "max-rounds=2000000",
    ])
    .unwrap();
    let out = run_validate(&spec, ValidateConfig::parallel(0xA11CE)).unwrap();
    for row in &out.rows {
        if row.spec.regime == Regime::Approx {
            assert!(!row.censored());
            assert_brackets_within_tolerance(row, spec.exp_tol);
        } else if !row.censored() {
            // Exact-NE hitting times sit far below the (loose) exact
            // column; the one-sided consistency check must still pass.
            assert_eq!(row.exponent_ok, Some(true));
        }
    }
}

/// Algorithm 1 two orders of magnitude past the old ladders: hypercubes
/// of n = 256, 1024, 4096 nodes at a fixed per-node load. With m/n fixed
/// the Table 1 approximate bound reduces to `Θ(log n · log(m/n))`, so
/// the fitted hitting-time exponent must be *tiny* — this is the ladder
/// that tells a polylog family apart from a polynomial one, and it is
/// only tractable because the count engine pays `O(|E| + n)` per round.
#[test]
fn alg1_hypercube_ladder_reaches_4096_nodes() {
    let spec = ValidateSpec::parse(&[
        "family=hypercube",
        "n=256..4096:x4",
        "load=16",
        "protocol=alg1",
        "regime=approx",
        "trials=3",
        "max-rounds=200000",
    ])
    .unwrap();
    let out = run_validate(&spec, ValidateConfig::parallel(42)).unwrap();
    assert_eq!(out.rows.len(), 1);
    let row = &out.rows[0];
    assert!(!row.censored(), "hypercube ladder censored");
    assert_brackets_within_tolerance(row, spec.exp_tol);
    assert!(row.conforms());
    // Polylog, not polynomial: even with the tolerance the fitted
    // exponent must sit far below the slowest polynomial family (n¹).
    assert!(
        row.fit.ci_hi + spec.exp_tol < 1.0,
        "hypercube exponent CI [{:.3}, {:.3}] is not polylog-small",
        row.fit.ci_lo,
        row.fit.ci_hi,
    );
    assert_eq!(row.points.last().unwrap().n, 4096);
}

/// The speed-aware protocols on the deep ladder (`n` up to 64, `m` up to
/// 2²² tasks): unreachable on the per-task engines, routine on
/// `SpeedFastSim`. alg2 rows bracket the Table 1 approximate column
/// (Thm 1.3 bound shape); bhs rows check the exact regime's one-sided
/// consistency with the \[6\] column — Theorem 1.2's exact-NE territory.
///
/// The approximate regime runs the full ladder to n = 64. The exact
/// regime stops one doubling earlier: alg2's exact-NE absorption time in
/// the `delta:2` regime grows with `m = 16n³`, and the n = 64 point
/// alone costs ~2 CPU-minutes while refining nothing the n ≤ 32 fit has
/// not already pinned — that single point is why this ladder was
/// `#[ignore]`-gated before.
#[test]
fn speed_aware_deep_ladder_conformance() {
    let approx = ValidateSpec::parse(&[
        "family=ring,complete",
        "n=8..64:x2",
        "load=delta:2",
        "protocol=alg2,bhs",
        "weights=bimodal:0.25:1:0.5",
        "regime=approx",
        "trials=3",
        "max-rounds=2000000",
    ])
    .unwrap();
    let exact = ValidateSpec::parse(&[
        "family=ring,complete",
        "n=8..32:x2",
        "load=delta:2",
        "protocol=alg2,bhs",
        "weights=bimodal:0.25:1:0.5",
        "regime=exact",
        "trials=3",
        "max-rounds=2000000",
    ])
    .unwrap();
    for (spec, rows_expected) in [(&approx, 4), (&exact, 4)] {
        let out = run_validate(spec, ValidateConfig::parallel(0xA11CE)).unwrap();
        assert_eq!(out.rows.len(), rows_expected);
        for row in &out.rows {
            match (row.spec.protocol.grid_label(), row.spec.regime) {
                ("alg2", Regime::Approx) => {
                    assert!(!row.censored(), "alg2 approx censored");
                    assert_brackets_within_tolerance(row, spec.exp_tol);
                }
                // Remaining rows: the one-sided consistency check against
                // the (loose) Table 1 column must pass wherever a
                // prediction exists and no trial was censored.
                _ if !row.censored() && row.predicted_shape.is_some() => {
                    assert_eq!(row.exponent_ok, Some(true));
                }
                _ => {}
            }
        }
    }
}
