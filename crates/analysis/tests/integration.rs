//! Integration tests for the analysis layer: runner ↔ theory ↔ simulator
//! consistency at small scale.

use slb_analysis::convergence;
use slb_analysis::runner::{
    measure_uniform_convergence, measure_uniform_convergence_scaled, run_trials, Target,
    TaskScaling, TrialConfig,
};
use slb_analysis::stats::{power_law_fit, Summary};
use slb_analysis::tables::Table;
use slb_analysis::theory::{self, Table1Column};
use slb_graphs::generators::Family;

#[test]
fn ring_scaling_exponent_matches_paper_at_small_scale() {
    // Mini Table 1 row: ring approx-NE with δ fixed must scale ≈ n².
    let mut ns = Vec::new();
    let mut ts = Vec::new();
    for n in [6usize, 12, 24] {
        let m = measure_uniform_convergence_scaled(
            Family::Ring { n },
            TaskScaling::DeltaFixed(2.0),
            Target::ApproxPsi0,
            TrialConfig::sequential(3, 0xA11CE),
            5_000_000,
        );
        assert_eq!(m.reached_fraction, 1.0, "ring n={n} did not converge");
        // Always below the Theorem 1.1 bound.
        let bound = theory::thm11_expected_rounds(&m.instance);
        assert!(m.rounds.mean <= bound);
        ns.push(n as f64);
        ts.push(m.rounds.mean);
    }
    let fit = power_law_fit(&ns, &ts, 1.0);
    assert!(
        (1.6..=2.9).contains(&fit.slope),
        "ring approx exponent {} outside the n²(·log) band",
        fit.slope
    );
}

#[test]
fn complete_graph_is_effectively_size_independent() {
    let mut ts = Vec::new();
    for n in [8usize, 16, 32] {
        let m = measure_uniform_convergence_scaled(
            Family::Complete { n },
            TaskScaling::DeltaFixed(2.0),
            Target::ApproxPsi0,
            TrialConfig::sequential(3, 0xB0B),
            1_000_000,
        );
        assert_eq!(m.reached_fraction, 1.0);
        ts.push(m.rounds.mean);
    }
    // Growth from n=8 to n=32 stays within the log factor (< 4x).
    assert!(
        ts[2] / ts[0] < 4.0,
        "complete-graph times grew too fast: {ts:?}"
    );
}

#[test]
fn bound_hierarchy_measured_ours_bhs() {
    // The Table 1 claim as a strict numeric hierarchy on one mid-size
    // instance: measured < this paper's bound < [6]'s shape (evaluated
    // with constant 1, so the comparison is conservative).
    let family = Family::Ring { n: 16 };
    let m_tasks = TaskScaling::DeltaFixed(2.0).resolve(16);
    let cell = measure_uniform_convergence_scaled(
        family,
        TaskScaling::DeltaFixed(2.0),
        Target::ApproxPsi0,
        TrialConfig::sequential(3, 0xCAFE),
        10_000_000,
    );
    let ours = theory::thm11_expected_rounds(&cell.instance);
    let bhs = theory::table1_bhs(family, 16, m_tasks, Table1Column::ApproximateNash).unwrap();
    assert!(cell.rounds.mean < ours, "{} !< {ours}", cell.rounds.mean);
    assert!(ours < bhs, "{ours} !< {bhs}");
}

#[test]
fn trial_runner_integrates_with_summary_and_tables() {
    let values = run_trials(TrialConfig::parallel(12, 7), |seed| (seed % 17) as f64);
    let summary = Summary::of(&values);
    assert_eq!(summary.count, 12);
    let mut table = Table::new("t", &["mean", "std"]);
    table.push_row(vec![summary.mean.to_string(), summary.std_dev.to_string()]);
    let md = table.to_markdown();
    assert!(md.contains("mean"));
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 2);
}

#[test]
fn convergence_extractors_agree_with_runner_hits() {
    // Build a Ψ₀ series with the fast simulator and check that first_hit
    // of the 4ψ_c target equals the runner's measured rounds for the same
    // seed.
    use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
    use slb_core::model::{SpeedVector, System, TaskSet};
    use slb_core::protocol::Alpha;

    let family = Family::Hypercube { d: 3 };
    let n = 8;
    let m = 256;
    let lambda2 = slb_spectral::closed_form::lambda2_family(family);
    let inst = theory::Instance::uniform_speeds(n, m, 3, lambda2);
    let target = 4.0 * theory::psi_c(&inst);
    let system = System::new(family.build(), SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();

    let seed = slb_core::rng::derive_seed(0xFEED, 0, 0);
    // Series sampled every round.
    let mut sim = UniformFastSim::new(
        &system,
        Alpha::Approximate,
        CountState::all_on_node(n, 0, m as u64),
        seed,
    );
    let mut series = Vec::new();
    for round in 0..5000u64 {
        series.push((round, sim.psi0()));
        sim.step();
    }
    let hit = convergence::first_hit(&series, target).expect("must hit");

    // Runner measurement with the same derived seed (trial 0).
    let cell = measure_uniform_convergence(
        family,
        m / n,
        Target::ApproxPsi0,
        TrialConfig::sequential(1, 0xFEED),
        5000,
    );
    assert_eq!(cell.rounds.mean as u64, hit);
}

#[test]
fn theorem_bound_functions_are_monotone_in_hardness() {
    // Sanity of the theory layer itself: bounds increase with worse λ₂,
    // larger Δ, larger s_max, finer ε.
    let base = theory::Instance {
        n: 32,
        total_work: 1024.0,
        max_degree: 4,
        lambda2: 0.5,
        s_min: 1.0,
        s_max: 2.0,
        s_total: 40.0,
        granularity: Some(1.0),
    };
    let worse_lambda = theory::Instance {
        lambda2: 0.1,
        ..base
    };
    let worse_degree = theory::Instance {
        max_degree: 8,
        ..base
    };
    let worse_speed = theory::Instance { s_max: 4.0, ..base };
    let finer_grid = theory::Instance {
        granularity: Some(0.25),
        ..base
    };
    assert!(theory::thm11_expected_rounds(&worse_lambda) > theory::thm11_expected_rounds(&base));
    assert!(theory::thm11_expected_rounds(&worse_degree) > theory::thm11_expected_rounds(&base));
    assert!(theory::thm11_expected_rounds(&worse_speed) > theory::thm11_expected_rounds(&base));
    assert!(
        theory::thm12_expected_rounds(&finer_grid).unwrap()
            > theory::thm12_expected_rounds(&base).unwrap()
    );
    assert!(theory::psi_c(&worse_lambda) > theory::psi_c(&base));
    assert!(theory::gamma(&worse_degree) > theory::gamma(&base));
}
