//! The paper's bounds, evaluated numerically.
//!
//! This module turns Theorems 1.1–1.3 (and the Table 1 comparison against
//! the bounds of \[6\]) into functions of the instance parameters
//! `(n, m, Δ, λ₂, s_min, s_max, S, ε)`, so experiments can print *measured
//! vs. predicted* side by side.
//!
//! Conventions:
//!
//! * `ψ_c` uses the Theorem 1.1 constant `16·n·Δ·s_max/λ₂`; the
//!   Definition 3.12 variant (`8·…`) is exposed separately
//!   (see DESIGN.md, inconsistency #1).
//! * Explicit constants are used where the paper derives them
//!   (`γ = 32·Δ·s_max²/λ₂` from Lemma 3.11, `T = 2γ·ln(m/n)` from Lemma
//!   3.15, `607` from the proof of Theorem 1.2); the \[6\] bounds of Table 1
//!   are asymptotic shapes, reported without constants.

use slb_graphs::generators::Family;

/// Instance parameters every bound is evaluated against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Instance {
    /// Number of processors `n`.
    pub n: usize,
    /// Total work: task count `m` for uniform tasks, total weight `W` for
    /// weighted ones.
    pub total_work: f64,
    /// Maximum degree `Δ`.
    pub max_degree: usize,
    /// Algebraic connectivity `λ₂` of the network Laplacian.
    pub lambda2: f64,
    /// Smallest speed `s_min` (1 after the paper's normalization).
    pub s_min: f64,
    /// Largest speed `s_max`.
    pub s_max: f64,
    /// Total capacity `S = Σ s_i`.
    pub s_total: f64,
    /// Speed granularity `ε` (`None` when speeds are not on a grid).
    pub granularity: Option<f64>,
}

impl Instance {
    /// Instance with uniform speeds (all 1) for a graph described by
    /// `(n, Δ, λ₂)` and `m` tasks.
    pub fn uniform_speeds(n: usize, m: usize, max_degree: usize, lambda2: f64) -> Self {
        Instance {
            n,
            total_work: m as f64,
            max_degree,
            lambda2,
            s_min: 1.0,
            s_max: 1.0,
            s_total: n as f64,
            granularity: Some(1.0),
        }
    }
}

/// `γ = 32·Δ·s_max²/λ₂` (Lemma 3.11: the multiplicative-drop time scale).
pub fn gamma(inst: &Instance) -> f64 {
    32.0 * inst.max_degree as f64 * inst.s_max * inst.s_max / inst.lambda2
}

/// `ψ_c = 16·n·Δ·s_max/λ₂` (Theorem 1.1 form).
pub fn psi_c(inst: &Instance) -> f64 {
    16.0 * inst.n as f64 * inst.max_degree as f64 * inst.s_max / inst.lambda2
}

/// `ψ_c = 8·n·Δ·s_max/λ₂` (the Definition 3.12 variant).
pub fn psi_c_def312(inst: &Instance) -> f64 {
    8.0 * inst.n as f64 * inst.max_degree as f64 * inst.s_max / inst.lambda2
}

/// The weighted-case `ψ_c = 16·n·Δ·s_max/(λ₂·s_min²)` (Theorem 1.3).
pub fn psi_c_weighted(inst: &Instance) -> f64 {
    16.0 * inst.n as f64 * inst.max_degree as f64 * inst.s_max
        / (inst.lambda2 * inst.s_min * inst.s_min)
}

/// `T = 2γ·ln(m/n)` (Lemma 3.15): rounds after which
/// `Pr[Ψ₀ ≤ 4ψ_c] ≥ 3/4`, clamped below at 1.
pub fn t_block(inst: &Instance) -> f64 {
    let ratio = (inst.total_work / inst.n as f64).max(std::f64::consts::E);
    (2.0 * gamma(inst) * ratio.ln()).max(1.0)
}

/// Theorem 1.1: expected rounds to reach `Ψ₀ ≤ 4ψ_c` is at most `2·T`.
pub fn thm11_expected_rounds(inst: &Instance) -> f64 {
    2.0 * t_block(inst)
}

/// Theorem 1.1's `δ` for a given `m`: `δ = m/(8·s_max·S·n²)`. The reached
/// state is a `2/(1+δ)`-approximate NE when `δ > 1`.
pub fn delta_of_instance(inst: &Instance) -> f64 {
    inst.total_work / (8.0 * inst.s_max * inst.s_total * (inst.n * inst.n) as f64)
}

/// `ε = 2/(1 + δ)` (Theorems 1.1/1.3).
pub fn eps_of_delta(delta: f64) -> f64 {
    2.0 / (1.0 + delta)
}

/// The task threshold `m ≥ 8·δ·s_max·S·n²` of Theorem 1.1 for a target
/// `δ`.
pub fn m_threshold(inst: &Instance, delta: f64) -> f64 {
    8.0 * delta * inst.s_max * inst.s_total * (inst.n * inst.n) as f64
}

/// Theorem 1.2: expected rounds to an exact NE,
/// `607·Δ²·s_max⁴/ε²·n/λ₂` (the explicit constant from the proof).
///
/// Returns `None` when the instance declares no granularity (the theorem
/// does not apply; convergence can be arbitrarily slow).
pub fn thm12_expected_rounds(inst: &Instance) -> Option<f64> {
    let eps = inst.granularity?;
    let d = inst.max_degree as f64;
    Some(607.0 * d * d * inst.s_max.powi(4) / (eps * eps) * inst.n as f64 / inst.lambda2)
}

/// Theorem 1.3 (weighted tasks): rounds to `Ψ₀ ≤ 4ψ_c^w`, in the paper's
/// asymptotic form `ln(W/n)·Δ/λ₂·s_max²/s_min` with the Lemma 3.15
/// constants carried over (`2·2γ/s_min`).
pub fn thm13_expected_rounds(inst: &Instance) -> f64 {
    2.0 * t_block(inst) / inst.s_min
}

/// Theorem 1.3's weight threshold `W > 8·δ·(s_max/s_min)·S·n²`.
pub fn w_threshold_weighted(inst: &Instance, delta: f64) -> f64 {
    8.0 * delta * (inst.s_max / inst.s_min) * inst.s_total * (inst.n * inst.n) as f64
}

/// Which bound column of Table 1 to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Column {
    /// ε-approximate Nash equilibrium.
    ApproximateNash,
    /// Exact Nash equilibrium.
    ExactNash,
}

/// This paper's Table 1 asymptotic bound (no constant factors), for the
/// four graph-family rows. Speeds are omitted exactly as in the table.
///
/// Returns `None` for families not in the table.
pub fn table1_this_paper(family: Family, n: usize, m: usize, column: Table1Column) -> Option<f64> {
    let nf = n as f64;
    let log_ratio = ((m as f64 / nf).max(std::f64::consts::E)).ln();
    let ln_n = nf.max(std::f64::consts::E).ln();
    Some(match (family, column) {
        (Family::Complete { .. }, Table1Column::ApproximateNash) => log_ratio,
        (Family::Complete { .. }, Table1Column::ExactNash) => nf * nf,
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ApproximateNash) => {
            nf * nf * log_ratio
        }
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ExactNash) => nf * nf * nf,
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ApproximateNash) => {
            nf * log_ratio
        }
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ExactNash) => nf * nf,
        (Family::Hypercube { .. }, Table1Column::ApproximateNash) => ln_n * log_ratio,
        (Family::Hypercube { .. }, Table1Column::ExactNash) => nf * ln_n * ln_n,
        (Family::Star { .. }, _) => return None,
    })
}

/// The \[6\] bound from Table 1 (with the paper's `S → n` substitution).
///
/// Returns `None` for families not in the table.
pub fn table1_bhs(family: Family, n: usize, m: usize, column: Table1Column) -> Option<f64> {
    let nf = n as f64;
    let ln_m = (m as f64).max(std::f64::consts::E).ln();
    let ln_n = nf.max(std::f64::consts::E).ln();
    Some(match (family, column) {
        (Family::Complete { .. }, Table1Column::ApproximateNash) => nf * nf * ln_m,
        (Family::Complete { .. }, Table1Column::ExactNash) => nf.powi(6),
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ApproximateNash) => {
            nf.powi(3) * ln_m
        }
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ExactNash) => nf.powi(5),
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ApproximateNash) => {
            nf * nf * ln_m
        }
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ExactNash) => nf.powi(4),
        (Family::Hypercube { .. }, Table1Column::ApproximateNash) => nf * ln_n.powi(3) * ln_m,
        (Family::Hypercube { .. }, Table1Column::ExactNash) => nf.powi(3) * ln_n.powi(5),
        (Family::Star { .. }, _) => return None,
    })
}

/// The asymptotic scaling exponent in `n` that this paper's Table 1 row
/// predicts for the fitted `T ∝ n^k` (ignoring the `ln` factors); used to
/// annotate the empirical exponent fits.
pub fn table1_exponent_this_paper(family: Family, column: Table1Column) -> Option<f64> {
    Some(match (family, column) {
        (Family::Complete { .. }, Table1Column::ApproximateNash) => 0.0,
        (Family::Complete { .. }, Table1Column::ExactNash) => 2.0,
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ApproximateNash) => 2.0,
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ExactNash) => 3.0,
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ApproximateNash) => 1.0,
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ExactNash) => 2.0,
        (Family::Hypercube { .. }, Table1Column::ApproximateNash) => 0.0,
        (Family::Hypercube { .. }, Table1Column::ExactNash) => 1.0,
        (Family::Star { .. }, _) => return None,
    })
}

/// The asymptotic scaling exponent in `n` of the \[6\] bound row of
/// Table 1 (ignoring the `ln` factors) — the prediction the `bhs`
/// baseline protocol's empirical exponents are annotated with, as
/// [`table1_exponent_this_paper`] annotates this paper's protocols.
pub fn table1_exponent_bhs(family: Family, column: Table1Column) -> Option<f64> {
    Some(match (family, column) {
        (Family::Complete { .. }, Table1Column::ApproximateNash) => 2.0,
        (Family::Complete { .. }, Table1Column::ExactNash) => 6.0,
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ApproximateNash) => 3.0,
        (Family::Ring { .. } | Family::Path { .. }, Table1Column::ExactNash) => 5.0,
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ApproximateNash) => 2.0,
        (Family::Mesh { .. } | Family::Torus { .. }, Table1Column::ExactNash) => 4.0,
        (Family::Hypercube { .. }, Table1Column::ApproximateNash) => 1.0,
        (Family::Hypercube { .. }, Table1Column::ExactNash) => 3.0,
        (Family::Star { .. }, _) => return None,
    })
}

/// Observation 3.28: the \[6\] exact-NE bound exceeds this paper's by at
/// least `Ω(Δ·diam(G))`; returns that factor for reporting.
pub fn observation_3_28_factor(max_degree: usize, diameter: usize) -> f64 {
    (max_degree * diameter) as f64
}

/// Lemma 3.10: a lower bound on the expected one-round drop of `Ψ₀` from a
/// state with potential `psi0`:
/// `E[ΔΨ₀] ≥ λ₂/(16Δ)·Ψ₀/s_max² − n/(4·s_max)`.
///
/// Can be negative near balance — the reason the analysis switches to `Ψ₁`
/// for exact convergence (§3.2).
pub fn lemma_3_10_drop_bound(inst: &Instance, psi0: f64) -> f64 {
    inst.lambda2 / (16.0 * inst.max_degree as f64) * psi0 / (inst.s_max * inst.s_max)
        - inst.n as f64 / (4.0 * inst.s_max)
}

/// Lemma 3.22: the constant expected drop of `Ψ₁` outside Nash equilibria
/// with speed granularity `ε`: `E[ΔΨ₁] ≥ ε²/(8·Δ·s_max³)`.
///
/// Returns `None` when no granularity is declared.
pub fn lemma_3_22_drop_bound(inst: &Instance) -> Option<f64> {
    let eps = inst.granularity?;
    Some(eps * eps / (8.0 * inst.max_degree as f64 * inst.s_max.powi(3)))
}

/// Lemma 3.23: `Ψ₁ ≤ Ψ₀ + √(Ψ₀·n/s̄_h) + n/4·(1/s̄_h − 1/s̄_a)`,
/// given the two speed means.
pub fn lemma_3_23_psi1_upper(psi0: f64, n: usize, harmonic_mean: f64, arithmetic_mean: f64) -> f64 {
    psi0 + (psi0 * n as f64 / harmonic_mean).sqrt()
        + n as f64 / 4.0 * (1.0 / harmonic_mean - 1.0 / arithmetic_mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn ring_instance(n: usize, m: usize) -> Instance {
        let lambda2 = slb_spectral::closed_form::lambda2_ring(n);
        Instance::uniform_speeds(n, m, 2, lambda2)
    }

    #[test]
    fn gamma_and_psi_c_forms() {
        let inst = Instance {
            n: 10,
            total_work: 1000.0,
            max_degree: 4,
            lambda2: 0.5,
            s_min: 1.0,
            s_max: 2.0,
            s_total: 15.0,
            granularity: Some(1.0),
        };
        assert_close(gamma(&inst), 32.0 * 4.0 * 4.0 / 0.5, 1e-9);
        assert_close(psi_c(&inst), 16.0 * 10.0 * 4.0 * 2.0 / 0.5, 1e-9);
        assert_close(psi_c_def312(&inst), psi_c(&inst) / 2.0, 1e-9);
        assert_close(psi_c_weighted(&inst), psi_c(&inst), 1e-9); // s_min = 1
        assert_close(thm11_expected_rounds(&inst), 2.0 * t_block(&inst), 1e-9);
    }

    #[test]
    fn t_block_scales_with_log_ratio() {
        let a = ring_instance(16, 16 * 8);
        let b = ring_instance(16, 16 * 64);
        assert!(t_block(&b) > t_block(&a));
        // Same m/n, same γ → same T.
        let c = ring_instance(16, 16 * 8);
        assert_close(t_block(&a), t_block(&c), 1e-9);
    }

    #[test]
    fn delta_eps_roundtrip() {
        let inst = ring_instance(8, 8 * 8 * 8 * 64);
        let d = delta_of_instance(&inst);
        assert_close(
            m_threshold(&inst, d),
            inst.total_work,
            1e-6 * inst.total_work,
        );
        assert_close(eps_of_delta(1.0), 1.0, 1e-12);
        assert_close(eps_of_delta(3.0), 0.5, 1e-12);
    }

    #[test]
    fn thm12_requires_granularity() {
        let mut inst = ring_instance(8, 64);
        assert!(thm12_expected_rounds(&inst).is_some());
        inst.granularity = None;
        assert!(thm12_expected_rounds(&inst).is_none());
    }

    #[test]
    fn thm12_explicit_constant() {
        let inst = ring_instance(8, 64);
        let expected = 607.0 * 4.0 * 1.0 * 8.0 / inst.lambda2;
        assert_close(thm12_expected_rounds(&inst).unwrap(), expected, 1e-6);
    }

    #[test]
    fn thm12_grows_with_smax_fourth_power() {
        let mut a = ring_instance(8, 64);
        a.s_max = 1.0;
        let mut b = a;
        b.s_max = 2.0;
        let ta = thm12_expected_rounds(&a).unwrap();
        let tb = thm12_expected_rounds(&b).unwrap();
        assert_close(tb / ta, 16.0, 1e-9);
    }

    #[test]
    fn table1_shapes_ordering() {
        // For every family and both columns, the [6] bound dominates ours
        // (that is the paper's claim) once n is nontrivial.
        let m = 64 * 64;
        for family in [
            Family::Complete { n: 64 },
            Family::Ring { n: 64 },
            Family::Path { n: 64 },
            Family::Mesh { rows: 8, cols: 8 },
            Family::Torus { rows: 8, cols: 8 },
            Family::Hypercube { d: 6 },
        ] {
            let n = family.node_count();
            for col in [Table1Column::ApproximateNash, Table1Column::ExactNash] {
                let ours = table1_this_paper(family, n, m, col).unwrap();
                let bhs = table1_bhs(family, n, m, col).unwrap();
                assert!(
                    bhs > ours,
                    "{family}: [6] bound {bhs} should dominate ours {ours} ({col:?})"
                );
            }
        }
    }

    #[test]
    fn table1_star_not_in_table() {
        assert!(table1_this_paper(Family::Star { n: 8 }, 8, 64, Table1Column::ExactNash).is_none());
        assert!(table1_bhs(Family::Star { n: 8 }, 8, 64, Table1Column::ExactNash).is_none());
        assert!(
            table1_exponent_this_paper(Family::Star { n: 8 }, Table1Column::ExactNash).is_none()
        );
    }

    #[test]
    fn exponents_match_bound_shapes() {
        // Evaluate the bound at two sizes and check the log-log slope
        // matches the declared exponent (log factors perturb it slightly).
        for family_of in [
            |n: usize| Family::Ring { n },
            |n: usize| Family::Complete { n },
        ] {
            for col in [Table1Column::ApproximateNash, Table1Column::ExactNash] {
                let n1 = 64;
                let n2 = 128;
                let m_ratio = 64;
                let b1 = table1_this_paper(family_of(n1), n1, n1 * m_ratio, col).unwrap();
                let b2 = table1_this_paper(family_of(n2), n2, n2 * m_ratio, col).unwrap();
                let slope = (b2 / b1).ln() / 2.0f64.ln();
                let declared = table1_exponent_this_paper(family_of(n1), col).unwrap();
                assert!(
                    (slope - declared).abs() < 0.15,
                    "{:?} {col:?}: slope {slope} vs declared {declared}",
                    family_of(n1)
                );
            }
        }
    }

    #[test]
    fn bhs_exponents_match_bhs_bound_shapes_and_dominate_ours() {
        // Polynomial-dominated families: the log-log slope of the bound
        // itself approximates the declared exponent (log factors perturb
        // it slightly; the hypercube's ln³n factor dominates at testable
        // sizes, so it is covered by the dominance check only).
        for family in [
            Family::Complete { n: 64 },
            Family::Ring { n: 64 },
            Family::Mesh { rows: 8, cols: 8 },
        ] {
            let n1 = family.node_count();
            for col in [Table1Column::ApproximateNash, Table1Column::ExactNash] {
                let declared = table1_exponent_bhs(family, col).unwrap();
                let grown = match family {
                    Family::Complete { n } => Family::Complete { n: 2 * n },
                    Family::Ring { n } => Family::Ring { n: 2 * n },
                    Family::Mesh { rows, cols } => Family::Mesh {
                        rows: 2 * rows,
                        cols,
                    },
                    _ => unreachable!(),
                };
                let n2 = grown.node_count();
                let b1 = table1_bhs(family, n1, n1 * 64, col).unwrap();
                let b2 = table1_bhs(grown, n2, n2 * 64, col).unwrap();
                let slope = (b2 / b1).ln() / 2.0f64.ln();
                assert!(
                    (slope - declared).abs() < 0.45,
                    "{family:?} {col:?}: slope {slope} vs declared {declared}"
                );
            }
        }
        // The baseline's exponent always dominates this paper's, for
        // every family in the table.
        for family in [
            Family::Complete { n: 64 },
            Family::Ring { n: 64 },
            Family::Path { n: 64 },
            Family::Mesh { rows: 8, cols: 8 },
            Family::Torus { rows: 8, cols: 8 },
            Family::Hypercube { d: 6 },
        ] {
            for col in [Table1Column::ApproximateNash, Table1Column::ExactNash] {
                let bhs = table1_exponent_bhs(family, col).unwrap();
                let ours = table1_exponent_this_paper(family, col).unwrap();
                assert!(bhs > ours, "{family:?} {col:?}");
            }
        }
        assert!(table1_exponent_bhs(Family::Star { n: 8 }, Table1Column::ExactNash).is_none());
    }

    #[test]
    fn observation_factor() {
        assert_close(observation_3_28_factor(4, 10), 40.0, 1e-12);
    }

    #[test]
    fn lemma_3_10_bound_signs() {
        let inst = ring_instance(8, 512);
        // Far from balance: positive guaranteed drop.
        let big = lemma_3_10_drop_bound(&inst, 1e9);
        assert!(big > 0.0);
        // At balance: the additive term dominates (negative bound).
        let small = lemma_3_10_drop_bound(&inst, 0.0);
        assert_close(small, -2.0, 1e-12); // −n/(4·s_max) = −8/4
                                          // Linear in Ψ₀.
        let a = lemma_3_10_drop_bound(&inst, 100.0);
        let b = lemma_3_10_drop_bound(&inst, 200.0);
        let c = lemma_3_10_drop_bound(&inst, 300.0);
        assert_close(c - b, b - a, 1e-9);
    }

    #[test]
    fn lemma_3_22_bound() {
        let mut inst = ring_instance(8, 64);
        // ε = 1, Δ = 2, s_max = 1: 1/(8·2·1) = 1/16.
        assert_close(lemma_3_22_drop_bound(&inst).unwrap(), 1.0 / 16.0, 1e-12);
        inst.granularity = Some(0.5);
        assert_close(lemma_3_22_drop_bound(&inst).unwrap(), 0.25 / 16.0, 1e-12);
        inst.granularity = None;
        assert!(lemma_3_22_drop_bound(&inst).is_none());
    }

    #[test]
    fn lemma_3_23_upper_bound_holds_numerically() {
        // Compare against actual Ψ₀/Ψ₁ from the potential module on a
        // concrete state.
        use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
        use slb_graphs::{generators, NodeId};
        let speeds = SpeedVector::new(vec![1.0, 2.0, 4.0, 1.0]).unwrap();
        let (h, a) = (speeds.harmonic_mean(), speeds.arithmetic_mean());
        let system = System::new(generators::ring(4), speeds, TaskSet::uniform(12)).unwrap();
        let state = TaskState::all_on_node(&system, NodeId(0));
        let rep = slb_core::potential::report(&system, &state);
        let upper = lemma_3_23_psi1_upper(rep.psi0, 4, h, a);
        assert!(
            rep.psi1 <= upper + 1e-9,
            "Ψ₁ {} exceeds Lemma 3.23 bound {upper}",
            rep.psi1
        );
    }

    #[test]
    fn weighted_threshold_scales_with_speed_ratio() {
        let mut inst = ring_instance(8, 64);
        inst.s_max = 4.0;
        inst.s_min = 2.0;
        let w = w_threshold_weighted(&inst, 1.0);
        assert_close(w, 8.0 * (4.0 / 2.0) * inst.s_total * 64.0, 1e-9);
    }
}
