//! Multi-trial experiment execution.
//!
//! Every reported number in EXPERIMENTS.md is a mean over independent
//! seeded trials; [`run_cell_trials`] executes whole grids of them
//! (optionally across threads — trials are embarrassingly parallel) with
//! seeds derived per `(cell, trial)` pair from a base seed,
//! [`run_trials`] is its single-cell convenience form, and
//! [`measure_uniform_convergence`] implements
//! the core Table 1 measurement: rounds until `Ψ₀ ≤ 4ψ_c` or until an
//! exact Nash equilibrium, for a graph family at a given size.

use crate::stats::Summary;
use crate::theory::{self, Instance};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::model::{SpeedVector, System, TaskSet};
use slb_core::protocol::Alpha;
use slb_core::rng::derive_seed;
use slb_graphs::generators::Family;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How trials are executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Base seed; trial `t` uses `derive_seed(base_seed, 0, t)`.
    pub base_seed: u64,
    /// Worker threads (1 = sequential).
    pub threads: usize,
}

impl TrialConfig {
    /// A sequential configuration.
    pub fn sequential(trials: usize, base_seed: u64) -> Self {
        TrialConfig {
            trials,
            base_seed,
            threads: 1,
        }
    }

    /// A parallel configuration using the available cores.
    pub fn parallel(trials: usize, base_seed: u64) -> Self {
        TrialConfig {
            trials,
            base_seed,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

/// Runs `trials` independent evaluations of `f` for every cell in
/// `cell_keys`, fanning the flattened `(cell, trial)` work items out
/// across `threads` worker threads. Trial `t` of the cell with key `k`
/// receives the seed `derive_seed(base_seed, k, t)` — a pure function of
/// the `(base seed, cell key, trial)` triple, so results are independent
/// of the thread count and of how work items interleave.
///
/// `f` is called as `f(cell_position, trial, seed)` where `cell_position`
/// indexes into `cell_keys`; results come back grouped per cell, in trial
/// order.
///
/// # Panics
///
/// Panics if `trials == 0` or `threads == 0`, or if a worker panics.
pub fn run_cell_trials<R, F>(
    cell_keys: &[u64],
    trials: usize,
    base_seed: u64,
    threads: usize,
    f: F,
) -> Vec<Vec<R>>
where
    F: Fn(usize, usize, u64) -> R + Sync,
    R: Send,
{
    assert!(trials > 0, "need at least one trial");
    assert!(threads > 0, "need at least one thread");
    let total = cell_keys.len() * trials;
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f_ref = &f;
    let slots_ref = &slots;
    let next_ref = &next;
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(total.max(1)) {
            scope.spawn(move |_| loop {
                let item = next_ref.fetch_add(1, Ordering::Relaxed);
                if item >= total {
                    break;
                }
                let (cell, trial) = (item / trials, item % trials);
                let seed = derive_seed(base_seed, cell_keys[cell], trial as u64);
                *slots_ref[item].lock().expect("no poisoned trial slot") =
                    Some(f_ref(cell, trial, seed));
            });
        }
    })
    .expect("trial worker panicked");
    let mut flat: Vec<R> = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("no poisoned trial slot")
                .expect("every work item was executed")
        })
        .collect();
    let mut grouped = Vec::with_capacity(cell_keys.len());
    for _ in 0..cell_keys.len() {
        let rest = flat.split_off(trials);
        grouped.push(flat);
        flat = rest;
    }
    grouped
}

/// Runs `config.trials` independent evaluations of `f` (one per derived
/// seed) and returns the observations in trial order.
///
/// Single-cell convenience wrapper over [`run_cell_trials`] (cell key 0,
/// so trial `t` keeps its historical seed `derive_seed(base_seed, 0, t)`).
///
/// # Panics
///
/// Panics if `config.trials == 0` or `config.threads == 0`, or if a worker
/// panics.
pub fn run_trials<F>(config: TrialConfig, f: F) -> Vec<f64>
where
    F: Fn(u64) -> f64 + Sync,
{
    run_cell_trials(
        &[0],
        config.trials,
        config.base_seed,
        config.threads,
        |_, _, seed| f(seed),
    )
    .pop()
    .expect("one cell was requested")
}

/// Convergence target for [`measure_uniform_convergence`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Target {
    /// First round with `Ψ₀ ≤ 4ψ_c` (Theorem 1.1/1.3's intermediate
    /// state).
    ApproxPsi0,
    /// First round in an exact Nash equilibrium (Theorem 1.2's state).
    ExactNash,
}

/// One measured configuration of the Table 1 experiment.
#[derive(Debug, Clone)]
pub struct ConvergenceMeasurement {
    /// The graph family measured.
    pub family: Family,
    /// Nodes.
    pub n: usize,
    /// Tasks.
    pub m: usize,
    /// Rounds-to-target across trials (budget value when not reached).
    pub rounds: Summary,
    /// Fraction of trials that reached the target within the budget.
    pub reached_fraction: f64,
    /// The instance parameters used for the theory columns.
    pub instance: Instance,
}

/// How the task count `m` scales with the topology size in a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TaskScaling {
    /// `m = k·n` — fixed average load; the natural reading of the *exact*
    /// NE column (Theorem 1.2's bound is `m`-free).
    PerNode(usize),
    /// `m = ⌈8·δ·s_max·S·n²⌉` — fixed `δ` per Theorem 1.1, so the reached
    /// `Ψ₀ ≤ 4ψ_c` state is always a `2/(1+δ)`-approximate NE; the natural
    /// reading of the ε-approximate column.
    DeltaFixed(f64),
}

impl TaskScaling {
    /// Resolves the task count for `n` uniform-speed machines.
    pub fn resolve(self, n: usize) -> usize {
        match self {
            TaskScaling::PerNode(k) => n * k,
            TaskScaling::DeltaFixed(delta) => {
                // s_max = 1, S = n on uniform machines.
                (8.0 * delta * n as f64 * (n * n) as f64).ceil() as usize
            }
        }
    }
}

/// Measures Algorithm 1 on uniform machines for one `(family, m/n)` point
/// using the fast count-based simulator, starting from the adversarial
/// all-on-node-0 state.
///
/// # Panics
///
/// Panics on degenerate configurations (`tasks_per_node == 0`,
/// `max_rounds == 0`).
pub fn measure_uniform_convergence(
    family: Family,
    tasks_per_node: usize,
    target: Target,
    config: TrialConfig,
    max_rounds: u64,
) -> ConvergenceMeasurement {
    assert!(tasks_per_node > 0, "need at least one task per node");
    measure_uniform_convergence_scaled(
        family,
        TaskScaling::PerNode(tasks_per_node),
        target,
        config,
        max_rounds,
    )
}

/// As [`measure_uniform_convergence`] but with an explicit [`TaskScaling`].
///
/// # Panics
///
/// Panics if `max_rounds == 0` or the scaling resolves to zero tasks.
pub fn measure_uniform_convergence_scaled(
    family: Family,
    scaling: TaskScaling,
    target: Target,
    config: TrialConfig,
    max_rounds: u64,
) -> ConvergenceMeasurement {
    assert!(max_rounds > 0, "need a positive round budget");
    let graph = family.build();
    let n = graph.node_count();
    let m = scaling.resolve(n);
    assert!(m > 0, "task scaling resolved to zero tasks");
    let lambda2 = slb_spectral::closed_form::lambda2_family(family);
    let instance = Instance::uniform_speeds(n, m, graph.max_degree(), lambda2);
    let psi_target = 4.0 * theory::psi_c(&instance);

    let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m))
        .expect("uniform instance is valid");
    let system_ref = &system;

    let rounds: Vec<f64> = run_trials(config, move |seed| {
        let initial = CountState::all_on_node(n, 0, m as u64);
        let mut sim = UniformFastSim::new(system_ref, Alpha::Approximate, initial, seed);
        let outcome = match target {
            Target::ApproxPsi0 => sim.run_until_psi0(psi_target, max_rounds),
            Target::ExactNash => sim.run_until_nash(max_rounds),
        };
        if outcome.reached {
            outcome.rounds as f64
        } else {
            // Censored observation: report the budget (a lower bound).
            max_rounds as f64
        }
    });

    let reached =
        rounds.iter().filter(|&&r| (r as u64) < max_rounds).count() as f64 / rounds.len() as f64;
    ConvergenceMeasurement {
        family,
        n,
        m,
        rounds: Summary::of(&rounds),
        reached_fraction: reached,
        instance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trials_are_deterministic_and_ordered() {
        let config = TrialConfig::sequential(8, 99);
        let a = run_trials(config, |seed| (seed % 1000) as f64);
        let b = run_trials(config, |seed| (seed % 1000) as f64);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Different base seed changes the sample.
        let c = run_trials(TrialConfig::sequential(8, 100), |seed| (seed % 1000) as f64);
        assert_ne!(a, c);
    }

    #[test]
    fn cell_trials_group_and_seed_stably() {
        let f = |cell: usize, trial: usize, seed: u64| (cell, trial, seed);
        let keys = [3u64, 9, 27];
        let a = run_cell_trials(&keys, 4, 11, 1, f);
        let b = run_cell_trials(&keys, 4, 11, 8, f);
        assert_eq!(a, b, "thread count must not change results");
        assert_eq!(a.len(), 3);
        for (cell, group) in a.iter().enumerate() {
            assert_eq!(group.len(), 4);
            for (trial, &(c, t, seed)) in group.iter().enumerate() {
                assert_eq!((c, t), (cell, trial));
                assert_eq!(seed, derive_seed(11, keys[cell], trial as u64));
            }
        }
        // All (cell, trial) seeds are distinct.
        let seeds: std::collections::HashSet<u64> =
            a.iter().flatten().map(|&(_, _, s)| s).collect();
        assert_eq!(seeds.len(), 12);
        // No cells at all is a valid (empty) request.
        assert!(run_cell_trials(&[], 2, 1, 2, f).is_empty());
    }

    #[test]
    fn parallel_trials_match_sequential() {
        let work = |seed: u64| ((seed >> 3) % 97) as f64;
        let seq = run_trials(TrialConfig::sequential(16, 5), work);
        let par = run_trials(
            TrialConfig {
                trials: 16,
                base_seed: 5,
                threads: 4,
            },
            work,
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn measures_ring_convergence() {
        let m = measure_uniform_convergence(
            Family::Ring { n: 8 },
            16,
            Target::ApproxPsi0,
            TrialConfig::sequential(3, 1),
            200_000,
        );
        assert_eq!(m.n, 8);
        assert_eq!(m.m, 128);
        assert_eq!(m.reached_fraction, 1.0, "small ring must converge");
        assert!(m.rounds.mean >= 0.0);
        assert!(m.rounds.max < 200_000.0);
    }

    #[test]
    fn exact_nash_takes_at_least_as_long_as_approx() {
        let cfg = TrialConfig::sequential(3, 2);
        let approx = measure_uniform_convergence(
            Family::Complete { n: 8 },
            32,
            Target::ApproxPsi0,
            cfg,
            500_000,
        );
        let exact = measure_uniform_convergence(
            Family::Complete { n: 8 },
            32,
            Target::ExactNash,
            cfg,
            500_000,
        );
        assert_eq!(exact.reached_fraction, 1.0);
        assert!(exact.rounds.mean >= approx.rounds.mean);
    }

    #[test]
    fn censoring_reports_budget() {
        // Budget of 1 round cannot reach exact Nash from the hot start.
        let m = measure_uniform_convergence(
            Family::Ring { n: 8 },
            64,
            Target::ExactNash,
            TrialConfig::sequential(2, 3),
            1,
        );
        assert_eq!(m.reached_fraction, 0.0);
        assert_eq!(m.rounds.mean, 1.0);
    }

    #[test]
    #[should_panic(expected = "need at least one trial")]
    fn zero_trials_panics() {
        let _ = run_trials(TrialConfig::sequential(0, 1), |_| 0.0);
    }

    #[test]
    fn task_scaling_resolution() {
        assert_eq!(TaskScaling::PerNode(32).resolve(8), 256);
        // 8·δ·n³ with δ = 2, n = 4 → 1024.
        assert_eq!(TaskScaling::DeltaFixed(2.0).resolve(4), 1024);
    }

    #[test]
    fn delta_fixed_scaling_converges_and_is_eps_nash_ready() {
        let m = measure_uniform_convergence_scaled(
            Family::Ring { n: 4 },
            TaskScaling::DeltaFixed(2.0),
            Target::ApproxPsi0,
            TrialConfig::sequential(2, 5),
            2_000_000,
        );
        assert_eq!(m.m, 1024);
        assert_eq!(m.reached_fraction, 1.0);
        // δ recovered from the instance must match.
        let delta = crate::theory::delta_of_instance(&m.instance);
        assert!((delta - 2.0).abs() < 0.01, "δ = {delta}");
    }
}
