//! Descriptive statistics and regression for experiment summaries.
//!
//! The Table 1 reproduction reports convergence times as means with
//! confidence intervals across seeded trials, and extracts *scaling
//! exponents* by least-squares regression of `log T` on `log n` — the
//! quantity compared against the paper's asymptotic bounds. For the
//! conformance reports of `slb validate`, [`power_law_fit_ci`] attaches a
//! 95% confidence interval to the fitted exponent: the union of a
//! stratified bootstrap percentile interval (trial noise) and the OLS
//! t-interval on the slope (ladder curvature, e.g. the `log` factors the
//! asymptotic exponents drop).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for singletons).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (mean of middle two for even counts).
    pub median: f64,
    /// 50th percentile, nearest-rank (the ⌈0.50·n⌉-th smallest; unlike
    /// `median` it never interpolates, so it is always an observation).
    pub p50: f64,
    /// 95th percentile, nearest-rank.
    pub p95: f64,
    /// 99th percentile, nearest-rank.
    pub p99: f64,
}

/// The nearest-rank `q`-quantile of an ascending-sorted sample: the
/// `⌈q·n⌉`-th smallest observation (1-indexed), the `q → 0` limit being
/// the minimum. Always an element of the sample — no interpolation — so
/// quantiles of integer-valued samples (latencies in ticks, round counts)
/// stay exactly representable and artifact bytes stay platform-stable.
///
/// # Panics
///
/// Panics if `sorted` is empty or `q` is outside `[0, 1]`. Debug builds
/// additionally assert the sorted-input contract (ascending, NaN-free) —
/// a silently unsorted sample would misreport every quantile.
pub fn quantile_nearest_rank(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile level {q} outside [0, 1]"
    );
    debug_assert!(
        sorted.iter().all(|v| !v.is_nan()),
        "quantile of sample containing NaN"
    );
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "quantile of unsorted sample"
    );
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Summary {
        assert!(!values.is_empty(), "summary of empty sample");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "summary of sample containing NaN"
        );
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            0.5 * (sorted[count / 2 - 1] + sorted[count / 2])
        };
        Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median,
            p50: quantile_nearest_rank(&sorted, 0.50),
            p95: quantile_nearest_rank(&sorted, 0.95),
            p99: quantile_nearest_rank(&sorted, 0.99),
        }
    }

    /// The all-zero summary of an empty sample (`count == 0`): the
    /// schema-stable placeholder for metrics with no observations —
    /// unsupported sweep cells, or cells whose every trial was censored.
    /// [`Summary::of`] rejects empty samples, so this is the only way an
    /// artifact row renders one.
    pub fn empty() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            std_dev: 0.0,
            min: 0.0,
            max: 0.0,
            median: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        self.std_dev / (self.count as f64).sqrt()
    }

    /// Half-width of the ~95% normal confidence interval
    /// (`1.96 · std_error`).
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }
}

/// An ordinary least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for an exact fit; 0 when the
    /// fit explains nothing; defined as 1 when `y` is constant).
    pub r_squared: f64,
}

/// Least-squares fit of `y` on `x`.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than 2 points, or `x`
/// is constant.
pub fn linear_fit(x: &[f64], y: &[f64]) -> LineFit {
    assert_eq!(x.len(), y.len(), "x/y length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let sxx: f64 = x.iter().map(|v| (v - mx) * (v - mx)).sum();
    assert!(sxx > 0.0, "x must not be constant");
    let sxy: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    let ss_res: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| {
            let p = slope * a + intercept;
            (b - p) * (b - p)
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Fits `T ∝ n^k` by regressing `ln T` on `ln n`; returns the exponent `k`
/// and the fit. Zero or negative *observations* are clamped to `floor` to
/// keep the logarithm defined (convergence times measured as 0 rounds mean
/// "already converged"). The sizes `n` are taken as given — they are the
/// ladder's x-axis and clamping them would silently bend the fit — and
/// must all be strictly positive.
///
/// # Panics
///
/// As [`linear_fit`]; additionally if `floor <= 0` or any size is
/// non-positive.
pub fn power_law_fit(n: &[f64], t: &[f64], floor: f64) -> LineFit {
    assert!(floor > 0.0, "floor must be positive");
    assert!(
        n.iter().all(|v| *v > 0.0),
        "ladder sizes must be strictly positive"
    );
    let lx: Vec<f64> = n.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = t.iter().map(|v| v.max(floor).ln()).collect();
    linear_fit(&lx, &ly)
}

/// A power-law exponent fit with a 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentFit {
    /// The fitted exponent `k` of `T ∝ n^k`.
    pub exponent: f64,
    /// Lower end of the 95% CI.
    pub ci_lo: f64,
    /// Upper end of the 95% CI.
    pub ci_hi: f64,
    /// `R²` of the log–log fit.
    pub r_squared: f64,
}

impl ExponentFit {
    /// Whether the CI brackets `value`.
    pub fn brackets(&self, value: f64) -> bool {
        self.ci_lo <= value && value <= self.ci_hi
    }
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom (the
/// multiplier of a 95% CI); falls back to the normal 1.96 beyond the
/// table.
fn t_quantile_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= TABLE.len() => TABLE[d - 1],
        _ => 1.96,
    }
}

/// Fits `T ∝ n^k` as [`power_law_fit`] and attaches a deterministic 95%
/// confidence interval on the exponent: the **union** of
///
/// * a stratified bootstrap percentile interval — within every distinct
///   `n`, trials are resampled with replacement (`resamples` refits,
///   seeded from `seed`), capturing trial-to-trial noise, and
/// * the OLS t-interval `k ± t₀.₉₇₅(df)·SE(k)` with `df = N − 2`,
///   capturing deviation from power-law linearity (the dropped `log`
///   factors of the asymptotic predictions).
///
/// The union is intentionally conservative: a near-deterministic ladder
/// has a collapsed bootstrap interval but still carries curvature, and a
/// noisy one has residual-dominated trials — the reported CI covers both
/// failure modes.
///
/// # Panics
///
/// As [`power_law_fit`]; additionally if `resamples == 0`.
pub fn power_law_fit_ci(
    n: &[f64],
    t: &[f64],
    floor: f64,
    resamples: usize,
    seed: u64,
) -> ExponentFit {
    assert!(resamples > 0, "need at least one bootstrap resample");
    let base = power_law_fit(n, t, floor);

    // OLS t-interval on the log–log slope. Mirrors `power_law_fit`: only
    // the observations are floor-clamped, never the sizes.
    let lx: Vec<f64> = n.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = t.iter().map(|v| v.max(floor).ln()).collect();
    let count = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / count;
    let sxx: f64 = lx.iter().map(|v| (v - mx) * (v - mx)).sum();
    let ss_res: f64 = lx
        .iter()
        .zip(&ly)
        .map(|(x, y)| {
            let p = base.slope * x + base.intercept;
            (y - p) * (y - p)
        })
        .sum();
    let df = lx.len().saturating_sub(2);
    let (mut lo, mut hi) = if df == 0 {
        // Two points fit exactly: the t-interval is undefined, leave the
        // bootstrap interval to carry the uncertainty.
        (base.slope, base.slope)
    } else {
        let se = (ss_res / df as f64 / sxx).sqrt();
        let half = t_quantile_975(df) * se;
        (base.slope - half, base.slope + half)
    };

    // Stratified bootstrap: resample trials within each distinct size.
    let mut groups: Vec<(f64, Vec<f64>)> = Vec::new();
    for (x, y) in lx.iter().zip(&ly) {
        match groups.iter_mut().find(|(gx, _)| gx == x) {
            Some((_, ys)) => ys.push(*y),
            None => groups.push((*x, vec![*y])),
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut slopes = Vec::with_capacity(resamples);
    let mut bx = Vec::with_capacity(lx.len());
    let mut by = Vec::with_capacity(ly.len());
    for _ in 0..resamples {
        bx.clear();
        by.clear();
        for (x, ys) in &groups {
            for _ in 0..ys.len() {
                bx.push(*x);
                by.push(ys[rng.gen_range(0..ys.len())]);
            }
        }
        slopes.push(linear_fit(&bx, &by).slope);
    }
    slopes.sort_by(|a, b| a.partial_cmp(b).expect("no NaN slopes"));
    let pick = |q: f64| slopes[((slopes.len() - 1) as f64 * q).round() as usize];
    lo = lo.min(pick(0.025));
    hi = hi.max(pick(0.975));

    ExponentFit {
        exponent: base.slope,
        ci_lo: lo,
        ci_hi: hi,
        r_squared: base.r_squared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert_close(s.mean, 2.5, 1e-12);
        assert_close(s.median, 2.5, 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3.
        assert_close(s.std_dev, (5.0f64 / 3.0).sqrt(), 1e-12);
        assert_close(s.std_error(), s.std_dev / 2.0, 1e-12);
        assert_close(s.ci95_half_width(), 1.96 * s.std_error(), 1e-12);
    }

    #[test]
    fn summary_odd_median_and_singleton() {
        assert_eq!(Summary::of(&[3.0, 1.0, 2.0]).median, 2.0);
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }

    #[test]
    fn summary_single_trial_is_degenerate_but_complete() {
        // One trial (the smallest legal sweep cell): every statistic is
        // the observation itself and the spread is exactly zero, so CSV
        // rows never carry NaN.
        let s = Summary::of(&[42.5]);
        assert_eq!(s.count, 1);
        assert_eq!((s.mean, s.median, s.min, s.max), (42.5, 42.5, 42.5, 42.5));
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn summary_all_equal_samples_have_zero_spread() {
        // All-equal observations (e.g. a deterministic protocol swept over
        // identical seeds): zero variance with no floating-point residue.
        let s = Summary::of(&[13.0; 64]);
        assert_eq!(s.count, 64);
        assert_eq!(s.mean, 13.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 13.0);
        assert_eq!(s.max, 13.0);
        assert_eq!(s.median, 13.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    #[should_panic(expected = "summary of sample containing NaN")]
    fn summary_rejects_nan() {
        let _ = Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn nearest_rank_quantiles_on_known_sample() {
        // 1..=100 sorted: rank ⌈q·100⌉ is exactly q·100 for these levels.
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile_nearest_rank(&v, 0.50), 50.0);
        assert_eq!(quantile_nearest_rank(&v, 0.95), 95.0);
        assert_eq!(quantile_nearest_rank(&v, 0.99), 99.0);
        assert_eq!(quantile_nearest_rank(&v, 0.0), 1.0);
        assert_eq!(quantile_nearest_rank(&v, 1.0), 100.0);
        // Non-multiple counts round the rank up: ⌈0.5·5⌉ = 3.
        let odd = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile_nearest_rank(&odd, 0.50), 30.0);
        assert_eq!(quantile_nearest_rank(&odd, 0.95), 50.0);
    }

    #[test]
    fn summary_quantiles_are_sample_elements_not_interpolations() {
        // Even count: median interpolates (2.5), nearest-rank p50 does
        // not (⌈0.5·4⌉ = 2nd smallest = 2).
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 4.0);
        assert_eq!(s.p99, 4.0);
        // Singleton: every quantile is the observation itself.
        let one = Summary::of(&[7.5]);
        assert_eq!((one.p50, one.p95, one.p99), (7.5, 7.5, 7.5));
    }

    #[test]
    fn summary_quantiles_order_and_tail_behavior() {
        // A long-tailed sample: p50 ≤ p95 ≤ p99 ≤ max, and the tail
        // quantiles respond to the outlier while p50 does not.
        let mut v: Vec<f64> = (0..99).map(|i| i as f64 / 100.0).collect();
        v.push(1000.0);
        let s = Summary::of(&v);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        assert!(s.p50 < 1.0);
        assert_eq!(s.p99, 0.98);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    #[should_panic(expected = "quantile of empty sample")]
    fn quantile_of_empty_sample_panics() {
        let _ = quantile_nearest_rank(&[], 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_out_of_range_level() {
        let _ = quantile_nearest_rank(&[1.0], 1.5);
    }

    #[test]
    fn quantile_single_sample_is_that_sample_at_every_level() {
        // ⌈q·1⌉ is 1 for every q > 0, and the q → 0 limit is the
        // minimum: a singleton answers itself at every level.
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(quantile_nearest_rank(&[42.5], q), 42.5, "q = {q}");
        }
    }

    #[test]
    fn quantile_extreme_levels_are_min_and_max() {
        // q = 0 is the minimum (rank clamps up to 1), q = 1 the maximum
        // (⌈1·n⌉ = n) — on every sample size, including duplicates.
        for sample in [
            vec![3.0],
            vec![1.0, 2.0],
            vec![5.0, 5.0, 5.0],
            (0..17).map(|i| i as f64 * 0.5).collect::<Vec<_>>(),
        ] {
            assert_eq!(quantile_nearest_rank(&sample, 0.0), sample[0]);
            assert_eq!(
                quantile_nearest_rank(&sample, 1.0),
                sample[sample.len() - 1]
            );
        }
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "contract checked in debug builds only"
    )]
    #[should_panic(expected = "quantile of sample containing NaN")]
    fn quantile_rejects_nan_in_debug_builds() {
        let _ = quantile_nearest_rank(&[1.0, f64::NAN, 3.0], 0.5);
    }

    #[test]
    #[cfg_attr(
        not(debug_assertions),
        ignore = "contract checked in debug builds only"
    )]
    #[should_panic(expected = "quantile of unsorted sample")]
    fn quantile_rejects_unsorted_input_in_debug_builds() {
        let _ = quantile_nearest_rank(&[3.0, 1.0, 2.0], 0.5);
    }

    #[test]
    fn exact_line_fit() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        let f = linear_fit(&x, &y);
        assert_close(f.slope, 2.0, 1e-12);
        assert_close(f.intercept, 1.0, 1e-12);
        assert_close(f.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn noisy_fit_has_lower_r2() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [2.0, 4.1, 5.9, 8.2, 9.8];
        let f = linear_fit(&x, &y);
        assert!(f.r_squared > 0.99);
        assert!((f.slope - 2.0).abs() < 0.1);
    }

    #[test]
    fn constant_y_r2_is_one() {
        let f = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_close(f.slope, 0.0, 1e-12);
        assert_close(f.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn power_law_recovery() {
        // T = 3·n² exactly.
        let n = [8.0, 16.0, 32.0, 64.0];
        let t: Vec<f64> = n.iter().map(|v| 3.0 * v * v).collect();
        let f = power_law_fit(&n, &t, 1.0);
        assert_close(f.slope, 2.0, 1e-9);
        assert_close(f.intercept, 3.0f64.ln(), 1e-9);
        assert_close(f.r_squared, 1.0, 1e-9);
    }

    #[test]
    fn power_law_floor_clamps_zeros() {
        let n = [8.0, 16.0, 32.0];
        let t = [0.0, 2.0, 8.0];
        let f = power_law_fit(&n, &t, 1.0); // 0 clamped to 1
        assert!(f.slope > 0.0);
    }

    #[test]
    fn power_law_floor_never_clamps_sizes() {
        // Regression: the floor clamp used to apply to the sizes `n` as
        // well, so a ladder containing a size below the floor (here 0.5
        // with floor 1.0) had its x-value silently rewritten to the floor
        // — bending the fitted exponent. With T = 100·n² exactly (every
        // observation safely above the floor, the smallest *size* below
        // it), the fit must recover slope 2 regardless of where the floor
        // sits.
        let n = [0.5, 8.0, 16.0, 32.0];
        let t: Vec<f64> = n.iter().map(|v| 100.0 * v * v).collect();
        let f = power_law_fit(&n, &t, 1.0);
        assert_close(f.slope, 2.0, 1e-9);
        assert_close(f.r_squared, 1.0, 1e-9);
        // The CI variant shares the un-clamped x-axis: its t-interval is
        // recomputed from the same logs, so the exponent and a collapsed
        // interval must agree with the point fit.
        let fit = power_law_fit_ci(&n, &t, 1.0, 50, 3);
        assert_close(fit.exponent, 2.0, 1e-9);
        assert!(fit.brackets(2.0));
        assert_close(fit.ci_lo, 2.0, 1e-6);
        assert_close(fit.ci_hi, 2.0, 1e-6);
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn power_law_rejects_non_positive_sizes() {
        power_law_fit(&[0.0, 8.0], &[1.0, 2.0], 1.0);
    }

    #[test]
    fn exponent_ci_on_exact_power_law_is_tight_and_centered() {
        // T = 2·n³ with 3 "trials" per size, zero noise: exponent exact,
        // bootstrap interval collapsed, t-interval zero-width.
        let mut n = Vec::new();
        let mut t = Vec::new();
        for &size in &[8.0f64, 16.0, 32.0, 64.0] {
            for _ in 0..3 {
                n.push(size);
                t.push(2.0 * size * size * size);
            }
        }
        let fit = power_law_fit_ci(&n, &t, 1.0, 200, 7);
        assert_close(fit.exponent, 3.0, 1e-9);
        assert_close(fit.ci_lo, 3.0, 1e-9);
        assert_close(fit.ci_hi, 3.0, 1e-9);
        assert!(fit.brackets(3.0));
        assert!(!fit.brackets(2.9));
        assert_close(fit.r_squared, 1.0, 1e-9);
    }

    #[test]
    fn exponent_ci_widens_with_noise_and_brackets_truth() {
        // T = n²·(1 ± deterministic “noise”): the CI must cover 2.
        let mut n = Vec::new();
        let mut t = Vec::new();
        let noise = [0.8, 1.0, 1.25];
        for &size in &[8.0f64, 16.0, 32.0, 64.0] {
            for f in noise {
                n.push(size);
                t.push(size * size * f);
            }
        }
        let fit = power_law_fit_ci(&n, &t, 1.0, 400, 11);
        assert!(fit.brackets(2.0), "CI [{}, {}]", fit.ci_lo, fit.ci_hi);
        assert!(fit.ci_hi - fit.ci_lo > 0.01, "noise must widen the CI");
        assert!(fit.ci_lo <= fit.exponent && fit.exponent <= fit.ci_hi);
    }

    #[test]
    fn exponent_ci_covers_curvature_with_two_points_per_size() {
        // A ladder with log-factor curvature: T = n²·ln(n), one sample
        // per size. The bootstrap collapses (one trial per stratum), so
        // the t-interval must carry the uncertainty.
        let n = [8.0f64, 16.0, 32.0, 64.0];
        let t: Vec<f64> = n.iter().map(|v| v * v * v.ln()).collect();
        let fit = power_law_fit_ci(&n, &t, 1.0, 100, 3);
        // The log factor biases the point estimate above 2; the interval
        // must still reach down toward the asymptotic exponent.
        assert!(fit.exponent > 2.0);
        assert!(fit.ci_lo < fit.exponent);
    }

    #[test]
    fn exponent_ci_is_deterministic_in_the_seed() {
        let n = [8.0f64, 8.0, 16.0, 16.0, 32.0, 32.0];
        let t = [10.0, 14.0, 40.0, 52.0, 160.0, 230.0];
        let a = power_law_fit_ci(&n, &t, 1.0, 300, 42);
        let b = power_law_fit_ci(&n, &t, 1.0, 300, 42);
        assert_eq!(a, b);
        // (Different seeds may land on the same percentile slopes — the
        // bootstrap outcome space is small here — so only reproducibility
        // is part of the contract.)
    }

    #[test]
    fn t_table_monotone_toward_normal() {
        assert!(t_quantile_975(1) > t_quantile_975(2));
        assert!(t_quantile_975(30) > 1.96);
        assert_close(t_quantile_975(200), 1.96, 1e-12);
        assert!(t_quantile_975(0).is_infinite());
    }

    #[test]
    #[should_panic(expected = "at least one bootstrap resample")]
    fn zero_resamples_panics() {
        let _ = power_law_fit_ci(&[1.0, 2.0], &[1.0, 2.0], 1.0, 0, 1);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        let _ = Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "x must not be constant")]
    fn constant_x_panics() {
        let _ = linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
