//! Artifact layer for `slb serve`: one row per routing policy.
//!
//! [`run_serve`] fans the requested policies across worker threads (one
//! sequential event-loop run per policy — see [`slb_serve`] for the
//! determinism argument), applies the measurement window, and renders a
//! sweep-style CSV/JSON artifact: offered/completed/failed jobs, retry
//! and availability figures, throughput, latency sample size, latency
//! mean and nearest-rank p50/p95/p99, per-backend utilization, and the
//! Nash gaps (all backends and live-only) of the backlog state at the
//! horizon.
//!
//! # Seeds
//!
//! * `scenario seed = derive_seed(base, 0, trial::SCENARIO)` — samples
//!   the speed vector and masters the traffic streams. Shared by every
//!   policy, so all rows face identical speeds and open-loop traffic.
//! * `policy seed = derive_seed(base, policy_index, trial::SIM)` —
//!   masters the per-job routing coins of that policy's run.

use crate::runner::run_cell_trials;
use crate::stats::Summary;
use slb_core::rng::{derive_seed, rng_for, streams};
use slb_graphs::generators::Family;
use slb_serve::{PolicyKind, ServeConfig, ServeOutcome, TICKS_PER_UNIT};
use slb_workloads::faults::{faults_label, retry_label, signal_label};
use slb_workloads::speeds::SpeedDistribution;
use slb_workloads::sweep::{family_grid_label, speeds_grid_label, weights_grid_label};
use slb_workloads::traffic::{closed_label, traffic_label};
use slb_workloads::weights::WeightDistribution;
use slb_workloads::{FaultSpec, RetrySpec, SignalSpec, TrafficSpec};
use std::fmt::Write as _;

/// A complete `slb serve` request: scenario plus the policy roster.
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Backend topology.
    pub family: Family,
    /// Policies to run, one artifact row each.
    pub policies: Vec<PolicyKind>,
    /// Backend speed distribution (sampled once, shared by all rows).
    pub speeds: SpeedDistribution,
    /// Job-weight distribution.
    pub weights: WeightDistribution,
    /// Traffic sources.
    pub traffic: TrafficSpec,
    /// Crash/recover schedule (`None` disables faults).
    pub faults: Option<FaultSpec>,
    /// Signal-degradation model (default: fresh view).
    pub signal: SignalSpec,
    /// Retry budget for fault-hit jobs (`None` fails them immediately).
    pub retry: Option<RetrySpec>,
    /// Units of virtual time during which traffic is generated.
    pub horizon: u64,
    /// Measurement-window offset in units: `s ≥ 0` measures `[s, H)`
    /// (skip warmup), `s < 0` measures the final `|s|` units `[H+s, H)`.
    pub shift: f64,
}

/// One policy's measured row.
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// The policy.
    pub policy: PolicyKind,
    /// Jobs submitted within the horizon (whole run, window-independent).
    pub jobs_offered: u64,
    /// Jobs completed inside the measurement window.
    pub jobs_completed: u64,
    /// Jobs that exhausted their retry budget (whole run, like
    /// `jobs_offered`). These are *failed*, not censored: they are
    /// counted here and excluded from the latency sample.
    pub failed_jobs: u64,
    /// Mean retry resubmissions per offered job (whole run).
    pub retries_mean: f64,
    /// Fraction of backend-time within `[0, H)` spent up (1 with faults
    /// disabled).
    pub availability: f64,
    /// Completions per unit of virtual time inside the window — the
    /// observable throughput ceiling under overload.
    pub throughput: f64,
    /// Latency (units) of completed jobs *arriving* in the window;
    /// failed jobs never enter this sample (they appear in
    /// `failed_jobs` instead, so nothing is silently censored). Its
    /// `count` renders as the `latency_count` column: a genuine
    /// zero-latency window and an empty window are distinguishable.
    pub latency: Summary,
    /// Mean per-backend utilization over `[0, H)`.
    pub util_mean: f64,
    /// Minimum per-backend utilization.
    pub util_min: f64,
    /// Maximum per-backend utilization.
    pub util_max: f64,
    /// Nash gap of the backlog state at the horizon.
    pub nash_gap: f64,
    /// Nash gap restricted to backends alive at the horizon (equals
    /// `nash_gap` with faults disabled).
    pub nash_gap_live: f64,
}

/// The full artifact.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The request.
    pub spec: ServeSpec,
    /// Base seed of the run.
    pub base_seed: u64,
    /// Backend count of the built topology.
    pub n: usize,
    /// One row per requested policy, in request order.
    pub rows: Vec<PolicyRow>,
}

/// Columns of [`ServeReport::to_csv`].
///
/// `latency_count` is the size of the window's latency sample (arrivals
/// in the window that completed): the explicit completed-jobs count that
/// makes a [`Summary::empty`] row self-describing — `latency_count = 0`
/// means "no observations", not "all latencies were zero".
pub const SERVE_CSV_HEADER: &str = "policy,graph,n,speeds,weights,traffic,closed,faults,\
     signal,retry,horizon,shift,base_seed,jobs_offered,jobs_completed,failed_jobs,\
     retries_mean,availability,throughput,latency_count,latency_mean,latency_p50,\
     latency_p95,latency_p99,util_mean,util_min,util_max,nash_gap,nash_gap_live";

/// Resolves the measurement window `[start, horizon)` in ticks.
///
/// # Panics
///
/// Panics if the shift consumes the whole horizon (empty window).
fn window_start_ticks(horizon: u64, shift: f64) -> u64 {
    let horizon_ticks = horizon * TICKS_PER_UNIT;
    let offset = (shift.abs() * TICKS_PER_UNIT as f64).round() as u64;
    assert!(
        offset < horizon_ticks,
        "measurement shift {shift} leaves an empty window over horizon {horizon}"
    );
    if shift >= 0.0 {
        offset
    } else {
        horizon_ticks - offset
    }
}

/// Reduces one run to its artifact row.
fn measure(policy: PolicyKind, outcome: &ServeOutcome, horizon: u64, shift: f64) -> PolicyRow {
    let horizon_ticks = horizon * TICKS_PER_UNIT;
    let start = window_start_ticks(horizon, shift);
    let window_units = (horizon_ticks - start) as f64 / TICKS_PER_UNIT as f64;

    let jobs_completed = outcome
        .jobs
        .iter()
        .filter(|j| (start..horizon_ticks).contains(&j.finish))
        .count() as u64;
    let latencies: Vec<f64> = outcome
        .jobs
        .iter()
        .filter(|j| (start..horizon_ticks).contains(&j.arrival))
        .map(|j| (j.finish - j.arrival) as f64 / TICKS_PER_UNIT as f64)
        .collect();
    let latency = if latencies.is_empty() {
        Summary::empty()
    } else {
        Summary::of(&latencies)
    };

    let utils: Vec<f64> = outcome
        .busy_ticks
        .iter()
        .map(|&b| b as f64 / horizon_ticks as f64)
        .collect();
    let util_mean = utils.iter().sum::<f64>() / utils.len() as f64;
    let util_min = utils.iter().copied().fold(f64::INFINITY, f64::min);
    let util_max = utils.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    let retries_mean = if outcome.jobs_offered == 0 {
        0.0
    } else {
        outcome.retries_total as f64 / outcome.jobs_offered as f64
    };

    PolicyRow {
        policy,
        jobs_offered: outcome.jobs_offered,
        jobs_completed,
        failed_jobs: outcome.failed_jobs,
        retries_mean,
        availability: outcome.availability,
        throughput: jobs_completed as f64 / window_units,
        latency,
        util_mean,
        util_min,
        util_max,
        nash_gap: outcome.nash_gap_at_horizon,
        nash_gap_live: outcome.nash_gap_live_at_horizon,
    }
}

/// Runs every requested policy and assembles the artifact. Policies fan
/// across `threads` workers; each run is sequential and seeded purely by
/// `(base_seed, policy index)`, so the report is byte-identical at any
/// thread count.
///
/// # Panics
///
/// Panics if the spec has no policies, no traffic, a zero horizon, or a
/// shift that empties the measurement window.
pub fn run_serve(spec: &ServeSpec, base_seed: u64, threads: usize) -> ServeReport {
    assert!(!spec.policies.is_empty(), "serve needs at least one policy");
    // Validate the window before spending any simulation time.
    let _ = window_start_ticks(spec.horizon, spec.shift);

    let graph = spec.family.build();
    let n = graph.node_count();
    let mut scenario_rng = rng_for(base_seed, 0, streams::trial::SCENARIO);
    let speeds = spec.speeds.sample(n, &mut scenario_rng);
    let scenario_seed = derive_seed(base_seed, 0, streams::trial::SCENARIO);

    let keys: Vec<u64> = (0..spec.policies.len() as u64).collect();
    let rows = run_cell_trials(&keys, 1, base_seed, threads, |pos, _trial, _seed| {
        let policy = spec.policies[pos];
        let config = ServeConfig {
            graph: &graph,
            speeds: &speeds,
            traffic: spec.traffic,
            weights: spec.weights,
            faults: spec.faults,
            signal: spec.signal,
            retry: spec.retry,
            horizon: spec.horizon,
            scenario_seed,
            policy_seed: derive_seed(base_seed, pos as u64, streams::trial::SIM),
        };
        measure(
            policy,
            &slb_serve::run(&config, policy),
            spec.horizon,
            spec.shift,
        )
    })
    .into_iter()
    .map(|mut trials| trials.remove(0))
    .collect();

    ServeReport {
        spec: spec.clone(),
        base_seed,
        n,
        rows,
    }
}

impl ServeReport {
    /// Renders the CSV artifact ([`SERVE_CSV_HEADER`] columns).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(SERVE_CSV_HEADER);
        out.push('\n');
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                row.policy.label(),
                family_grid_label(self.spec.family),
                self.n,
                speeds_grid_label(self.spec.speeds),
                weights_grid_label(self.spec.weights),
                traffic_label(self.spec.traffic.open),
                closed_label(self.spec.traffic.closed),
                faults_label(self.spec.faults),
                signal_label(self.spec.signal),
                retry_label(self.spec.retry),
                self.spec.horizon,
                self.spec.shift,
                self.base_seed,
                row.jobs_offered,
                row.jobs_completed,
                row.failed_jobs,
                row.retries_mean,
                row.availability,
                row.throughput,
                row.latency.count,
                row.latency.mean,
                row.latency.p50,
                row.latency.p95,
                row.latency.p99,
                row.util_mean,
                row.util_min,
                row.util_max,
                row.nash_gap,
                row.nash_gap_live,
            );
        }
        out
    }

    /// Renders the JSON artifact (same fields as the CSV).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"policy\":\"{}\",\"graph\":\"{}\",\"n\":{},\"speeds\":\"{}\",\
                 \"weights\":\"{}\",\"traffic\":\"{}\",\"closed\":\"{}\",\"faults\":\"{}\",\
                 \"signal\":\"{}\",\"retry\":\"{}\",\"horizon\":{},\
                 \"shift\":{},\"base_seed\":{},\"jobs_offered\":{},\"jobs_completed\":{},\
                 \"failed_jobs\":{},\"retries_mean\":{},\"availability\":{},\
                 \"throughput\":{},\"latency_count\":{},\"latency_mean\":{},\
                 \"latency_p50\":{},\"latency_p95\":{},\
                 \"latency_p99\":{},\"util_mean\":{},\"util_min\":{},\"util_max\":{},\
                 \"nash_gap\":{},\"nash_gap_live\":{}}}",
                row.policy.label(),
                family_grid_label(self.spec.family),
                self.n,
                speeds_grid_label(self.spec.speeds),
                weights_grid_label(self.spec.weights),
                traffic_label(self.spec.traffic.open),
                closed_label(self.spec.traffic.closed),
                faults_label(self.spec.faults),
                signal_label(self.spec.signal),
                retry_label(self.spec.retry),
                self.spec.horizon,
                self.spec.shift,
                self.base_seed,
                row.jobs_offered,
                row.jobs_completed,
                row.failed_jobs,
                row.retries_mean,
                row.availability,
                row.throughput,
                row.latency.count,
                row.latency.mean,
                row.latency.p50,
                row.latency.p95,
                row.latency.p99,
                row.util_mean,
                row.util_min,
                row.util_max,
                row.nash_gap,
                row.nash_gap_live,
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_workloads::faults::{parse_faults, parse_retry, parse_signal};
    use slb_workloads::traffic::{parse_closed, parse_traffic};

    fn small_spec() -> ServeSpec {
        ServeSpec {
            family: Family::Ring { n: 8 },
            policies: PolicyKind::ALL.to_vec(),
            speeds: SpeedDistribution::Alternating { classes: 2 },
            weights: WeightDistribution::Unit,
            traffic: TrafficSpec {
                open: parse_traffic("poisson:4").expect("valid traffic"),
                closed: parse_closed("2:1.0").expect("valid closed loop"),
            },
            faults: None,
            signal: SignalSpec::default(),
            retry: None,
            horizon: 30,
            shift: -20.0,
        }
    }

    fn faulty_spec() -> ServeSpec {
        ServeSpec {
            faults: parse_faults("crash:6:2").expect("valid faults"),
            signal: parse_signal("stale:0.5+loss:0.1").expect("valid signal"),
            retry: parse_retry("max:3:base:0.25").expect("valid retry"),
            ..small_spec()
        }
    }

    #[test]
    fn serve_artifact_is_thread_count_invariant() {
        for spec in [small_spec(), faulty_spec()] {
            let one = run_serve(&spec, 42, 1);
            let eight = run_serve(&spec, 42, 8);
            assert_eq!(one.to_csv(), eight.to_csv());
            assert_eq!(one.to_json(), eight.to_json());
        }
    }

    #[test]
    fn faulty_rows_expose_the_degradation_columns() {
        let report = run_serve(&faulty_spec(), 42, 4);
        assert_eq!(report.rows.len(), 6);
        for row in &report.rows {
            assert!(
                (0.0..1.0).contains(&row.availability),
                "mttf 6 over horizon 30 must crash"
            );
            assert!(row.retries_mean >= 0.0);
            assert!(row.nash_gap_live >= 0.0);
            // Whole-run conservation surfaces in the artifact: failures
            // are counted, not censored.
            assert!(row.failed_jobs <= row.jobs_offered);
        }
        // Availability is scenario state: identical on every row.
        let avail: Vec<f64> = report.rows.iter().map(|r| r.availability).collect();
        assert!(avail.windows(2).all(|w| w[0] == w[1]), "{avail:?}");
        let csv = report.to_csv();
        assert!(csv.contains("crash:6:2"));
        assert!(csv.contains("stale:0.5+loss:0.1"));
        assert!(csv.contains("max:3:base:0.25"));
    }

    #[test]
    fn fault_free_rows_have_trivial_degradation_columns() {
        let report = run_serve(&small_spec(), 42, 2);
        for row in &report.rows {
            assert_eq!(row.failed_jobs, 0);
            assert_eq!(row.retries_mean, 0.0);
            assert_eq!(row.availability, 1.0);
            assert_eq!(row.nash_gap, row.nash_gap_live);
            assert_eq!(row.latency.count, row.latency.count as u64 as usize);
        }
        let csv = report.to_csv();
        for line in csv.lines().skip(1) {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields[7], "none", "faults column");
            assert_eq!(fields[8], "none", "signal column");
            assert_eq!(fields[9], "none", "retry column");
        }
    }

    #[test]
    fn serve_rows_cover_every_policy_in_order() {
        let report = run_serve(&small_spec(), 7, 4);
        assert_eq!(report.rows.len(), 6);
        for (row, kind) in report.rows.iter().zip(PolicyKind::ALL) {
            assert_eq!(row.policy, kind);
            assert!(row.jobs_offered > 0);
            assert!(row.latency.p50 <= row.latency.p95);
            assert!(row.latency.p95 <= row.latency.p99);
            assert!((0.0..=1.0).contains(&row.util_mean), "{}", row.util_mean);
            assert!(row.util_min <= row.util_mean && row.util_mean <= row.util_max);
            assert!(row.nash_gap >= 0.0);
        }
        // The closed loop reacts to each policy's completions, so offered
        // loads may differ across rows — but never by more than the
        // closed-loop population can generate versus sit idle.
        let offered: Vec<u64> = report.rows.iter().map(|r| r.jobs_offered).collect();
        let open_only: u64 = {
            let mut spec = small_spec();
            spec.traffic.closed = None;
            spec.policies = vec![PolicyKind::RoundRobin];
            run_serve(&spec, 7, 1).rows[0].jobs_offered
        };
        for &o in &offered {
            assert!(
                o >= open_only,
                "closed loop should only add jobs: {offered:?}"
            );
        }
    }

    #[test]
    fn csv_shape_matches_header() {
        let report = run_serve(&small_spec(), 3, 2);
        let csv = report.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().expect("header line");
        assert_eq!(header, SERVE_CSV_HEADER);
        let columns = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), columns, "ragged row: {line}");
        }
        // JSON rows parse field-for-field with the CSV.
        let json = report.to_json();
        assert_eq!(json.matches("\"policy\"").count(), 6);
        assert!(json.ends_with("]\n"));
    }

    #[test]
    fn measurement_window_shift_changes_the_sample() {
        let mut spec = small_spec();
        spec.shift = 0.0;
        let full = run_serve(&spec, 9, 1);
        spec.shift = -5.0;
        let tail = run_serve(&spec, 9, 1);
        for (a, b) in full.rows.iter().zip(&tail.rows) {
            // Same run, smaller window: fewer (or equal) completions.
            assert_eq!(a.jobs_offered, b.jobs_offered);
            assert!(b.jobs_completed <= a.jobs_completed);
        }
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn shift_past_the_horizon_panics() {
        let mut spec = small_spec();
        spec.shift = spec.horizon as f64;
        let _ = run_serve(&spec, 1, 1);
    }
}
