//! The protocol-generic sweep engine: executes a declarative
//! [`SweepSpec`] grid end-to-end and renders schema-stable CSV/JSON.
//!
//! For every cell of the grid the engine
//!
//! 1. builds the scenario (topology × speeds × weights × placement) from
//!    a per-trial seed derived with
//!    [`derive_seed`]`(base_seed, cell_index, trial)`,
//! 2. dispatches to the right simulation engine automatically —
//!    [`UniformFastSim`] for Algorithm 1 on uniform tasks (the `O(|E|)`
//!    multinomial path), [`WeightedFastSim`] for Algorithm 1's weighted
//!    generalization, [`SpeedFastSim`] for the speed-aware per-task
//!    protocols (Algorithm 2, the \[6\] baseline) — all three count-based
//!    with per-(node, weight class) multinomials; continuous weight
//!    distributions are quantized via [`WeightClasses`] — and the
//!    sequential [`Simulation`] for the deterministic protocols (diffusion,
//!    best response),
//! 3. fans the flattened `(cell, trial)` work items out across threads via
//!    [`run_cell_trials`], and
//! 4. aggregates per-cell [`Summary`] rows.
//!
//! Because every trial's randomness is a pure function of
//! `(base seed, cell index, trial)` and each trial runs on one thread,
//! the sweep artifact is **byte-identical for the same seed regardless of
//! the thread count** — the property the golden-file tests pin down.
//!
//! Every protocol × task-mode combination in the grid syntax now executes
//! on a real engine; the `unsupported` engine label survives only for
//! artifact-schema stability (should a future combination be skipped, its
//! row renders zeroed and [`SweepOutcome::unsupported_cells`] lets callers
//! warn instead of passing zeroes off as measurements).

use crate::runner::run_cell_trials;
use crate::stats::Summary;
use rand::rngs::StdRng;
use rand::SeedableRng;
use slb_core::engine::dynamic::{DynamicRule, DynamicSim, SpeedDynamics};
use slb_core::engine::speed_fast::{SpeedFastRule, SpeedFastSim};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::engine::weighted_fast::{ClassCountState, WeightedFastSim};
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::equilibrium::Threshold;
use slb_core::model::System;
use slb_core::potential;
use slb_core::protocol::{Alpha, BestResponse, Diffusion};
use slb_core::rng::{derive_seed, streams};
use slb_workloads::placement::Placement;
use slb_workloads::scenario;
use slb_workloads::sweep::{
    arrivals_grid_label, churn_grid_label, completions_grid_label, family_grid_label,
    placement_grid_label, speed_dyn_grid_label, speeds_grid_label, weights_grid_label, CellSpec,
    ProtocolKind, StopRule, SweepSpec,
};
use slb_workloads::weight_classes::WeightClasses;
use std::fmt;
use std::fmt::Write as _;

/// Which engine a cell is dispatched to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Count-based multinomial path (Algorithm 1, uniform tasks).
    UniformFast,
    /// Count-based weight-class multinomial path (Algorithm 1's weighted
    /// rule; continuous weight distributions are quantized).
    WeightedFast,
    /// Count-based weight-class multinomial path for the speed-aware
    /// per-task protocols (Algorithm 2, the \[6\] baseline); same
    /// quantization caveat as `WeightedFast`.
    SpeedFast,
    /// Sequential engine (diffusion, best response).
    Sequential,
    /// The dynamic-scenario engine (arrivals/churn/speed dynamics on the
    /// count-based kernel); runs a fixed horizon instead of a stop rule.
    Dynamic,
    /// The protocol cannot run this task mode; no trials executed. No
    /// current combination maps here — retained for artifact-schema
    /// stability (zeroed rows) should a future one need to be skipped.
    Unsupported,
}

impl EngineKind {
    /// The label used in the CSV `engine` column.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::UniformFast => "uniform-fast",
            EngineKind::WeightedFast => "weighted-fast",
            EngineKind::SpeedFast => "speed-fast",
            EngineKind::Sequential => "sequential",
            EngineKind::Dynamic => "dynamic",
            EngineKind::Unsupported => "unsupported",
        }
    }

    /// The engine a cell dispatches to (a pure function of the cell). No
    /// cell runs a per-task engine: every randomized protocol has a
    /// count-based path (the deterministic chunk-seeded
    /// [`slb_core::engine::parallel::ParallelSimulation`] remains the
    /// reference implementation the χ² equivalence tests pin the fast
    /// engines against).
    pub fn for_cell(cell: &CellSpec) -> EngineKind {
        if cell.is_dynamic() {
            // Validation rejects dynamic × sequential protocols; every
            // dynamic cell rides the count-based kernel.
            return EngineKind::Dynamic;
        }
        match cell.protocol {
            ProtocolKind::Alg1 if cell.is_uniform_tasks() => EngineKind::UniformFast,
            ProtocolKind::Alg1 => EngineKind::WeightedFast,
            ProtocolKind::Alg2 | ProtocolKind::Bhs => EngineKind::SpeedFast,
            ProtocolKind::Diffusion | ProtocolKind::BestResponse => EngineKind::Sequential,
        }
    }
}

/// Aggregated metrics of one executed cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellStats {
    /// Fraction of trials that met the stop rule within the budget.
    pub reached_fraction: f64,
    /// Rounds to the stop rule (budget value for censored trials).
    pub rounds: Summary,
    /// Total migrations per trial.
    pub migrations: Summary,
    /// `Ψ₀` of the final state per trial.
    pub psi0_final: Summary,
    /// Time-averaged Nash gap over the horizon (dynamic cells; 0 for
    /// static cells, whose quality metric is the stop rule itself).
    pub nash_gap_tavg: Summary,
    /// Rounds from the speed shock until the Nash gap first returns to
    /// its pre-shock level, over the trials that *did* recover (dynamic
    /// cells with `speed-dyn=shock:…`; 0 otherwise). Trials whose gap
    /// never re-entered the band are censored: excluded from this
    /// summary and counted in [`CellStats::unrecovered_trials`] instead
    /// of being folded in at horizon − shock (which was
    /// indistinguishable from a genuine recovery of that length).
    pub recovery_rounds: Summary,
    /// Trials censored out of `recovery_rounds`: the shock fired but the
    /// gap never returned to the 5% band within the horizon.
    pub unrecovered_trials: usize,
}

/// One row of the sweep artifact.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Cell index in grid order (also the seed-derivation key).
    pub index: usize,
    /// The configuration measured.
    pub spec: CellSpec,
    /// Nodes of the built topology.
    pub n: usize,
    /// Tasks (`tasks_per_node · n`).
    pub m: usize,
    /// Engine the cell dispatched to.
    pub engine: EngineKind,
    /// Metrics; `None` for unsupported cells.
    pub stats: Option<CellStats>,
}

/// A fully executed sweep: per-cell rows plus the run parameters that a
/// schema-stable artifact must echo.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Base seed of the run.
    pub base_seed: u64,
    /// Trials per cell.
    pub trials: usize,
    /// Round budget per trial.
    pub max_rounds: u64,
    /// Per-cell results, in grid order.
    pub cells: Vec<CellResult>,
}

/// Execution parameters of a sweep run (everything *not* in the spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepConfig {
    /// Base seed; trial `t` of cell `c` uses `derive_seed(base_seed, c, t)`.
    pub base_seed: u64,
    /// Worker threads for the trial fan-out (1 = sequential). Results do
    /// not depend on this value.
    pub threads: usize,
}

impl SweepConfig {
    /// A sequential configuration.
    pub fn sequential(base_seed: u64) -> Self {
        SweepConfig {
            base_seed,
            threads: 1,
        }
    }

    /// A parallel configuration using the available cores.
    pub fn parallel(base_seed: u64) -> Self {
        SweepConfig {
            base_seed,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

/// An error preparing a sweep (the grid parsed, but a cell cannot be
/// built).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepRunError(String);

impl fmt::Display for SweepRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep error: {}", self.0)
    }
}

impl std::error::Error for SweepRunError {}

/// Validates that every cell of the spec can actually be built (graph
/// sizes respect family minimums, placement nodes are in range).
///
/// # Errors
///
/// Returns a [`SweepRunError`] naming the first invalid cell.
pub fn validate(spec: &SweepSpec) -> Result<(), SweepRunError> {
    for cell in spec.cells() {
        let n = cell.graph.node_count();
        let min = match cell.graph {
            slb_graphs::generators::Family::Ring { .. } => 3,
            slb_graphs::generators::Family::Torus { rows, cols } => {
                if rows < 3 || cols < 3 {
                    return Err(SweepRunError(format!(
                        "graph `{}` needs both torus dimensions ≥ 3",
                        family_grid_label(cell.graph)
                    )));
                }
                9
            }
            slb_graphs::generators::Family::Star { .. } => 2,
            _ => 1,
        };
        if n < min {
            return Err(SweepRunError(format!(
                "graph `{}` is below the family's minimum size ({min} nodes)",
                family_grid_label(cell.graph)
            )));
        }
        if let Placement::AllOnNode(v) = cell.placement {
            if v >= n {
                return Err(SweepRunError(format!(
                    "placement `node:{v}` is out of range for `{}` ({n} nodes)",
                    family_grid_label(cell.graph)
                )));
            }
        }
        if cell.is_dynamic()
            && matches!(
                cell.protocol,
                ProtocolKind::Diffusion | ProtocolKind::BestResponse
            )
        {
            return Err(SweepRunError(format!(
                "protocol `{}` has no dynamic-scenario engine (the arrivals/completions/churn/\
                 speed-dyn axes run count-based: use alg1|alg2|bhs)",
                cell.protocol.grid_label()
            )));
        }
    }
    Ok(())
}

/// One trial's raw observations.
#[derive(Debug, Clone, Copy)]
struct RawTrial {
    rounds: u64,
    reached: bool,
    migrations: u64,
    psi0_final: f64,
    /// Time-averaged Nash gap (dynamic trials; 0 for static trials).
    nash_gap_tavg: f64,
    /// Post-shock recovery rounds: `Some(r)` when observed (0 for
    /// trials without a shock), `None` when censored — the shock fired
    /// but the gap never re-entered the band within the horizon.
    recovery_rounds: Option<f64>,
}

/// The uniform per-round interface the stop-rule driver runs against.
trait CellEngine {
    fn step(&mut self) -> u64;
    fn is_nash(&self) -> bool;
    fn psi0(&self) -> f64;
}

struct FastEngine<'a>(UniformFastSim<'a>);

impl CellEngine for FastEngine<'_> {
    fn step(&mut self) -> u64 {
        self.0.step()
    }
    fn is_nash(&self) -> bool {
        self.0.is_nash()
    }
    fn psi0(&self) -> f64 {
        self.0.psi0()
    }
}

struct WeightClassEngine<'a> {
    sim: WeightedFastSim<'a>,
    threshold: Threshold,
}

impl CellEngine for WeightClassEngine<'_> {
    fn step(&mut self) -> u64 {
        self.sim.step().migrations
    }
    fn is_nash(&self) -> bool {
        self.sim.is_nash(self.threshold)
    }
    fn psi0(&self) -> f64 {
        self.sim.psi0()
    }
}

struct SpeedClassEngine<'a> {
    sim: SpeedFastSim<'a>,
    threshold: Threshold,
}

impl CellEngine for SpeedClassEngine<'_> {
    fn step(&mut self) -> u64 {
        self.sim.step().migrations
    }
    fn is_nash(&self) -> bool {
        self.sim.is_nash(self.threshold)
    }
    fn psi0(&self) -> f64 {
        self.sim.psi0()
    }
}

/// Runs a sequential-engine protocol through the core run loop
/// ([`Simulation::run_until`]) — the same stop semantics `slb simulate`
/// uses — and extracts the trial observations from its outcome.
fn run_sequential<P: slb_core::protocol::Protocol>(
    system: &System,
    protocol: P,
    initial: slb_core::model::TaskState,
    sim_seed: u64,
    stop: StopRule,
    threshold: Threshold,
    max_rounds: u64,
) -> RawTrial {
    let condition = match stop {
        StopRule::Nash => StopCondition::Nash(threshold),
        StopRule::Quiescent(k) => StopCondition::Quiescent(k),
        StopRule::Psi0Below(b) => StopCondition::Psi0Below(b),
    };
    let mut sim = Simulation::new(system, protocol, initial, sim_seed);
    let outcome = sim.run_until(condition, max_rounds);
    RawTrial {
        rounds: outcome.rounds,
        reached: outcome.reason == StopReason::ConditionMet,
        migrations: outcome.migrations,
        psi0_final: potential::psi0(
            sim.state().node_weights(),
            system.speeds(),
            system.tasks().total_weight(),
        ),
        nash_gap_tavg: 0.0,
        recovery_rounds: Some(0.0),
    }
}

/// Runs one engine to the stop rule, mirroring the semantics of
/// [`Simulation::run_until`]: the rule is checked before every round (a
/// satisfied initial state costs zero rounds) and once more when the
/// budget runs out.
fn drive<E: CellEngine>(engine: &mut E, stop: StopRule, max_rounds: u64) -> RawTrial {
    let mut quiet = 0u64;
    let mut migrations = 0u64;
    for executed in 0..=max_rounds {
        let met = match stop {
            StopRule::Quiescent(need) => quiet >= need,
            StopRule::Nash => engine.is_nash(),
            StopRule::Psi0Below(bound) => engine.psi0() <= bound,
        };
        if met {
            return RawTrial {
                rounds: executed,
                reached: true,
                migrations,
                psi0_final: engine.psi0(),
                nash_gap_tavg: 0.0,
                recovery_rounds: Some(0.0),
            };
        }
        if executed == max_rounds {
            break;
        }
        let moved = engine.step();
        migrations += moved;
        if moved == 0 {
            quiet += 1;
        } else {
            quiet = 0;
        }
    }
    RawTrial {
        rounds: max_rounds,
        reached: false,
        migrations,
        psi0_final: engine.psi0(),
        nash_gap_tavg: 0.0,
        recovery_rounds: Some(0.0),
    }
}

/// Runs one dynamic trial: exactly `max_rounds` rounds of the event
/// layer + kernel, tracking the per-round Nash gap for the steady-state
/// metrics. There is no stop rule — a system under load has nothing to
/// converge *to*; the horizon itself is the experiment.
fn run_dynamic(sim: &mut DynamicSim, threshold: Threshold, max_rounds: u64) -> RawTrial {
    let shock_round = match sim.config().speed_dynamics {
        Some(SpeedDynamics::Shock { round, .. }) if round < max_rounds => Some(round),
        _ => None,
    };
    let mut migrations = 0u64;
    let mut gap_sum = 0.0f64;
    let mut baseline: Option<f64> = None;
    let mut recovery: Option<u64> = None;
    for r in 0..max_rounds {
        if Some(r) == shock_round {
            baseline = Some(sim.nash_gap(threshold));
        }
        let report = sim.step();
        migrations += report.migrations;
        let gap = sim.nash_gap(threshold);
        gap_sum += gap;
        if let (Some(b), None, Some(sr)) = (baseline, recovery, shock_round) {
            if gap <= b * 1.05 + 1e-12 {
                recovery = Some(r + 1 - sr);
            }
        }
    }
    let recovery_rounds = match (shock_round, recovery) {
        (None, _) => Some(0.0),
        (Some(_), Some(rounds)) => Some(rounds as f64),
        // Censored: the gap never came back within the horizon. Folding
        // `horizon − shock` into the mean here made a never-recovered
        // trial indistinguishable from one that genuinely recovered at
        // the horizon's edge; censored trials are excluded from the
        // summary and surface in `unrecovered_trials` instead.
        (Some(_), None) => None,
    };
    RawTrial {
        rounds: max_rounds,
        reached: true,
        migrations,
        psi0_final: sim.psi0(),
        nash_gap_tavg: gap_sum / max_rounds as f64,
        recovery_rounds,
    }
}

/// Collapses a built scenario's sampled per-task weights and placement
/// into a weight-class count state for the count-based engines (lossless
/// for finite-support weight distributions, quantized for continuous ones
/// — the engines' documented approximation).
pub(crate) fn class_state_of(built: &slb_workloads::BuiltScenario) -> ClassCountState {
    let system = &built.system;
    let task_weights: Vec<f64> = system.tasks().iter().map(|(_, w)| w).collect();
    let task_nodes: Vec<usize> = (0..system.task_count())
        .map(|t| built.initial.task_node(slb_core::model::TaskId(t)).index())
        .collect();
    let classes = WeightClasses::from_samples(&task_weights, WeightClasses::DEFAULT_MAX_CLASSES);
    let counts = classes.node_class_counts(&task_weights, &task_nodes, system.node_count());
    ClassCountState::new(classes.weights().to_vec(), counts)
}

/// Executes one trial of one cell. The trial seed is split into a
/// scenario stream (speeds/weights/placement sampling) and a simulation
/// stream, so engine choice and scenario construction cannot alias.
/// `shard_threads` caps the *within-round* worker fan-out of the
/// count-based engines (their sharded kernel); it never changes results.
fn run_trial(
    cell: &CellSpec,
    engine: EngineKind,
    trial_seed: u64,
    max_rounds: u64,
    shard_threads: usize,
) -> RawTrial {
    let scenario_seed = derive_seed(trial_seed, 0, streams::trial::SCENARIO);
    let sim_seed = derive_seed(trial_seed, 0, streams::trial::SIM);
    let graph = cell.graph.build();
    let mut rng = StdRng::seed_from_u64(scenario_seed);
    let built = scenario::build(
        graph,
        cell.speeds,
        cell.weights,
        cell.placement,
        cell.tasks_per_node,
        &mut rng,
    )
    .expect("validated cells build");
    let system = &built.system;
    let threshold = if system.tasks().is_uniform() {
        Threshold::UnitWeight
    } else {
        Threshold::LightestTask
    };
    match engine {
        EngineKind::UniformFast => {
            let counts: Vec<u64> = (0..system.node_count())
                .map(|v| built.initial.node_task_count(slb_graphs::NodeId(v)) as u64)
                .collect();
            let sim = UniformFastSim::new(
                system,
                Alpha::Approximate,
                CountState::new(counts),
                sim_seed,
            )
            .with_threads(shard_threads);
            drive(&mut FastEngine(sim), cell.stop, max_rounds)
        }
        EngineKind::WeightedFast => {
            let sim =
                WeightedFastSim::new(system, Alpha::Approximate, class_state_of(&built), sim_seed)
                    .with_threads(shard_threads);
            drive(
                &mut WeightClassEngine { sim, threshold },
                cell.stop,
                max_rounds,
            )
        }
        EngineKind::SpeedFast => {
            let rule = match cell.protocol {
                ProtocolKind::Alg2 => SpeedFastRule::Alg2,
                ProtocolKind::Bhs => SpeedFastRule::Bhs,
                _ => unreachable!("dispatch table covers the speed-aware protocols"),
            };
            let sim = SpeedFastSim::new(
                system,
                rule,
                Alpha::Approximate,
                class_state_of(&built),
                sim_seed,
            )
            .with_threads(shard_threads);
            drive(
                &mut SpeedClassEngine { sim, threshold },
                cell.stop,
                max_rounds,
            )
        }
        EngineKind::Dynamic => {
            let rule = match cell.protocol {
                ProtocolKind::Alg1 | ProtocolKind::Alg2 => DynamicRule::Relaxed,
                ProtocolKind::Bhs => DynamicRule::OwnWeight,
                _ => unreachable!("validation rejects dynamic × sequential protocols"),
            };
            let mut sim = DynamicSim::new(
                system,
                rule,
                Alpha::Approximate,
                class_state_of(&built),
                cell.dynamic_config(),
                sim_seed,
            )
            .with_threads(shard_threads);
            run_dynamic(&mut sim, threshold, max_rounds)
        }
        EngineKind::Sequential => match cell.protocol {
            ProtocolKind::Diffusion => run_sequential(
                system,
                Diffusion::new(),
                built.initial.clone(),
                sim_seed,
                cell.stop,
                threshold,
                max_rounds,
            ),
            ProtocolKind::BestResponse => run_sequential(
                system,
                BestResponse::new(),
                built.initial.clone(),
                sim_seed,
                cell.stop,
                threshold,
                max_rounds,
            ),
            _ => unreachable!("dispatch table covers the sequential protocols"),
        },
        EngineKind::Unsupported => unreachable!("unsupported cells are never executed"),
    }
}

/// Executes a sweep: every cell of the grid, `spec.trials` seeded trials
/// each, fanned out over `config.threads` threads.
///
/// # Errors
///
/// Returns a [`SweepRunError`] if a cell cannot be built (see
/// [`validate`]).
///
/// # Panics
///
/// Panics if `config.threads == 0` or `spec.trials == 0`.
pub fn run_sweep(spec: &SweepSpec, config: SweepConfig) -> Result<SweepOutcome, SweepRunError> {
    validate(spec)?;
    let cells = spec.cells();
    let keys: Vec<u64> = (0..cells.len() as u64).collect();
    // One thread budget covers both parallelism levels: trial workers get
    // the whole budget; whatever cannot be used across `(cell, trial)`
    // work items flows down into each trial's sharded rounds. Results
    // depend on neither knob.
    let work_items = cells.len() * spec.trials;
    let shard_threads = (config.threads / work_items.max(1)).max(1);
    let trials = run_cell_trials(
        &keys,
        spec.trials,
        config.base_seed,
        config.threads,
        |pos, _trial, seed| {
            let cell = &cells[pos];
            run_trial(
                cell,
                EngineKind::for_cell(cell),
                seed,
                spec.max_rounds,
                shard_threads,
            )
        },
    );

    let results = cells
        .iter()
        .zip(trials)
        .enumerate()
        .map(|(index, (&cell, raw))| {
            let engine = EngineKind::for_cell(&cell);
            let n = cell.graph.node_count();
            let rounds: Vec<f64> = raw.iter().map(|t| t.rounds as f64).collect();
            let migrations: Vec<f64> = raw.iter().map(|t| t.migrations as f64).collect();
            let psi0: Vec<f64> = raw.iter().map(|t| t.psi0_final).collect();
            let gaps: Vec<f64> = raw.iter().map(|t| t.nash_gap_tavg).collect();
            // Censored trials (shock fired, gap never re-entered the
            // band) are excluded from the recovery summary and counted
            // separately; a cell whose every trial was censored renders
            // the empty summary rather than a fabricated mean.
            let recoveries: Vec<f64> = raw.iter().filter_map(|t| t.recovery_rounds).collect();
            let unrecovered_trials = raw.iter().filter(|t| t.recovery_rounds.is_none()).count();
            let stats = Some(CellStats {
                reached_fraction: raw.iter().filter(|t| t.reached).count() as f64
                    / raw.len() as f64,
                rounds: Summary::of(&rounds),
                migrations: Summary::of(&migrations),
                psi0_final: Summary::of(&psi0),
                nash_gap_tavg: Summary::of(&gaps),
                recovery_rounds: if recoveries.is_empty() {
                    Summary::empty()
                } else {
                    Summary::of(&recoveries)
                },
                unrecovered_trials,
            });
            CellResult {
                index,
                spec: cell,
                n,
                m: n * cell.tasks_per_node,
                engine,
                stats,
            }
        })
        .collect();
    Ok(SweepOutcome {
        base_seed: config.base_seed,
        trials: spec.trials,
        max_rounds: spec.max_rounds,
        cells: results,
    })
}

/// The exact header line of the sweep CSV artifact (schema-stable; the
/// golden-file tests and external figure scripts both key on it).
pub const CSV_HEADER: &str = "cell,graph,n,m,protocol,engine,speeds,weights,placement,until,\
                              arrivals,completions,churn,speed-dyn,trials,base_seed,max_rounds,\
                              reached_fraction,rounds_mean,rounds_std,rounds_min,rounds_median,\
                              rounds_max,migrations_mean,psi0_final_mean,nash_gap_tavg_mean,\
                              recovery_rounds_mean,unrecovered_trials";

impl CellStats {
    /// The all-zero statistics block emitted for unsupported cells, so
    /// CSV and JSON rows keep a homogeneous schema across the whole grid.
    fn zeroed() -> CellStats {
        let zero = Summary::empty();
        CellStats {
            reached_fraction: 0.0,
            rounds: zero,
            migrations: zero,
            psi0_final: zero,
            nash_gap_tavg: zero,
            recovery_rounds: zero,
            unrecovered_trials: 0,
        }
    }
}

impl SweepOutcome {
    /// Number of cells that were skipped rather than executed (zeroed
    /// `unsupported` rows). Always 0 for grids produced by [`run_sweep`]
    /// today — every protocol × task-mode combination has an engine — but
    /// callers (the CLI) warn on it so zeroed rows can never silently pass
    /// as measurements.
    pub fn unsupported_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.stats.is_none() || c.engine == EngineKind::Unsupported)
            .count()
    }

    /// Renders the sweep as deterministic CSV: [`CSV_HEADER`] followed by
    /// one row per cell in grid order. Floats use Rust's shortest
    /// round-trip formatting, so the artifact is byte-stable across runs,
    /// thread counts, and platforms.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for cell in &self.cells {
            let zero = CellStats::zeroed();
            let s = cell.stats.as_ref().unwrap_or(&zero);
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                cell.index,
                family_grid_label(cell.spec.graph),
                cell.n,
                cell.m,
                cell.spec.protocol.grid_label(),
                cell.engine.label(),
                speeds_grid_label(cell.spec.speeds),
                weights_grid_label(cell.spec.weights),
                placement_grid_label(cell.spec.placement),
                cell.spec.stop.grid_label(),
                arrivals_grid_label(cell.spec.arrivals),
                completions_grid_label(cell.spec.completions),
                churn_grid_label(cell.spec.churn),
                speed_dyn_grid_label(cell.spec.speed_dyn),
                if cell.stats.is_some() { self.trials } else { 0 },
                self.base_seed,
                self.max_rounds,
                s.reached_fraction,
                s.rounds.mean,
                s.rounds.std_dev,
                s.rounds.min,
                s.rounds.median,
                s.rounds.max,
                s.migrations.mean,
                s.psi0_final.mean,
                s.nash_gap_tavg.mean,
                s.recovery_rounds.mean,
                s.unrecovered_trials,
            );
        }
        out
    }

    /// Renders the sweep as a JSON array: one object per cell with the
    /// same fields as the CSV columns (plus nested round statistics), and
    /// an identical schema for every object — unsupported cells carry
    /// zeroed metrics, exactly as in the CSV.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"cell\":{},\"graph\":\"{}\",\"n\":{},\"m\":{},\"protocol\":\"{}\",\
                 \"engine\":\"{}\",\"speeds\":\"{}\",\"weights\":\"{}\",\"placement\":\"{}\",\
                 \"until\":\"{}\",\"arrivals\":\"{}\",\"completions\":\"{}\",\"churn\":\"{}\",\
                 \"speed_dyn\":\"{}\",\"trials\":{},\"base_seed\":{},\"max_rounds\":{}",
                cell.index,
                family_grid_label(cell.spec.graph),
                cell.n,
                cell.m,
                cell.spec.protocol.grid_label(),
                cell.engine.label(),
                speeds_grid_label(cell.spec.speeds),
                weights_grid_label(cell.spec.weights),
                placement_grid_label(cell.spec.placement),
                cell.spec.stop.grid_label(),
                arrivals_grid_label(cell.spec.arrivals),
                completions_grid_label(cell.spec.completions),
                churn_grid_label(cell.spec.churn),
                speed_dyn_grid_label(cell.spec.speed_dyn),
                if cell.stats.is_some() { self.trials } else { 0 },
                self.base_seed,
                self.max_rounds,
            );
            // Unsupported cells emit the same fields zeroed, so every
            // object in the array has an identical schema.
            let zero = CellStats::zeroed();
            let s = cell.stats.as_ref().unwrap_or(&zero);
            let _ = write!(
                out,
                ",\"reached_fraction\":{},\"rounds\":{{\"mean\":{},\"std\":{},\"min\":{},\
                 \"median\":{},\"max\":{}}},\"migrations_mean\":{},\"psi0_final_mean\":{},\
                 \"nash_gap_tavg_mean\":{},\"recovery_rounds_mean\":{},\
                 \"unrecovered_trials\":{}",
                s.reached_fraction,
                s.rounds.mean,
                s.rounds.std_dev,
                s.rounds.min,
                s.rounds.median,
                s.rounds.max,
                s.migrations.mean,
                s.psi0_final.mean,
                s.nash_gap_tavg.mean,
                s.recovery_rounds.mean,
                s.unrecovered_trials,
            );
            out.push('}');
            if i + 1 < self.cells.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(tokens: &[&str]) -> SweepSpec {
        SweepSpec::parse(tokens).unwrap()
    }

    #[test]
    fn engine_dispatch_table() {
        let spec = small_spec(&[
            "protocol=alg1,alg2,bhs,diffusion,best-response",
            "weights=unit,uniform:0.2..0.9",
        ]);
        let engines: Vec<EngineKind> = spec.cells().iter().map(EngineKind::for_cell).collect();
        // Weights is an outer axis relative to protocol: all five
        // protocols on unit weights first, then on weighted tasks. Every
        // randomized protocol runs count-based — alg2/bhs on the
        // speed-aware engine in both task modes.
        assert_eq!(
            engines,
            vec![
                EngineKind::UniformFast,
                EngineKind::SpeedFast,
                EngineKind::SpeedFast,
                EngineKind::Sequential,
                EngineKind::Sequential,
                EngineKind::WeightedFast,
                EngineKind::SpeedFast,
                EngineKind::SpeedFast,
                EngineKind::Sequential,
                EngineKind::Sequential,
            ]
        );
    }

    #[test]
    fn default_sweep_runs_and_reaches_nash() {
        let spec = SweepSpec {
            tasks_per_node: vec![8],
            trials: 2,
            max_rounds: 100_000,
            ..SweepSpec::default()
        };
        let out = run_sweep(&spec, SweepConfig::sequential(7)).unwrap();
        assert_eq!(out.cells.len(), 1);
        let stats = out.cells[0].stats.as_ref().unwrap();
        assert_eq!(stats.reached_fraction, 1.0);
        assert!(stats.rounds.max < 100_000.0);
        assert!(stats.migrations.min > 0.0, "hot start must move tasks");
        assert_eq!(out.cells[0].engine, EngineKind::UniformFast);
    }

    #[test]
    fn all_five_protocols_and_both_modes_in_one_grid() {
        let spec = small_spec(&[
            "graph=ring:6",
            "tasks-per-node=6",
            "protocol=alg1,alg2,bhs,diffusion,best-response",
            "weights=unit,uniform:0.2..0.9",
            "until=quiescent:20",
            "trials=2",
            "max-rounds=20000",
        ]);
        let out = run_sweep(&spec, SweepConfig::parallel(3)).unwrap();
        assert_eq!(out.cells.len(), 10);
        assert_eq!(out.unsupported_cells(), 0, "every cell must execute");
        for cell in &out.cells {
            let s = cell.stats.as_ref().unwrap();
            assert_eq!(
                s.reached_fraction, 1.0,
                "cell {} did not quiesce: {:?}",
                cell.index, cell.spec
            );
        }
        // The formerly-unsupported alg1 × weighted cell now runs on the
        // weight-class engine and carries real statistics.
        let alg1_weighted = out
            .cells
            .iter()
            .find(|c| c.spec.protocol == ProtocolKind::Alg1 && !c.spec.is_uniform_tasks())
            .expect("grid contains alg1 × weighted");
        assert_eq!(alg1_weighted.engine, EngineKind::WeightedFast);
        let s = alg1_weighted.stats.as_ref().unwrap();
        assert!(s.migrations.min > 0.0, "hot start must move tasks");
        assert!(s.psi0_final.mean.is_finite());
        // The CSV has one row per cell, header first.
        let csv = out.to_csv();
        assert_eq!(csv.lines().count(), 11);
        assert_eq!(csv.lines().next().unwrap(), CSV_HEADER);
        assert!(!csv.contains(",unsupported,"));
        assert!(csv.contains(",weighted-fast,"));
        assert!(csv.contains(",speed-fast,"));
        // No alg2/bhs cell falls back to a per-task engine.
        for line in csv
            .lines()
            .filter(|l| l.contains(",alg2,") || l.contains(",bhs,"))
        {
            assert!(line.contains(",speed-fast,"), "row: {line}");
        }
        // Every JSON object carries the full field set (homogeneous
        // schema).
        let json = out.to_json();
        let objects = json.lines().filter(|l| l.trim_start().starts_with('{'));
        let mut count = 0;
        for line in objects {
            count += 1;
            for field in [
                "reached_fraction",
                "rounds",
                "migrations_mean",
                "psi0_final_mean",
            ] {
                assert!(line.contains(field), "JSON row misses `{field}`: {line}");
            }
        }
        assert_eq!(count, 10);
    }

    #[test]
    fn csv_is_byte_identical_across_thread_counts() {
        let spec = small_spec(&[
            "graph=ring:5,complete:5",
            "tasks-per-node=8",
            "protocol=alg1,bhs",
            "weights=unit,uniform:0.3..1",
            "until=quiescent:10",
            "trials=3",
            "max-rounds=5000",
        ]);
        let one = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 11,
                threads: 1,
            },
        )
        .unwrap();
        let eight = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 11,
                threads: 8,
            },
        )
        .unwrap();
        assert_eq!(one.to_csv(), eight.to_csv());
        assert_eq!(one.to_json(), eight.to_json());
        // A different seed genuinely changes the artifact.
        let other = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 12,
                threads: 8,
            },
        )
        .unwrap();
        assert_ne!(one.to_csv(), other.to_csv());
    }

    #[test]
    fn psi0_stop_rule_reaches_the_bound() {
        let spec = small_spec(&[
            "graph=complete:6",
            "tasks-per-node=16",
            "until=psi0:50",
            "trials=2",
            "max-rounds=50000",
        ]);
        let out = run_sweep(&spec, SweepConfig::sequential(5)).unwrap();
        let s = out.cells[0].stats.as_ref().unwrap();
        assert_eq!(s.reached_fraction, 1.0);
        assert!(s.psi0_final.max <= 50.0);
    }

    #[test]
    fn validation_rejects_unbuildable_cells() {
        let spec = small_spec(&["graph=ring:3", "placement=node:7"]);
        let err = run_sweep(&spec, SweepConfig::sequential(1)).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let spec = small_spec(&["graph=ring:2"]);
        let err = run_sweep(&spec, SweepConfig::sequential(1)).unwrap_err();
        assert!(err.to_string().contains("minimum size"), "{err}");
        let spec = small_spec(&["graph=torus:2x5"]);
        assert!(validate(&spec).is_err());
    }

    #[test]
    fn weighted_cells_use_lightest_task_threshold_and_converge() {
        let spec = small_spec(&[
            "graph=ring:5",
            "tasks-per-node=6",
            "protocol=bhs",
            "weights=bimodal:0.2:1:0.3",
            "speeds=alternating:2",
            "until=quiescent:30",
            "trials=2",
            "max-rounds=30000",
        ]);
        let out = run_sweep(&spec, SweepConfig::sequential(9)).unwrap();
        let s = out.cells[0].stats.as_ref().unwrap();
        assert_eq!(s.reached_fraction, 1.0);
        assert!(s.psi0_final.mean.is_finite());
    }

    #[test]
    fn alg1_weighted_runs_on_every_weight_distribution() {
        // Finite-support (bimodal) maps to exact classes; continuous
        // (uniform range, power law) quantizes — all three must produce
        // engine-executed, non-zero rows under heterogeneous speeds.
        let spec = small_spec(&[
            "graph=ring:6",
            "tasks-per-node=8",
            "protocol=alg1",
            "speeds=alternating:2",
            "weights=bimodal:0.2:1:0.3,uniform:0.2..0.9,power-law:1.2:0.05",
            "until=quiescent:20",
            "trials=2",
            "max-rounds=20000",
        ]);
        let out = run_sweep(&spec, SweepConfig::sequential(13)).unwrap();
        assert_eq!(out.cells.len(), 3);
        for cell in &out.cells {
            assert_eq!(cell.engine, EngineKind::WeightedFast);
            let s = cell.stats.as_ref().unwrap();
            assert_eq!(s.reached_fraction, 1.0, "cell {:?}", cell.spec);
            assert!(s.migrations.min > 0.0);
            assert!(s.rounds.mean > 0.0);
        }
    }

    #[test]
    fn dynamic_cells_run_fixed_horizon_and_emit_steady_state_metrics() {
        let spec = small_spec(&[
            "graph=ring:8",
            "tasks-per-node=8",
            "protocol=alg1,alg2,bhs",
            "weights=unit,uniform:0.2..0.9",
            "arrivals=poisson:0.5",
            "completions=rate:0.05",
            "churn=rate:0.02",
            "speed-dyn=shock:40:0.25",
            "trials=2",
            "max-rounds=120",
        ]);
        let out = run_sweep(&spec, SweepConfig::sequential(21)).unwrap();
        assert_eq!(out.cells.len(), 6);
        for cell in &out.cells {
            assert_eq!(cell.engine, EngineKind::Dynamic, "cell {:?}", cell.spec);
            let s = cell.stats.as_ref().unwrap();
            // The horizon is the run: every trial "reaches" it exactly.
            assert_eq!(s.reached_fraction, 1.0);
            assert_eq!(s.rounds.mean, 120.0);
            assert!(s.migrations.min > 0.0, "a loaded system must migrate");
            assert!(s.nash_gap_tavg.mean > 0.0, "arrivals keep the gap open");
            assert!(s.nash_gap_tavg.mean.is_finite());
            // The shock fires inside the horizon: every trial is either
            // a measured recovery (≥ 1 round, within horizon − shock =
            // 80) or censored into the unrecovered count.
            assert_eq!(
                s.recovery_rounds.count + s.unrecovered_trials,
                2,
                "recovered + censored must partition the trials"
            );
            if s.recovery_rounds.count > 0 {
                assert!(s.recovery_rounds.min >= 1.0);
                assert!(s.recovery_rounds.max <= 80.0);
            }
        }
        let csv = out.to_csv();
        assert_eq!(csv.lines().next().unwrap(), CSV_HEADER);
        assert!(csv.contains(",dynamic,"));
        assert!(csv.contains(",poisson:0.5,rate:0.05,rate:0.02,shock:40:0.25,"));
        let json = out.to_json();
        assert!(json.contains("\"nash_gap_tavg_mean\":"));
        assert!(json.contains("\"recovery_rounds_mean\":"));
        assert!(json.contains("\"arrivals\":\"poisson:0.5\""));
    }

    #[test]
    fn dynamic_sweep_is_byte_identical_across_thread_counts() {
        let spec = small_spec(&[
            "graph=ring:16",
            "tasks-per-node=8",
            "protocol=alg2",
            "arrivals=poisson:0.5",
            "churn=rate:0.05",
            "speed-dyn=drift:0.1",
            "trials=2",
            "max-rounds=150",
        ]);
        let one = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 4,
                threads: 1,
            },
        )
        .unwrap();
        let many = run_sweep(
            &spec,
            SweepConfig {
                base_seed: 4,
                threads: 8,
            },
        )
        .unwrap();
        assert_eq!(one.to_csv(), many.to_csv());
        assert_eq!(one.to_json(), many.to_json());
    }

    #[test]
    fn static_cells_keep_zero_dynamic_metrics_and_none_labels() {
        let spec = small_spec(&[
            "graph=ring:5",
            "tasks-per-node=8",
            "until=quiescent:10",
            "trials=2",
            "max-rounds=5000",
        ]);
        let out = run_sweep(&spec, SweepConfig::sequential(3)).unwrap();
        let s = out.cells[0].stats.as_ref().unwrap();
        assert_eq!(s.nash_gap_tavg.mean, 0.0);
        assert_eq!(s.recovery_rounds.mean, 0.0);
        assert_eq!(s.unrecovered_trials, 0);
        let row = out.to_csv().lines().nth(1).unwrap().to_string();
        assert!(row.contains(",none,none,none,none,"), "row: {row}");
        assert!(row.ends_with(",0,0,0"), "row: {row}");
    }

    #[test]
    fn unrecoverable_shock_is_censored_not_averaged() {
        // Regression: a shock one round before the horizon's edge leaves
        // the kernel a single round to re-balance a 4× capacity jolt on
        // half the ring — the gap cannot re-enter the 5% band, so every
        // trial is censored. The old aggregation folded such trials into
        // `recovery_rounds_mean` at horizon − shock (here 1), passing a
        // never-recovered cell off as one that recovered in exactly one
        // round.
        let spec = small_spec(&[
            "graph=ring:8",
            "tasks-per-node=8",
            "protocol=alg1",
            "speed-dyn=shock:40:0.5",
            "trials=3",
            "max-rounds=41",
        ]);
        let out = run_sweep(&spec, SweepConfig::sequential(21)).unwrap();
        let s = out.cells[0].stats.as_ref().unwrap();
        assert_eq!(s.unrecovered_trials, 3, "every trial must be censored");
        assert_eq!(s.recovery_rounds.count, 0);
        assert_eq!(
            s.recovery_rounds.mean, 0.0,
            "censored trials must not fabricate a recovery mean"
        );
        let row = out.to_csv().lines().nth(1).unwrap().to_string();
        assert!(row.ends_with(",0,3"), "row: {row}");
    }

    #[test]
    fn validation_rejects_dynamic_sequential_protocols() {
        for protocol in ["diffusion", "best-response"] {
            let spec = small_spec(&[&format!("protocol={protocol}"), "arrivals=poisson:0.5"]);
            let err = validate(&spec).unwrap_err();
            assert!(
                err.to_string().contains("no dynamic-scenario engine"),
                "{err}"
            );
        }
        // The same protocols stay valid on static cells.
        let spec = small_spec(&["protocol=diffusion,best-response"]);
        assert!(validate(&spec).is_ok());
    }

    #[test]
    fn unsupported_rows_render_zeroed_and_are_countable() {
        // No current combination dispatches to `Unsupported`; pin the
        // schema-stability contract on a hand-built outcome so the zeroed
        // rendering and the skip counter cannot rot.
        let spec = SweepSpec::default();
        let cell = spec.cells()[0];
        let outcome = SweepOutcome {
            base_seed: 1,
            trials: 2,
            max_rounds: 10,
            cells: vec![CellResult {
                index: 0,
                spec: cell,
                n: 8,
                m: 128,
                engine: EngineKind::Unsupported,
                stats: None,
            }],
        };
        assert_eq!(outcome.unsupported_cells(), 1);
        let csv = outcome.to_csv();
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains(",unsupported,"), "row: {row}");
        // Zeroed metrics and zero trials, not fabricated measurements.
        assert!(row.ends_with(",10,0,0,0,0,0,0,0,0,0,0,0"), "row: {row}");
        let json = outcome.to_json();
        assert!(json.contains("\"engine\":\"unsupported\""));
        assert!(json.contains("\"trials\":0"));
    }
}
