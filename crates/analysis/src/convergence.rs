//! Convergence diagnostics on recorded trajectories.
//!
//! The figure experiments (F1, F4, F5) reduce `Ψ₀(t)` series to a handful
//! of scalars: the first round a target is hit, the empirical geometric
//! decay rate (to compare against the paper's `1 − 1/γ` envelope of Lemma
//! 3.13), and e-folding times. These extractors are shared between the
//! binaries and the test suites so the reductions themselves are tested.

use crate::stats::linear_fit;

/// First position whose value is `≤ target`, if any.
///
/// Series are `(round, value)` pairs in increasing round order.
pub fn first_hit(series: &[(u64, f64)], target: f64) -> Option<u64> {
    series.iter().find(|(_, v)| *v <= target).map(|(r, _)| *r)
}

/// The round by which the series first drops to `start/e` (one
/// e-folding), where `start` is the value at the first sample.
///
/// Returns `None` for empty series and for non-positive starts: an
/// e-folding of a zero or negative level is undefined, and the old
/// behavior of reporting round 0 for them silently turned degenerate
/// trajectories into "instant convergence".
pub fn e_folding_round(series: &[(u64, f64)]) -> Option<u64> {
    let start = series.first()?.1;
    if start <= 0.0 {
        return None;
    }
    first_hit(series, start / std::f64::consts::E)
}

/// Fits a geometric decay `v(t) ≈ v₀·ρ^t` to the sub-series with values in
/// `(floor, ∞)` by least squares on `ln v`, returning the per-round decay
/// rate `ρ` (in `(0, 1)` for decaying series).
///
/// Returns `None` when fewer than two samples lie above the floor.
///
/// The `floor` should be the regime boundary — e.g. `ψ_c`, below which the
/// multiplicative-drop lemma no longer applies.
pub fn geometric_rate(series: &[(u64, f64)], floor: f64) -> Option<f64> {
    let pts: Vec<(f64, f64)> = series
        .iter()
        .filter(|(_, v)| *v > floor && *v > 0.0)
        .map(|(r, v)| (*r as f64, v.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let xs: Vec<f64> = pts.iter().map(|(x, _)| *x).collect();
    if xs.windows(2).all(|w| w[0] == w[1]) {
        return None;
    }
    let ys: Vec<f64> = pts.iter().map(|(_, y)| *y).collect();
    let fit = linear_fit(&xs, &ys);
    Some(fit.slope.exp())
}

/// Validates a series against the Lemma 3.13 envelope
/// `v(t) ≤ (1 − 1/γ)^(t−t₀)·v(t₀)` while above `floor`, where `t₀` is the
/// round of the first sample; returns the first violating round, or `None`
/// if the envelope holds.
///
/// The envelope is anchored at the first *recorded* sample, not at
/// absolute round 0: a trajectory whose recording starts mid-run (a
/// shock-recovery window, a resumed trace) decays relative to where the
/// recording begins.
///
/// A small relative slack absorbs sampling noise: a sample violates only
/// if it exceeds the envelope by more than `slack` relatively.
pub fn envelope_violation(
    series: &[(u64, f64)],
    gamma: f64,
    floor: f64,
    slack: f64,
) -> Option<u64> {
    let (r0, start) = *series.first()?;
    let rho = 1.0 - 1.0 / gamma;
    for (r, v) in series {
        if *v <= floor {
            break;
        }
        let envelope = start * rho.powf((*r - r0) as f64);
        if *v > envelope * (1.0 + slack) {
            return Some(*r);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_series(v0: f64, rho: f64, rounds: u64) -> Vec<(u64, f64)> {
        (0..=rounds).map(|r| (r, v0 * rho.powf(r as f64))).collect()
    }

    #[test]
    fn first_hit_finds_threshold() {
        let s = vec![(0, 100.0), (5, 50.0), (10, 20.0), (15, 5.0)];
        assert_eq!(first_hit(&s, 60.0), Some(5));
        assert_eq!(first_hit(&s, 20.0), Some(10));
        assert_eq!(first_hit(&s, 1.0), None);
        assert_eq!(first_hit(&[], 1.0), None);
    }

    #[test]
    fn e_folding_on_exact_geometric() {
        // ρ = e^{-1/10}: e-folding at exactly round 10.
        let s = geometric_series(1000.0, (-0.1f64).exp(), 50);
        assert_eq!(e_folding_round(&s), Some(10));
    }

    #[test]
    fn geometric_rate_recovers_rho() {
        let rho = 0.93;
        let s = geometric_series(500.0, rho, 100);
        let fitted = geometric_rate(&s, 1e-9).unwrap();
        assert!((fitted - rho).abs() < 1e-9, "{fitted} vs {rho}");
    }

    #[test]
    fn geometric_rate_respects_floor() {
        // Series decays fast then flattens at 10; the floor excludes the
        // flat tail from the fit.
        let mut s = geometric_series(1000.0, 0.5, 10);
        for r in 11..30 {
            s.push((r, 10.0));
        }
        let fitted = geometric_rate(&s, 10.5).unwrap();
        assert!((fitted - 0.5).abs() < 0.05, "{fitted}");
        // Without the floor the flat tail biases the rate upward.
        let biased = geometric_rate(&s, 1e-12).unwrap();
        assert!(biased > fitted);
    }

    #[test]
    fn geometric_rate_needs_two_points() {
        assert!(geometric_rate(&[(0, 5.0)], 0.0).is_none());
        assert!(geometric_rate(&[(0, 0.5), (1, 0.4)], 1.0).is_none());
    }

    // Regression tests for the degenerate-series edge cases the
    // validation ladders can produce (instant convergence → constant or
    // single-point series; oscillating protocols → non-monotone series).

    #[test]
    fn constant_series_has_no_e_folding_and_unit_rate() {
        let flat: Vec<(u64, f64)> = (0..20).map(|r| (r, 7.5)).collect();
        // A constant series never decays to start/e…
        assert_eq!(e_folding_round(&flat), None);
        // …and its fitted geometric rate is exactly 1 (no decay), not a
        // panic from a degenerate fit.
        let rate = geometric_rate(&flat, 1e-9).unwrap();
        assert!((rate - 1.0).abs() < 1e-12, "rate {rate}");
    }

    #[test]
    fn single_point_series_yields_none_not_panics() {
        let one = [(3u64, 42.0)];
        assert_eq!(e_folding_round(&one), None);
        assert_eq!(geometric_rate(&one, 1e-9), None);
        assert_eq!(first_hit(&one, 42.0), Some(3));
        assert_eq!(first_hit(&one, 41.9), None);
        assert_eq!(e_folding_round(&[]), None);
        assert_eq!(envelope_violation(&[], 10.0, 0.0, 0.01), None);
    }

    #[test]
    fn non_positive_start_has_no_e_folding() {
        // A zero start used to report Some(0) ("instantly e-folded");
        // the e-folding of a non-positive level is undefined.
        assert_eq!(e_folding_round(&[(0, 0.0), (1, 0.0)]), None);
        assert_eq!(e_folding_round(&[(0, -4.0), (1, -5.0)]), None);
    }

    #[test]
    fn non_monotone_series_fit_is_defined() {
        // An oscillating decay (e.g. rounded diffusion overshooting):
        // the rate fit must average through the oscillation, not panic
        // or return garbage outside (0, ∞).
        let series: Vec<(u64, f64)> = (0..40)
            .map(|r| {
                let base = 1000.0 * 0.9f64.powi(r as i32);
                (r, if r % 2 == 0 { base * 1.3 } else { base / 1.3 })
            })
            .collect();
        let rate = geometric_rate(&series, 1e-9).unwrap();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
        assert!((rate - 0.9).abs() < 0.03, "rate {rate} far from 0.9");
        // A non-monotone series still has a well-defined first hit…
        let up_down = [(0, 10.0), (1, 2.0), (2, 11.0), (3, 1.0)];
        assert_eq!(first_hit(&up_down, 3.0), Some(1));
        // …and never-hit targets stay None.
        assert_eq!(first_hit(&up_down, 0.5), None);
    }

    #[test]
    fn duplicate_rounds_do_not_panic_the_rate_fit() {
        // Two samples at the same round (a caller merging traces) must
        // not reach linear_fit's constant-x panic.
        assert_eq!(geometric_rate(&[(5, 10.0), (5, 8.0)], 1e-9), None);
        let rate = geometric_rate(&[(5, 10.0), (5, 8.0), (6, 4.0)], 1e-9);
        assert!(rate.is_some());
    }

    #[test]
    fn envelope_detects_violations() {
        let gamma = 10.0;
        // A series decaying exactly at the envelope rate: no violation.
        let ok = geometric_series(100.0, 1.0 - 1.0 / gamma, 40);
        assert_eq!(envelope_violation(&ok, gamma, 1e-9, 0.01), None);
        // A slower series violates quickly.
        let slow = geometric_series(100.0, 0.99, 40);
        let v = envelope_violation(&slow, gamma, 1e-9, 0.01);
        assert!(v.is_some());
        // Below the floor nothing is checked.
        assert_eq!(envelope_violation(&slow, gamma, 1e9, 0.01), None);
    }

    #[test]
    fn envelope_is_anchored_at_the_first_recorded_round() {
        // Regression: a recording that starts at round r₀ > 0 (a
        // shock-recovery window) used to be checked against the already
        // decayed `start·ρ^r` — `start` is the value at r₀, so every
        // conforming sample looked like a violation. The envelope must be
        // `start·ρ^(r−r₀)`.
        let gamma = 10.0;
        let rho: f64 = 1.0 - 1.0 / gamma;
        // Exactly envelope-rate decay, recorded from round 500 onward.
        let shifted: Vec<(u64, f64)> = (0..=40)
            .map(|i| (500 + i, 100.0 * rho.powf(i as f64)))
            .collect();
        assert_eq!(
            envelope_violation(&shifted, gamma, 1e-9, 0.01),
            None,
            "conforming late-start series must not violate"
        );
        // A genuinely slower late-start series is still caught, and the
        // reported round is in the series' own (absolute) round domain.
        let slow: Vec<(u64, f64)> = (0..=40)
            .map(|i| (500 + i, 100.0 * 0.99f64.powf(i as f64)))
            .collect();
        let v = envelope_violation(&slow, gamma, 1e-9, 0.01).unwrap();
        assert!(v > 500, "violation round {v} must be after the anchor");
    }
}
