//! The theorem-validation runner: empirical convergence scaling vs the
//! paper's bounds.
//!
//! This module closes the loop between the sweep subsystem (which can run
//! every protocol × workload cell) and [`theory`] (which encodes the
//! paper's bounds): it executes the scaling ladders of a
//! [`ValidateSpec`], fits the empirical exponent `T ∝ n^k` per
//! `(protocol, family, regime, load)` row, and renders a conformance
//! report with three checks per row:
//!
//! * **exponent_ok** — the fitted exponent's 95% CI (from
//!   [`power_law_fit_ci`]) does not lie above the Table 1 prediction
//!   (plus the spec's `exp_tol`): the entries are *upper* bounds, so
//!   growing significantly faster refutes them while growing slower does
//!   not. Predictions come from [`theory::table1_exponent_this_paper`]
//!   for this paper's protocols (`alg1`, `alg2`) and
//!   [`theory::table1_exponent_bhs`] for the \[6\] baseline (`bhs`), with
//!   the check itself run against the bound shape's *ladder slope* (see
//!   `pred_ladder` below); the deterministic baselines (`diffusion`,
//!   `best-response`) are measured but carry no prediction,
//! * **bound_ok** — mean rounds stay within the spec's declared constant
//!   factor of the theorem bounds
//!   ([`theory::thm11_expected_rounds`]/[`theory::thm12_expected_rounds`]/
//!   [`theory::thm13_expected_rounds`]), and
//! * **gap_ok** — the ε-quality half of Theorems 1.1/1.3: the state
//!   reached at `Ψ₀ ≤ 4ψ_c` is a `2/(1+δ)`-approximate NE, measured with
//!   the count-based [`nash_gap`](equilibrium::nash_gap_loads) predicates
//!   (vacuous when `δ ≤ 1`, matching the theorems' own applicability).
//!
//! The three regimes map onto the theorem statements: `approx` stops at
//! the theorems' own `Ψ₀ ≤ 4ψ_c` target (whose hitting time Table 1's
//! ε-approximate column bounds), `exact` at an exact NE (Theorem 1.2),
//! and `eps` at a *fixed*-ε approximate NE — a direct relative-balance
//! hitting time that is reported without a Table 1 annotation, because at
//! reachable sizes it is dominated by the early spreading phase rather
//! than the asymptotic mixing the table describes (an empirical finding
//! this subsystem makes visible).
//!
//! Ladders for every randomized protocol run on the *fast count-based
//! engines* (`alg1` on uniform tasks → [`UniformFastSim`], `alg1` on
//! weighted tasks → [`WeightedFastSim`], `alg2`/`bhs` →
//! [`SpeedFastSim`]) using the count-based ε-Nash/gap predicates and the
//! engines' observer-hook run loops — which is what lets alg2/bhs ladders
//! reach depths the per-task `O(m)`-per-round engines could not; only the
//! deterministic baselines run per-task. As with sweeps, every trial's
//! randomness is a pure function of `(base seed, row, point, trial)`, so
//! reports are **byte-identical at any thread count**.
//!
//! Caveat (also rendered into every report): the Table 1 entries are
//! *asymptotic* bounds. The fitted exponents carry the dropped `log`
//! factors and small-`n` transients, which is why conformance is a CI
//! bracket, not an equality — and why the absolute check is "within a
//! declared constant factor", not a tight comparison.

use crate::stats::{power_law_fit_ci, ExponentFit, Summary};
use crate::sweep::class_state_of;
use crate::tables::{fmt_value, Table};
use crate::theory::{self, Instance, Table1Column};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slb_core::engine::speed_fast::{SpeedFastRule, SpeedFastSim};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim, UniformFastStop};
use slb_core::engine::weighted_fast::{WeightedFastSim, WeightedFastStop};
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::equilibrium::{self, Threshold};
use slb_core::model::System;
use slb_core::protocol::{Alpha, BestResponse, Diffusion};
use slb_core::rng::{derive_seed, streams};
use slb_workloads::scenario;
use slb_workloads::sweep::ProtocolKind;
use slb_workloads::validate::{Regime, RowSpec, ValidateSpec};
use slb_workloads::weights::WeightDistribution;
use std::fmt;
use std::fmt::Write as _;

/// Execution parameters of a validation run (everything *not* in the
/// spec).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidateConfig {
    /// Base seed; trial `t` of ladder point `p` of row `r` runs on
    /// `derive_seed(base_seed, r·|sizes| + p, t)`.
    pub base_seed: u64,
    /// Worker threads for the trial fan-out (1 = sequential). Results do
    /// not depend on this value.
    pub threads: usize,
}

impl ValidateConfig {
    /// A sequential configuration.
    pub fn sequential(base_seed: u64) -> Self {
        ValidateConfig {
            base_seed,
            threads: 1,
        }
    }

    /// A parallel configuration using the available cores.
    pub fn parallel(base_seed: u64) -> Self {
        ValidateConfig {
            base_seed,
            threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        }
    }
}

/// An error preparing a validation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateRunError(String);

impl fmt::Display for ValidateRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "validate error: {}", self.0)
    }
}

impl std::error::Error for ValidateRunError {}

/// One ladder point of one row: the measured convergence at size `n`.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Nodes.
    pub n: usize,
    /// Tasks (`load · n`).
    pub m: usize,
    /// Rounds-to-target across trials (budget value for censored trials).
    pub rounds: Summary,
    /// Fraction of trials that reached the target within the budget.
    pub reached_fraction: f64,
    /// Nash gap of the final state across trials (count-based for the
    /// fast engines) — for the `approx` regime, the empirical side of the
    /// theorems' "the reached state is an ε-approximate NE" claim.
    pub gap: Summary,
    /// The theorems' quality guarantee `min(1, 2/(1+δ))`, averaged over
    /// the per-trial instances (vacuous when `δ ≤ 1`, exactly as in the
    /// paper).
    pub eps_delta: f64,
    /// Whether every trial's final gap stayed within *that trial's*
    /// `2/(1+δ)` guarantee (per-trial instances, so randomly sampled
    /// speeds/weights are scored against their own δ).
    pub gap_within_guarantee: bool,
    /// The applicable theorem bound on expected rounds, averaged over the
    /// per-trial instances, if the paper states one for this protocol ×
    /// regime.
    pub bound: Option<f64>,
    /// Mean over trials of `rounds_t / bound_t` (each trial against its
    /// own instance's bound).
    pub bound_ratio: Option<f64>,
}

/// One row of the conformance report: an exponent fitted over the size
/// ladder for a fixed `(protocol, family, regime, load)`.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Row index in spec order (also the seed-derivation key base).
    pub index: usize,
    /// The configuration measured.
    pub spec: RowSpec,
    /// Per-size measurements, in ladder order.
    pub points: Vec<PointResult>,
    /// The fitted exponent with its 95% CI.
    pub fit: ExponentFit,
    /// The Table 1 *asymptotic* exponent prediction for this row's
    /// protocol (`table1_exponent_this_paper` / `table1_exponent_bhs`).
    pub predicted: Option<f64>,
    /// The *finite-size* prediction: the log–log slope of the Table 1
    /// bound shape over the actual ladder (carries the `log` factors the
    /// asymptotic exponent drops).
    pub predicted_shape: Option<f64>,
    /// Which column of predictions applies (`this-paper`, `bhs[6]`, `-`).
    pub predicted_source: &'static str,
    /// Whether the measured scaling stays consistent with the bound:
    /// `ci_lo ≤ predicted_shape + exp_tol` — Table 1 entries are *upper*
    /// bounds, so growing significantly **faster** refutes them while
    /// growing slower does not; the spec's `exp_tol` absorbs finite-size
    /// transients (`None`: no prediction, or censored trials make the fit
    /// unreliable).
    pub exponent_ok: Option<bool>,
    /// Whether every bounded point stayed within `factor ×` its theorem
    /// bound (`None`: no bound applies, or censored trials).
    pub bound_ok: Option<bool>,
    /// Whether the reached state's mean Nash gap stayed within the
    /// theorems' `2/(1+δ)` quality guarantee at every point (`approx`
    /// regime on the paper's protocols only; vacuously true when `δ ≤ 1`,
    /// exactly as in the theorem statements).
    pub gap_ok: Option<bool>,
}

impl RowResult {
    /// Whether any ladder point had censored (budget-exhausted) trials.
    pub fn censored(&self) -> bool {
        self.points.iter().any(|p| p.reached_fraction < 1.0)
    }

    /// Whether the row carries at least one conformance check.
    pub fn checked(&self) -> bool {
        self.exponent_ok.is_some() || self.bound_ok.is_some() || self.gap_ok.is_some()
    }

    /// Whether the row conforms: it is checked and no check failed.
    pub fn conforms(&self) -> bool {
        self.checked()
            && self.exponent_ok != Some(false)
            && self.bound_ok != Some(false)
            && self.gap_ok != Some(false)
    }
}

/// A fully executed validation: per-row results plus the run parameters a
/// schema-stable artifact must echo.
#[derive(Debug, Clone)]
pub struct ValidateOutcome {
    /// The executed spec.
    pub spec: ValidateSpec,
    /// Base seed of the run.
    pub base_seed: u64,
    /// Per-row results, in spec order.
    pub rows: Vec<RowResult>,
}

/// One trial's raw observations. The theory columns are computed *per
/// trial* from the instance that trial actually ran (its own sampled
/// speeds and weights), so random distributions are scored against their
/// own bounds rather than trial 0's.
#[derive(Debug, Clone, Copy)]
struct RawTrial {
    rounds: u64,
    reached: bool,
    /// Nash gap of the final state (count-based for the fast engines).
    gap: f64,
    /// This trial's theorem bound on expected rounds, if one applies.
    bound: Option<f64>,
    /// This trial's `min(1, 2/(1+δ))` quality guarantee.
    eps_delta: f64,
}

/// Validates that every `(family, size)` pair of the spec resolves and
/// placements stay in range (delegates to the spec's own validation).
///
/// # Errors
///
/// Returns a [`ValidateRunError`] naming the first invalid combination.
pub fn validate(spec: &ValidateSpec) -> Result<(), ValidateRunError> {
    spec.validate().map_err(|e| ValidateRunError(e.to_string()))
}

/// The paper's `4ψ_c` potential target for one concrete instance: the
/// Theorem 1.1 form for uniform tasks, the Theorem 1.3 form (`ψ_c^w`,
/// with the `1/s_min²` correction) for weighted ones.
fn psi_target(inst: &Instance, uniform: bool) -> f64 {
    4.0 * if uniform {
        theory::psi_c(inst)
    } else {
        theory::psi_c_weighted(inst)
    }
}

/// The [`Instance`] parameters of one concrete built system (`λ₂` from
/// the family's closed form, speeds from the sampled vector).
fn instance_of_system(system: &System, family: slb_graphs::generators::Family) -> Instance {
    let speeds = system.speeds();
    Instance {
        n: system.node_count(),
        total_work: system.tasks().total_weight(),
        max_degree: system.graph().max_degree(),
        lambda2: slb_spectral::closed_form::lambda2_family(family),
        s_min: speeds.min(),
        s_max: speeds.max(),
        s_total: speeds.total(),
        granularity: speeds.granularity(),
    }
}

/// Executes one trial of one ladder point. `shard_threads` caps the
/// *within-round* worker fan-out of the count-based engines (their
/// sharded kernel); it never changes results.
fn run_trial(
    row: &RowSpec,
    spec: &ValidateSpec,
    n: usize,
    trial_seed: u64,
    shard_threads: usize,
) -> RawTrial {
    let scenario_seed = derive_seed(trial_seed, 0, streams::trial::SCENARIO);
    let sim_seed = derive_seed(trial_seed, 0, streams::trial::SIM);
    let family = row.family.resolve(n).expect("validated rows resolve");
    let graph = family.build();
    let mut rng = StdRng::seed_from_u64(scenario_seed);
    let built = scenario::build(
        graph,
        spec.speeds,
        spec.weights,
        spec.placement,
        row.load.tasks_per_node(n),
        &mut rng,
    )
    .expect("validated rows build");
    let system = &built.system;
    // "Uniform" is a property of the *spec*, not of the sampled values:
    // a degenerate weighted distribution that happens to draw all-1.0
    // weights (e.g. `bimodal:1:1:0.5`) must still run the weighted path,
    // so the engine, the ψ_c form, and the theorem columns the
    // aggregation picks (which only see the spec) always agree.
    let uniform = spec.weights == WeightDistribution::Unit;
    let threshold = if uniform {
        Threshold::UnitWeight
    } else {
        Threshold::LightestTask
    };
    let inst = instance_of_system(system, family);
    let psi_bound = psi_target(&inst, uniform);
    let bound = theory_bound(row, &inst, uniform);
    let eps_delta = theory::eps_of_delta(theory::delta_of_instance(&inst)).min(1.0);
    let max_rounds = spec.max_rounds;

    let (rounds, reached, gap) = match row.protocol {
        // Algorithm 1 runs count-based: the uniform multinomial engine or
        // the weight-class engine, via their observer-hook run loops and
        // the count-based ε-Nash/gap predicates.
        ProtocolKind::Alg1 if uniform => {
            let counts: Vec<u64> = (0..system.node_count())
                .map(|v| built.initial.node_task_count(slb_graphs::NodeId(v)) as u64)
                .collect();
            let mut sim = UniformFastSim::new(
                system,
                Alpha::Approximate,
                CountState::new(counts),
                sim_seed,
            )
            .with_threads(shard_threads);
            let stop = match row.regime {
                Regime::Approx => UniformFastStop::Psi0Below(psi_bound),
                Regime::Eps => UniformFastStop::EpsNash(spec.eps),
                Regime::Exact => UniformFastStop::Nash,
            };
            let out = sim.run_until_observed(stop, max_rounds, &mut ());
            (out.rounds, out.reached, sim.nash_gap())
        }
        ProtocolKind::Alg1 => {
            let mut sim =
                WeightedFastSim::new(system, Alpha::Approximate, class_state_of(&built), sim_seed)
                    .with_threads(shard_threads);
            let stop = match row.regime {
                Regime::Approx => WeightedFastStop::Psi0Below(psi_bound),
                Regime::Eps => WeightedFastStop::EpsNash(threshold, spec.eps),
                Regime::Exact => WeightedFastStop::Nash(threshold),
            };
            let out = sim.run_until_observed(stop, max_rounds, &mut ());
            (out.rounds, out.reached, sim.nash_gap(threshold))
        }
        // The speed-aware per-task protocols, also count-based: the
        // weight-class collapse applies verbatim (the migration
        // probability never depends on task identity, and the condition
        // only through the weight class), so alg2/bhs ladders reach the
        // same depths as alg1's.
        ProtocolKind::Alg2 | ProtocolKind::Bhs => {
            let rule = if row.protocol == ProtocolKind::Alg2 {
                SpeedFastRule::Alg2
            } else {
                SpeedFastRule::Bhs
            };
            let mut sim = SpeedFastSim::new(
                system,
                rule,
                Alpha::Approximate,
                class_state_of(&built),
                sim_seed,
            )
            .with_threads(shard_threads);
            let stop = match row.regime {
                Regime::Approx => WeightedFastStop::Psi0Below(psi_bound),
                Regime::Eps => WeightedFastStop::EpsNash(threshold, spec.eps),
                Regime::Exact => WeightedFastStop::Nash(threshold),
            };
            let out = sim.run_until_observed(stop, max_rounds, &mut ());
            (out.rounds, out.reached, sim.nash_gap(threshold))
        }
        // The deterministic baselines on the sequential engine.
        ProtocolKind::Diffusion => run_sequential(
            system,
            Diffusion::new(),
            &built,
            sim_seed,
            row.regime,
            spec.eps,
            psi_bound,
            threshold,
            max_rounds,
        ),
        ProtocolKind::BestResponse => run_sequential(
            system,
            BestResponse::new(),
            &built,
            sim_seed,
            row.regime,
            spec.eps,
            psi_bound,
            threshold,
            max_rounds,
        ),
    };
    RawTrial {
        rounds,
        reached,
        gap,
        bound,
        eps_delta,
    }
}

/// The engine-level stop condition of a regime.
fn stop_of(regime: Regime, eps: f64, psi_bound: f64, threshold: Threshold) -> StopCondition {
    match regime {
        Regime::Approx => StopCondition::Psi0Below(psi_bound),
        Regime::Eps => StopCondition::EpsNash { threshold, eps },
        Regime::Exact => StopCondition::Nash(threshold),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_sequential<P: slb_core::protocol::Protocol>(
    system: &System,
    protocol: P,
    built: &slb_workloads::BuiltScenario,
    sim_seed: u64,
    regime: Regime,
    eps: f64,
    psi_bound: f64,
    threshold: Threshold,
    max_rounds: u64,
) -> (u64, bool, f64) {
    let mut sim = Simulation::new(system, protocol, built.initial.clone(), sim_seed);
    let outcome = sim.run_until(stop_of(regime, eps, psi_bound, threshold), max_rounds);
    (
        outcome.rounds,
        outcome.reason == StopReason::ConditionMet,
        equilibrium::nash_gap(system, sim.state(), threshold),
    )
}

/// The theorem bound on expected rounds applicable to one row at one
/// instance, if the paper states one (only this paper's protocols carry
/// constants; the \[6\] column is asymptotic-only, and the fixed-ε regime
/// has no theorem of its own).
fn theory_bound(row: &RowSpec, inst: &Instance, uniform: bool) -> Option<f64> {
    match (row.protocol, row.regime) {
        (ProtocolKind::Alg1 | ProtocolKind::Alg2, Regime::Approx) if uniform => {
            Some(theory::thm11_expected_rounds(inst))
        }
        (ProtocolKind::Alg1 | ProtocolKind::Alg2, Regime::Approx) => {
            Some(theory::thm13_expected_rounds(inst))
        }
        (ProtocolKind::Alg1 | ProtocolKind::Alg2, Regime::Exact) if uniform => {
            theory::thm12_expected_rounds(inst)
        }
        _ => None,
    }
}

/// The Table 1 *asymptotic* exponent prediction applicable to one row.
/// The fixed-ε regime carries none: its hitting time is a
/// relative-balance measure that the table's asymptotic exponents do not
/// describe.
fn predicted_exponent(row: &RowSpec, smallest_n: usize) -> (Option<f64>, &'static str) {
    let column = match row.regime {
        Regime::Approx => Table1Column::ApproximateNash,
        Regime::Eps => return (None, "-"),
        Regime::Exact => Table1Column::ExactNash,
    };
    let Ok(family) = row.family.resolve(smallest_n) else {
        return (None, "-");
    };
    match row.protocol {
        ProtocolKind::Alg1 | ProtocolKind::Alg2 => (
            theory::table1_exponent_this_paper(family, column),
            "this-paper",
        ),
        ProtocolKind::Bhs => (theory::table1_exponent_bhs(family, column), "bhs[6]"),
        ProtocolKind::Diffusion | ProtocolKind::BestResponse => (None, "-"),
    }
}

/// The *finite-size* Table 1 prediction for one row: the log–log slope of
/// the applicable bound shape ([`theory::table1_this_paper`] /
/// [`theory::table1_bhs`]) evaluated over the actual ladder `(n, m)`
/// points. Unlike the asymptotic exponent it carries the table's `log`
/// factors, so it is the honest comparison target at reachable sizes (it
/// converges to the asymptotic exponent as `n → ∞`).
fn predicted_shape(row: &RowSpec, sizes: &[usize]) -> Option<f64> {
    let column = match row.regime {
        Regime::Approx => Table1Column::ApproximateNash,
        Regime::Eps => return None,
        Regime::Exact => Table1Column::ExactNash,
    };
    let mut ns = Vec::with_capacity(sizes.len());
    let mut bounds = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let family = row.family.resolve(n).ok()?;
        let m = n * row.load.tasks_per_node(n);
        let bound = match row.protocol {
            ProtocolKind::Alg1 | ProtocolKind::Alg2 => {
                theory::table1_this_paper(family, n, m, column)?
            }
            ProtocolKind::Bhs => theory::table1_bhs(family, n, m, column)?,
            ProtocolKind::Diffusion | ProtocolKind::BestResponse => return None,
        };
        ns.push(n as f64);
        bounds.push(bound);
    }
    Some(crate::stats::power_law_fit(&ns, &bounds, 1e-12).slope)
}

/// Bootstrap refits per row (deterministic; part of the artifact
/// contract, so bumping it changes golden files).
pub const BOOTSTRAP_RESAMPLES: usize = 200;

/// Executes a validation: every row of the spec over the full size
/// ladder, `spec.trials` seeded trials per point, fanned out over
/// `config.threads` threads.
///
/// # Errors
///
/// Returns a [`ValidateRunError`] if a `(family, size)` pair cannot be
/// built (see [`validate`]).
///
/// # Panics
///
/// Panics if `config.threads == 0` or `spec.trials == 0`.
pub fn run_validate(
    spec: &ValidateSpec,
    config: ValidateConfig,
) -> Result<ValidateOutcome, ValidateRunError> {
    validate(spec)?;
    let rows = spec.rows();
    let points_per_row = spec.sizes.len();
    let keys: Vec<u64> = (0..(rows.len() * points_per_row) as u64).collect();
    // One thread budget covers both parallelism levels: trial workers get
    // the whole budget; whatever cannot be used across `(row, point,
    // trial)` work items flows down into each trial's sharded rounds.
    // Results depend on neither knob.
    let work_items = keys.len() * spec.trials;
    let shard_threads = (config.threads / work_items.max(1)).max(1);
    let trials = crate::runner::run_cell_trials(
        &keys,
        spec.trials,
        config.base_seed,
        config.threads,
        |pos, _trial, seed| {
            let row = &rows[pos / points_per_row];
            let n = spec.sizes[pos % points_per_row];
            run_trial(row, spec, n, seed, shard_threads)
        },
    );

    let results = rows
        .iter()
        .enumerate()
        .map(|(index, row)| {
            let mut points = Vec::with_capacity(points_per_row);
            let mut fit_n: Vec<f64> = Vec::new();
            let mut fit_t: Vec<f64> = Vec::new();
            for (p, &n) in spec.sizes.iter().enumerate() {
                let raw = &trials[index * points_per_row + p];
                let rounds: Vec<f64> = raw
                    .iter()
                    .map(|t| {
                        if t.reached {
                            t.rounds as f64
                        } else {
                            spec.max_rounds as f64
                        }
                    })
                    .collect();
                for &r in &rounds {
                    fit_n.push(n as f64);
                    fit_t.push(r);
                }
                let reached = raw.iter().filter(|t| t.reached).count() as f64 / raw.len() as f64;
                let gaps: Vec<f64> = raw.iter().map(|t| t.gap).collect();
                let summary = Summary::of(&rounds);
                // Theory columns come per trial from the instance each
                // trial actually ran (its own sampled speeds/weights), so
                // random distributions are scored against their own
                // bounds: the displayed bound/ε are trial means, the
                // ratio is the mean of per-trial ratios, and the gap
                // guarantee is checked trial by trial.
                let bound = raw
                    .iter()
                    .map(|t| t.bound)
                    .collect::<Option<Vec<f64>>>()
                    .map(|bs| bs.iter().sum::<f64>() / bs.len() as f64);
                let bound_ratio = bound.is_some().then(|| {
                    raw.iter()
                        .zip(&rounds)
                        .map(|(t, &r)| r / t.bound.expect("all bounds present"))
                        .sum::<f64>()
                        / raw.len() as f64
                });
                let eps_delta = raw.iter().map(|t| t.eps_delta).sum::<f64>() / raw.len() as f64;
                let gap_within_guarantee = raw.iter().all(|t| t.gap <= t.eps_delta + 1e-9);
                points.push(PointResult {
                    n,
                    m: n * row.load.tasks_per_node(n),
                    rounds: summary,
                    reached_fraction: reached,
                    gap: Summary::of(&gaps),
                    eps_delta,
                    gap_within_guarantee,
                    bound,
                    bound_ratio,
                });
            }
            let fit = power_law_fit_ci(
                &fit_n,
                &fit_t,
                1.0,
                BOOTSTRAP_RESAMPLES,
                derive_seed(config.base_seed, index as u64, streams::analysis::BOOTSTRAP),
            );
            let (predicted, predicted_source) = predicted_exponent(row, spec.sizes[0]);
            let shape = predicted_shape(row, &spec.sizes);
            let censored = points.iter().any(|p| p.reached_fraction < 1.0);
            let exponent_ok = match shape {
                Some(s) if !censored => Some(fit.ci_lo <= s + spec.exp_tol + 1e-9),
                _ => None,
            };
            let bound_ok = if censored || points.iter().all(|p| p.bound.is_none()) {
                None
            } else {
                Some(
                    points
                        .iter()
                        .filter_map(|p| p.bound_ratio)
                        .all(|r| r <= spec.factor),
                )
            };
            // The ε-quality half of Theorems 1.1/1.3: the state reached at
            // Ψ₀ ≤ 4ψ_c must be a 2/(1+δ)-approximate NE (vacuous when
            // δ ≤ 1 — the gap never exceeds 1 — matching the theorems'
            // own applicability threshold).
            let paper_protocol = matches!(row.protocol, ProtocolKind::Alg1 | ProtocolKind::Alg2);
            let gap_ok = if row.regime == Regime::Approx && paper_protocol && !censored {
                Some(points.iter().all(|p| p.gap_within_guarantee))
            } else {
                None
            };
            RowResult {
                index,
                spec: *row,
                points,
                fit,
                predicted,
                predicted_shape: shape,
                predicted_source,
                exponent_ok,
                bound_ok,
                gap_ok,
            }
        })
        .collect();

    Ok(ValidateOutcome {
        spec: spec.clone(),
        base_seed: config.base_seed,
        rows: results,
    })
}

/// The exact header line of the per-row validation CSV artifact
/// (schema-stable; golden-file tests and figure scripts key on it).
/// Rendered through [`Table::to_csv`], so cells never contain commas.
pub const CSV_HEADER: &str = "row,protocol,family,regime,load,n_ladder,trials,base_seed,\
                              max_rounds,eps,factor,exp_tol,exponent,ci_lo,ci_hi,r_squared,\
                              pred_ladder,pred_asym,source,exponent_ok,max_bound_ratio,bound_ok,\
                              gap_ok,reached_min";

fn check_label(check: Option<bool>) -> &'static str {
    match check {
        Some(true) => "yes",
        Some(false) => "NO",
        None => "-",
    }
}

impl ValidateOutcome {
    /// Rows that carry at least one conformance check.
    pub fn checked_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.checked()).count()
    }

    /// Checked rows whose checks all pass.
    pub fn conforming_rows(&self) -> usize {
        self.rows.iter().filter(|r| r.conforms()).count()
    }

    fn max_bound_ratio(row: &RowResult) -> Option<f64> {
        row.points
            .iter()
            .filter_map(|p| p.bound_ratio)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }

    fn min_reached(row: &RowResult) -> f64 {
        row.points
            .iter()
            .map(|p| p.reached_fraction)
            .fold(f64::INFINITY, f64::min)
    }

    /// The per-row conformance table (shared by the markdown and CSV
    /// renderings).
    fn rows_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "row",
                "protocol",
                "family",
                "regime",
                "load",
                "n_ladder",
                "trials",
                "base_seed",
                "max_rounds",
                "eps",
                "factor",
                "exp_tol",
                "exponent",
                "ci_lo",
                "ci_hi",
                "r_squared",
                "pred_ladder",
                "pred_asym",
                "source",
                "exponent_ok",
                "max_bound_ratio",
                "bound_ok",
                "gap_ok",
                "reached_min",
            ],
        );
        for row in &self.rows {
            t.push_row(vec![
                row.index.to_string(),
                row.spec.protocol.grid_label().to_string(),
                row.spec.family.label().to_string(),
                row.spec.regime.label().to_string(),
                row.spec.load.to_string(),
                self.spec.sizes_label(),
                self.spec.trials.to_string(),
                self.base_seed.to_string(),
                self.spec.max_rounds.to_string(),
                fmt_value(self.spec.eps),
                fmt_value(self.spec.factor),
                fmt_value(self.spec.exp_tol),
                format!("{:.3}", row.fit.exponent),
                format!("{:.3}", row.fit.ci_lo),
                format!("{:.3}", row.fit.ci_hi),
                format!("{:.3}", row.fit.r_squared),
                row.predicted_shape
                    .map_or("-".to_string(), |s| format!("{s:.3}")),
                row.predicted.map_or("-".to_string(), fmt_value),
                row.predicted_source.to_string(),
                check_label(row.exponent_ok).to_string(),
                Self::max_bound_ratio(row).map_or("-".to_string(), |r| format!("{r:.3}")),
                check_label(row.bound_ok).to_string(),
                check_label(row.gap_ok).to_string(),
                fmt_value(Self::min_reached(row)),
            ]);
        }
        t
    }

    /// The per-point ladder table of the markdown report.
    fn points_table(&self) -> Table {
        let mut t = Table::new(
            "Ladder points",
            &[
                "row",
                "protocol",
                "family",
                "regime",
                "n",
                "m",
                "rounds_mean",
                "rounds_std",
                "reached",
                "gap_mean",
                "eps(δ)",
                "bound",
                "mean/bound",
            ],
        );
        for row in &self.rows {
            for p in &row.points {
                t.push_row(vec![
                    row.index.to_string(),
                    row.spec.protocol.grid_label().to_string(),
                    row.spec.family.label().to_string(),
                    row.spec.regime.label().to_string(),
                    p.n.to_string(),
                    p.m.to_string(),
                    fmt_value(p.rounds.mean),
                    fmt_value(p.rounds.std_dev),
                    fmt_value(p.reached_fraction),
                    format!("{:.3}", p.gap.mean),
                    fmt_value(p.eps_delta),
                    p.bound.map_or("-".to_string(), fmt_value),
                    p.bound_ratio.map_or("-".to_string(), |r| format!("{r:.3}")),
                ]);
            }
        }
        t
    }

    /// Renders the conformance report as markdown: run parameters, the
    /// per-row exponent table, the per-point ladder table, and a verdict
    /// line. Deterministic formatting throughout, so the artifact is
    /// byte-stable across runs and thread counts.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("# Theorem-validation report\n\n");
        let _ = writeln!(
            out,
            "- ladder: n = {} · m/n = {} · trials = {} · max-rounds = {} · base seed = {}",
            self.spec.sizes_label(),
            self.spec
                .loads
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join("-"),
            self.spec.trials,
            self.spec.max_rounds,
            self.base_seed,
        );
        let _ = writeln!(out, "- scenario: {}", self.spec.scenario_label());
        let _ = writeln!(
            out,
            "- stop rules: approx = Ψ₀ ≤ 4ψ_c (Thm 1.1/1.3 target) · eps = ε-Nash with ε = {} \
             · exact = Nash equilibrium",
            fmt_value(self.spec.eps),
        );
        let _ = writeln!(
            out,
            "- conformance: exponent_ok = the fitted exponent's 95% CI does not lie above \
             pred_ladder + {} (Table 1 entries are upper bounds — growing significantly faster \
             refutes them, growing slower does not); bound_ok = mean rounds within {}× the \
             theorem bound; gap_ok = the state reached at Ψ₀ ≤ 4ψ_c is a 2/(1+δ)-approximate \
             NE (vacuous when δ ≤ 1)",
            fmt_value(self.spec.exp_tol),
            fmt_value(self.spec.factor),
        );
        let _ = writeln!(
            out,
            "- caveat: pred_asym is the asymptotic Table 1 exponent (no constants, no log \
             factors); pred_ladder re-evaluates the same bound shape over this ladder's \
             (n, m) points, which is the honest finite-size comparison target\n",
        );
        out.push_str(
            &self
                .rows_table("Fitted scaling exponents vs Table 1")
                .to_markdown(),
        );
        out.push('\n');
        out.push_str(&self.points_table().to_markdown());
        let _ = writeln!(
            out,
            "\nverdict: {}/{} checked rows conform ({} rows total)",
            self.conforming_rows(),
            self.checked_rows(),
            self.rows.len(),
        );
        out
    }

    /// Renders the per-row conformance table as CSV (the [`CSV_HEADER`]
    /// schema, via [`Table::to_csv`]).
    pub fn to_csv(&self) -> String {
        self.rows_table("").to_csv()
    }

    /// Renders the full outcome (rows with nested ladder points) as JSON.
    pub fn to_json(&self) -> String {
        let json_check = |check: Option<bool>| match check {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let json_opt = |v: Option<f64>| match v {
            Some(v) => format!("{v}"),
            None => "null".to_string(),
        };
        let mut out = String::from("[\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"row\":{},\"protocol\":\"{}\",\"family\":\"{}\",\"regime\":\"{}\",\
                 \"load\":\"{}\",\"trials\":{},\"base_seed\":{},\"max_rounds\":{},\"eps\":{},\
                 \"factor\":{},\"exp_tol\":{},\"exponent\":{},\"ci_lo\":{},\"ci_hi\":{},\
                 \"r_squared\":{},\
                 \"pred_ladder\":{},\"pred_asym\":{},\"source\":\"{}\",\"exponent_ok\":{},\
                 \"bound_ok\":{},\"gap_ok\":{},\"points\":[",
                row.index,
                row.spec.protocol.grid_label(),
                row.spec.family.label(),
                row.spec.regime.label(),
                row.spec.load,
                self.spec.trials,
                self.base_seed,
                self.spec.max_rounds,
                self.spec.eps,
                self.spec.factor,
                self.spec.exp_tol,
                row.fit.exponent,
                row.fit.ci_lo,
                row.fit.ci_hi,
                row.fit.r_squared,
                json_opt(row.predicted_shape),
                json_opt(row.predicted),
                row.predicted_source,
                json_check(row.exponent_ok),
                json_check(row.bound_ok),
                json_check(row.gap_ok),
            );
            for (j, p) in row.points.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"n\":{},\"m\":{},\"rounds_mean\":{},\"rounds_std\":{},\"reached\":{},\
                     \"gap_mean\":{},\"eps_delta\":{},\"bound\":{},\"bound_ratio\":{}}}",
                    if j > 0 { "," } else { "" },
                    p.n,
                    p.m,
                    p.rounds.mean,
                    p.rounds.std_dev,
                    p.reached_fraction,
                    p.gap.mean,
                    p.eps_delta,
                    json_opt(p.bound),
                    json_opt(p.bound_ratio),
                );
            }
            out.push_str("]}");
            if i + 1 < self.rows.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(tokens: &[&str]) -> ValidateSpec {
        ValidateSpec::parse(tokens).unwrap()
    }

    #[test]
    fn default_ladder_runs_and_conforms() {
        let spec = small_spec(&["n=4,8", "load=8", "trials=2", "max-rounds=50000"]);
        let out = run_validate(&spec, ValidateConfig::sequential(7)).unwrap();
        assert_eq!(out.rows.len(), 1);
        let row = &out.rows[0];
        assert_eq!(row.points.len(), 2);
        assert!(!row.censored(), "tiny ring ladder must converge");
        assert_eq!(row.predicted, Some(2.0), "ring approx predicts n²");
        assert_eq!(row.predicted_source, "this-paper");
        assert!(row.bound_ok.is_some());
        for p in &row.points {
            assert_eq!(p.reached_fraction, 1.0);
            assert!(p.bound.unwrap() > 0.0);
        }
    }

    #[test]
    fn all_five_protocols_produce_rows() {
        let spec = small_spec(&[
            "family=ring",
            "n=4,8",
            "load=6",
            "protocol=alg1,alg2,bhs,diffusion,best-response",
            "regime=approx",
            "eps=0.5",
            "trials=2",
            "max-rounds=20000",
        ]);
        let out = run_validate(&spec, ValidateConfig::parallel(3)).unwrap();
        assert_eq!(out.rows.len(), 5);
        // Every protocol reaches the generous Ψ₀ ≤ 4ψ_c target on this
        // tiny ladder (including deterministic diffusion, whose rounded
        // flows stall well below it).
        for row in &out.rows {
            assert!(!row.censored(), "{:?} censored", row.spec.protocol);
        }
        // Predictions: paper protocols → this-paper, bhs → bhs[6],
        // baselines → none.
        assert_eq!(out.rows[0].predicted_source, "this-paper");
        assert_eq!(out.rows[1].predicted_source, "this-paper");
        assert_eq!(out.rows[2].predicted_source, "bhs[6]");
        assert_eq!(out.rows[2].predicted, Some(3.0));
        assert_eq!(out.rows[3].predicted, None);
        assert_eq!(out.rows[4].exponent_ok, None);
        // Baselines carry no theorem bound and no gap check.
        assert!(out.rows[3].points.iter().all(|p| p.bound.is_none()));
        assert_eq!(out.rows[3].bound_ok, None);
        assert_eq!(out.rows[2].gap_ok, None, "bhs carries no gap check");
        // The paper's protocols do carry the ε-quality check, and at this
        // tiny δ it is vacuously satisfied — exactly as in the theorem.
        assert_eq!(out.rows[0].gap_ok, Some(true));
        for p in &out.rows[0].points {
            assert_eq!(p.eps_delta, 1.0, "δ ≤ 1 ⇒ the guarantee is vacuous");
            assert!(p.gap.mean <= 1.0);
        }
    }

    #[test]
    fn eps_regime_measures_fixed_eps_hitting_time_without_prediction() {
        let spec = small_spec(&[
            "family=ring",
            "n=4,8",
            "load=8",
            "protocol=alg1",
            "regime=approx,eps",
            "eps=0.5",
            "trials=2",
            "max-rounds=50000",
        ]);
        let out = run_validate(&spec, ValidateConfig::sequential(9)).unwrap();
        assert_eq!(out.rows.len(), 2);
        let approx = &out.rows[0];
        let eps = &out.rows[1];
        assert_eq!(eps.spec.regime, Regime::Eps);
        assert!(!eps.censored(), "ε = 0.5 is reachable on a tiny ring");
        // The fixed-ε regime is measured-only: no Table 1 annotation, no
        // theorem bound, no gap check.
        assert_eq!(eps.predicted, None);
        assert_eq!(eps.predicted_source, "-");
        assert_eq!(eps.bound_ok, None);
        assert_eq!(eps.gap_ok, None);
        assert!(eps.points.iter().all(|p| p.bound.is_none()));
        // Stopping at ε-Nash leaves a gap of at most ε (up to the shared
        // predicate tolerance).
        for p in &eps.points {
            assert!(p.gap.mean <= 0.5 + 1e-9, "gap {}", p.gap.mean);
        }
        // The approx row keeps its theorem columns.
        assert!(approx.points.iter().all(|p| p.bound.is_some()));
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let spec = small_spec(&[
            "family=ring,complete",
            "n=4,8",
            "load=6",
            "protocol=alg1,bhs",
            "trials=2",
            "max-rounds=20000",
        ]);
        let one = run_validate(
            &spec,
            ValidateConfig {
                base_seed: 11,
                threads: 1,
            },
        )
        .unwrap();
        let eight = run_validate(
            &spec,
            ValidateConfig {
                base_seed: 11,
                threads: 8,
            },
        )
        .unwrap();
        assert_eq!(one.to_markdown(), eight.to_markdown());
        assert_eq!(one.to_csv(), eight.to_csv());
        assert_eq!(one.to_json(), eight.to_json());
        // A different seed genuinely changes the artifact.
        let other = run_validate(
            &spec,
            ValidateConfig {
                base_seed: 12,
                threads: 8,
            },
        )
        .unwrap();
        assert_ne!(one.to_markdown(), other.to_markdown());
    }

    #[test]
    fn weighted_ladder_uses_weight_class_engine_and_thm13() {
        let spec = small_spec(&[
            "family=ring",
            "n=4,8",
            "load=6",
            "protocol=alg1",
            "weights=bimodal:0.25:1:0.5",
            "eps=0.5",
            "trials=2",
            "max-rounds=50000",
        ]);
        let out = run_validate(&spec, ValidateConfig::sequential(5)).unwrap();
        let row = &out.rows[0];
        assert!(!row.censored());
        // The weighted approx bound is Theorem 1.3's.
        for p in &row.points {
            let b = p.bound.unwrap();
            assert!(b.is_finite() && b > 0.0);
        }
    }

    #[test]
    fn degenerate_weighted_distribution_stays_on_the_weighted_path() {
        // `bimodal:1:1:0.5` samples all-1.0 weights, so the *values* look
        // uniform — but the row must still be scored against the weighted
        // theorems (Thm 1.3 approx bound present, no Thm 1.2 exact
        // bound), consistently with the engine/ψ_c form the trial used.
        let spec = small_spec(&[
            "family=ring",
            "n=4,8",
            "load=6",
            "protocol=alg1",
            "regime=approx,exact",
            "weights=bimodal:1:1:0.5",
            "trials=2",
            "max-rounds=50000",
        ]);
        let out = run_validate(&spec, ValidateConfig::sequential(4)).unwrap();
        let approx = &out.rows[0];
        let exact = &out.rows[1];
        // Approx: weighted bound (thm13) applies; and it must equal the
        // uniform ladder's thm11 at s_min = 1 only up to the ψ form —
        // what matters is that a bound is present and consistent.
        assert!(approx.points.iter().all(|p| p.bound.is_some()));
        // Exact: the weighted case has no Theorem 1.2 bound.
        assert!(exact.points.iter().all(|p| p.bound.is_none()));
        assert_eq!(exact.bound_ok, None);
    }

    #[test]
    fn censored_rows_drop_their_checks() {
        // A 1-round budget cannot reach an exact NE from the hot start.
        let spec = small_spec(&[
            "n=4,8",
            "load=8",
            "regime=exact",
            "trials=2",
            "max-rounds=1",
        ]);
        let out = run_validate(&spec, ValidateConfig::sequential(1)).unwrap();
        let row = &out.rows[0];
        assert!(row.censored());
        assert_eq!(row.exponent_ok, None);
        assert_eq!(row.bound_ok, None);
        assert!(!row.checked());
        assert_eq!(out.checked_rows(), 0);
        let md = out.to_markdown();
        assert!(md.contains("verdict: 0/0 checked rows conform"));
    }

    #[test]
    fn invalid_ladder_is_rejected() {
        let spec = ValidateSpec {
            sizes: vec![8, 12],
            families: vec![slb_workloads::FamilyShape::Hypercube],
            ..ValidateSpec::default()
        };
        let err = run_validate(&spec, ValidateConfig::sequential(1)).unwrap_err();
        assert!(err.to_string().contains("no 12-node member"), "{err}");
    }

    #[test]
    fn csv_schema_matches_header_constant() {
        let spec = small_spec(&["n=4,8", "load=4", "trials=1", "max-rounds=5000"]);
        let out = run_validate(&spec, ValidateConfig::sequential(2)).unwrap();
        let csv = out.to_csv();
        assert_eq!(csv.lines().next().unwrap(), CSV_HEADER);
        assert_eq!(csv.lines().count(), 2);
        let json = out.to_json();
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"points\":["));
        assert!(json.trim_end().ends_with(']'));
    }
}
