//! Table rendering (markdown + CSV) and experiment-output file handling.
//!
//! The experiment binaries print human-readable markdown tables to stdout
//! (the "same rows the paper reports") and drop machine-readable CSVs under
//! `target/experiments/` so EXPERIMENTS.md can reference stable artifacts.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A simple rectangular table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) -> &mut Self {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders as a GitHub-flavored markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}\n", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", render_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (headers first; commas inside cells are replaced by
    /// semicolons to keep the format trivial).
    pub fn to_csv(&self) -> String {
        let clean = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| clean(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| clean(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// The directory experiment artifacts are written to
/// (`target/experiments`), created on demand.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn experiments_dir() -> std::io::Result<PathBuf> {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Writes `contents` to `target/experiments/<name>` and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(name: &str, contents: &str) -> std::io::Result<PathBuf> {
    let path = experiments_dir()?.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Formats a float compactly for table cells: integers without decimals,
/// large values in scientific notation, small ones with 3 significant
/// digits.
pub fn fmt_value(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1e6 {
        format!("{v:.2e}")
    } else if (v.round() - v).abs() < 1e-9 && a < 1e6 {
        format!("{}", v.round() as i64)
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_alignment() {
        let mut t = Table::new("Demo", &["graph", "rounds"]);
        t.push_row(vec!["ring".into(), "120".into()]);
        t.push_row(vec!["hypercube".into(), "7".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| graph     | rounds |"));
        assert!(md.contains("| ring      | 120    |"));
        assert!(md
            .lines()
            .any(|l| l.starts_with("|---") || l.starts_with("|--")));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn csv_rendering_escapes_commas() {
        let mut t = Table::new("", &["a", "b,c"]);
        t.push_row(vec!["1,5".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b;c\n1;5,2\n");
    }

    #[test]
    fn value_formatting() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(0.5), "0.500");
        assert_eq!(fmt_value(123.456), "123.5");
        assert_eq!(fmt_value(2.5e7), "2.50e7");
        assert_eq!(fmt_value(f64::INFINITY), "inf");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn artifacts_roundtrip() {
        let path = write_artifact("test_artifact.csv", "a,b\n1,2\n").unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "a,b\n1,2\n");
        std::fs::remove_file(path).ok();
    }
}
