//! Experiment analysis for the PODC 2012 reproduction: statistics, the
//! paper's bounds as code, multi-trial runners, and table rendering.
//!
//! The crate sits between the simulator ([`slb_core`]) and the experiment
//! binaries (`slb-bench`'s `src/bin`): it owns everything needed to turn
//! raw convergence measurements into the rows of the paper's Table 1 and
//! the theorem-validation tables of EXPERIMENTS.md.
//!
//! * [`stats`] — summaries with confidence intervals; log-log power-law
//!   fits for scaling exponents,
//! * [`theory`] — `γ`, `ψ_c`, `T = 2γ·ln(m/n)`, Theorems 1.1–1.3, the
//!   Table 1 bound shapes of this paper and of the \[6\] baseline,
//! * [`runner`] — seeded multi-trial execution (optionally parallel) and
//!   the canonical uniform-task convergence measurement,
//! * [`sweep`] — the protocol-generic sweep engine: executes declarative
//!   [`SweepSpec`](slb_workloads::SweepSpec) grids across all five
//!   protocols and renders deterministic CSV/JSON artifacts,
//! * [`validate`] — the theorem-validation runner: executes the scaling
//!   ladders of a [`ValidateSpec`](slb_workloads::ValidateSpec) on the
//!   fast count-based engines, fits empirical exponents with confidence
//!   intervals, and renders conformance reports against Table 1,
//! * [`tables`] — markdown/CSV rendering and `target/experiments/`
//!   artifact handling.
//!
//! # Example: one Table 1 cell
//!
//! ```
//! use slb_analysis::runner::{measure_uniform_convergence, Target, TrialConfig};
//! use slb_analysis::theory;
//! use slb_graphs::generators::Family;
//!
//! let cell = measure_uniform_convergence(
//!     Family::Hypercube { d: 3 },
//!     16,                      // m = 16·n
//!     Target::ApproxPsi0,      // first round with Ψ₀ ≤ 4ψ_c
//!     TrialConfig::sequential(3, 42),
//!     100_000,
//! );
//! // The paper's Theorem 1.1 bound for the same instance:
//! let bound = theory::thm11_expected_rounds(&cell.instance);
//! assert!(cell.rounds.mean <= bound, "measured exceeds the paper bound");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod runner;
pub mod serve;
pub mod stats;
pub mod sweep;
pub mod tables;
pub mod theory;
pub mod validate;
