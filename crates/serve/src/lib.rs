//! In-process service harness: the paper's protocols run as a load
//! balancer instead of a round loop.
//!
//! [`run`] drives one policy over one scenario: a synthetic job stream
//! (open-loop Poisson arrivals, closed-loop users, or both — see
//! [`slb_workloads::traffic`]) lands on a backend array whose speeds and
//! peer topology come from the same model layer as the simulators. Each
//! backend is a FIFO queue; a job of weight `w` on backend `b` takes
//! `w / s_b` units of service, so service times are driven by backend
//! speeds exactly like task processing in the paper's model.
//!
//! # Faults, degraded signals, and retries
//!
//! Three optional axes degrade the perfect-information harness (see
//! [`faults`] and [`slb_workloads::faults`]):
//!
//! * `faults=crash:MTTF:MTTR` — backends crash and recover on
//!   per-backend exponential renewal processes. A crash evicts the
//!   backend's whole FIFO (in-service work is lost); evicted and
//!   misrouted jobs go down the retry path.
//! * `signal=stale:D+loss:P` — policies observe [`LoadSignal`]
//!   snapshots refreshed every `D` units with per-backend probe loss
//!   `P` instead of live state.
//! * `retry=max:R:base:B` — a job that lands on a dead backend is
//!   resubmitted after an exponential backoff `B·2^(a−1)` with
//!   deterministic jitter, at most `R` times. A job exhausting its
//!   budget (or hitting a fault with `retry=none`) is a **failed** job:
//!   counted in [`ServeOutcome::failed_jobs`], excluded from latency
//!   records, never silently dropped.
//!
//! # Determinism
//!
//! Time is a **virtual clock**: integer ticks ([`TICKS_PER_UNIT`] per
//! unit of load), advanced only by a binary event heap ordered by
//! `(tick, sequence number)`. No wall clock exists anywhere (`slb-lint`
//! bans `std::time` in engine code, and `crates/serve` is in its scan
//! scope), so a run is a pure function of its seeds:
//!
//! * the **scenario seed** drives the environment: open-loop slot `t`
//!   draws from `rng_for(scenario_seed, t, streams::serve::ARRIVAL)`,
//!   closed-loop user `u` from `rng_for(scenario_seed, u,
//!   streams::serve::CLOSED)`, backend `b`'s crash/recover renewals from
//!   `rng_for(scenario_seed, b, streams::serve::FAULT)`, and probe epoch
//!   `k`'s loss coins from `rng_for(scenario_seed, k,
//!   streams::serve::SIGNAL)`. Every policy of a `slb serve` invocation
//!   shares the scenario seed, so all policies face the *identical* job
//!   stream, outage schedule, and probe-loss pattern.
//! * the **policy seed** drives routing: job `k` flips its coins from
//!   `rng_for(policy_seed, k, streams::serve::POLICY)`, and retry
//!   attempt `a` of job `k` from `rng_for(policy_seed, k·S + a,
//!   streams::serve::RETRY)` (with `S =`
//!   [`streams::serve::RETRY_ATTEMPT_STRIDE`]) — one private stream per
//!   decision, so outcomes depend only on the job, the attempt, and the
//!   observed state, never on how runs are scheduled onto threads.
//!
//! The harness runs each policy sequentially; `slb serve --threads T`
//! fans *policies* across workers, which cannot change any per-policy
//! trajectory. Artifacts are therefore byte-identical at any `--threads`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod policy;

pub use faults::LoadSignal;
pub use policy::{NodeView, PolicyKind, RoutePolicy};

use faults::{FaultSchedule, SignalBoard};
use rand::rngs::StdRng;
use rand::Rng;
use slb_core::engine::sampling::sample_poisson;
use slb_core::equilibrium::nash_gap_loads;
use slb_core::model::SpeedVector;
use slb_core::rng::{rng_for, streams};
use slb_graphs::Graph;
use slb_workloads::faults::{FaultSpec, RetrySpec, SignalSpec};
use slb_workloads::weights::WeightDistribution;
use slb_workloads::TrafficSpec;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Virtual-clock resolution: ticks per unit of load/time. A power of two
/// keeps unit↔tick conversions exact for the usual rates.
pub const TICKS_PER_UNIT: u64 = 1 << 20;

/// One serve scenario: everything but the routing policy.
///
/// `scenario_seed` is shared across the policies of an invocation (same
/// traffic and faults for everyone), `policy_seed` is unique per policy
/// run.
pub struct ServeConfig<'a> {
    /// Peer topology (selfish policies migrate along its edges).
    pub graph: &'a Graph,
    /// Backend speeds.
    pub speeds: &'a SpeedVector,
    /// The synthetic traffic to offer.
    pub traffic: TrafficSpec,
    /// Job-weight distribution (service time = weight / speed).
    pub weights: WeightDistribution,
    /// Crash/recover schedule; `None` keeps every backend up forever.
    pub faults: Option<FaultSpec>,
    /// Signal degradation; the default is the fresh (perfect) view.
    pub signal: SignalSpec,
    /// Retry budget for fault-hit jobs; `None` fails them immediately.
    pub retry: Option<RetrySpec>,
    /// Units of virtual time during which traffic is generated. The run
    /// then drains: every surviving job completes (crashes are injected
    /// only within the horizon, pending recoveries still fire).
    pub horizon: u64,
    /// Master seed of the environment streams (shared across policies).
    pub scenario_seed: u64,
    /// Master seed of the per-job routing coins (unique per policy).
    pub policy_seed: u64,
}

/// Arrival/completion times of one completed job, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Submission tick.
    pub arrival: u64,
    /// Completion tick (`finish − arrival` is the job's latency).
    pub finish: u64,
}

/// Everything a serve run measures. The analysis layer turns this into
/// artifact rows; keeping raw per-job records here lets it apply
/// measurement windows and quantiles without re-running.
pub struct ServeOutcome {
    /// Jobs submitted (open- plus closed-loop) within the horizon.
    pub jobs_offered: u64,
    /// Per-job arrival/finish ticks of **completed** jobs, in completion
    /// order. Every offered job either completes or fails, so this has
    /// exactly `jobs_offered − failed_jobs` entries after the drain.
    pub jobs: Vec<JobRecord>,
    /// Jobs that exhausted their retry budget (or hit a fault with no
    /// retry configured). Zero whenever faults are disabled.
    pub failed_jobs: u64,
    /// Retry resubmissions scheduled over the whole run.
    pub retries_total: u64,
    /// Fraction of backend-time within `[0, horizon)` spent up; exactly
    /// 1 with faults disabled.
    pub availability: f64,
    /// Per-backend busy ticks within `[0, horizon)`. Service time lost
    /// to a crash still counts as busy up to the crash tick.
    pub busy_ticks: Vec<u64>,
    /// Per-backend jobs in flight at the horizon boundary.
    pub in_flight_at_horizon: Vec<u64>,
    /// Per-backend outstanding weight at the horizon boundary.
    pub outstanding_at_horizon: Vec<f64>,
    /// Per-backend liveness at the horizon boundary.
    pub alive_at_horizon: Vec<bool>,
    /// Jobs completed by the horizon boundary.
    pub completed_at_horizon: u64,
    /// Jobs failed by the horizon boundary.
    pub failed_at_horizon: u64,
    /// Jobs waiting in retry backoff at the horizon boundary.
    pub retrying_at_horizon: u64,
    /// Nash gap of the backlog state at the horizon: loads `W_b/s_b`
    /// over the serve topology, unit threshold weights, backends with
    /// jobs in flight marked occupied. Ignores liveness (a dead backend
    /// reads as empty).
    pub nash_gap_at_horizon: f64,
    /// Nash gap restricted to backends alive at the horizon: dead
    /// backends are no migration target (infinite load) and no source
    /// (unoccupied). Equals `nash_gap_at_horizon` with faults disabled.
    pub nash_gap_live_at_horizon: f64,
}

/// Where a job came from (closed-loop jobs respawn their user).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Open,
    Closed(usize),
}

/// One job sitting in a backend's FIFO (admitted, not yet completed).
struct Queued {
    job_id: u64,
    arrival: u64,
    start: u64,
    finish: u64,
    weight: f64,
    source: Source,
    attempt: u32,
}

enum EventKind {
    Arrival {
        entry: usize,
        weight: f64,
        source: Source,
    },
    /// The front of `backend`'s FIFO finishes — if the epoch still
    /// matches; a crash bumps the epoch and strands these events.
    Completion {
        backend: usize,
        epoch: u64,
    },
    /// Faults-off completion: no crash can evict or strand it, so it
    /// carries its payload inline and the job skips the backend FIFO
    /// entirely — the hot path when the fault schedule is disabled.
    DirectCompletion {
        backend: usize,
        arrival: u64,
        weight: f64,
        source: Source,
    },
    Crash {
        backend: usize,
    },
    Recover {
        backend: usize,
    },
    /// Stale-mode probe refresh (epoch `k` fires at `k · stale_ticks`).
    Probe {
        epoch: u64,
    },
    /// A fault-hit job re-enters routing. Boxed so the rare retry
    /// payload (with its 32-byte rng) does not widen every heap event.
    Retry(Box<RetryJob>),
}

/// Payload of [`EventKind::Retry`]: the resubmitted job plus `coin`,
/// its private (job, attempt) stream, already past the jitter draw.
struct RetryJob {
    job_id: u64,
    arrival: u64,
    weight: f64,
    source: Source,
    attempt: u32,
    coin: StdRng,
}

/// Heap entry: ordered by `(time, seq)` so simultaneous events fire in
/// insertion order — a total, deterministic order.
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Converts a duration in units to ticks, rounding to nearest.
pub(crate) fn to_ticks(units: f64) -> u64 {
    (units * TICKS_PER_UNIT as f64).round() as u64
}

/// Service duration of a job of weight `w` on a backend of speed `s`:
/// `w/s` units, at least one tick so every job occupies its backend.
fn service_ticks(weight: f64, speed: f64) -> u64 {
    ((weight / speed) * TICKS_PER_UNIT as f64).ceil().max(1.0) as u64
}

struct Loop<'a> {
    config: &'a ServeConfig<'a>,
    policy: Box<dyn RoutePolicy + Send>,
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    next_job: u64,
    horizon_ticks: u64,
    // Per-backend state.
    free_at: Vec<u64>,
    in_flight: Vec<u64>,
    outstanding: Vec<f64>,
    busy_ticks: Vec<u64>,
    queues: Vec<VecDeque<Queued>>,
    // Degradation state.
    schedule: FaultSchedule,
    board: SignalBoard,
    // Per-user closed-loop streams.
    user_rngs: Vec<StdRng>,
    // Measurements.
    jobs_offered: u64,
    jobs: Vec<JobRecord>,
    failed_jobs: u64,
    retries_total: u64,
    retry_pending: u64,
}

impl Loop<'_> {
    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Draws one closed-loop submission for `user` from its private
    /// stream and schedules it, unless it would start past the horizon.
    fn submit_closed(&mut self, user: usize, time: u64) {
        if time >= self.horizon_ticks {
            return;
        }
        let n = self.config.graph.node_count();
        let rng = &mut self.user_rngs[user];
        let entry = rng.gen_range(0..n);
        let weight = self.config.weights.sample(1, rng)[0];
        self.push(
            time,
            EventKind::Arrival {
                entry,
                weight,
                source: Source::Closed(user),
            },
        );
    }

    /// Generates slot `slot`'s open-loop arrivals from the slot's private
    /// stream: a Poisson count, then per job an offset within the slot,
    /// a weight, and an entry node.
    fn push_open_arrivals(&mut self, slot: u64) {
        let Some(open) = self.config.traffic.open else {
            return;
        };
        let mut rng = rng_for(self.config.scenario_seed, slot, streams::serve::ARRIVAL);
        let k = sample_poisson(open.rate, &mut rng);
        if k == 0 {
            return;
        }
        let base = slot * TICKS_PER_UNIT;
        let mut offsets: Vec<u64> = (0..k).map(|_| rng.gen_range(0..TICKS_PER_UNIT)).collect();
        offsets.sort_unstable();
        let weights = self.config.weights.sample(k as usize, &mut rng);
        let n = self.config.graph.node_count();
        for (idx, off) in offsets.into_iter().enumerate() {
            let entry = rng.gen_range(0..n);
            self.push(
                base + off,
                EventKind::Arrival {
                    entry,
                    weight: weights[idx],
                    source: Source::Open,
                },
            );
        }
    }

    /// Routes one (possibly retried) job at `now` and admits it onto the
    /// chosen backend — or sends it down the retry path if that backend
    /// is actually dead.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        now: u64,
        entry: usize,
        weight: f64,
        source: Source,
        job_id: u64,
        arrival: u64,
        attempt: u32,
        coin: &mut StdRng,
    ) {
        let view = if self.board.is_stale() {
            NodeView::snapshots(
                self.config.graph,
                self.config.speeds,
                now,
                self.board.stored(),
            )
        } else {
            NodeView::live(
                self.config.graph,
                self.config.speeds,
                now,
                &self.outstanding,
                &self.free_at,
                &self.schedule.up,
                self.schedule.all_up(),
            )
        };
        let b = self.policy.route(entry, weight, &view, coin);
        if self.schedule.enabled() && !self.schedule.up[b] {
            // The signal lied (stale or lost probe): the job bounced off
            // a dead backend before service.
            self.reschedule(now, job_id, arrival, weight, source, attempt);
            return;
        }
        let start = self.free_at[b].max(now);
        let finish = start + service_ticks(weight, self.config.speeds.speed(b));
        self.free_at[b] = finish;
        self.in_flight[b] += 1;
        self.outstanding[b] += weight;
        if self.schedule.enabled() {
            self.queues[b].push_back(Queued {
                job_id,
                arrival,
                start,
                finish,
                weight,
                source,
                attempt,
            });
            self.push(
                finish,
                EventKind::Completion {
                    backend: b,
                    epoch: self.schedule.epoch[b],
                },
            );
        } else {
            // No crash can void this work: credit busy time at admission
            // and skip the FIFO round trip.
            self.busy_ticks[b] += finish.min(self.horizon_ticks) - start.min(self.horizon_ticks);
            self.push(
                finish,
                EventKind::DirectCompletion {
                    backend: b,
                    arrival,
                    weight,
                    source,
                },
            );
        }
    }

    /// Books one finished job: backend counters, the latency record, and
    /// the closed-loop user respawn.
    fn complete(&mut self, backend: usize, arrival: u64, weight: f64, source: Source, finish: u64) {
        self.in_flight[backend] -= 1;
        // Clamp float cancellation so an emptied backend reads exactly
        // zero outstanding work.
        self.outstanding[backend] = if self.in_flight[backend] == 0 {
            0.0
        } else {
            self.outstanding[backend] - weight
        };
        self.jobs.push(JobRecord { arrival, finish });
        if let Source::Closed(user) = source {
            let think = self
                .config
                .traffic
                .closed
                .expect("a closed-loop job implies a closed-loop spec");
            self.submit_closed(user, finish + to_ticks(think.think));
        }
    }

    /// A job bounced off a dead backend (misroute or eviction): schedule
    /// its next attempt, or fail it if the budget is spent. Failed jobs
    /// are counted, and a failed closed-loop job still releases its user
    /// (the user thinks, then submits fresh work).
    fn reschedule(
        &mut self,
        now: u64,
        job_id: u64,
        arrival: u64,
        weight: f64,
        source: Source,
        attempt: u32,
    ) {
        let next_attempt = attempt + 1;
        match self.config.retry {
            Some(retry) if next_attempt <= retry.max => {
                let axis = job_id * streams::serve::RETRY_ATTEMPT_STRIDE + u64::from(next_attempt);
                let mut coin = rng_for(self.config.policy_seed, axis, streams::serve::RETRY);
                // Equal jitter: half the exponential step is guaranteed,
                // half is scaled by the attempt's private coin.
                let jitter: f64 = coin.gen_range(0.0..1.0);
                let step = retry.base * (1u64 << (next_attempt - 1)) as f64;
                let delay = to_ticks(step * (0.5 + 0.5 * jitter)).max(1);
                self.retries_total += 1;
                self.retry_pending += 1;
                self.push(
                    now + delay,
                    EventKind::Retry(Box::new(RetryJob {
                        job_id,
                        arrival,
                        weight,
                        source,
                        attempt: next_attempt,
                        coin,
                    })),
                );
            }
            _ => {
                self.failed_jobs += 1;
                if let Source::Closed(user) = source {
                    let think = self
                        .config
                        .traffic
                        .closed
                        .expect("a closed-loop job implies a closed-loop spec");
                    self.submit_closed(user, now + to_ticks(think.think));
                }
            }
        }
    }

    /// Pops and handles every event strictly before `boundary`.
    fn process_until(&mut self, boundary: u64) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time >= boundary {
                return;
            }
            let Some(Reverse(event)) = self.heap.pop() else {
                return;
            };
            match event.kind {
                EventKind::Arrival {
                    entry,
                    weight,
                    source,
                } => {
                    let job_id = self.next_job;
                    self.next_job += 1;
                    self.jobs_offered += 1;
                    let mut coin = rng_for(self.config.policy_seed, job_id, streams::serve::POLICY);
                    self.dispatch(
                        event.time, entry, weight, source, job_id, event.time, 0, &mut coin,
                    );
                }
                EventKind::Completion { backend, epoch } => {
                    if epoch != self.schedule.epoch[backend] {
                        // The backend crashed after this was scheduled;
                        // the job already went down the retry path.
                        continue;
                    }
                    let job = self.queues[backend]
                        .pop_front()
                        .expect("a live completion implies a queued job");
                    debug_assert_eq!(job.finish, event.time);
                    self.busy_ticks[backend] +=
                        job.finish.min(self.horizon_ticks) - job.start.min(self.horizon_ticks);
                    self.complete(backend, job.arrival, job.weight, job.source, event.time);
                }
                EventKind::DirectCompletion {
                    backend,
                    arrival,
                    weight,
                    source,
                } => {
                    // Busy time was credited at admission.
                    self.complete(backend, arrival, weight, source, event.time);
                }
                EventKind::Crash { backend } => {
                    let recover_at = self.schedule.crash(backend, event.time);
                    let evicted: Vec<Queued> = self.queues[backend].drain(..).collect();
                    self.in_flight[backend] = 0;
                    self.outstanding[backend] = 0.0;
                    self.free_at[backend] = event.time;
                    for job in evicted {
                        if job.start < event.time {
                            // The in-service job's partial work still
                            // occupied the backend.
                            self.busy_ticks[backend] += event.time.min(self.horizon_ticks)
                                - job.start.min(self.horizon_ticks);
                        }
                        self.reschedule(
                            event.time,
                            job.job_id,
                            job.arrival,
                            job.weight,
                            job.source,
                            job.attempt,
                        );
                    }
                    self.push(recover_at, EventKind::Recover { backend });
                }
                EventKind::Recover { backend } => {
                    self.free_at[backend] = event.time;
                    if let Some(next_crash) = self.schedule.recover(backend, event.time) {
                        self.push(next_crash, EventKind::Crash { backend });
                    }
                }
                EventKind::Probe { epoch } => {
                    self.board.probe(
                        epoch,
                        event.time,
                        &self.outstanding,
                        &self.free_at,
                        &self.schedule.up,
                    );
                    let next = event.time + self.board.stale_ticks;
                    if next <= self.horizon_ticks {
                        self.push(next, EventKind::Probe { epoch: epoch + 1 });
                    }
                }
                EventKind::Retry(job) => {
                    let RetryJob {
                        job_id,
                        arrival,
                        weight,
                        source,
                        attempt,
                        mut coin,
                    } = *job;
                    self.retry_pending -= 1;
                    // A retried job re-enters anywhere: fresh entry node
                    // from the attempt's own stream.
                    let entry = coin.gen_range(0..self.config.graph.node_count());
                    self.dispatch(
                        event.time, entry, weight, source, job_id, arrival, attempt, &mut coin,
                    );
                }
            }
        }
    }
}

/// Runs one policy over one scenario to completion (horizon plus drain).
///
/// # Panics
///
/// Panics if the config has no backends, no traffic, or a zero horizon.
pub fn run(config: &ServeConfig<'_>, kind: PolicyKind) -> ServeOutcome {
    let n = config.graph.node_count();
    assert!(n > 0, "serve needs at least one backend");
    assert!(!config.traffic.is_empty(), "serve needs a traffic source");
    assert!(config.horizon > 0, "serve needs a positive horizon");

    let horizon_ticks = config.horizon * TICKS_PER_UNIT;
    let users = config.traffic.closed.map_or(0, |c| c.users);
    let mut state = Loop {
        config,
        policy: kind.instantiate(config.speeds),
        heap: BinaryHeap::new(),
        next_seq: 0,
        next_job: 0,
        horizon_ticks,
        free_at: vec![0; n],
        in_flight: vec![0; n],
        outstanding: vec![0.0; n],
        busy_ticks: vec![0; n],
        queues: (0..n).map(|_| VecDeque::new()).collect(),
        schedule: FaultSchedule::new(config.faults, config.scenario_seed, horizon_ticks, n),
        board: SignalBoard::new(config.signal, config.scenario_seed, n),
        user_rngs: (0..users)
            .map(|u| rng_for(config.scenario_seed, u as u64, streams::serve::CLOSED))
            .collect(),
        jobs_offered: 0,
        jobs: Vec::new(),
        failed_jobs: 0,
        retries_total: 0,
        retry_pending: 0,
    };

    // Degradation events seed the heap first: the initial probe observes
    // tick 0 before any arrival routes on it.
    if state.board.is_stale() {
        state.push(0, EventKind::Probe { epoch: 0 });
    }
    for (backend, tick) in state.schedule.initial_crash_ticks() {
        state.push(tick, EventKind::Crash { backend });
    }

    // Closed-loop users phase in uniformly over their first think window.
    if let Some(closed) = config.traffic.closed {
        for user in 0..closed.users {
            let phase: f64 = state.user_rngs[user].gen_range(0.0..closed.think);
            state.submit_closed(user, to_ticks(phase));
        }
    }

    // Generate each slot's arrivals lazily, then drain past the horizon.
    for slot in 0..config.horizon {
        state.push_open_arrivals(slot);
        state.process_until((slot + 1) * TICKS_PER_UNIT);
    }
    let in_flight_at_horizon = state.in_flight.clone();
    let outstanding_at_horizon = state.outstanding.clone();
    let alive_at_horizon = state.schedule.up.clone();
    let completed_at_horizon = state.jobs.len() as u64;
    let failed_at_horizon = state.failed_jobs;
    let retrying_at_horizon = state.retry_pending;
    // Conservation at the horizon: every offered job is completed,
    // failed, queued on a backend, or waiting out a retry backoff.
    debug_assert_eq!(
        state.jobs_offered,
        completed_at_horizon
            + failed_at_horizon
            + in_flight_at_horizon.iter().sum::<u64>()
            + retrying_at_horizon,
    );
    state.process_until(u64::MAX);
    // Conservation at the drain: completed plus failed, nothing pending.
    debug_assert_eq!(
        state.jobs.len() as u64 + state.failed_jobs,
        state.jobs_offered
    );
    debug_assert_eq!(state.retry_pending, 0);
    debug_assert!(state.queues.iter().all(|q| q.is_empty()));

    let unit_weights = vec![1.0; n];
    let loads: Vec<f64> = outstanding_at_horizon
        .iter()
        .enumerate()
        .map(|(b, &w)| w / config.speeds.speed(b))
        .collect();
    let occupied: Vec<bool> = in_flight_at_horizon.iter().map(|&c| c > 0).collect();
    let nash_gap_at_horizon = nash_gap_loads(
        config.graph,
        config.speeds,
        &loads,
        &unit_weights,
        &occupied,
    );

    // The live gap: dead backends are no target (infinite load keeps
    // every improvement negative) and no source (unoccupied).
    let loads_live: Vec<f64> = loads
        .iter()
        .zip(&alive_at_horizon)
        .map(|(&l, &alive)| if alive { l } else { f64::INFINITY })
        .collect();
    let occupied_live: Vec<bool> = occupied
        .iter()
        .zip(&alive_at_horizon)
        .map(|(&o, &alive)| o && alive)
        .collect();
    let nash_gap_live_at_horizon = nash_gap_loads(
        config.graph,
        config.speeds,
        &loads_live,
        &unit_weights,
        &occupied_live,
    );

    ServeOutcome {
        jobs_offered: state.jobs_offered,
        jobs: state.jobs,
        failed_jobs: state.failed_jobs,
        retries_total: state.retries_total,
        availability: state.schedule.availability(),
        busy_ticks: state.busy_ticks,
        in_flight_at_horizon,
        outstanding_at_horizon,
        alive_at_horizon,
        completed_at_horizon,
        failed_at_horizon,
        retrying_at_horizon,
        nash_gap_at_horizon,
        nash_gap_live_at_horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_graphs::generators::Family;
    use slb_workloads::faults::{parse_faults, parse_retry, parse_signal};
    use slb_workloads::traffic::{parse_closed, parse_traffic};

    fn config<'a>(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        traffic: TrafficSpec,
        horizon: u64,
    ) -> ServeConfig<'a> {
        ServeConfig {
            graph,
            speeds,
            traffic,
            weights: WeightDistribution::Unit,
            faults: None,
            signal: SignalSpec::default(),
            retry: None,
            horizon,
            scenario_seed: 7,
            policy_seed: 11,
        }
    }

    fn degraded<'a>(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        traffic: TrafficSpec,
        horizon: u64,
    ) -> ServeConfig<'a> {
        ServeConfig {
            faults: parse_faults("crash:6:2").expect("valid faults"),
            signal: parse_signal("stale:0.5+loss:0.1").expect("valid signal"),
            retry: parse_retry("max:3:base:0.25").expect("valid retry"),
            ..config(graph, speeds, traffic, horizon)
        }
    }

    fn open_traffic(rate: &str) -> TrafficSpec {
        TrafficSpec {
            open: parse_traffic(rate).expect("valid traffic token"),
            closed: None,
        }
    }

    #[test]
    fn runs_are_reproducible_and_complete_every_job() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let cfg = config(&graph, &speeds, open_traffic("poisson:4"), 50);
        for kind in PolicyKind::ALL {
            let a = run(&cfg, kind);
            let b = run(&cfg, kind);
            assert_eq!(a.jobs_offered, b.jobs_offered);
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.busy_ticks, b.busy_ticks);
            assert_eq!(a.jobs.len() as u64, a.jobs_offered, "{}", kind.label());
            assert!(a.jobs_offered > 0);
            assert_eq!(a.failed_jobs, 0, "no faults, no failures");
            assert_eq!(a.retries_total, 0);
            assert_eq!(a.availability, 1.0);
            assert_eq!(a.nash_gap_at_horizon, a.nash_gap_live_at_horizon);
            assert!(a.alive_at_horizon.iter().all(|&u| u));
            for job in &a.jobs {
                assert!(job.finish > job.arrival);
            }
        }
    }

    #[test]
    fn policies_share_the_open_loop_job_stream() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let cfg = config(&graph, &speeds, open_traffic("poisson:3"), 40);
        let offered: Vec<u64> = PolicyKind::ALL
            .iter()
            .map(|&kind| run(&cfg, kind).jobs_offered)
            .collect();
        assert!(
            offered.windows(2).all(|w| w[0] == w[1]),
            "open-loop offered load must not depend on the policy: {offered:?}"
        );
    }

    #[test]
    fn closed_loop_bounds_concurrency() {
        let graph = Family::Complete { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let traffic = TrafficSpec {
            open: None,
            closed: parse_closed("3:0.5").expect("valid closed token"),
        };
        let cfg = config(&graph, &speeds, traffic, 30);
        let outcome = run(&cfg, PolicyKind::GreedyLeastLoaded);
        assert!(outcome.jobs_offered > 3, "users resubmit after thinking");
        // At most `users` closed-loop jobs can ever overlap; verify via
        // a sweep over the completion records.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for job in &outcome.jobs {
            events.push((job.arrival, 1));
            events.push((job.finish, -1));
        }
        events.sort_unstable();
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        assert!(peak <= 3, "closed loop exceeded its population: {peak}");
    }

    #[test]
    fn greedy_on_uniform_speeds_balances_utilization() {
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let cfg = config(&graph, &speeds, open_traffic("poisson:3"), 80);
        let outcome = run(&cfg, PolicyKind::GreedyLeastLoaded);
        let min = outcome.busy_ticks.iter().min().copied().unwrap_or(0);
        let max = outcome.busy_ticks.iter().max().copied().unwrap_or(0);
        assert!(min > 0, "every backend should see work");
        assert!(
            (max - min) as f64 / max as f64 <= 0.5,
            "greedy spread too uneven: {:?}",
            outcome.busy_ticks
        );
    }

    #[test]
    fn overload_shows_up_in_the_nash_gap_and_backlog() {
        // A ring of slow backends at 4× their capacity: round-robin ends
        // the horizon with work outstanding everywhere.
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let cfg = config(&graph, &speeds, open_traffic("poisson:16"), 20);
        let outcome = run(&cfg, PolicyKind::RoundRobin);
        let backlog: f64 = outcome.outstanding_at_horizon.iter().sum();
        assert!(backlog > 0.0, "4× overload must leave a backlog");
        assert!(outcome.nash_gap_at_horizon >= 0.0);
        assert!(outcome.in_flight_at_horizon.iter().any(|&c| c > 0));
    }

    #[test]
    fn faulty_runs_conserve_jobs_and_stay_reproducible() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let traffic = TrafficSpec {
            open: parse_traffic("poisson:4").expect("valid traffic"),
            closed: parse_closed("2:1.0").expect("valid closed"),
        };
        for kind in PolicyKind::ALL {
            let cfg = degraded(&graph, &speeds, traffic, 40);
            let a = run(&cfg, kind);
            let b = run(&cfg, kind);
            assert_eq!(a.jobs, b.jobs, "{}", kind.label());
            assert_eq!(a.failed_jobs, b.failed_jobs);
            assert_eq!(a.retries_total, b.retries_total);
            // Conservation after the drain: completed plus failed is
            // exactly the offered load — nothing silently dropped.
            assert_eq!(
                a.jobs.len() as u64 + a.failed_jobs,
                a.jobs_offered,
                "{} lost jobs",
                kind.label()
            );
            // Conservation at the horizon: offered splits into the four
            // visible states.
            assert_eq!(
                a.jobs_offered,
                a.completed_at_horizon
                    + a.failed_at_horizon
                    + a.in_flight_at_horizon.iter().sum::<u64>()
                    + a.retrying_at_horizon,
                "{} conservation at horizon",
                kind.label()
            );
            assert!(a.availability < 1.0, "mttf 6 over 40 units must crash");
            assert!(a.availability > 0.0);
            assert!(a.nash_gap_live_at_horizon >= 0.0);
        }
    }

    #[test]
    fn without_retry_every_fault_hit_job_fails() {
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let mut cfg = config(&graph, &speeds, open_traffic("poisson:6"), 60);
        cfg.faults = parse_faults("crash:3:2").expect("valid faults");
        let outcome = run(&cfg, PolicyKind::RoundRobin);
        assert_eq!(outcome.retries_total, 0);
        assert!(outcome.failed_jobs > 0, "mttf 3 over 60 units must evict");
        assert_eq!(
            outcome.jobs.len() as u64 + outcome.failed_jobs,
            outcome.jobs_offered
        );
        assert!(outcome.availability < 1.0);
    }

    #[test]
    fn retries_rescue_jobs_that_would_otherwise_fail() {
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let mut without = config(&graph, &speeds, open_traffic("poisson:6"), 60);
        without.faults = parse_faults("crash:3:2").expect("valid faults");
        let mut with = config(&graph, &speeds, open_traffic("poisson:6"), 60);
        with.faults = parse_faults("crash:3:2").expect("valid faults");
        with.retry = parse_retry("max:5:base:0.1").expect("valid retry");
        let dropped = run(&without, PolicyKind::GreedyLeastLoaded);
        let retried = run(&with, PolicyKind::GreedyLeastLoaded);
        assert!(retried.retries_total > 0, "faults must trigger retries");
        assert!(
            retried.failed_jobs < dropped.failed_jobs,
            "retries should rescue jobs: {} vs {}",
            retried.failed_jobs,
            dropped.failed_jobs
        );
        // Identical scenario seed, identical fault timeline.
        assert_eq!(dropped.availability, retried.availability);
    }

    #[test]
    fn stale_signals_degrade_greedy_routing() {
        // Fresh greedy balances a ring; a 5-unit-stale view makes it
        // dogpile whichever backend looked empty at the last probe.
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let fresh_cfg = config(&graph, &speeds, open_traffic("poisson:6"), 40);
        let mut stale_cfg = config(&graph, &speeds, open_traffic("poisson:6"), 40);
        stale_cfg.signal = parse_signal("stale:5").expect("valid signal");
        let fresh = run(&fresh_cfg, PolicyKind::GreedyLeastLoaded);
        let stale = run(&stale_cfg, PolicyKind::GreedyLeastLoaded);
        assert_eq!(fresh.jobs_offered, stale.jobs_offered);
        let spread = |o: &ServeOutcome| {
            let min = o.busy_ticks.iter().min().copied().unwrap_or(0);
            let max = o.busy_ticks.iter().max().copied().unwrap_or(0);
            max - min
        };
        assert!(
            spread(&stale) > spread(&fresh),
            "staleness should unbalance greedy: {:?} vs {:?}",
            stale.busy_ticks,
            fresh.busy_ticks
        );
    }

    #[test]
    fn degraded_signals_without_faults_lose_no_jobs() {
        // Staleness and probe loss alone (all backends alive) must not
        // create failures — only worse decisions.
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let mut cfg = config(&graph, &speeds, open_traffic("poisson:4"), 30);
        cfg.signal = parse_signal("stale:2+loss:0.3").expect("valid signal");
        for kind in PolicyKind::ALL {
            let outcome = run(&cfg, kind);
            assert_eq!(outcome.failed_jobs, 0, "{}", kind.label());
            assert_eq!(outcome.jobs.len() as u64, outcome.jobs_offered);
        }
    }
}
