//! In-process service harness: the paper's protocols run as a load
//! balancer instead of a round loop.
//!
//! [`run`] drives one policy over one scenario: a synthetic job stream
//! (open-loop Poisson arrivals, closed-loop users, or both — see
//! [`slb_workloads::traffic`]) lands on a backend array whose speeds and
//! peer topology come from the same model layer as the simulators. Each
//! backend is a FIFO queue; a job of weight `w` on backend `b` takes
//! `w / s_b` units of service, so service times are driven by backend
//! speeds exactly like task processing in the paper's model.
//!
//! # Determinism
//!
//! Time is a **virtual clock**: integer ticks ([`TICKS_PER_UNIT`] per
//! unit of load), advanced only by a binary event heap ordered by
//! `(tick, sequence number)`. No wall clock exists anywhere (`slb-lint`
//! bans `std::time` in engine code, and `crates/serve` is in its scan
//! scope), so a run is a pure function of its seeds:
//!
//! * the **scenario seed** drives traffic: open-loop slot `t` draws from
//!   `rng_for(scenario_seed, t, streams::serve::ARRIVAL)`, closed-loop
//!   user `u` from `rng_for(scenario_seed, u, streams::serve::CLOSED)`.
//!   Every policy of a `slb serve` invocation shares the scenario seed,
//!   so all policies face the *identical* open-loop job stream.
//! * the **policy seed** drives routing: job `k` flips its coins from
//!   `rng_for(policy_seed, k, streams::serve::POLICY)` — one private
//!   stream per job, so decisions depend only on the job index and the
//!   observed state, never on how runs are scheduled onto threads.
//!
//! The harness runs each policy sequentially; `slb serve --threads T`
//! fans *policies* across workers, which cannot change any per-policy
//! trajectory. Artifacts are therefore byte-identical at any `--threads`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod policy;

pub use policy::{NodeView, PolicyKind, RoutePolicy};

use rand::rngs::StdRng;
use rand::Rng;
use slb_core::engine::sampling::sample_poisson;
use slb_core::equilibrium::nash_gap_loads;
use slb_core::model::SpeedVector;
use slb_core::rng::{rng_for, streams};
use slb_graphs::Graph;
use slb_workloads::weights::WeightDistribution;
use slb_workloads::TrafficSpec;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual-clock resolution: ticks per unit of load/time. A power of two
/// keeps unit↔tick conversions exact for the usual rates.
pub const TICKS_PER_UNIT: u64 = 1 << 20;

/// One serve scenario: everything but the routing policy.
///
/// `scenario_seed` is shared across the policies of an invocation (same
/// traffic for everyone), `policy_seed` is unique per policy run.
pub struct ServeConfig<'a> {
    /// Peer topology (selfish policies migrate along its edges).
    pub graph: &'a Graph,
    /// Backend speeds.
    pub speeds: &'a SpeedVector,
    /// The synthetic traffic to offer.
    pub traffic: TrafficSpec,
    /// Job-weight distribution (service time = weight / speed).
    pub weights: WeightDistribution,
    /// Units of virtual time during which traffic is generated. The run
    /// then drains: every admitted job completes.
    pub horizon: u64,
    /// Master seed of the traffic streams (shared across policies).
    pub scenario_seed: u64,
    /// Master seed of the per-job routing coins (unique per policy).
    pub policy_seed: u64,
}

/// Arrival/completion times of one completed job, in ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRecord {
    /// Submission tick.
    pub arrival: u64,
    /// Completion tick (`finish − arrival` is the job's latency).
    pub finish: u64,
}

/// Everything a serve run measures. The analysis layer turns this into
/// artifact rows; keeping raw per-job records here lets it apply
/// measurement windows and quantiles without re-running.
pub struct ServeOutcome {
    /// Jobs submitted (open- plus closed-loop) within the horizon.
    pub jobs_offered: u64,
    /// Per-job arrival/finish ticks, in completion order. Every offered
    /// job completes (the run drains after the horizon), so this has
    /// exactly `jobs_offered` entries.
    pub jobs: Vec<JobRecord>,
    /// Per-backend busy ticks within `[0, horizon)`.
    pub busy_ticks: Vec<u64>,
    /// Per-backend jobs in flight at the horizon boundary.
    pub in_flight_at_horizon: Vec<u64>,
    /// Per-backend outstanding weight at the horizon boundary.
    pub outstanding_at_horizon: Vec<f64>,
    /// Nash gap of the backlog state at the horizon: loads `W_b/s_b`
    /// over the serve topology, unit threshold weights, backends with
    /// jobs in flight marked occupied.
    pub nash_gap_at_horizon: f64,
}

/// Where a job came from (closed-loop jobs respawn their user).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Open,
    Closed(usize),
}

enum EventKind {
    Arrival {
        entry: usize,
        weight: f64,
        source: Source,
    },
    Completion {
        backend: usize,
        arrival: u64,
        weight: f64,
        source: Source,
    },
}

/// Heap entry: ordered by `(time, seq)` so simultaneous events fire in
/// insertion order — a total, deterministic order.
struct Event {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Converts a duration in units to ticks, rounding to nearest.
fn to_ticks(units: f64) -> u64 {
    (units * TICKS_PER_UNIT as f64).round() as u64
}

/// Service duration of a job of weight `w` on a backend of speed `s`:
/// `w/s` units, at least one tick so every job occupies its backend.
fn service_ticks(weight: f64, speed: f64) -> u64 {
    ((weight / speed) * TICKS_PER_UNIT as f64).ceil().max(1.0) as u64
}

struct Loop<'a> {
    config: &'a ServeConfig<'a>,
    policy: Box<dyn RoutePolicy + Send>,
    heap: BinaryHeap<Reverse<Event>>,
    next_seq: u64,
    next_job: u64,
    horizon_ticks: u64,
    // Per-backend state.
    free_at: Vec<u64>,
    in_flight: Vec<u64>,
    outstanding: Vec<f64>,
    busy_ticks: Vec<u64>,
    // Per-user closed-loop streams.
    user_rngs: Vec<StdRng>,
    // Measurements.
    jobs_offered: u64,
    jobs: Vec<JobRecord>,
}

impl Loop<'_> {
    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
    }

    /// Draws one closed-loop submission for `user` from its private
    /// stream and schedules it, unless it would start past the horizon.
    fn submit_closed(&mut self, user: usize, time: u64) {
        if time >= self.horizon_ticks {
            return;
        }
        let n = self.config.graph.node_count();
        let rng = &mut self.user_rngs[user];
        let entry = rng.gen_range(0..n);
        let weight = self.config.weights.sample(1, rng)[0];
        self.push(
            time,
            EventKind::Arrival {
                entry,
                weight,
                source: Source::Closed(user),
            },
        );
    }

    /// Generates slot `slot`'s open-loop arrivals from the slot's private
    /// stream: a Poisson count, then per job an offset within the slot,
    /// a weight, and an entry node.
    fn push_open_arrivals(&mut self, slot: u64) {
        let Some(open) = self.config.traffic.open else {
            return;
        };
        let mut rng = rng_for(self.config.scenario_seed, slot, streams::serve::ARRIVAL);
        let k = sample_poisson(open.rate, &mut rng);
        if k == 0 {
            return;
        }
        let base = slot * TICKS_PER_UNIT;
        let mut offsets: Vec<u64> = (0..k).map(|_| rng.gen_range(0..TICKS_PER_UNIT)).collect();
        offsets.sort_unstable();
        let weights = self.config.weights.sample(k as usize, &mut rng);
        let n = self.config.graph.node_count();
        for (idx, off) in offsets.into_iter().enumerate() {
            let entry = rng.gen_range(0..n);
            self.push(
                base + off,
                EventKind::Arrival {
                    entry,
                    weight: weights[idx],
                    source: Source::Open,
                },
            );
        }
    }

    /// Routes and admits one job at `now`.
    fn admit(&mut self, now: u64, entry: usize, weight: f64, source: Source) {
        let job_id = self.next_job;
        self.next_job += 1;
        self.jobs_offered += 1;
        let mut coin = rng_for(self.config.policy_seed, job_id, streams::serve::POLICY);
        let view = NodeView {
            graph: self.config.graph,
            speeds: self.config.speeds,
            free_at: &self.free_at,
            in_flight: &self.in_flight,
            outstanding: &self.outstanding,
            now,
            ticks_per_unit: TICKS_PER_UNIT,
        };
        let b = self.policy.route(entry, weight, &view, &mut coin);
        let start = self.free_at[b].max(now);
        let finish = start + service_ticks(weight, self.config.speeds.speed(b));
        self.free_at[b] = finish;
        self.in_flight[b] += 1;
        self.outstanding[b] += weight;
        // Busy time credited within [0, horizon) only.
        self.busy_ticks[b] += finish.min(self.horizon_ticks) - start.min(self.horizon_ticks);
        self.push(
            finish,
            EventKind::Completion {
                backend: b,
                arrival: now,
                weight,
                source,
            },
        );
    }

    /// Pops and handles every event strictly before `boundary`.
    fn process_until(&mut self, boundary: u64) {
        while let Some(Reverse(head)) = self.heap.peek() {
            if head.time >= boundary {
                return;
            }
            let Some(Reverse(event)) = self.heap.pop() else {
                return;
            };
            match event.kind {
                EventKind::Arrival {
                    entry,
                    weight,
                    source,
                } => self.admit(event.time, entry, weight, source),
                EventKind::Completion {
                    backend,
                    arrival,
                    weight,
                    source,
                } => {
                    self.in_flight[backend] -= 1;
                    // Clamp float cancellation so an emptied backend
                    // reads exactly zero outstanding work.
                    self.outstanding[backend] = if self.in_flight[backend] == 0 {
                        0.0
                    } else {
                        self.outstanding[backend] - weight
                    };
                    self.jobs.push(JobRecord {
                        arrival,
                        finish: event.time,
                    });
                    if let Source::Closed(user) = source {
                        let think = self
                            .config
                            .traffic
                            .closed
                            .expect("a closed-loop job implies a closed-loop spec");
                        self.submit_closed(user, event.time + to_ticks(think.think));
                    }
                }
            }
        }
    }
}

/// Runs one policy over one scenario to completion (horizon plus drain).
///
/// # Panics
///
/// Panics if the config has no backends, no traffic, or a zero horizon.
pub fn run(config: &ServeConfig<'_>, kind: PolicyKind) -> ServeOutcome {
    let n = config.graph.node_count();
    assert!(n > 0, "serve needs at least one backend");
    assert!(!config.traffic.is_empty(), "serve needs a traffic source");
    assert!(config.horizon > 0, "serve needs a positive horizon");

    let users = config.traffic.closed.map_or(0, |c| c.users);
    let mut state = Loop {
        config,
        policy: kind.instantiate(config.speeds),
        heap: BinaryHeap::new(),
        next_seq: 0,
        next_job: 0,
        horizon_ticks: config.horizon * TICKS_PER_UNIT,
        free_at: vec![0; n],
        in_flight: vec![0; n],
        outstanding: vec![0.0; n],
        busy_ticks: vec![0; n],
        user_rngs: (0..users)
            .map(|u| rng_for(config.scenario_seed, u as u64, streams::serve::CLOSED))
            .collect(),
        jobs_offered: 0,
        jobs: Vec::new(),
    };

    // Closed-loop users phase in uniformly over their first think window.
    if let Some(closed) = config.traffic.closed {
        for user in 0..closed.users {
            let phase: f64 = state.user_rngs[user].gen_range(0.0..closed.think);
            state.submit_closed(user, to_ticks(phase));
        }
    }

    // Generate each slot's arrivals lazily, then drain past the horizon.
    for slot in 0..config.horizon {
        state.push_open_arrivals(slot);
        state.process_until((slot + 1) * TICKS_PER_UNIT);
    }
    let in_flight_at_horizon = state.in_flight.clone();
    let outstanding_at_horizon = state.outstanding.clone();
    state.process_until(u64::MAX);
    debug_assert_eq!(state.jobs.len() as u64, state.jobs_offered);

    let loads: Vec<f64> = outstanding_at_horizon
        .iter()
        .enumerate()
        .map(|(b, &w)| w / config.speeds.speed(b))
        .collect();
    let occupied: Vec<bool> = in_flight_at_horizon.iter().map(|&c| c > 0).collect();
    let nash_gap_at_horizon = nash_gap_loads(
        config.graph,
        config.speeds,
        &loads,
        &vec![1.0; n],
        &occupied,
    );

    ServeOutcome {
        jobs_offered: state.jobs_offered,
        jobs: state.jobs,
        busy_ticks: state.busy_ticks,
        in_flight_at_horizon,
        outstanding_at_horizon,
        nash_gap_at_horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_graphs::generators::Family;
    use slb_workloads::traffic::{parse_closed, parse_traffic};

    fn config<'a>(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        traffic: TrafficSpec,
        horizon: u64,
    ) -> ServeConfig<'a> {
        ServeConfig {
            graph,
            speeds,
            traffic,
            weights: WeightDistribution::Unit,
            horizon,
            scenario_seed: 7,
            policy_seed: 11,
        }
    }

    fn open_traffic(rate: &str) -> TrafficSpec {
        TrafficSpec {
            open: parse_traffic(rate).expect("valid traffic token"),
            closed: None,
        }
    }

    #[test]
    fn runs_are_reproducible_and_complete_every_job() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let cfg = config(&graph, &speeds, open_traffic("poisson:4"), 50);
        for kind in PolicyKind::ALL {
            let a = run(&cfg, kind);
            let b = run(&cfg, kind);
            assert_eq!(a.jobs_offered, b.jobs_offered);
            assert_eq!(a.jobs, b.jobs);
            assert_eq!(a.busy_ticks, b.busy_ticks);
            assert_eq!(a.jobs.len() as u64, a.jobs_offered, "{}", kind.label());
            assert!(a.jobs_offered > 0);
            for job in &a.jobs {
                assert!(job.finish > job.arrival);
            }
        }
    }

    #[test]
    fn policies_share_the_open_loop_job_stream() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let cfg = config(&graph, &speeds, open_traffic("poisson:3"), 40);
        let offered: Vec<u64> = PolicyKind::ALL
            .iter()
            .map(|&kind| run(&cfg, kind).jobs_offered)
            .collect();
        assert!(
            offered.windows(2).all(|w| w[0] == w[1]),
            "open-loop offered load must not depend on the policy: {offered:?}"
        );
    }

    #[test]
    fn closed_loop_bounds_concurrency() {
        let graph = Family::Complete { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let traffic = TrafficSpec {
            open: None,
            closed: parse_closed("3:0.5").expect("valid closed token"),
        };
        let cfg = config(&graph, &speeds, traffic, 30);
        let outcome = run(&cfg, PolicyKind::GreedyLeastLoaded);
        assert!(outcome.jobs_offered > 3, "users resubmit after thinking");
        // At most `users` closed-loop jobs can ever overlap; verify via
        // a sweep over the completion records.
        let mut events: Vec<(u64, i64)> = Vec::new();
        for job in &outcome.jobs {
            events.push((job.arrival, 1));
            events.push((job.finish, -1));
        }
        events.sort_unstable();
        let mut live = 0i64;
        let mut peak = 0i64;
        for (_, delta) in events {
            live += delta;
            peak = peak.max(live);
        }
        assert!(peak <= 3, "closed loop exceeded its population: {peak}");
    }

    #[test]
    fn greedy_on_uniform_speeds_balances_utilization() {
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let cfg = config(&graph, &speeds, open_traffic("poisson:3"), 80);
        let outcome = run(&cfg, PolicyKind::GreedyLeastLoaded);
        let min = outcome.busy_ticks.iter().min().copied().unwrap_or(0);
        let max = outcome.busy_ticks.iter().max().copied().unwrap_or(0);
        assert!(min > 0, "every backend should see work");
        assert!(
            (max - min) as f64 / max as f64 <= 0.5,
            "greedy spread too uneven: {:?}",
            outcome.busy_ticks
        );
    }

    #[test]
    fn overload_shows_up_in_the_nash_gap_and_backlog() {
        // A ring of slow backends at 4× their capacity: round-robin ends
        // the horizon with work outstanding everywhere.
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let cfg = config(&graph, &speeds, open_traffic("poisson:16"), 20);
        let outcome = run(&cfg, PolicyKind::RoundRobin);
        let backlog: f64 = outcome.outstanding_at_horizon.iter().sum();
        assert!(backlog > 0.0, "4× overload must leave a backlog");
        assert!(outcome.nash_gap_at_horizon >= 0.0);
        assert!(outcome.in_flight_at_horizon.iter().any(|&c| c > 0));
    }
}
