//! Pluggable routing policies for the service harness.
//!
//! A [`RoutePolicy`] decides, per job, which backend executes it. The
//! paper's protocols ([`PolicyKind::Alg1`], [`PolicyKind::Alg2`],
//! [`PolicyKind::Bhs`]) are *selfish*: the job lands on a uniformly
//! random entry node and performs one migration step of the count
//! kernel's rule — sample a neighbor, check the threshold condition
//! `ℓ_i − ℓ_j > θ/s_j` ([`ThresholdRule`]), and move with the damped
//! probability `p_ij` ([`migration_probability`]). The practical
//! baselines (round-robin, greedy least-loaded, bandwidth softmax) see
//! the whole backend array, the way a fronting load balancer would.

use rand::rngs::StdRng;
use rand::Rng;
use slb_core::engine::kernel::{OwnWeightThreshold, RelaxedThreshold, ThresholdRule};
use slb_core::model::SpeedVector;
use slb_core::protocol::{migration_probability, Alpha};
use slb_graphs::Graph;
use slb_workloads::sweep::SweepParseError;

/// Read-only view of the backend state a policy may consult.
///
/// Loads come in two currencies: `outstanding` work (admitted weight not
/// yet completed — the serve analogue of the kernel's count state, with
/// `in_flight` the literal job counts) and `backlog_units` (time until
/// the backend drains, i.e. outstanding work over speed).
pub struct NodeView<'a> {
    /// The peer topology the selfish policies walk.
    pub graph: &'a Graph,
    /// Backend speeds.
    pub speeds: &'a SpeedVector,
    /// Tick at which each backend's FIFO drains.
    pub free_at: &'a [u64],
    /// Jobs admitted and not yet completed, per backend.
    pub in_flight: &'a [u64],
    /// Weight admitted and not yet completed, per backend.
    pub outstanding: &'a [f64],
    /// The current virtual time in ticks.
    pub now: u64,
    /// Ticks per unit of virtual time.
    pub ticks_per_unit: u64,
}

impl NodeView<'_> {
    /// Number of backends.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether the system has no backends (never true in a run).
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Time (in units) until backend `b`'s FIFO drains.
    pub fn backlog_units(&self, b: usize) -> f64 {
        self.free_at[b].saturating_sub(self.now) as f64 / self.ticks_per_unit as f64
    }
}

/// A routing decision procedure. `entry` is the uniformly random node the
/// job arrived on (drawn from the job's coin by the harness), `weight`
/// the job's weight, and `coin` the job's private policy stream.
pub trait RoutePolicy {
    /// Chooses the backend that executes the job.
    fn route(&mut self, entry: usize, weight: f64, view: &NodeView<'_>, coin: &mut StdRng)
        -> usize;
}

/// The six built-in policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Algorithm 1: selfish one-step migration, speed-blind (loads are
    /// raw outstanding weights, `θ = 1`).
    Alg1,
    /// Algorithm 2: selfish one-step migration, speed-aware (loads are
    /// `W/s`, `θ = 1`).
    Alg2,
    /// The \[6\] (BHS) baseline rule: speed-aware with the job's own
    /// weight as threshold (`θ = w`).
    Bhs,
    /// Cycles through backends regardless of state.
    RoundRobin,
    /// Sends every job to the backend with the smallest time-to-drain.
    GreedyLeastLoaded,
    /// Samples a backend from a softmax over speed-proportional headroom
    /// (autodist-style entropy policy).
    BandwidthSoftmax,
}

impl PolicyKind {
    /// Every policy, in artifact row order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Alg1,
        PolicyKind::Alg2,
        PolicyKind::Bhs,
        PolicyKind::RoundRobin,
        PolicyKind::GreedyLeastLoaded,
        PolicyKind::BandwidthSoftmax,
    ];

    /// The artifact/CLI label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Alg1 => "alg1",
            PolicyKind::Alg2 => "alg2",
            PolicyKind::Bhs => "bhs",
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::GreedyLeastLoaded => "greedy-least-loaded",
            PolicyKind::BandwidthSoftmax => "bandwidth-softmax",
        }
    }

    /// Parses a CLI token.
    pub fn parse(token: &str) -> Result<Self, SweepParseError> {
        Self::ALL
            .into_iter()
            .find(|p| p.label() == token)
            .ok_or_else(|| SweepParseError::new(format!("unknown policy `{token}`")))
    }

    /// Builds the policy's decision procedure for a run over `speeds`.
    pub fn instantiate(self, speeds: &SpeedVector) -> Box<dyn RoutePolicy + Send> {
        match self {
            // Algorithm 1 sees a speed-blind world, so its damping uses
            // the unit-speed `α = 4·s_max = 4` of that view.
            PolicyKind::Alg1 => Box::new(Selfish {
                variant: SelfishVariant::Alg1,
                alpha: 4.0,
            }),
            PolicyKind::Alg2 => Box::new(Selfish {
                variant: SelfishVariant::Alg2,
                alpha: Alpha::Approximate.resolve(speeds),
            }),
            PolicyKind::Bhs => Box::new(Selfish {
                variant: SelfishVariant::Bhs,
                alpha: Alpha::Approximate.resolve(speeds),
            }),
            PolicyKind::RoundRobin => Box::new(RoundRobin { next: 0 }),
            PolicyKind::GreedyLeastLoaded => Box::new(GreedyLeastLoaded),
            PolicyKind::BandwidthSoftmax => Box::new(BandwidthSoftmax),
        }
    }
}

/// Which selfish rule a [`Selfish`] policy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SelfishVariant {
    Alg1,
    Alg2,
    Bhs,
}

/// One migration step of the count kernel's rule, applied at admission:
/// the job stands on its entry node `i` (its weight counted into `W_i`,
/// exactly like a task deciding in the round kernel), samples a uniform
/// neighbor `j`, and moves iff the threshold condition holds and the
/// `p_ij` coin comes up.
struct Selfish {
    variant: SelfishVariant,
    alpha: f64,
}

impl RoutePolicy for Selfish {
    fn route(
        &mut self,
        entry: usize,
        weight: f64,
        view: &NodeView<'_>,
        coin: &mut StdRng,
    ) -> usize {
        let i = entry;
        let deg_i = view.graph.degree(i.into());
        if deg_i == 0 {
            return i;
        }
        let j: usize = view.graph.neighbors(i.into())[coin.gen_range(0..deg_i)].index();
        let deg_j = view.graph.degree(j.into());
        let d_ij = deg_i.max(deg_j);
        // The deciding job counts into its own node's state.
        let w_i = view.outstanding[i] + weight;
        let (s_i, s_j) = match self.variant {
            SelfishVariant::Alg1 => (1.0, 1.0),
            _ => (view.speeds.speed(i), view.speeds.speed(j)),
        };
        let (load_i, load_j) = (w_i / s_i, view.outstanding[j] / s_j);
        let theta = match self.variant {
            SelfishVariant::Alg1 | SelfishVariant::Alg2 => RelaxedThreshold.threshold(weight),
            SelfishVariant::Bhs => OwnWeightThreshold.threshold(weight),
        };
        if load_i - load_j <= theta / s_j {
            return i;
        }
        let p = migration_probability(deg_i, d_ij, load_i, load_j, s_i, s_j, w_i, self.alpha);
        if coin.gen_range(0.0..1.0) < p {
            j
        } else {
            i
        }
    }
}

/// State-blind cycling dispatcher.
struct RoundRobin {
    next: usize,
}

impl RoutePolicy for RoundRobin {
    fn route(
        &mut self,
        _entry: usize,
        _weight: f64,
        view: &NodeView<'_>,
        _coin: &mut StdRng,
    ) -> usize {
        let b = self.next % view.len();
        self.next = (self.next + 1) % view.len();
        b
    }
}

/// Global argmin over time-to-drain (ties break to the lowest index).
struct GreedyLeastLoaded;

impl RoutePolicy for GreedyLeastLoaded {
    fn route(
        &mut self,
        _entry: usize,
        _weight: f64,
        view: &NodeView<'_>,
        _coin: &mut StdRng,
    ) -> usize {
        let mut best = 0usize;
        let mut best_backlog = view.free_at[0].saturating_sub(view.now);
        for b in 1..view.len() {
            let backlog = view.free_at[b].saturating_sub(view.now);
            if backlog < best_backlog {
                best = b;
                best_backlog = backlog;
            }
        }
        best
    }
}

/// Softmax over per-backend headroom: the speed-proportional share of the
/// total outstanding work minus what the backend already holds. An empty
/// system degenerates to a uniform draw.
struct BandwidthSoftmax;

impl RoutePolicy for BandwidthSoftmax {
    fn route(
        &mut self,
        _entry: usize,
        _weight: f64,
        view: &NodeView<'_>,
        coin: &mut StdRng,
    ) -> usize {
        let n = view.len();
        let total_work: f64 = view.outstanding.iter().sum();
        let total_speed = view.speeds.total();
        let headroom =
            |b: usize| total_work * view.speeds.speed(b) / total_speed - view.outstanding[b];
        let max_h = (0..n).map(headroom).fold(f64::NEG_INFINITY, f64::max);
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for b in 0..n {
            total += (headroom(b) - max_h).exp();
            cumulative.push(total);
        }
        let r = coin.gen_range(0.0..1.0) * total;
        cumulative.iter().position(|&c| r < c).unwrap_or(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slb_graphs::generators::Family;

    fn view_over<'a>(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        free_at: &'a [u64],
        in_flight: &'a [u64],
        outstanding: &'a [f64],
    ) -> NodeView<'a> {
        NodeView {
            graph,
            speeds,
            free_at,
            in_flight,
            outstanding,
            now: 0,
            ticks_per_unit: 1 << 20,
        }
    }

    #[test]
    fn policy_labels_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()).expect("roundtrip"), kind);
        }
        assert!(PolicyKind::parse("random").is_err());
    }

    #[test]
    fn round_robin_cycles_and_greedy_picks_the_emptiest() {
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let free_at = [5, 0, 9, 2];
        let in_flight = [1, 0, 3, 1];
        let outstanding = [1.0, 0.0, 3.0, 1.0];
        let view = view_over(&graph, &speeds, &free_at, &in_flight, &outstanding);
        let mut coin = StdRng::seed_from_u64(1);

        let mut rr = PolicyKind::RoundRobin.instantiate(&speeds);
        let picks: Vec<usize> = (0..6).map(|_| rr.route(0, 1.0, &view, &mut coin)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1]);

        let mut greedy = PolicyKind::GreedyLeastLoaded.instantiate(&speeds);
        assert_eq!(greedy.route(3, 1.0, &view, &mut coin), 1);
    }

    #[test]
    fn selfish_stays_on_balanced_nodes_and_only_walks_edges() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let free_at = [0u64; 8];
        let in_flight = [2u64; 8];
        let outstanding = [2.0f64; 8];
        let view = view_over(&graph, &speeds, &free_at, &in_flight, &outstanding);
        for kind in [PolicyKind::Alg1, PolicyKind::Alg2, PolicyKind::Bhs] {
            let mut policy = kind.instantiate(&speeds);
            let mut coin = StdRng::seed_from_u64(9);
            // Balanced loads never satisfy ℓ_i − ℓ_j > θ/s_j: the job stays.
            for entry in 0..8 {
                assert_eq!(policy.route(entry, 1.0, &view, &mut coin), entry);
            }
        }

        // A hot entry node may shed to a neighbor, never further.
        let hot_outstanding = [40.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let hot = view_over(&graph, &speeds, &free_at, &in_flight, &hot_outstanding);
        let mut policy = PolicyKind::Alg2.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(3);
        let mut moved = 0;
        for _ in 0..200 {
            let b = policy.route(0, 1.0, &hot, &mut coin);
            assert!([0usize, 1, 7].contains(&b), "left the neighborhood: {b}");
            if b != 0 {
                moved += 1;
            }
        }
        // p_ij ≤ 1/4, but a 40-vs-0 gap keeps it well above 0.
        assert!(moved > 0, "a hot node never shed load");
    }

    #[test]
    fn bhs_threshold_is_tighter_for_light_jobs() {
        // Gap of 0.8 with unit speeds: alg2 (θ = 1) never moves; bhs with
        // a light job (θ = w = 0.1) may.
        let graph = Family::Complete { n: 2 }.build();
        let speeds = SpeedVector::uniform(2);
        let free_at = [0u64; 2];
        let in_flight = [1, 0];
        let outstanding = [0.7, 0.0];
        let view = view_over(&graph, &speeds, &free_at, &in_flight, &outstanding);

        let mut alg2 = PolicyKind::Alg2.instantiate(&speeds);
        let mut bhs = PolicyKind::Bhs.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(5);
        let mut bhs_moved = 0;
        for _ in 0..400 {
            assert_eq!(
                alg2.route(0, 0.1, &view, &mut coin),
                0,
                "θ = 1 blocks this gap"
            );
            if bhs.route(0, 0.1, &view, &mut coin) == 1 {
                bhs_moved += 1;
            }
        }
        assert!(
            bhs_moved > 0,
            "own-weight threshold should admit light jobs"
        );
    }

    #[test]
    fn softmax_prefers_fast_idle_backends() {
        let graph = Family::Complete { n: 3 }.build();
        let speeds = SpeedVector::new(vec![4.0, 1.0, 1.0]).expect("valid speed vector");
        let free_at = [0u64; 3];
        let in_flight = [0, 5, 0];
        let outstanding = [0.0, 5.0, 0.0];
        let view = view_over(&graph, &speeds, &free_at, &in_flight, &outstanding);
        let mut policy = PolicyKind::BandwidthSoftmax.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            counts[policy.route(0, 1.0, &view, &mut coin)] += 1;
        }
        // Backend 0 has the largest headroom (fast and idle), backend 1
        // holds all the work and should be avoided.
        assert!(counts[0] > counts[1] && counts[2] > counts[1], "{counts:?}");
    }
}
