//! Pluggable routing policies for the service harness.
//!
//! A [`RoutePolicy`] decides, per job, which backend executes it. The
//! paper's protocols ([`PolicyKind::Alg1`], [`PolicyKind::Alg2`],
//! [`PolicyKind::Bhs`]) are *selfish*: the job lands on a uniformly
//! random entry node and performs one migration step of the count
//! kernel's rule — sample a neighbor, check the threshold condition
//! `ℓ_i − ℓ_j > θ/s_j` ([`ThresholdRule`]), and move with the damped
//! probability `p_ij` ([`migration_probability`]). The practical
//! baselines (round-robin, greedy least-loaded, bandwidth softmax) see
//! the whole backend array, the way a fronting load balancer would.
//!
//! # Degraded signals
//!
//! Policies never touch live state: they read [`LoadSignal`] snapshots,
//! which in fresh mode mirror the live state exactly and under
//! `signal=stale:D+loss:P` are stale and partially missing (see
//! [`crate::faults`]). Every policy follows the same degradation
//! contract: backends whose signal is not `present` are skipped, and
//! when *no* backend is present the policy falls back to a uniform draw
//! ([`NodeView::uniform_known_live`]). The harness double-checks the
//! ground truth — routing to a backend that is actually dead costs a
//! retry, never a lost job.

use crate::faults::{LoadSignal, Stored};
use rand::rngs::StdRng;
use rand::Rng;
use slb_core::engine::kernel::{OwnWeightThreshold, RelaxedThreshold, ThresholdRule};
use slb_core::model::SpeedVector;
use slb_core::protocol::{migration_probability, Alpha};
use slb_graphs::Graph;
use slb_workloads::sweep::SweepParseError;

/// Read-only view of the backend state a policy may consult: one
/// [`LoadSignal`] snapshot per backend, materialized lazily by
/// [`signal`](NodeView::signal) (see the degradation contract in the
/// module docs).
///
/// In fresh mode ([`NodeView::live`]) each snapshot is read straight
/// from the live arrays at the accessed index — a routing decision only
/// pays for the backends it looks at, exactly like the
/// perfect-information harness. In stale mode ([`NodeView::snapshots`])
/// the view replays the signal board's stored probes, computing each
/// signal's age at read time.
///
/// Loads come in two currencies: a signal's `value` (outstanding weight
/// observed at the probe — the serve analogue of the kernel's count
/// state) and [`backlog_units`](NodeView::backlog_units) (observed time
/// until the backend drains).
pub struct NodeView<'a> {
    /// The peer topology the selfish policies walk.
    pub graph: &'a Graph,
    /// Backend speeds.
    pub speeds: &'a SpeedVector,
    /// The current virtual time in ticks.
    pub now: u64,
    /// Ticks per unit of virtual time.
    pub ticks_per_unit: u64,
    signals: SignalsRef<'a>,
}

/// Where a view's snapshots come from.
enum SignalsRef<'a> {
    /// Fresh mode: the live state, read per accessed index.
    Live {
        outstanding: &'a [f64],
        free_at: &'a [u64],
        up: &'a [bool],
        /// O(1) "no backend is down" flag maintained by the fault
        /// schedule, so undegraded fast paths need not scan `up`.
        all_up: bool,
    },
    /// Stale mode: the signal board's stored probes.
    Stored(&'a [Stored]),
}

impl<'a> NodeView<'a> {
    /// Fresh-mode view over the live state (ages are zero, presence
    /// mirrors liveness).
    pub(crate) fn live(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        now: u64,
        outstanding: &'a [f64],
        free_at: &'a [u64],
        up: &'a [bool],
        all_up: bool,
    ) -> Self {
        debug_assert_eq!(all_up, up.iter().all(|&u| u));
        NodeView {
            graph,
            speeds,
            now,
            ticks_per_unit: crate::TICKS_PER_UNIT,
            signals: SignalsRef::Live {
                outstanding,
                free_at,
                up,
                all_up,
            },
        }
    }

    /// Stale-mode view replaying the signal board's stored probes.
    pub(crate) fn snapshots(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        now: u64,
        stored: &'a [Stored],
    ) -> Self {
        NodeView {
            graph,
            speeds,
            now,
            ticks_per_unit: crate::TICKS_PER_UNIT,
            signals: SignalsRef::Stored(stored),
        }
    }

    /// Number of backends.
    pub fn len(&self) -> usize {
        match self.signals {
            SignalsRef::Live { outstanding, .. } => outstanding.len(),
            SignalsRef::Stored(stored) => stored.len(),
        }
    }

    /// Whether the system has no backends (never true in a run).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The [`LoadSignal`] snapshot for backend `b`, constructed on
    /// demand from whichever source backs the view.
    pub fn signal(&self, b: usize) -> LoadSignal {
        match self.signals {
            SignalsRef::Live {
                outstanding,
                free_at,
                up,
                ..
            } => LoadSignal {
                value: outstanding[b],
                backlog_ticks: free_at[b].saturating_sub(self.now),
                age_ticks: 0,
                present: up[b],
            },
            SignalsRef::Stored(stored) => {
                let s = stored[b];
                LoadSignal {
                    value: s.value,
                    backlog_ticks: s.backlog_ticks,
                    age_ticks: self.now - s.probe_tick,
                    present: s.present,
                }
            }
        }
    }

    /// Backend `b`'s observed outstanding weight (the hot-path subset of
    /// [`signal`](NodeView::signal) — skips assembling the full snapshot).
    pub fn value(&self, b: usize) -> f64 {
        match self.signals {
            SignalsRef::Live { outstanding, .. } => outstanding[b],
            SignalsRef::Stored(stored) => stored[b].value,
        }
    }

    /// Whether backend `b`'s snapshot reports it alive (the hot-path
    /// subset of [`signal`](NodeView::signal)).
    pub fn present(&self, b: usize) -> bool {
        match self.signals {
            SignalsRef::Live { up, .. } => up[b],
            SignalsRef::Stored(stored) => stored[b].present,
        }
    }

    /// Whether every backend's snapshot reports it alive. O(1) in fresh
    /// mode (the fault schedule maintains the flag); O(n) in stale mode.
    /// Policies use it to take undegraded fast paths.
    pub fn all_present(&self) -> bool {
        match self.signals {
            SignalsRef::Live { all_up, .. } => all_up,
            SignalsRef::Stored(stored) => stored.iter().all(|s| s.present),
        }
    }

    /// Observed time (in units) until backend `b`'s FIFO drains.
    pub fn backlog_units(&self, b: usize) -> f64 {
        self.signal(b).backlog_ticks as f64 / self.ticks_per_unit as f64
    }

    /// The graceful-degradation fallback: a uniform draw over the
    /// known-live (present) backends, or over *all* backends when the
    /// view is empty — a blind guess is still better than dropping the
    /// job, and the harness retries if the guess lands on a dead node.
    pub fn uniform_known_live(&self, coin: &mut StdRng) -> usize {
        let live = (0..self.len()).filter(|&b| self.present(b)).count();
        if live == 0 {
            return coin.gen_range(0..self.len());
        }
        let pick = coin.gen_range(0..live);
        (0..self.len())
            .filter(|&b| self.present(b))
            .nth(pick)
            .expect("pick is below the live count")
    }
}

/// A routing decision procedure. `entry` is the uniformly random node the
/// job arrived on (drawn from the job's coin by the harness), `weight`
/// the job's weight, and `coin` the job's private policy stream.
pub trait RoutePolicy {
    /// Chooses the backend that executes the job.
    fn route(&mut self, entry: usize, weight: f64, view: &NodeView<'_>, coin: &mut StdRng)
        -> usize;
}

/// The six built-in policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Algorithm 1: selfish one-step migration, speed-blind (loads are
    /// raw outstanding weights, `θ = 1`).
    Alg1,
    /// Algorithm 2: selfish one-step migration, speed-aware (loads are
    /// `W/s`, `θ = 1`).
    Alg2,
    /// The \[6\] (BHS) baseline rule: speed-aware with the job's own
    /// weight as threshold (`θ = w`).
    Bhs,
    /// Cycles through backends regardless of state.
    RoundRobin,
    /// Sends every job to the backend with the smallest time-to-drain.
    GreedyLeastLoaded,
    /// Samples a backend from a softmax over speed-proportional headroom
    /// (autodist-style entropy policy).
    BandwidthSoftmax,
}

impl PolicyKind {
    /// Every policy, in artifact row order.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Alg1,
        PolicyKind::Alg2,
        PolicyKind::Bhs,
        PolicyKind::RoundRobin,
        PolicyKind::GreedyLeastLoaded,
        PolicyKind::BandwidthSoftmax,
    ];

    /// The artifact/CLI label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Alg1 => "alg1",
            PolicyKind::Alg2 => "alg2",
            PolicyKind::Bhs => "bhs",
            PolicyKind::RoundRobin => "round-robin",
            PolicyKind::GreedyLeastLoaded => "greedy-least-loaded",
            PolicyKind::BandwidthSoftmax => "bandwidth-softmax",
        }
    }

    /// Parses a CLI token.
    pub fn parse(token: &str) -> Result<Self, SweepParseError> {
        Self::ALL
            .into_iter()
            .find(|p| p.label() == token)
            .ok_or_else(|| SweepParseError::new(format!("unknown policy `{token}`")))
    }

    /// Builds the policy's decision procedure for a run over `speeds`.
    pub fn instantiate(self, speeds: &SpeedVector) -> Box<dyn RoutePolicy + Send> {
        match self {
            // Algorithm 1 sees a speed-blind world, so its damping uses
            // the unit-speed `α = 4·s_max = 4` of that view.
            PolicyKind::Alg1 => Box::new(Selfish {
                variant: SelfishVariant::Alg1,
                alpha: 4.0,
            }),
            PolicyKind::Alg2 => Box::new(Selfish {
                variant: SelfishVariant::Alg2,
                alpha: Alpha::Approximate.resolve(speeds),
            }),
            PolicyKind::Bhs => Box::new(Selfish {
                variant: SelfishVariant::Bhs,
                alpha: Alpha::Approximate.resolve(speeds),
            }),
            PolicyKind::RoundRobin => Box::new(RoundRobin { next: 0 }),
            PolicyKind::GreedyLeastLoaded => Box::new(GreedyLeastLoaded),
            PolicyKind::BandwidthSoftmax => Box::new(BandwidthSoftmax),
        }
    }
}

/// Which selfish rule a [`Selfish`] policy applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SelfishVariant {
    Alg1,
    Alg2,
    Bhs,
}

/// One migration step of the count kernel's rule, applied at admission:
/// the job stands on its entry node `i` (its weight counted into `W_i`,
/// exactly like a task deciding in the round kernel), samples a uniform
/// neighbor `j` among the known-live ones, and moves iff the threshold
/// condition holds and the `p_ij` coin comes up. A dead entry node falls
/// back to the uniform-over-known-live draw; a live entry whose
/// neighborhood is entirely dead keeps the job.
struct Selfish {
    variant: SelfishVariant,
    alpha: f64,
}

impl RoutePolicy for Selfish {
    fn route(
        &mut self,
        entry: usize,
        weight: f64,
        view: &NodeView<'_>,
        coin: &mut StdRng,
    ) -> usize {
        let i = entry;
        let all_present = view.all_present();
        if !all_present && !view.present(i) {
            return view.uniform_known_live(coin);
        }
        let deg_i = view.graph.degree(i.into());
        if deg_i == 0 {
            return i;
        }
        let neighbors = view.graph.neighbors(i.into());
        // With every backend present the filtered walk degenerates to the
        // undegraded uniform neighbor draw (`live == deg_i`), coin
        // sequence included — index directly instead of scanning.
        let j: usize = if all_present {
            neighbors[coin.gen_range(0..deg_i)].index()
        } else {
            let live = neighbors
                .iter()
                .filter(|&&nb| view.present(nb.index()))
                .count();
            if live == 0 {
                return i;
            }
            let pick = coin.gen_range(0..live);
            neighbors
                .iter()
                .filter(|&&nb| view.present(nb.index()))
                .nth(pick)
                .expect("pick is below the live neighbor count")
                .index()
        };
        let deg_j = view.graph.degree(j.into());
        let d_ij = deg_i.max(deg_j);
        // The deciding job counts into its own node's observed state.
        let w_i = view.value(i) + weight;
        let (s_i, s_j) = match self.variant {
            SelfishVariant::Alg1 => (1.0, 1.0),
            _ => (view.speeds.speed(i), view.speeds.speed(j)),
        };
        let (load_i, load_j) = (w_i / s_i, view.value(j) / s_j);
        let theta = match self.variant {
            SelfishVariant::Alg1 | SelfishVariant::Alg2 => RelaxedThreshold.threshold(weight),
            SelfishVariant::Bhs => OwnWeightThreshold.threshold(weight),
        };
        if load_i - load_j <= theta / s_j {
            return i;
        }
        let p = migration_probability(deg_i, d_ij, load_i, load_j, s_i, s_j, w_i, self.alpha);
        if coin.gen_range(0.0..1.0) < p {
            j
        } else {
            i
        }
    }
}

/// State-blind cycling dispatcher (it does consult presence: dead
/// backends are skipped, preserving the cycle order over the live set).
struct RoundRobin {
    next: usize,
}

impl RoutePolicy for RoundRobin {
    fn route(
        &mut self,
        _entry: usize,
        _weight: f64,
        view: &NodeView<'_>,
        coin: &mut StdRng,
    ) -> usize {
        let n = view.len();
        for step in 0..n {
            let b = (self.next + step) % n;
            if view.present(b) {
                self.next = (b + 1) % n;
                return b;
            }
        }
        self.next = (self.next + 1) % n;
        view.uniform_known_live(coin)
    }
}

/// Argmin over observed time-to-drain among present backends (ties break
/// to the lowest index).
struct GreedyLeastLoaded;

impl RoutePolicy for GreedyLeastLoaded {
    fn route(
        &mut self,
        _entry: usize,
        _weight: f64,
        view: &NodeView<'_>,
        coin: &mut StdRng,
    ) -> usize {
        // Undegraded fast path: the original direct slice scan (same
        // strict-< first-index tie-break as the general walk below).
        if let SignalsRef::Live {
            free_at,
            all_up: true,
            ..
        } = view.signals
        {
            let mut best = 0usize;
            let mut best_backlog = free_at[0].saturating_sub(view.now);
            for (b, &f) in free_at.iter().enumerate().skip(1) {
                let backlog = f.saturating_sub(view.now);
                if backlog < best_backlog {
                    best = b;
                    best_backlog = backlog;
                }
            }
            return best;
        }
        let mut best: Option<(usize, u64)> = None;
        for b in 0..view.len() {
            if !view.present(b) {
                continue;
            }
            let backlog = view.signal(b).backlog_ticks;
            if best.is_none_or(|(_, held)| backlog < held) {
                best = Some((b, backlog));
            }
        }
        match best {
            Some((b, _)) => b,
            None => view.uniform_known_live(coin),
        }
    }
}

/// Softmax over per-backend headroom: the speed-proportional share of the
/// observed outstanding work minus what the backend is observed to hold,
/// over the present backends only. An empty system degenerates to a
/// uniform draw over the live set.
struct BandwidthSoftmax;

impl RoutePolicy for BandwidthSoftmax {
    fn route(
        &mut self,
        _entry: usize,
        _weight: f64,
        view: &NodeView<'_>,
        coin: &mut StdRng,
    ) -> usize {
        let n = view.len();
        // Undegraded fast path: vectorizable slice sum and the cached
        // speed total (both ascending-order sums, so they bit-match the
        // filtered walk below when every backend is present).
        if let SignalsRef::Live {
            outstanding,
            all_up: true,
            ..
        } = view.signals
        {
            let total_work: f64 = outstanding.iter().sum();
            let total_speed = view.speeds.total();
            let headroom =
                |b: usize| total_work * view.speeds.speed(b) / total_speed - outstanding[b];
            let max_h = (0..n).map(headroom).fold(f64::NEG_INFINITY, f64::max);
            let mut cumulative = Vec::with_capacity(n);
            let mut total = 0.0f64;
            for b in 0..n {
                total += (headroom(b) - max_h).exp();
                cumulative.push(total);
            }
            let r = coin.gen_range(0.0..1.0) * total;
            return cumulative.iter().position(|&c| r < c).unwrap_or(n - 1);
        }
        if !(0..n).any(|b| view.present(b)) {
            return view.uniform_known_live(coin);
        }
        // Both sums run in ascending index order; with every backend
        // present they bit-match the undegraded totals (SpeedVector
        // accumulates its cached total in the same order).
        let total_work: f64 = (0..n)
            .filter(|&b| view.present(b))
            .map(|b| view.signal(b).value)
            .sum();
        let total_speed: f64 = (0..n)
            .filter(|&b| view.present(b))
            .map(|b| view.speeds.speed(b))
            .sum();
        let headroom =
            |b: usize| total_work * view.speeds.speed(b) / total_speed - view.signal(b).value;
        let max_h = (0..n)
            .filter(|&b| view.present(b))
            .map(headroom)
            .fold(f64::NEG_INFINITY, f64::max);
        let mut cumulative: Vec<(usize, f64)> = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for b in (0..n).filter(|&b| view.present(b)) {
            total += (headroom(b) - max_h).exp();
            cumulative.push((b, total));
        }
        let r = coin.gen_range(0.0..1.0) * total;
        cumulative
            .iter()
            .find(|&&(_, c)| r < c)
            .or(cumulative.last())
            .map(|&(b, _)| b)
            .expect("at least one present backend was checked above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use slb_graphs::generators::Family;

    /// Fresh-mode view over live state at `now = 0`: `free_at` is the
    /// observed backlog, ages are zero, `up` is the presence mask.
    fn view_over<'a>(
        graph: &'a Graph,
        speeds: &'a SpeedVector,
        free_at: &'a [u64],
        outstanding: &'a [f64],
        up: &'a [bool],
    ) -> NodeView<'a> {
        let all_up = up.iter().all(|&u| u);
        NodeView::live(graph, speeds, 0, outstanding, free_at, up, all_up)
    }

    #[test]
    fn policy_labels_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()).expect("roundtrip"), kind);
        }
        assert!(PolicyKind::parse("random").is_err());
    }

    #[test]
    fn policy_parse_rejects_near_misses_with_the_offending_token() {
        for token in ["", "alg3", "ALG1", "alg1 ", "greedy", "round_robin"] {
            let err = PolicyKind::parse(token).expect_err("must reject");
            assert!(
                err.to_string().contains(&format!("`{token}`")),
                "error should name the token: {err}"
            );
        }
    }

    #[test]
    fn round_robin_cycles_and_greedy_picks_the_emptiest() {
        let graph = Family::Ring { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        let free_at = [5, 0, 9, 2];
        let outstanding = [1.0, 0.0, 3.0, 1.0];
        let view = view_over(&graph, &speeds, &free_at, &outstanding, &[true; 4]);
        let mut coin = StdRng::seed_from_u64(1);

        let mut rr = PolicyKind::RoundRobin.instantiate(&speeds);
        let picks: Vec<usize> = (0..6).map(|_| rr.route(0, 1.0, &view, &mut coin)).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1]);

        let mut greedy = PolicyKind::GreedyLeastLoaded.instantiate(&speeds);
        assert_eq!(greedy.route(3, 1.0, &view, &mut coin), 1);
    }

    #[test]
    fn selfish_stays_on_balanced_nodes_and_only_walks_edges() {
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let view = view_over(&graph, &speeds, &[0u64; 8], &[2.0f64; 8], &[true; 8]);
        for kind in [PolicyKind::Alg1, PolicyKind::Alg2, PolicyKind::Bhs] {
            let mut policy = kind.instantiate(&speeds);
            let mut coin = StdRng::seed_from_u64(9);
            // Balanced loads never satisfy ℓ_i − ℓ_j > θ/s_j: the job stays.
            for entry in 0..8 {
                assert_eq!(policy.route(entry, 1.0, &view, &mut coin), entry);
            }
        }

        // A hot entry node may shed to a neighbor, never further.
        let hot_outstanding = [40.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let hot = view_over(&graph, &speeds, &[0u64; 8], &hot_outstanding, &[true; 8]);
        let mut policy = PolicyKind::Alg2.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(3);
        let mut moved = 0;
        for _ in 0..200 {
            let b = policy.route(0, 1.0, &hot, &mut coin);
            assert!([0usize, 1, 7].contains(&b), "left the neighborhood: {b}");
            if b != 0 {
                moved += 1;
            }
        }
        // p_ij ≤ 1/4, but a 40-vs-0 gap keeps it well above 0.
        assert!(moved > 0, "a hot node never shed load");
    }

    #[test]
    fn bhs_threshold_is_tighter_for_light_jobs() {
        // Gap of 0.8 with unit speeds: alg2 (θ = 1) never moves; bhs with
        // a light job (θ = w = 0.1) may.
        let graph = Family::Complete { n: 2 }.build();
        let speeds = SpeedVector::uniform(2);
        let outstanding = [0.7, 0.0];
        let view = view_over(&graph, &speeds, &[0u64; 2], &outstanding, &[true; 2]);

        let mut alg2 = PolicyKind::Alg2.instantiate(&speeds);
        let mut bhs = PolicyKind::Bhs.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(5);
        let mut bhs_moved = 0;
        for _ in 0..400 {
            assert_eq!(
                alg2.route(0, 0.1, &view, &mut coin),
                0,
                "θ = 1 blocks this gap"
            );
            if bhs.route(0, 0.1, &view, &mut coin) == 1 {
                bhs_moved += 1;
            }
        }
        assert!(
            bhs_moved > 0,
            "own-weight threshold should admit light jobs"
        );
    }

    #[test]
    fn softmax_prefers_fast_idle_backends() {
        let graph = Family::Complete { n: 3 }.build();
        let speeds = SpeedVector::new(vec![4.0, 1.0, 1.0]).expect("valid speed vector");
        let outstanding = [0.0, 5.0, 0.0];
        let view = view_over(&graph, &speeds, &[0u64; 3], &outstanding, &[true; 3]);
        let mut policy = PolicyKind::BandwidthSoftmax.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..600 {
            counts[policy.route(0, 1.0, &view, &mut coin)] += 1;
        }
        // Backend 0 has the largest headroom (fast and idle), backend 1
        // holds all the work and should be avoided.
        assert!(counts[0] > counts[1] && counts[2] > counts[1], "{counts:?}");
    }

    #[test]
    fn every_policy_skips_dead_backends() {
        let graph = Family::Complete { n: 4 }.build();
        let speeds = SpeedVector::uniform(4);
        // Backend 2 is the only live one — and the worst-looking one, so
        // surviving this test requires presence to dominate load.
        let free_at = [0, 0, 50, 0];
        let outstanding = [0.0, 0.0, 50.0, 0.0];
        let up = [false, false, true, false];
        let view = view_over(&graph, &speeds, &free_at, &outstanding, &up);
        for kind in PolicyKind::ALL {
            let mut policy = kind.instantiate(&speeds);
            let mut coin = StdRng::seed_from_u64(13);
            for entry in 0..4 {
                for _ in 0..20 {
                    assert_eq!(
                        policy.route(entry, 1.0, &view, &mut coin),
                        2,
                        "{} routed to a dead backend",
                        kind.label()
                    );
                }
            }
        }
    }

    #[test]
    fn empty_views_degrade_to_a_uniform_guess_over_everything() {
        let graph = Family::Ring { n: 5 }.build();
        let speeds = SpeedVector::uniform(5);
        let view = view_over(&graph, &speeds, &[0u64; 5], &[0.0f64; 5], &[false; 5]);
        for kind in PolicyKind::ALL {
            let mut policy = kind.instantiate(&speeds);
            let mut coin = StdRng::seed_from_u64(17);
            let mut hit = [false; 5];
            for _ in 0..300 {
                hit[policy.route(1, 1.0, &view, &mut coin)] = true;
            }
            assert!(
                hit.iter().all(|&h| h),
                "{} never spread its blind guesses: {hit:?}",
                kind.label()
            );
        }
    }

    #[test]
    fn stale_views_replay_stored_probes_with_their_age() {
        let graph = Family::Complete { n: 2 }.build();
        let speeds = SpeedVector::uniform(2);
        let stored = [
            Stored {
                value: 2.0,
                backlog_ticks: 3,
                probe_tick: 5,
                present: true,
            },
            Stored {
                value: 9.0,
                backlog_ticks: 1,
                probe_tick: 5,
                present: false,
            },
        ];
        let view = NodeView::snapshots(&graph, &speeds, 12, &stored);
        let signal = view.signal(0);
        assert_eq!(signal.value, 2.0);
        assert_eq!(signal.backlog_ticks, 3);
        assert_eq!(signal.age_ticks, 7);
        assert!(signal.present);
        assert!(!view.present(1));
    }

    #[test]
    fn selfish_ignores_dead_neighbors_when_choosing_a_peer() {
        // Entry 0's only live neighbor on the ring is 1; node 7 is dead.
        let graph = Family::Ring { n: 8 }.build();
        let speeds = SpeedVector::uniform(8);
        let outstanding = [40.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let mut up = [true; 8];
        up[7] = false;
        let view = view_over(&graph, &speeds, &[0u64; 8], &outstanding, &up);
        let mut policy = PolicyKind::Alg2.instantiate(&speeds);
        let mut coin = StdRng::seed_from_u64(19);
        for _ in 0..200 {
            let b = policy.route(0, 1.0, &view, &mut coin);
            assert!(
                b == 0 || b == 1,
                "walked to a dead or non-adjacent node: {b}"
            );
        }
    }
}
