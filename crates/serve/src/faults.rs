//! Fault schedule and degraded load signals for the service harness.
//!
//! Two deterministic degradation mechanisms live here:
//!
//! * [`FaultSchedule`] — per-backend crash/recover alternating renewal
//!   processes. Backend `b` draws its exponential up/down durations from
//!   the private stream `rng_for(scenario_seed, b, streams::serve::FAULT)`,
//!   so the fault timeline is a pure function of the scenario seed: every
//!   policy of an invocation faces the *identical* outage schedule, and
//!   no event-processing order can perturb the draws (each backend owns
//!   its stream). Crashes are injected only within the horizon; pending
//!   recoveries still fire during the drain, so the run always ends with
//!   every backend up and every surviving job completed.
//! * [`SignalBoard`] — the snapshot store behind [`LoadSignal`]. In the
//!   default *fresh* mode the board is bypassed entirely: the
//!   [`crate::NodeView`] reads live state lazily, one backend per
//!   accessed index (ages are zero, presence mirrors liveness), which
//!   reproduces the perfect-information harness bit for bit at its
//!   original per-decision cost. With
//!   `signal=stale:D` the view instead replays the board's stored
//!   probes, which are refreshed by probe events
//!   every `D` units; probe epoch `k` draws its per-backend loss coins
//!   from `rng_for(scenario_seed, k, streams::serve::SIGNAL)` in backend
//!   order, and a lost probe leaves the previous (now older) snapshot in
//!   place. Probing stops at the horizon with the traffic; the board is
//!   frozen (and keeps aging) during the drain.
//!
//! Both streams are scenario-seeded by design: degradation is part of
//! the *environment*, not of a policy's coin sequence, so rows within an
//! artifact stay comparable. Retry backoff, which is a routing decision,
//! draws from the policy-seeded `streams::serve::RETRY` instead (see the
//! event loop in [`crate`]).

use crate::TICKS_PER_UNIT;
use rand::rngs::StdRng;
use rand::Rng;
use slb_core::rng::{rng_for, streams};
use slb_workloads::faults::{FaultSpec, SignalSpec};

/// What a routing policy knows about one backend: an explicit snapshot
/// instead of live state.
///
/// In fresh mode (`signal=none`) the snapshot equals the live state and
/// `age_ticks` is zero. Under `signal=stale:D+loss:P` the snapshot is
/// `age_ticks` old and `present` may be wrong in both directions: a
/// backend that died after the probe still looks alive, and one whose
/// probes keep getting lost is invisible even while serving.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSignal {
    /// Outstanding weight observed at the probe (the serve analogue of
    /// the kernel's count state).
    pub value: f64,
    /// Time-to-drain observed at the probe, in ticks.
    pub backlog_ticks: u64,
    /// How old this snapshot is, in ticks (zero in fresh mode).
    pub age_ticks: u64,
    /// Whether the probe saw the backend alive. Policies must skip
    /// non-present backends and fall back to a uniform draw over the
    /// known-live set (or over everything when that set is empty).
    pub present: bool,
}

/// Draws one exponential duration with mean `mean` units, in ticks
/// (at least one tick so renewals always advance the clock).
fn exp_ticks(mean: f64, rng: &mut StdRng) -> u64 {
    let u: f64 = rng.gen_range(0.0..1.0);
    ((-(1.0 - u).ln()) * mean * TICKS_PER_UNIT as f64)
        .ceil()
        .max(1.0) as u64
}

/// Per-backend crash/recover renewal processes plus liveness bookkeeping.
///
/// The event loop owns the heap; this type owns the draws and the
/// up/epoch/downtime state. Epochs invalidate stale completion events:
/// every crash bumps the backend's epoch, and completions scheduled
/// under an older epoch are discarded by the loop.
pub(crate) struct FaultSchedule {
    spec: Option<FaultSpec>,
    horizon_ticks: u64,
    rngs: Vec<StdRng>,
    /// Liveness per backend (the ground truth policies may only see
    /// through [`LoadSignal::present`]).
    pub(crate) up: Vec<bool>,
    /// Crash epoch per backend; bumped on every crash.
    pub(crate) epoch: Vec<u64>,
    down_since: Vec<u64>,
    down_ticks: Vec<u64>,
    /// Number of currently-down backends, so the hot path can ask
    /// "everything up?" in O(1).
    down_count: usize,
}

impl FaultSchedule {
    pub(crate) fn new(
        spec: Option<FaultSpec>,
        scenario_seed: u64,
        horizon_ticks: u64,
        n: usize,
    ) -> Self {
        let rngs = if spec.is_some() {
            (0..n)
                .map(|b| rng_for(scenario_seed, b as u64, streams::serve::FAULT))
                .collect()
        } else {
            Vec::new()
        };
        FaultSchedule {
            spec,
            horizon_ticks,
            rngs,
            up: vec![true; n],
            epoch: vec![0; n],
            down_since: vec![0; n],
            down_ticks: vec![0; n],
            down_count: 0,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.spec.is_some()
    }

    /// True when no backend is currently down — the undegraded fast
    /// paths key on this O(1) check instead of scanning `up`.
    pub(crate) fn all_up(&self) -> bool {
        self.down_count == 0
    }

    /// Draws every backend's first crash tick; ticks at or past the
    /// horizon are dropped (the backend never fails).
    pub(crate) fn initial_crash_ticks(&mut self) -> Vec<(usize, u64)> {
        let Some(spec) = self.spec else {
            return Vec::new();
        };
        let horizon = self.horizon_ticks;
        self.rngs
            .iter_mut()
            .enumerate()
            .filter_map(|(b, rng)| {
                let tick = exp_ticks(spec.mttf, rng);
                (tick < horizon).then_some((b, tick))
            })
            .collect()
    }

    /// Marks `backend` down at `now` and returns its recovery tick.
    pub(crate) fn crash(&mut self, backend: usize, now: u64) -> u64 {
        let spec = self.spec.expect("crash events exist only with faults on");
        debug_assert!(self.up[backend], "crash of an already-down backend");
        debug_assert!(now < self.horizon_ticks, "crashes are pre-horizon only");
        self.up[backend] = false;
        self.down_count += 1;
        self.epoch[backend] += 1;
        self.down_since[backend] = now;
        now + exp_ticks(spec.mttr, &mut self.rngs[backend])
    }

    /// Marks `backend` up at `now`, accumulates its (horizon-clipped)
    /// downtime, and returns the next crash tick if it lands before the
    /// horizon.
    pub(crate) fn recover(&mut self, backend: usize, now: u64) -> Option<u64> {
        let spec = self.spec.expect("recover events exist only with faults on");
        debug_assert!(!self.up[backend], "recovery of an already-up backend");
        self.up[backend] = true;
        self.down_count -= 1;
        self.down_ticks[backend] +=
            now.min(self.horizon_ticks) - self.down_since[backend].min(self.horizon_ticks);
        let next = now + exp_ticks(spec.mttf, &mut self.rngs[backend]);
        (next < self.horizon_ticks).then_some(next)
    }

    /// Fraction of backend-time within `[0, horizon)` spent up. Exactly
    /// 1 with faults disabled. Valid only after the drain (every
    /// recovery has fired, so no open down interval remains).
    pub(crate) fn availability(&self) -> f64 {
        if !self.enabled() {
            return 1.0;
        }
        debug_assert!(self.up.iter().all(|&u| u), "availability before full drain");
        let down: u64 = self.down_ticks.iter().sum();
        let total = self.horizon_ticks * self.up.len() as u64;
        1.0 - down as f64 / total as f64
    }
}

/// One stored probe result. [`crate::NodeView`] replays these in stale
/// mode, computing each signal's age at read time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Stored {
    pub(crate) value: f64,
    pub(crate) backlog_ticks: u64,
    pub(crate) probe_tick: u64,
    pub(crate) present: bool,
}

/// The snapshot store: per-backend [`Stored`] entries, refreshed by
/// probe events (stale mode only — the fresh-mode view never touches it).
pub(crate) struct SignalBoard {
    spec: SignalSpec,
    scenario_seed: u64,
    /// Probe interval in ticks; zero means fresh mode.
    pub(crate) stale_ticks: u64,
    stored: Vec<Stored>,
}

impl SignalBoard {
    pub(crate) fn new(spec: SignalSpec, scenario_seed: u64, n: usize) -> Self {
        // Prior before the first probe lands: empty and alive.
        let stored = vec![
            Stored {
                value: 0.0,
                backlog_ticks: 0,
                probe_tick: 0,
                present: true,
            };
            n
        ];
        SignalBoard {
            spec,
            scenario_seed,
            stale_ticks: crate::to_ticks(spec.stale),
            stored,
        }
    }

    /// The per-backend probe snapshots the stale-mode view replays.
    pub(crate) fn stored(&self) -> &[Stored] {
        &self.stored
    }

    /// Whether snapshots refresh on probe events instead of per decision.
    pub(crate) fn is_stale(&self) -> bool {
        self.spec.is_degraded()
    }

    /// Probe epoch `k` at `now`: per backend (in index order, from the
    /// epoch's private stream), either record the live state or lose the
    /// probe and keep the previous snapshot.
    pub(crate) fn probe(
        &mut self,
        epoch: u64,
        now: u64,
        outstanding: &[f64],
        free_at: &[u64],
        up: &[bool],
    ) {
        let mut rng = rng_for(self.scenario_seed, epoch, streams::serve::SIGNAL);
        for b in 0..self.stored.len() {
            let lost: f64 = rng.gen_range(0.0..1.0);
            if lost < self.spec.loss {
                continue;
            }
            self.stored[b] = Stored {
                value: outstanding[b],
                backlog_ticks: free_at[b].saturating_sub(now),
                probe_tick: now,
                present: up[b],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_workloads::faults::{parse_faults, parse_signal};

    #[test]
    fn fault_schedule_is_a_pure_function_of_the_scenario_seed() {
        let spec = parse_faults("crash:4:1").expect("valid token");
        let horizon = 50 * TICKS_PER_UNIT;
        let mut a = FaultSchedule::new(spec, 7, horizon, 8);
        let mut b = FaultSchedule::new(spec, 7, horizon, 8);
        let first_a = a.initial_crash_ticks();
        assert_eq!(first_a, b.initial_crash_ticks());
        assert!(!first_a.is_empty(), "mttf 4 over 50 units must crash");
        // Replaying the same renewal sequence gives the same ticks
        // regardless of the order backends are advanced in.
        for &(backend, tick) in first_a.iter().rev() {
            let rec = a.crash(backend, tick);
            assert!(rec > tick);
            let next = a.recover(backend, rec.min(horizon - 1));
            if let Some(t) = next {
                assert!(t < horizon);
            }
        }
        for &(backend, tick) in &first_a {
            let rec = b.crash(backend, tick);
            let _ = b.recover(backend, rec.min(horizon - 1));
        }
        assert_eq!(a.down_ticks, b.down_ticks);
    }

    #[test]
    fn availability_is_one_without_faults_and_clips_to_the_horizon() {
        let horizon = 10 * TICKS_PER_UNIT;
        let off = FaultSchedule::new(None, 3, horizon, 4);
        assert_eq!(off.availability(), 1.0);

        let spec = parse_faults("crash:1000:1000").expect("valid token");
        let mut on = FaultSchedule::new(spec, 3, horizon, 1);
        // Force one outage spanning the horizon boundary.
        let recover_at = on.crash(0, horizon / 2);
        let _ = on.recover(0, recover_at.max(horizon + TICKS_PER_UNIT));
        // Only the pre-horizon half counts against availability.
        assert!((on.availability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probes_freeze_the_observed_state_until_the_next_epoch() {
        let outstanding = [2.0, 0.0];
        let free_at = [3 * TICKS_PER_UNIT, 0];
        let up = [true, false];

        let fresh = SignalBoard::new(SignalSpec::default(), 9, 2);
        assert!(!fresh.is_stale());

        let spec = parse_signal("stale:1").expect("valid token");
        let mut stale = SignalBoard::new(spec, 9, 2);
        assert!(stale.is_stale());
        stale.probe(0, TICKS_PER_UNIT, &outstanding, &free_at, &up);
        // The stored snapshot is the probed state, not whatever the live
        // arrays say afterwards.
        assert_eq!(stale.stored()[0].value, 2.0);
        assert_eq!(stale.stored()[0].backlog_ticks, 2 * TICKS_PER_UNIT);
        assert_eq!(stale.stored()[0].probe_tick, TICKS_PER_UNIT);
        assert!(!stale.stored()[1].present);
    }

    #[test]
    fn lost_probes_keep_the_previous_snapshot() {
        let spec = parse_signal("stale:1+loss:0.999").expect("valid token");
        let mut board = SignalBoard::new(spec, 11, 4);
        let outstanding = [5.0; 4];
        let free_at = [7 * TICKS_PER_UNIT; 4];
        let up = [false; 4];
        // With loss ≈ 1 nearly every probe is lost: the near-certain
        // outcome over a few epochs is that some backend still shows its
        // optimistic prior while the live state says dead.
        for epoch in 0..3 {
            board.probe(epoch, epoch * TICKS_PER_UNIT, &outstanding, &free_at, &up);
        }
        assert!(
            board.stored().iter().any(|s| s.present),
            "a 0.999 loss rate should leave stale presence behind"
        );
    }
}
