//! Property-based tests of the protocol layer: migration probabilities,
//! snapshot semantics, and distributional identities, on randomized
//! instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
use slb_core::protocol::{
    expected_flow, migration_probability, Alpha, Protocol, SelfishUniform, SelfishWeighted,
    Snapshot, TaskProtocol,
};
use slb_graphs::{generators, NodeId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `p_ij ∈ [0, 1/4]` over the full legal parameter space (the paper's
    /// damping guarantee).
    #[test]
    fn migration_probability_in_quarter(
        deg_i in 1usize..64,
        extra in 0usize..64,
        s_i in 1.0f64..16.0,
        s_j in 1.0f64..16.0,
        w_i in 0.1f64..1e6,
        gap_frac in 0.0f64..1.0,
        alpha_mult in 1.0f64..8.0,
    ) {
        let d_ij = deg_i + extra;
        // Legal gap: ℓ_i − ℓ_j ≤ ℓ_i ≤ W_i/s_i.
        let load_i = w_i / s_i;
        let load_j = load_i * (1.0 - gap_frac);
        let s_max = s_i.max(s_j);
        let alpha = 4.0 * s_max * alpha_mult;
        let p = migration_probability(deg_i, d_ij, load_i, load_j, s_i, s_j, w_i, alpha);
        prop_assert!(p >= 0.0);
        prop_assert!(p <= 0.25 + 1e-12, "p = {p}");
    }

    /// The flow identity `f_ij = W_i/deg(i) · p_ij` (Definition 3.1) over
    /// random legal parameters whenever the migration condition is met.
    #[test]
    fn flow_probability_identity(
        deg_i in 1usize..32,
        extra in 0usize..32,
        s_i in 1.0f64..8.0,
        s_j in 1.0f64..8.0,
        w_i in 1.0f64..1e4,
        load_j_frac in 0.0f64..0.5,
    ) {
        let d_ij = deg_i + extra;
        let load_i = w_i / s_i;
        let load_j = load_i * load_j_frac;
        let alpha = 4.0 * s_i.max(s_j);
        if load_i - load_j > 1.0 / s_j {
            let p = migration_probability(deg_i, d_ij, load_i, load_j, s_i, s_j, w_i, alpha);
            let f = expected_flow(d_ij, load_i, load_j, s_i, s_j, alpha);
            let reconstructed = w_i / deg_i as f64 * p;
            prop_assert!((f - reconstructed).abs() < 1e-9 * (1.0 + f.abs()));
        }
    }

    /// Snapshot semantics: decisions never depend on moves committed in
    /// the same round — decide() over the full range equals decide() over
    /// split ranges with the same per-range RNG streams re-seeded.
    #[test]
    fn decide_is_range_local(
        n in 3usize..8,
        tasks_per_node in 1usize..10,
        seed in 0u64..200,
        split_at_frac in 0.1f64..0.9,
    ) {
        let graph = generators::ring(n);
        let m = n * tasks_per_node;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let state = TaskState::all_on_node(&system, NodeId(0));
        let snapshot = Snapshot::capture(&system, &state);
        let protocol = SelfishUniform::new();
        let split = ((m as f64 * split_at_frac) as usize).clamp(1, m - 1);

        // Split decision with independent RNGs per range.
        let mut split_moves = Vec::new();
        let mut rng_a = StdRng::seed_from_u64(seed);
        protocol.decide(&system, &snapshot, &state, 0..split, &mut rng_a, &mut split_moves);
        let before_second = split_moves.len();
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xdead);
        protocol.decide(&system, &snapshot, &state, split..m, &mut rng_b, &mut split_moves);

        // Every move's task lies in its range: range locality.
        for (i, mv) in split_moves.iter().enumerate() {
            if i < before_second {
                prop_assert!(mv.task.index() < split);
            } else {
                prop_assert!(mv.task.index() >= split);
            }
        }
        // And all moves target neighbors of the hot node.
        for mv in &split_moves {
            prop_assert!(system.graph().has_edge(NodeId(0), mv.to));
        }
    }

    /// One committed round never moves a task more than one hop.
    #[test]
    fn rounds_move_tasks_at_most_one_hop(
        n in 4usize..10,
        seed in 0u64..300,
    ) {
        let graph = generators::ring(n);
        let m = 10 * n;
        let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m)).unwrap();
        let mut state = TaskState::all_on_node(&system, NodeId(0));
        let mut rng = StdRng::seed_from_u64(seed);
        let protocol = SelfishUniform::new();
        for _ in 0..20 {
            let before: Vec<NodeId> = (0..m).map(|t| state.task_node(slb_core::model::TaskId(t))).collect();
            protocol.round(&system, &mut state, &mut rng);
            for (t, prev) in before.iter().enumerate() {
                let now = state.task_node(slb_core::model::TaskId(t));
                prop_assert!(
                    now == *prev || system.graph().has_edge(*prev, now),
                    "task {t} jumped {prev} → {now}"
                );
            }
        }
    }

    /// Count-based `is_eps_nash`/`nash_gap` on `UniformFastSim` states
    /// agree **exactly** (bit for bit) with the task-based
    /// `equilibrium.rs` predicates on the expanded per-task state, across
    /// random systems, speeds and trajectories. Unit weights sum exactly
    /// in f64, so no tolerance is needed.
    #[test]
    fn uniform_count_predicates_match_expanded_state(
        n in 3usize..9,
        tasks_per_node in 1usize..12,
        speed_seed in 0u64..100,
        sim_seed in 0u64..500,
        rounds in 0usize..12,
        eps_steps in 0u32..5,
    ) {
        use slb_core::equilibrium::{self, Threshold};
        let graph = generators::ring(n);
        let m = n * tasks_per_node;
        let mut srng = StdRng::seed_from_u64(speed_seed);
        let speeds = SpeedVector::integer(
            (0..n).map(|_| 1 + srng.next_u64() % 4).collect(),
        ).unwrap();
        let system = System::new(graph, speeds, TaskSet::uniform(m)).unwrap();
        let mut sim = UniformFastSim::new(
            &system,
            Alpha::Approximate,
            CountState::all_on_node(n, 0, m as u64),
            sim_seed,
        );
        for _ in 0..rounds {
            sim.step();
        }
        // Expand the counts into an explicit per-task assignment.
        let mut assignment = Vec::with_capacity(m);
        for (node, &c) in sim.state().counts().iter().enumerate() {
            assignment.extend(std::iter::repeat_n(node, c as usize));
        }
        let st = TaskState::from_assignment(&system, &assignment).unwrap();
        let eps = f64::from(eps_steps) * 0.25;
        prop_assert_eq!(
            sim.is_eps_nash(eps),
            equilibrium::is_eps_nash(&system, &st, Threshold::UnitWeight, eps)
        );
        prop_assert_eq!(
            sim.nash_gap(),
            equilibrium::nash_gap(&system, &st, Threshold::UnitWeight)
        );
        prop_assert_eq!(
            sim.is_nash(),
            equilibrium::is_nash(&system, &st, Threshold::UnitWeight)
        );
    }

    /// The same exact agreement for `WeightedFastSim` states under both
    /// threshold rules. Class weights are dyadic (k/8), so per-node
    /// weight sums are exact in f64 and the count-based and expanded
    /// evaluations are bit-identical.
    #[test]
    fn weighted_count_predicates_match_expanded_state(
        n in 3usize..8,
        per_class in 1usize..8,
        speed_seed in 0u64..100,
        sim_seed in 0u64..500,
        rounds in 0usize..12,
        light_eighths in 1u32..8,
    ) {
        use slb_core::engine::weighted_fast::{ClassCountState, WeightedFastSim};
        use slb_core::equilibrium::{self, Threshold};
        let graph = generators::ring(n);
        let light = f64::from(light_eighths) / 8.0;
        let class_weights = vec![light, 1.0];
        let m = n * per_class * 2;
        let mut srng = StdRng::seed_from_u64(speed_seed);
        let speeds = SpeedVector::integer(
            (0..n).map(|_| 1 + srng.next_u64() % 4).collect(),
        ).unwrap();
        // Tasks in class-major order per node, matching the expansion
        // below.
        let mut task_weights = Vec::with_capacity(m);
        for _ in 0..n {
            for &w in &class_weights {
                task_weights.extend(std::iter::repeat_n(w, per_class));
            }
        }
        let system = System::new(graph, speeds, TaskSet::weighted(task_weights).unwrap()).unwrap();
        let per_node: Vec<Vec<u64>> =
            (0..n).map(|_| vec![per_class as u64, per_class as u64]).collect();
        let mut sim = WeightedFastSim::new(
            &system,
            Alpha::Approximate,
            ClassCountState::new(class_weights.clone(), per_node),
            sim_seed,
        );
        for _ in 0..rounds {
            sim.step();
        }
        // Expand counts into per-task assignments: tasks of node `v` are
        // `v·2k .. (v+1)·2k` (light first, heavy second), and within a
        // class any placement matching the counts is equivalent — build
        // one greedily.
        let mut assignment = vec![0usize; m];
        let mut next_of_class: Vec<Vec<usize>> = vec![Vec::new(); 2];
        for v in 0..n {
            for (c, pool) in next_of_class.iter_mut().enumerate() {
                let base = v * per_class * 2 + c * per_class;
                pool.extend(base..base + per_class);
            }
        }
        for v in 0..n {
            for (c, pool) in next_of_class.iter_mut().enumerate() {
                let count = sim.state().counts(v)[c] as usize;
                for _ in 0..count {
                    assignment[pool.pop().unwrap()] = v;
                }
            }
        }
        let st = TaskState::from_assignment(&system, &assignment).unwrap();
        for threshold in [Threshold::UnitWeight, Threshold::LightestTask] {
            prop_assert_eq!(
                sim.nash_gap(threshold),
                equilibrium::nash_gap(&system, &st, threshold),
                "gap mismatch under {:?}", threshold
            );
            for eps in [0.0, 0.25, 0.75, 1.0] {
                prop_assert_eq!(
                    sim.is_eps_nash(threshold, eps),
                    equilibrium::is_eps_nash(&system, &st, threshold, eps),
                    "eps-NE mismatch under {:?} at ε = {}", threshold, eps
                );
            }
            prop_assert_eq!(
                sim.is_nash(threshold),
                equilibrium::is_nash(&system, &st, threshold),
                "exact-NE mismatch under {:?}", threshold
            );
        }
    }

    /// Weighted protocol: migrations only ever flow "downhill" (source
    /// load strictly above destination load at round start).
    #[test]
    fn weighted_moves_are_downhill(
        seed in 0u64..300,
        tasks_per_node in 2usize..12,
    ) {
        let graph = generators::torus(3, 3);
        let n = graph.node_count();
        let m = n * tasks_per_node;
        let mut wrng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let weights: Vec<f64> = (0..m).map(|_| wrng.gen_range(0.05..=1.0)).collect();
        let system = System::new(
            graph,
            SpeedVector::integer((0..n as u64).map(|i| 1 + i % 3).collect()).unwrap(),
            TaskSet::weighted(weights).unwrap(),
        ).unwrap();
        let state = TaskState::all_on_node(&system, NodeId(0));
        let snapshot = Snapshot::capture(&system, &state);
        let mut moves = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 77);
        SelfishWeighted::new().decide(&system, &snapshot, &state, 0..m, &mut rng, &mut moves);
        for mv in &moves {
            let from = state.task_node(mv.task);
            prop_assert!(
                snapshot.loads[from.index()] > snapshot.loads[mv.to.index()],
                "move from load {} to {}",
                snapshot.loads[from.index()],
                snapshot.loads[mv.to.index()]
            );
        }
    }

    /// The fast count-based path conserves tasks under arbitrary initial
    /// count distributions (not just the hot start).
    #[test]
    fn fast_path_conserves_arbitrary_states(
        counts in proptest::collection::vec(0u64..200, 4..12),
        seed in 0u64..200,
    ) {
        let n = counts.len();
        let total: u64 = counts.iter().sum();
        prop_assume!(total > 0);
        let graph = generators::ring(n.max(3).min(n)); // ring needs ≥ 3
        prop_assume!(n >= 3);
        let system = System::new(
            graph,
            SpeedVector::uniform(n),
            TaskSet::uniform(total as usize),
        ).unwrap();
        let mut sim = UniformFastSim::new(
            &system,
            Alpha::Approximate,
            CountState::new(counts),
            seed,
        );
        for _ in 0..30 {
            sim.step();
        }
        prop_assert_eq!(sim.state().total(), total);
    }

    /// The weight-class engine conserves the task total of every class —
    /// and hence the total weight per class — every round, under arbitrary
    /// initial splits of a 2-class population.
    #[test]
    fn weighted_fast_conserves_per_class_totals(
        light in proptest::collection::vec(0u64..120, 4..10),
        heavy_on_hot in 1u64..80,
        seed in 0u64..200,
    ) {
        use slb_core::engine::weighted_fast::{ClassCountState, WeightedFastSim};
        let n = light.len();
        let light_total: u64 = light.iter().sum();
        let m = (light_total + heavy_on_hot) as usize;
        let class_weights = [0.25f64, 1.0];
        let mut weights = vec![class_weights[0]; light_total as usize];
        weights.extend(std::iter::repeat_n(class_weights[1], heavy_on_hot as usize));
        let system = System::new(
            generators::ring(n),
            SpeedVector::integer((0..n as u64).map(|i| 1 + i % 2).collect()).unwrap(),
            TaskSet::weighted(weights).unwrap(),
        ).unwrap();
        let per_node: Vec<Vec<u64>> = (0..n)
            .map(|v| vec![light[v], if v == 0 { heavy_on_hot } else { 0 }])
            .collect();
        let state = ClassCountState::new(class_weights.to_vec(), per_node);
        let expected_weight = state.total_weight();
        let mut sim = WeightedFastSim::new(&system, Alpha::Approximate, state, seed);
        for _ in 0..30 {
            sim.step();
            prop_assert_eq!(sim.state().class_total(0), light_total);
            prop_assert_eq!(sim.state().class_total(1), heavy_on_hot);
            prop_assert_eq!(sim.state().total_tasks(), m as u64);
            // Weight is a pure function of the (conserved) class counts,
            // so it is conserved exactly, not just to rounding.
            prop_assert_eq!(sim.state().total_weight(), expected_weight);
        }
    }
}

/// Distributional equivalence of the two Algorithm 1 engines: on a small
/// uniform instance, the first-round migration *count distribution* of
/// the count-based fast path must match the per-task engine's — not just
/// in mean, but bin by bin under a two-sample χ²-style statistic
/// (fixed seeds; the test is fully deterministic).
#[test]
fn fast_and_task_level_migration_distributions_agree() {
    use slb_core::protocol::SelfishUniform;
    let graph = generators::ring(4);
    let n = graph.node_count();
    let m = 40u64;
    let system = System::new(graph, SpeedVector::uniform(n), TaskSet::uniform(m as usize)).unwrap();
    let trials = 600u64;

    // Sample the round-1 outflow from the hot node under both engines.
    let fast: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut sim = UniformFastSim::new(
                &system,
                Alpha::Approximate,
                CountState::all_on_node(n, 0, m),
                seed,
            );
            sim.step()
        })
        .collect();
    let task: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut st = TaskState::all_on_node(&system, NodeId(0));
            let mut rng = StdRng::seed_from_u64(0xfeed_0000 + seed);
            SelfishUniform::new()
                .round(&system, &mut st, &mut rng)
                .migrations as u64
        })
        .collect();

    // Both sample Binomial-ish counts around the same expectation; bin the
    // counts (width 2, shared range) and compare the two histograms with
    // the two-sample homogeneity statistic Σ (a_i − b_i)²/(a_i + b_i)
    // (equal sample sizes). Bins with fewer than 5 combined observations
    // merge into their neighbor to keep the statistic well-behaved.
    let max_seen = fast.iter().chain(&task).copied().max().unwrap();
    let width = 2u64;
    let bins = (max_seen / width + 1) as usize;
    let mut a = vec![0f64; bins];
    let mut b = vec![0f64; bins];
    for &x in &fast {
        a[(x / width) as usize] += 1.0;
    }
    for &x in &task {
        b[(x / width) as usize] += 1.0;
    }
    let mut chi2 = 0.0;
    let mut dof = 0usize;
    let (mut acc_a, mut acc_b) = (0.0, 0.0);
    for i in 0..bins {
        acc_a += a[i];
        acc_b += b[i];
        if acc_a + acc_b >= 5.0 {
            chi2 += (acc_a - acc_b) * (acc_a - acc_b) / (acc_a + acc_b);
            dof += 1;
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 {
        chi2 += (acc_a - acc_b) * (acc_a - acc_b) / (acc_a + acc_b);
        dof += 1;
    }
    assert!(dof >= 3, "degenerate binning: {dof} bins");
    // For χ²(dof) the mean is dof and the std dev √(2·dof); 3·dof is a
    // generous ≫ 5σ ceiling, so a real distributional mismatch (e.g. a
    // shifted mean or halved variance) fails while seed noise passes.
    let ceiling = 3.0 * dof as f64;
    assert!(
        chi2 < ceiling,
        "χ² = {chi2:.1} over {dof} bins exceeds {ceiling:.1}: engines disagree in distribution"
    );
    // Sanity: the same statistic between disjoint halves of the *same*
    // engine's sample stays under the ceiling too (the test is calibrated,
    // not trivially loose).
    let mut c = vec![0f64; bins];
    let mut d = vec![0f64; bins];
    for &x in &fast[..(trials / 2) as usize] {
        c[(x / width) as usize] += 1.0;
    }
    for &x in &fast[(trials / 2) as usize..] {
        d[(x / width) as usize] += 1.0;
    }
    let mut self_chi2 = 0.0;
    for i in 0..bins {
        if c[i] + d[i] >= 5.0 {
            self_chi2 += (c[i] - d[i]) * (c[i] - d[i]) / (c[i] + d[i]);
        }
    }
    assert!(self_chi2 < ceiling, "self-comparison χ² = {self_chi2:.1}");
}

/// Deterministic distributional check (not proptest — fixed statistics):
/// the per-destination expected counts of the fast path match the
/// expected flows on an asymmetric instance with speeds.
#[test]
fn fast_path_per_edge_flow_matches_definition() {
    let graph = generators::star(5);
    let n = graph.node_count();
    let m = 500u64;
    let speeds = SpeedVector::integer(vec![1, 2, 2, 1, 1]).unwrap();
    let system = System::new(graph, speeds, TaskSet::uniform(m as usize)).unwrap();
    // All tasks on the hub (node 0), which has degree 4.
    let trials = 2000u64;
    let mut to_node = vec![0u64; n];
    for seed in 0..trials {
        let mut sim = UniformFastSim::new(
            &system,
            Alpha::Approximate,
            CountState::all_on_node(n, 0, m),
            seed,
        );
        sim.step();
        for (v, slot) in to_node.iter_mut().enumerate().skip(1) {
            *slot += sim.state().counts()[v];
        }
    }
    // Expected flow hub → leaf j: (ℓ_0 − ℓ_j)/(α·d_0j·(1/s_0 + 1/s_j)).
    let alpha = 4.0 * 2.0;
    let load0 = m as f64 / 1.0;
    for (v, &count) in to_node.iter().enumerate().skip(1) {
        let s_j = system.speeds().speed(v);
        let f = expected_flow(4, load0, 0.0, 1.0, s_j, alpha);
        let empirical = count as f64 / trials as f64;
        let rel = (empirical - f).abs() / f;
        assert!(
            rel < 0.05,
            "leaf {v}: empirical {empirical} vs f {f} (rel {rel})"
        );
    }
}
