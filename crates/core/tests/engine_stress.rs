//! Stress and failure-injection tests for the simulation engines: long
//! runs, aggregate-rebuild consistency, degenerate topologies, and
//! adversarial workloads.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slb_core::engine::kernel::{shard_range, ROUND_SHARDS};
use slb_core::engine::parallel::{ParallelSimulation, DEFAULT_CHUNK_SIZE};
use slb_core::engine::speed_fast::{SpeedFastRule, SpeedFastSim};
use slb_core::engine::uniform_fast::{CountState, UniformFastSim};
use slb_core::engine::weighted_fast::{ClassCountState, WeightedFastSim};
use slb_core::engine::{Simulation, StopCondition, StopReason};
use slb_core::equilibrium::{self, Threshold};
use slb_core::model::{SpeedVector, System, TaskId, TaskSet, TaskState};
use slb_core::protocol::{Alpha, BhsBaseline, SelfishUniform, SelfishWeighted};
use slb_graphs::{generators, NodeId};

#[test]
fn long_run_incremental_aggregates_match_rebuild() {
    // 50k rounds of weighted churn: incremental node weights must agree
    // with a from-scratch rebuild to floating-point tolerance.
    let mut wrng = StdRng::seed_from_u64(1);
    let n = 9;
    let m = 450;
    let weights: Vec<f64> = (0..m).map(|_| wrng.gen_range(0.01..=1.0)).collect();
    let system = System::new(
        generators::torus(3, 3),
        SpeedVector::integer((0..n as u64).map(|i| 1 + i % 2).collect()).unwrap(),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    let mut sim = Simulation::new(
        &system,
        SelfishWeighted::new(),
        TaskState::all_on_node(&system, NodeId(0)),
        2,
    );
    sim.run(50_000);
    let mut rebuilt = sim.state().clone();
    rebuilt.rebuild_aggregates(&system);
    for v in 0..n {
        let a = sim.state().node_weight(NodeId(v));
        let b = rebuilt.node_weight(NodeId(v));
        assert!(
            (a - b).abs() < 1e-7 * b.abs().max(1.0),
            "node {v}: incremental {a} vs rebuilt {b}"
        );
    }
    sim.state().check_invariants(&system).unwrap();
}

#[test]
fn two_node_degenerate_topology() {
    // The smallest possible network: one edge. Everything must still hold.
    let system = System::new(
        generators::path(2),
        SpeedVector::integer(vec![1, 5]).unwrap(),
        TaskSet::uniform(101),
    )
    .unwrap();
    let mut sim = Simulation::new(
        &system,
        SelfishUniform::new(),
        TaskState::all_on_node(&system, NodeId(0)),
        3,
    );
    let o = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 200_000);
    assert_eq!(o.reason, StopReason::ConditionMet);
    // Nash split on speeds {1, 5}: fast node carries most of the load.
    let fast = sim.state().node_task_count(NodeId(1));
    assert!(fast > 70, "fast node holds only {fast} of 101");
    sim.state().check_invariants(&system).unwrap();
}

#[test]
fn star_hub_drains_through_bottleneck() {
    // The star maximizes the d_ij asymmetry: hub degree n−1, leaves 1.
    let n = 17;
    let system = System::new(
        generators::star(n),
        SpeedVector::uniform(n),
        TaskSet::uniform(16 * n),
    )
    .unwrap();
    let mut sim = Simulation::new(
        &system,
        SelfishUniform::new(),
        TaskState::all_on_node(&system, NodeId(0)),
        5,
    );
    let o = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 500_000);
    assert_eq!(o.reason, StopReason::ConditionMet);
    sim.state().check_invariants(&system).unwrap();
}

#[test]
fn heavy_tasks_on_slow_machines_unwind() {
    // Adversarial weighted start: all the heavy tasks on the slowest node.
    let n = 6;
    let mut weights: Vec<f64> = vec![1.0; 30];
    weights.extend(std::iter::repeat_n(0.05, 60));
    let system = System::new(
        generators::ring(n),
        SpeedVector::integer(vec![1, 4, 4, 4, 4, 4]).unwrap(),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    // Heavy tasks (ids 0..30) on node 0 (the slow one), light spread.
    let assignment: Vec<usize> = (0..90)
        .map(|t| if t < 30 { 0 } else { 1 + (t % 5) })
        .collect();
    let initial = TaskState::from_assignment(&system, &assignment).unwrap();
    let mut sim = Simulation::new(&system, BhsBaseline::new(), initial, 6);
    sim.run_until(StopCondition::Quiescent(3_000), 300_000);
    // The slow node must shed most heavy weight.
    let slow_load = sim.state().load(&system, NodeId(0));
    let max_load = equilibrium::makespan(&system, sim.state());
    assert!(
        slow_load <= max_load + 1e-9 && slow_load < 30.0 / 2.0,
        "slow node still at load {slow_load}"
    );
    sim.state().check_invariants(&system).unwrap();
}

#[test]
fn parallel_engine_survives_tiny_and_huge_chunking() {
    let system = System::new(
        generators::hypercube(5),
        SpeedVector::uniform(32),
        TaskSet::uniform(3200),
    )
    .unwrap();
    for (chunk, threads) in [(1usize, 7usize), (17, 2), (100_000, 5)] {
        let mut sim = ParallelSimulation::with_layout(
            &system,
            SelfishUniform::new(),
            TaskState::all_on_node(&system, NodeId(0)),
            9,
            chunk,
            threads,
        );
        sim.run(10);
        sim.state().check_invariants(&system).unwrap();
    }
}

#[test]
fn parallel_trajectories_invariant_across_thread_counts_weighted() {
    // The determinism contract behind `slb sweep`: a chunk-seeded parallel
    // run is a pure function of (seed, chunk size) — the thread count must
    // not change a single state, even for weighted tasks on heterogeneous
    // speeds where commit order alters floating-point aggregates.
    let mut wrng = StdRng::seed_from_u64(7);
    let n = 16;
    let m = 4_000;
    let weights: Vec<f64> = (0..m).map(|_| wrng.gen_range(0.01..=1.0)).collect();
    let system = System::new(
        generators::torus(4, 4),
        SpeedVector::integer((0..n as u64).map(|i| 1 + i % 3).collect()).unwrap(),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    let run = |threads: usize| {
        let mut sim = ParallelSimulation::with_layout(
            &system,
            SelfishWeighted::new(),
            TaskState::all_on_node(&system, NodeId(0)),
            31,
            256,
            threads,
        );
        let migrations = sim.run(20);
        (migrations, sim.into_state())
    };
    let (m1, s1) = run(1);
    let (m4, s4) = run(4);
    let (m13, s13) = run(13);
    assert_eq!(m1, m4);
    assert_eq!(m4, m13);
    assert_eq!(s1, s4);
    assert_eq!(s4, s13);
    s1.check_invariants(&system).unwrap();

    // Same contract for the BHS baseline.
    let run_bhs = |threads: usize| {
        let mut sim = ParallelSimulation::with_layout(
            &system,
            BhsBaseline::new(),
            TaskState::all_on_node(&system, NodeId(5)),
            77,
            512,
            threads,
        );
        sim.run(15);
        sim.into_state()
    };
    assert_eq!(run_bhs(1), run_bhs(8));
}

#[test]
fn fast_sim_extreme_imbalance_and_large_counts() {
    // A million tasks on one node of a small ring: the binomial sampler
    // must stay stable through the normal-approximation regime.
    let n = 5;
    let m = 1_000_000u64;
    let system = System::new(
        generators::ring(n),
        SpeedVector::uniform(n),
        TaskSet::uniform(m as usize),
    )
    .unwrap();
    let mut sim = UniformFastSim::new(
        &system,
        Alpha::Approximate,
        CountState::all_on_node(n, 0, m),
        11,
    );
    for _ in 0..200 {
        sim.step();
    }
    assert_eq!(sim.state().total(), m);
    // After 200 rounds the hot node must have shed a large fraction.
    assert!(
        sim.state().counts()[0] < m / 2,
        "hot node still holds {}",
        sim.state().counts()[0]
    );
}

/// Distributional equivalence of the two weighted engines: on a 2-class
/// instance (lossless class mapping), the round-1 migration *count
/// distribution* of the weight-class fast path must match the per-task
/// [`ParallelSimulation`] under `SelfishWeighted` — not just in mean, but
/// bin by bin under the same two-sample χ²-style statistic as the
/// uniform-engine test (fixed seeds; fully deterministic).
#[test]
fn weighted_fast_and_parallel_task_migration_distributions_agree() {
    let graph = generators::ring(4);
    let n = graph.node_count();
    let m = 400usize;
    // Exact 2-class weights: half 0.25, half 1.0, all on node 0.
    let weights: Vec<f64> = (0..m)
        .map(|t| if t % 2 == 0 { 0.25 } else { 1.0 })
        .collect();
    let system = System::new(
        graph,
        SpeedVector::uniform(n),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    let trials = 600u64;

    let fast: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut per_node = vec![vec![0u64; 2]; n];
            per_node[0] = vec![200, 200];
            let state = ClassCountState::new(vec![0.25, 1.0], per_node);
            // Run the fast side with the sharded round fanned across 8
            // workers: the χ² check then certifies the threaded schedule,
            // and thread-invariance extends it to every other count.
            let mut sim =
                WeightedFastSim::new(&system, Alpha::Approximate, state, seed).with_threads(8);
            sim.step().migrations
        })
        .collect();
    let task: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut sim = ParallelSimulation::with_layout(
                &system,
                SelfishWeighted::new(),
                TaskState::all_on_node(&system, NodeId(0)),
                0xfeed_0000 + seed,
                DEFAULT_CHUNK_SIZE,
                1,
            );
            sim.step().migrations as u64
        })
        .collect();

    assert_distributions_agree(&fast, &task, "weighted");
}

/// Two-sample χ²-style homogeneity check shared by the fast-vs-per-task
/// equivalence tests: width-2 bins over the shared range, under-filled
/// bins (< 5 combined observations) merged into their successor to keep
/// the statistic Σ (a_i − b_i)²/(a_i + b_i) well-behaved, and a 3·dof
/// ceiling — χ²(dof) has mean dof and std dev √(2·dof), so 3·dof is a
/// ≫ 5σ bound: a real mismatch (shifted mean, wrong variance) fails while
/// seed noise passes.
fn assert_distributions_agree(fast: &[u64], task: &[u64], label: &str) {
    let max_seen = fast.iter().chain(task).copied().max().unwrap();
    let width = 2u64;
    let bins = (max_seen / width + 1) as usize;
    let mut a = vec![0f64; bins];
    let mut b = vec![0f64; bins];
    for &x in fast {
        a[(x / width) as usize] += 1.0;
    }
    for &x in task {
        b[(x / width) as usize] += 1.0;
    }
    let mut chi2 = 0.0;
    let mut dof = 0usize;
    let (mut acc_a, mut acc_b) = (0.0, 0.0);
    for i in 0..bins {
        acc_a += a[i];
        acc_b += b[i];
        if acc_a + acc_b >= 5.0 {
            chi2 += (acc_a - acc_b) * (acc_a - acc_b) / (acc_a + acc_b);
            dof += 1;
            acc_a = 0.0;
            acc_b = 0.0;
        }
    }
    if acc_a + acc_b > 0.0 {
        chi2 += (acc_a - acc_b) * (acc_a - acc_b) / (acc_a + acc_b);
        dof += 1;
    }
    assert!(dof >= 3, "{label}: degenerate binning: {dof} bins");
    let ceiling = 3.0 * dof as f64;
    assert!(
        chi2 < ceiling,
        "{label}: χ² = {chi2:.1} over {dof} bins exceeds {ceiling:.1}: engines disagree in \
         distribution"
    );
}

/// Distributional equivalence of the speed-aware count engine against the
/// per-task reference on a **non-uniform speed vector**: for both of its
/// rules (Algorithm 2's relaxed threshold and the \[6\] own-weight
/// threshold), the round-1 migration count distribution of
/// [`SpeedFastSim`] must match the per-task [`ParallelSimulation`] bin by
/// bin — the same χ²-style statistic as the weighted-engine test. This is
/// the test that keeps the sweep/validate dispatch honest now that no
/// alg2/bhs cell runs per-task.
#[test]
fn speed_fast_and_parallel_task_migration_distributions_agree() {
    let n = 4;
    let m = 400usize;
    // Exact 2-class weights on speeds (1, 3, 1, 3): lossless class
    // mapping, real speed asymmetry in both the thresholds and p_ij.
    let weights: Vec<f64> = (0..m)
        .map(|t| if t % 2 == 0 { 0.25 } else { 1.0 })
        .collect();
    let system = System::new(
        generators::ring(n),
        SpeedVector::integer(vec![1, 3, 1, 3]).unwrap(),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    let trials = 600u64;

    let fast_run = |rule: SpeedFastRule, seed: u64| {
        let mut per_node = vec![vec![0u64; 2]; n];
        per_node[0] = vec![200, 200];
        let state = ClassCountState::new(vec![0.25, 1.0], per_node);
        // Sharded rounds across 8 workers (see the weighted test above).
        let mut sim =
            SpeedFastSim::new(&system, rule, Alpha::Approximate, state, seed).with_threads(8);
        sim.step().migrations
    };
    let fast_alg2: Vec<u64> = (0..trials)
        .map(|seed| fast_run(SpeedFastRule::Alg2, seed))
        .collect();
    let fast_bhs: Vec<u64> = (0..trials)
        .map(|seed| fast_run(SpeedFastRule::Bhs, 100_000 + seed))
        .collect();

    let task_alg2: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut sim = ParallelSimulation::with_layout(
                &system,
                SelfishWeighted::new(),
                TaskState::all_on_node(&system, NodeId(0)),
                0xfeed_0000 + seed,
                DEFAULT_CHUNK_SIZE,
                1,
            );
            sim.step().migrations as u64
        })
        .collect();
    let task_bhs: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut sim = ParallelSimulation::with_layout(
                &system,
                BhsBaseline::new(),
                TaskState::all_on_node(&system, NodeId(0)),
                0xbeef_0000 + seed,
                DEFAULT_CHUNK_SIZE,
                1,
            );
            sim.step().migrations as u64
        })
        .collect();

    assert_distributions_agree(&fast_alg2, &task_alg2, "alg2 × speeds");
    assert_distributions_agree(&fast_bhs, &task_bhs, "bhs × speeds");
}

#[test]
fn weighted_fast_extreme_imbalance_and_large_counts() {
    // A million 2-class tasks on one node of a small ring: the shared
    // binomial sampler must stay stable through the normal-approximation
    // regime, and per-class totals must hold exactly.
    let n = 5;
    let m = 1_000_000usize;
    let weights: Vec<f64> = (0..m).map(|t| if t % 2 == 0 { 0.5 } else { 1.0 }).collect();
    let system = System::new(
        generators::ring(n),
        SpeedVector::uniform(n),
        TaskSet::weighted(weights).unwrap(),
    )
    .unwrap();
    let mut per_node = vec![vec![0u64; 2]; n];
    per_node[0] = vec![m as u64 / 2, m as u64 / 2];
    let state = ClassCountState::new(vec![0.5, 1.0], per_node);
    let mut sim = WeightedFastSim::new(&system, Alpha::Approximate, state, 11);
    for _ in 0..200 {
        sim.step();
    }
    assert_eq!(sim.state().total_tasks(), m as u64);
    assert_eq!(sim.state().class_total(0), m as u64 / 2);
    assert_eq!(sim.state().class_total(1), m as u64 / 2);
    assert!(
        sim.state().node_weight(0) < sim.state().total_weight() / 2.0,
        "hot node still holds {} of {}",
        sim.state().node_weight(0),
        sim.state().total_weight()
    );
}

#[test]
fn protocols_are_stateless_between_runs() {
    // Reusing one protocol value across simulations must not leak state.
    let system = System::new(
        generators::ring(5),
        SpeedVector::uniform(5),
        TaskSet::uniform(50),
    )
    .unwrap();
    let protocol = SelfishUniform::new();
    let run = |p: &SelfishUniform, seed: u64| {
        let mut sim = Simulation::new(
            &system,
            *p,
            TaskState::all_on_node(&system, NodeId(0)),
            seed,
        );
        sim.run(100);
        sim.into_state()
    };
    let a1 = run(&protocol, 42);
    let _other = run(&protocol, 99);
    let a2 = run(&protocol, 42);
    assert_eq!(a1, a2, "protocol must be pure");
}

#[test]
fn every_task_is_tracked_individually() {
    // Spot-check task-level trajectories stay coherent: a task's recorded
    // node always matches the per-node index.
    let system = System::new(
        generators::mesh(3, 3),
        SpeedVector::uniform(9),
        TaskSet::uniform(45),
    )
    .unwrap();
    let mut sim = Simulation::new(
        &system,
        SelfishUniform::new(),
        TaskState::all_on_node(&system, NodeId(4)),
        13,
    );
    for _ in 0..50 {
        sim.step();
        let by_node = sim.state().tasks_by_node(&system);
        for (node, tasks) in by_node.iter().enumerate() {
            for t in tasks {
                assert_eq!(sim.state().task_node(*t), NodeId(node));
            }
        }
        let listed: usize = by_node.iter().map(|v| v.len()).sum();
        assert_eq!(listed, 45);
    }
}

#[test]
fn quiescent_stop_does_not_false_trigger_mid_balancing() {
    // With a hot start and plenty of imbalance, 5 consecutive quiet rounds
    // must not occur before real convergence on this instance.
    let system = System::new(
        generators::ring(6),
        SpeedVector::uniform(6),
        TaskSet::uniform(600),
    )
    .unwrap();
    let mut sim = Simulation::new(
        &system,
        SelfishUniform::new(),
        TaskState::all_on_node(&system, NodeId(0)),
        17,
    );
    let o = sim.run_until(StopCondition::Quiescent(5), 100_000);
    assert_eq!(o.reason, StopReason::ConditionMet);
    // At quiescence the state is (at least nearly) a Nash equilibrium:
    // adjacent load gaps within 2 of the threshold.
    let gap = equilibrium::nash_gap(&system, sim.state(), Threshold::UnitWeight);
    assert!(gap < 0.05, "quiesced far from equilibrium (gap {gap})");
}

/// Distributional equivalence of the **sharded** Algorithm 1 round against
/// the per-task reference on non-uniform speeds: the count kernel prices
/// every (node, class) row against speed-scaled loads, so this is the
/// test that certifies the shard decomposition did not bend the migration
/// distribution where the thresholds actually bite. Same χ²-style
/// statistic as the weighted/speed tests; the fast side runs with 8
/// workers so the threaded schedule itself is under test.
#[test]
fn uniform_fast_sharded_and_task_engine_distributions_agree() {
    let n = 4;
    let m = 400u64;
    let system = System::new(
        generators::ring(n),
        SpeedVector::integer(vec![1, 3, 1, 3]).unwrap(),
        TaskSet::uniform(m as usize),
    )
    .unwrap();
    let trials = 600u64;

    let fast: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut sim = UniformFastSim::new(
                &system,
                Alpha::Approximate,
                CountState::all_on_node(n, 0, m),
                seed,
            )
            .with_threads(8);
            sim.step()
        })
        .collect();
    let task: Vec<u64> = (0..trials)
        .map(|seed| {
            let mut sim = ParallelSimulation::with_layout(
                &system,
                SelfishUniform::new(),
                TaskState::all_on_node(&system, NodeId(0)),
                0xfeed_0000 + seed,
                DEFAULT_CHUNK_SIZE,
                1,
            );
            sim.step().migrations as u64
        })
        .collect();

    assert_distributions_agree(&fast, &task, "alg1 × speeds");
}

/// The sharded round is a pure function of `(seed, round)` — the worker
/// count must never change a single count, for any of the three fast
/// engines. This is the in-crate half of the byte-identity contract the
/// CLI golden tests pin end-to-end.
#[test]
fn sharded_rounds_are_byte_identical_at_any_thread_count() {
    let n = 256;
    let m = 256 * 40u64;
    let speeds: Vec<u64> = (0..n as u64).map(|i| 1 + i % 3).collect();
    let uniform_system = System::new(
        generators::ring(n),
        SpeedVector::uniform(n),
        TaskSet::uniform(m as usize),
    )
    .unwrap();
    let speed_system = System::new(
        generators::ring(n),
        SpeedVector::integer(speeds).unwrap(),
        TaskSet::weighted(
            (0..m)
                .map(|t| if t % 2 == 0 { 0.25 } else { 1.0 })
                .collect(),
        )
        .unwrap(),
    )
    .unwrap();

    let run_uniform = |threads: usize| {
        let mut sim = UniformFastSim::new(
            &uniform_system,
            Alpha::Approximate,
            CountState::all_on_node(n, 0, m),
            29,
        )
        .with_threads(threads);
        let moved: u64 = (0..10).map(|_| sim.step()).sum();
        (moved, sim.state().counts().to_vec())
    };
    let run_speed = |rule: SpeedFastRule, threads: usize| {
        let mut per_node = vec![vec![0u64; 2]; n];
        per_node[0] = vec![m / 2, m / 2];
        let state = ClassCountState::new(vec![0.25, 1.0], per_node);
        let mut sim = SpeedFastSim::new(&speed_system, rule, Alpha::Approximate, state, 31)
            .with_threads(threads);
        let moved: u64 = (0..10).map(|_| sim.step().migrations).sum();
        (moved, sim.state().clone())
    };
    let run_weighted = |threads: usize| {
        let mut per_node = vec![vec![0u64; 2]; n];
        per_node[0] = vec![m / 2, m / 2];
        let state = ClassCountState::new(vec![0.25, 1.0], per_node);
        let mut sim = WeightedFastSim::new(&speed_system, Alpha::Approximate, state, 37)
            .with_threads(threads);
        let moved: u64 = (0..10).map(|_| sim.step().migrations).sum();
        (moved, sim.state().clone())
    };

    assert_eq!(run_uniform(1), run_uniform(8));
    assert_eq!(run_uniform(8), run_uniform(64));
    assert_eq!(run_weighted(1), run_weighted(8));
    assert_eq!(run_weighted(8), run_weighted(64));
    for rule in [SpeedFastRule::Alg2, SpeedFastRule::Bhs] {
        assert_eq!(run_speed(rule, 1), run_speed(rule, 8));
        assert_eq!(run_speed(rule, 8), run_speed(rule, 64));
    }
}

/// The tentpole stress target: one sharded round at n = 2²⁰ nodes and
/// m ≈ 10⁸ tasks. Asserts (a) byte-identical results at 1, 8, and 64
/// worker threads, (b) exact global task conservation, and (c) per-shard
/// conservation — on a ring, tasks can only enter or leave a shard across
/// its two boundary edges, so no shard's total may drift by more than the
/// boundary nodes could carry.
#[test]
fn million_node_single_round_conserves_tasks_per_shard() {
    let n = 1usize << 20;
    let per_hot = 190u64;
    // Alternating hot/cold so every node has an imbalanced neighbor and
    // the whole round does real sampling work.
    let counts: Vec<u64> = (0..n)
        .map(|v| if v % 2 == 0 { per_hot } else { 0 })
        .collect();
    let m: u64 = counts.iter().sum();
    assert!(m > 99_000_000, "m = {m} is not ~10⁸");
    let system = System::new(
        generators::ring(n),
        SpeedVector::uniform(n),
        TaskSet::uniform(m as usize),
    )
    .unwrap();

    let run = |threads: usize| {
        let mut sim = UniformFastSim::new(
            &system,
            Alpha::Approximate,
            CountState::new(counts.clone()),
            23,
        )
        .with_threads(threads);
        let moved = sim.step();
        (moved, sim.state().counts().to_vec())
    };
    let (moved1, after1) = run(1);
    let (moved8, after8) = run(8);
    assert_eq!(moved1, moved8, "migration total differs at 1 vs 8 threads");
    assert_eq!(after1, after8, "counts differ at 1 vs 8 threads");
    let (moved64, after64) = run(64);
    assert_eq!(moved8, moved64);
    assert_eq!(after8, after64);

    assert_eq!(after1.iter().sum::<u64>(), m, "global task conservation");
    assert!(moved1 > 0, "a maximally imbalanced round must migrate");
    for shard in 0..ROUND_SHARDS {
        let range = shard_range(shard, n);
        let before: u64 = counts[range.clone()].iter().sum();
        let after: u64 = after1[range.clone()].iter().sum();
        // Each shard boundary is one ring edge; the flow across it is
        // bounded by what the two endpoint nodes held (≤ per_hot each).
        let drift = before.abs_diff(after);
        assert!(
            drift <= 2 * per_hot,
            "shard {shard} ({range:?}) drifted by {drift} tasks — more than its \
             boundary edges could carry"
        );
    }
}

/// Regression for the chained-binomial underflow cap *through the sharded
/// kernel*: two huge nearly-balanced nodes give a migration probability
/// of ~10⁻⁹ on a ~5·10⁷ count, i.e. a small mean where the pmf underflows
/// and only the mean+10σ cap keeps the inverse-CDF walk from scanning
/// tens of millions of support points. Before the cap (PR 3) this
/// configuration hung; now it must finish instantly and conserve.
#[test]
fn kernel_huge_count_tiny_probability_stays_capped() {
    let a = 50_000_032u64;
    let b = 50_000_000u64;
    let system = System::new(
        generators::path(2),
        SpeedVector::uniform(2),
        TaskSet::uniform((a + b) as usize),
    )
    .unwrap();
    let mut sim = UniformFastSim::new(&system, Alpha::Approximate, CountState::new(vec![a, b]), 3)
        .with_threads(8);
    let mut moved_total = 0u64;
    for _ in 0..5 {
        moved_total += sim.step();
    }
    assert_eq!(sim.state().total(), a + b);
    // The per-round mean is ≈ α·gap/2, so five rounds stay far under the
    // gap itself; anything large means the sampler escaped its cap.
    assert!(
        moved_total <= 1_000,
        "moved {moved_total} tasks across a gap of 32 — sampler escaped the underflow cap"
    );
}

#[test]
fn single_task_instance() {
    let system = System::new(
        generators::ring(4),
        SpeedVector::uniform(4),
        TaskSet::uniform(1),
    )
    .unwrap();
    let mut sim = Simulation::new(
        &system,
        SelfishUniform::new(),
        TaskState::all_on_node(&system, NodeId(2)),
        19,
    );
    let o = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 100);
    assert_eq!(o.rounds, 0, "one task anywhere is already a NE");
    assert_eq!(sim.state().task_node(TaskId(0)), NodeId(2));
}
