//! The potential functions driving the paper's convergence analysis.
//!
//! * `Φ_r(x) = Σ_i W_i(x)·(W_i(x) + r)/s_i` for `r = 0, 1` (Definition 3.2),
//! * `Ψ₀(x) = Φ₀(x) − W²/S = Σ_i e_i²/s_i = ⟨e, e⟩_S` (Definition 3.3,
//!   Lemma 3.6(2)),
//! * `Ψ₁(x) = Σ_i (e_i + ½)²/s_i − n/(4·s̄_a)` (Definition 3.19 via
//!   Observation 3.20(1)); non-negative by Observation 3.20(2),
//! * `L_Δ(x) = max_i |e_i/s_i|`, the maximum load deviation
//!   (Definition 3.4), sandwiched by `L_Δ² ≤ Ψ₀ ≤ S·L_Δ²`
//!   (Observation 3.16).
//!
//! All functions have two entry points: a raw-array form (used by the fast
//! count-based simulator, which has no [`TaskState`]) and a convenience
//! wrapper over `(System, TaskState)`.

use crate::model::{SpeedVector, System, TaskState};

/// `Φ_r(x) = Σ_i W_i·(W_i + r)/s_i` from raw node weights.
///
/// # Panics
///
/// Panics if `node_weights.len() != speeds.len()`.
pub fn phi_r(node_weights: &[f64], speeds: &SpeedVector, r: f64) -> f64 {
    assert_eq!(
        node_weights.len(),
        speeds.len(),
        "weights/speeds length mismatch"
    );
    node_weights
        .iter()
        .zip(speeds.as_slice())
        .map(|(w, s)| w * (w + r) / s)
        .sum()
}

/// `Φ₀(x)` from raw node weights.
pub fn phi0(node_weights: &[f64], speeds: &SpeedVector) -> f64 {
    phi_r(node_weights, speeds, 0.0)
}

/// `Φ₁(x)` from raw node weights.
pub fn phi1(node_weights: &[f64], speeds: &SpeedVector) -> f64 {
    phi_r(node_weights, speeds, 1.0)
}

/// `Ψ₀(x) = Σ_i e_i²/s_i` computed directly from deviations (numerically
/// preferable to `Φ₀ − W²/S`, which cancels catastrophically near balance).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn psi0(node_weights: &[f64], speeds: &SpeedVector, total_weight: f64) -> f64 {
    assert_eq!(
        node_weights.len(),
        speeds.len(),
        "weights/speeds length mismatch"
    );
    let per_capacity = total_weight / speeds.total();
    node_weights
        .iter()
        .zip(speeds.as_slice())
        .map(|(w, s)| {
            let e = w - per_capacity * s;
            e * e / s
        })
        .sum()
}

/// `Ψ₁(x) = Σ_i (e_i + ½)²/s_i − n/(4·s̄_a)` (Observation 3.20(1)).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn psi1(node_weights: &[f64], speeds: &SpeedVector, total_weight: f64) -> f64 {
    assert_eq!(
        node_weights.len(),
        speeds.len(),
        "weights/speeds length mismatch"
    );
    let per_capacity = total_weight / speeds.total();
    let sum: f64 = node_weights
        .iter()
        .zip(speeds.as_slice())
        .map(|(w, s)| {
            let e = w - per_capacity * s + 0.5;
            e * e / s
        })
        .sum();
    sum - speeds.len() as f64 / (4.0 * speeds.arithmetic_mean())
}

/// `L_Δ(x) = max_i |W_i/s_i − W/S|` (Definition 3.4).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn max_load_deviation(node_weights: &[f64], speeds: &SpeedVector, total_weight: f64) -> f64 {
    assert_eq!(
        node_weights.len(),
        speeds.len(),
        "weights/speeds length mismatch"
    );
    let avg = total_weight / speeds.total();
    node_weights
        .iter()
        .zip(speeds.as_slice())
        .map(|(w, s)| (w / s - avg).abs())
        .fold(0.0, f64::max)
}

/// A snapshot of every potential at one state, as recorded by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentialReport {
    /// `Φ₀(x)`.
    pub phi0: f64,
    /// `Φ₁(x)`.
    pub phi1: f64,
    /// `Ψ₀(x)`.
    pub psi0: f64,
    /// `Ψ₁(x)`.
    pub psi1: f64,
    /// `L_Δ(x)`.
    pub max_load_deviation: f64,
}

/// Evaluates every potential on a `(System, TaskState)` pair.
pub fn report(system: &System, state: &TaskState) -> PotentialReport {
    report_from_weights(
        state.node_weights(),
        system.speeds(),
        system.tasks().total_weight(),
    )
}

/// Evaluates every potential from raw node weights.
pub fn report_from_weights(
    node_weights: &[f64],
    speeds: &SpeedVector,
    total_weight: f64,
) -> PotentialReport {
    PotentialReport {
        phi0: phi0(node_weights, speeds),
        phi1: phi1(node_weights, speeds),
        psi0: psi0(node_weights, speeds, total_weight),
        psi1: psi1(node_weights, speeds, total_weight),
        max_load_deviation: max_load_deviation(node_weights, speeds, total_weight),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{TaskSet, TaskState};
    use slb_graphs::generators;
    use slb_graphs::NodeId;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    fn system(speeds: Vec<f64>, m: usize) -> System {
        System::new(
            generators::complete(speeds.len()),
            SpeedVector::new(speeds).unwrap(),
            TaskSet::uniform(m),
        )
        .unwrap()
    }

    #[test]
    fn phi_definitions() {
        let speeds = SpeedVector::new(vec![1.0, 2.0]).unwrap();
        let w = [3.0, 4.0];
        assert_close(phi0(&w, &speeds), 9.0 + 16.0 / 2.0, 1e-12);
        assert_close(phi1(&w, &speeds), 12.0 + 20.0 / 2.0, 1e-12);
        assert_close(phi_r(&w, &speeds, 1.0), phi1(&w, &speeds), 1e-12);
    }

    #[test]
    fn psi0_equals_phi0_minus_constant() {
        // Definition 3.3: Ψ₀ = Φ₀ − W²/S.
        let speeds = SpeedVector::new(vec![1.0, 2.0, 1.0]).unwrap();
        let w = [5.0, 2.0, 1.0];
        let total = 8.0;
        let lhs = psi0(&w, &speeds, total);
        let rhs = phi0(&w, &speeds) - total * total / speeds.total();
        assert_close(lhs, rhs, 1e-9);
    }

    #[test]
    fn psi0_is_zero_at_balance_and_positive_otherwise() {
        let speeds = SpeedVector::new(vec![1.0, 3.0]).unwrap();
        // Balanced: W_i = (W/S)·s_i with W = 8: (2, 6).
        assert_close(psi0(&[2.0, 6.0], &speeds, 8.0), 0.0, 1e-12);
        assert!(psi0(&[3.0, 5.0], &speeds, 8.0) > 0.0);
        assert!(psi0(&[8.0, 0.0], &speeds, 8.0) > 0.0);
    }

    #[test]
    fn psi0_worst_case_bound() {
        // Ψ₀(X₀) ≤ m² (used in Lemma 3.15): all tasks on the slowest node.
        let sys = system(vec![1.0, 1.0, 1.0, 1.0], 100);
        let st = TaskState::all_on_node(&sys, NodeId(0));
        let p = report(&sys, &st);
        assert!(p.psi0 <= 100.0 * 100.0 + 1e-9);
        assert!(p.psi0 > 0.0);
    }

    #[test]
    fn psi1_matches_definition_3_19() {
        // Ψ₁ = Φ₁ − W²/S − W·n/S + n/4·(1/s̄_h − 1/s̄_a).
        let speeds = SpeedVector::new(vec![1.0, 2.0, 4.0]).unwrap();
        let w = [4.0, 1.0, 2.0];
        let total = 7.0;
        let n = 3.0;
        let s = speeds.total();
        let via_obs = psi1(&w, &speeds, total);
        let via_def = phi1(&w, &speeds) - total * total / s - total * n / s
            + n / 4.0 * (1.0 / speeds.harmonic_mean() - 1.0 / speeds.arithmetic_mean());
        assert_close(via_obs, via_def, 1e-9);
    }

    #[test]
    fn psi1_relation_observation_3_20_3() {
        // Ψ₁ = Ψ₀ + Σ e_i/s_i + n/4·(1/s̄_h − 1/s̄_a).
        let speeds = SpeedVector::new(vec![2.0, 1.0, 1.0, 4.0]).unwrap();
        let w = [3.0, 0.0, 5.0, 2.0];
        let total = 10.0;
        let per_cap = total / speeds.total();
        let e: Vec<f64> = w
            .iter()
            .zip(speeds.as_slice())
            .map(|(wi, si)| wi - per_cap * si)
            .collect();
        let correction: f64 = e
            .iter()
            .zip(speeds.as_slice())
            .map(|(ei, si)| ei / si)
            .sum();
        let lhs = psi1(&w, &speeds, total);
        let rhs = psi0(&w, &speeds, total)
            + correction
            + 4.0 / 4.0 * (1.0 / speeds.harmonic_mean() - 1.0 / speeds.arithmetic_mean());
        assert_close(lhs, rhs, 1e-9);
    }

    #[test]
    fn psi1_nonnegative_on_integer_states() {
        // Observation 3.20(2): Ψ₁ ≥ 0 (deviations summing to zero).
        let speeds = SpeedVector::new(vec![1.0, 1.0, 2.0]).unwrap();
        for w in [
            [4.0, 0.0, 0.0],
            [0.0, 0.0, 4.0],
            [1.0, 1.0, 2.0],
            [2.0, 1.0, 1.0],
        ] {
            let v = psi1(&w, &speeds, 4.0);
            assert!(v >= -1e-9, "Ψ₁ = {v} < 0 for {w:?}");
        }
    }

    #[test]
    fn observation_3_16_sandwich() {
        // L_Δ² ≤ Ψ₀ ≤ S·L_Δ².
        let speeds = SpeedVector::new(vec![1.0, 2.0, 1.0, 3.0]).unwrap();
        let w = [6.0, 1.0, 0.0, 0.0];
        let total = 7.0;
        let ld = max_load_deviation(&w, &speeds, total);
        let p0 = psi0(&w, &speeds, total);
        assert!(ld * ld <= p0 + 1e-9);
        assert!(p0 <= speeds.total() * ld * ld + 1e-9);
    }

    #[test]
    fn report_consistency() {
        let sys = system(vec![1.0, 2.0, 1.0], 9);
        let st = TaskState::from_assignment(&sys, &[0, 0, 0, 0, 1, 1, 2, 2, 2]).unwrap();
        let r = report(&sys, &st);
        assert_close(r.phi0, phi0(st.node_weights(), sys.speeds()), 1e-12);
        assert_close(r.psi0, psi0(st.node_weights(), sys.speeds(), 9.0), 1e-12);
        assert_close(
            r.max_load_deviation,
            max_load_deviation(st.node_weights(), sys.speeds(), 9.0),
            1e-12,
        );
        assert!(r.phi1 > r.phi0);
        assert!(r.psi1 >= -1e-9);
    }

    #[test]
    fn potential_drop_invariant_under_shift() {
        // Lemma 3.6(1): ΔΨ₀ = ΔΦ₀ — both differ by the same constant at
        // fixed (W, S).
        let speeds = SpeedVector::new(vec![1.0, 2.0]).unwrap();
        let before = [5.0, 1.0];
        let after = [4.0, 2.0];
        let total = 6.0;
        let d_phi = phi0(&before, &speeds) - phi0(&after, &speeds);
        let d_psi = psi0(&before, &speeds, total) - psi0(&after, &speeds, total);
        assert_close(d_phi, d_psi, 1e-9);
        // Same for Φ₁/Ψ₁ (Observation 3.20(4)).
        let d_phi1 = phi1(&before, &speeds) - phi1(&after, &speeds);
        let d_psi1 = psi1(&before, &speeds, total) - psi1(&after, &speeds, total);
        assert_close(d_phi1, d_psi1, 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let speeds = SpeedVector::uniform(2);
        let _ = phi0(&[1.0], &speeds);
    }
}
