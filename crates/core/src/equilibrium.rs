//! Nash and approximate-Nash equilibrium predicates.
//!
//! §2 of the paper: a state is a *Nash equilibrium* when no single task can
//! lower its perceived load by migrating to a neighbor; for a task of
//! weight `w` on node `i` considering neighbor `j`, the improvement
//! condition is `ℓ_i − ℓ_j > w/s_j` (the task compares its current load
//! with the load of `j` *after* its own arrival). A state is an
//! *ε-approximate* Nash equilibrium when no task can improve by a factor
//! `(1 − ε)`: `(1 − ε)·ℓ_i − ℓ_j ≤ w/s_j` for all edges and tasks.
//!
//! For **uniform** tasks (`w = 1`) the per-edge condition is
//! `ℓ_i − ℓ_j ≤ 1/s_j`. For **weighted** tasks, the binding constraint on
//! an edge is the *lightest* task on the source node, so the check uses the
//! per-node minimum weight. Algorithm 2 intentionally only converges to the
//! relaxed condition `ℓ_i − ℓ_j ≤ 1/s_j` (threshold `1 ≥ w_ℓ`), which §4
//! shows is an ε-approximate NE for large enough `W`.

use crate::model::{System, TaskState};
use slb_graphs::NodeId;

/// Which improvement threshold an equilibrium check uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Threshold {
    /// `1/s_j` — uniform tasks, and the relaxed target of Algorithm 2.
    UnitWeight,
    /// `w_min(i)/s_j` — the exact game-theoretic condition for weighted
    /// tasks (lightest task on the source node is the binding one).
    LightestTask,
}

/// A directed edge on which some task has an incentive to migrate, with its
/// violation magnitude (`ℓ_i − ℓ_j − w/s_j > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Violation {
    /// Overloaded source node.
    pub from: NodeId,
    /// Underloaded neighbor.
    pub to: NodeId,
    /// `ℓ_i − ℓ_j − threshold` (positive).
    pub excess: f64,
}

fn min_weight_per_node(system: &System, state: &TaskState) -> Vec<f64> {
    let mut min_w = vec![f64::INFINITY; system.node_count()];
    for (task, weight) in system.tasks().iter() {
        let node = state.task_node(task).index();
        if weight < min_w[node] {
            min_w[node] = weight;
        }
    }
    min_w
}

fn threshold_weights(system: &System, state: &TaskState, threshold: Threshold) -> Vec<f64> {
    match threshold {
        Threshold::UnitWeight => vec![1.0; system.node_count()],
        Threshold::LightestTask => min_weight_per_node(system, state),
    }
}

/// Collects every directed violation of the (exact) equilibrium condition
/// `ℓ_i − ℓ_j ≤ w/s_j`.
///
/// Nodes hosting no task produce no violations (there is no task to move).
pub fn violations(system: &System, state: &TaskState, threshold: Threshold) -> Vec<Violation> {
    let loads = state.loads(system);
    let w = threshold_weights(system, state, threshold);
    let mut out = Vec::new();
    for &(a, b) in system.graph().edges() {
        for (i, j) in [(a, b), (b, a)] {
            if state.node_task_count(i) == 0 {
                continue;
            }
            let sj = system.speeds().speed(j.index());
            let excess = loads[i.index()] - loads[j.index()] - w[i.index()] / sj;
            if excess > 1e-12 {
                out.push(Violation {
                    from: i,
                    to: j,
                    excess,
                });
            }
        }
    }
    out
}

/// Whether the state is an exact Nash equilibrium under `threshold`.
pub fn is_nash(system: &System, state: &TaskState, threshold: Threshold) -> bool {
    let loads = state.loads(system);
    let w = threshold_weights(system, state, threshold);
    for &(a, b) in system.graph().edges() {
        for (i, j) in [(a, b), (b, a)] {
            if state.node_task_count(i) == 0 {
                continue;
            }
            let sj = system.speeds().speed(j.index());
            if loads[i.index()] - loads[j.index()] > w[i.index()] / sj + 1e-12 {
                return false;
            }
        }
    }
    true
}

/// Whether the state is an ε-approximate Nash equilibrium:
/// `(1 − ε)·ℓ_i − ℓ_j ≤ w/s_j` on every directed edge with tasks at the
/// source.
///
/// # Panics
///
/// Panics unless `0 ≤ ε ≤ 1`.
pub fn is_eps_nash(system: &System, state: &TaskState, threshold: Threshold, eps: f64) -> bool {
    let loads = state.loads(system);
    let w = threshold_weights(system, state, threshold);
    let occupied = occupied_of_state(system, state);
    is_eps_nash_loads(system.graph(), system.speeds(), &loads, &w, &occupied, eps)
}

/// The smallest `ε` for which the state is an ε-approximate NE (0 when it
/// is an exact NE); a scalar "distance from equilibrium" for experiment
/// reporting.
pub fn nash_gap(system: &System, state: &TaskState, threshold: Threshold) -> f64 {
    let loads = state.loads(system);
    let w = threshold_weights(system, state, threshold);
    let occupied = occupied_of_state(system, state);
    nash_gap_loads(system.graph(), system.speeds(), &loads, &w, &occupied)
}

fn occupied_of_state(system: &System, state: &TaskState) -> Vec<bool> {
    (0..system.node_count())
        .map(|v| state.node_task_count(NodeId(v)) > 0)
        .collect()
}

/// The makespan `max_i ℓ_i(x)` — the social cost classically used in
/// selfish load-balancing (Vöcking \[27\]).
pub fn makespan(system: &System, state: &TaskState) -> f64 {
    state.loads(system).into_iter().fold(0.0, f64::max)
}

/// The "price" of a state: `makespan / (W/S)`, i.e. the ratio of the
/// maximum load to the perfectly fractional optimum. Evaluated at a Nash
/// equilibrium this is (an instance's) price-of-anarchy-style measure of
/// the equilibrium quality the paper's protocols converge to.
///
/// Always ≥ 1 up to task indivisibility (with indivisible tasks even the
/// optimum can exceed `W/S`).
pub fn makespan_ratio(system: &System, state: &TaskState) -> f64 {
    makespan(system, state) / system.average_load()
}

/// Edge condition `ℓ_i − ℓ_j ≤ w_i/s_j` on raw load arrays with explicit
/// per-node threshold weights — the form shared by the count-based
/// simulators (no [`TaskState`]). `threshold_weights[i]` is the binding
/// weight on node `i` (1 for the relaxed rule, the lightest hosted weight
/// for the exact weighted rule); nodes hosting no task
/// (`occupied[i] == false`) produce no violations.
pub fn is_nash_loads(
    graph: &slb_graphs::Graph,
    speeds: &crate::model::SpeedVector,
    loads: &[f64],
    threshold_weights: &[f64],
    occupied: &[bool],
) -> bool {
    for &(a, b) in graph.edges() {
        for (i, j) in [(a, b), (b, a)] {
            if !occupied[i.index()] {
                continue;
            }
            let sj = speeds.speed(j.index());
            if loads[i.index()] - loads[j.index()] > threshold_weights[i.index()] / sj + 1e-12 {
                return false;
            }
        }
    }
    true
}

/// ε-approximate edge condition `(1 − ε)·ℓ_i − ℓ_j ≤ w_i/s_j` on raw load
/// arrays — the form shared by the count-based simulators (no
/// [`TaskState`]). The [`TaskState`] form [`is_eps_nash`] delegates here,
/// so the two evaluations agree *exactly* (bit for bit) on matching
/// loads/thresholds — the contract the count-based validation ladders rely
/// on.
///
/// # Panics
///
/// Panics unless `0 ≤ ε ≤ 1`.
pub fn is_eps_nash_loads(
    graph: &slb_graphs::Graph,
    speeds: &crate::model::SpeedVector,
    loads: &[f64],
    threshold_weights: &[f64],
    occupied: &[bool],
    eps: f64,
) -> bool {
    assert!((0.0..=1.0).contains(&eps), "ε must lie in [0, 1]");
    for &(a, b) in graph.edges() {
        for (i, j) in [(a, b), (b, a)] {
            if !occupied[i.index()] {
                continue;
            }
            let sj = speeds.speed(j.index());
            if (1.0 - eps) * loads[i.index()] - loads[j.index()]
                > threshold_weights[i.index()] / sj + 1e-12
            {
                return false;
            }
        }
    }
    true
}

/// The smallest `ε` for which the loads form an ε-approximate NE, on raw
/// load arrays — the count-based counterpart of [`nash_gap`], which
/// delegates here (so the two agree exactly on matching inputs).
pub fn nash_gap_loads(
    graph: &slb_graphs::Graph,
    speeds: &crate::model::SpeedVector,
    loads: &[f64],
    threshold_weights: &[f64],
    occupied: &[bool],
) -> f64 {
    let mut eps = 0.0f64;
    for &(a, b) in graph.edges() {
        for (i, j) in [(a, b), (b, a)] {
            if !occupied[i.index()] {
                continue;
            }
            let li = loads[i.index()];
            if li <= 0.0 {
                continue;
            }
            let sj = speeds.speed(j.index());
            // (1−ε)·ℓ_i ≤ ℓ_j + w/s_j  ⇔  ε ≥ 1 − (ℓ_j + w/s_j)/ℓ_i.
            let needed = 1.0 - (loads[j.index()] + threshold_weights[i.index()] / sj) / li;
            eps = eps.max(needed);
        }
    }
    eps.max(0.0)
}

/// Uniform-task edge condition `ℓ_i − ℓ_j ≤ 1/s_j` on raw load arrays —
/// the form used by the fast count-based simulator (no [`TaskState`]).
///
/// The one-class special case of [`is_nash_loads`], kept allocation-free:
/// the fast engine evaluates it before every round.
pub fn is_nash_uniform_loads(
    graph: &slb_graphs::Graph,
    speeds: &crate::model::SpeedVector,
    loads: &[f64],
    counts: &[u64],
) -> bool {
    for &(a, b) in graph.edges() {
        for (i, j) in [(a, b), (b, a)] {
            if counts[i.index()] == 0 {
                continue;
            }
            let sj = speeds.speed(j.index());
            if loads[i.index()] - loads[j.index()] > 1.0 / sj + 1e-12 {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpeedVector, TaskSet};
    use slb_graphs::generators;

    fn uniform_system(n: usize, m: usize) -> System {
        System::new(
            generators::path(n),
            SpeedVector::uniform(n),
            TaskSet::uniform(m),
        )
        .unwrap()
    }

    #[test]
    fn balanced_state_is_nash() {
        let sys = uniform_system(3, 6);
        let st = TaskState::from_assignment(&sys, &[0, 0, 1, 1, 2, 2]).unwrap();
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
        assert!(violations(&sys, &st, Threshold::UnitWeight).is_empty());
        assert!((nash_gap(&sys, &st, Threshold::UnitWeight)).abs() < 1e-12);
    }

    #[test]
    fn discrepancy_one_is_still_nash() {
        // Loads (2, 1): ℓ_0 − ℓ_1 = 1 = 1/s_1 → no strict improvement.
        let sys = uniform_system(2, 3);
        let st = TaskState::from_assignment(&sys, &[0, 0, 1]).unwrap();
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
    }

    #[test]
    fn all_on_one_node_is_not_nash() {
        let sys = uniform_system(3, 9);
        let st = TaskState::all_on_node(&sys, slb_graphs::NodeId(0));
        assert!(!is_nash(&sys, &st, Threshold::UnitWeight));
        let v = violations(&sys, &st, Threshold::UnitWeight);
        assert_eq!(v.len(), 1); // only edge (0,1) is violated; node 1 holds no tasks
        assert_eq!(v[0].from, NodeId(0));
        assert_eq!(v[0].to, NodeId(1));
        assert!((v[0].excess - 8.0).abs() < 1e-9); // 9 − 0 − 1
        let gap = nash_gap(&sys, &st, Threshold::UnitWeight);
        assert!((gap - (1.0 - 1.0 / 9.0)).abs() < 1e-9);
    }

    #[test]
    fn empty_source_produces_no_violation() {
        // Overload can only "flow" from nodes that actually hold tasks.
        let sys = uniform_system(2, 4);
        let st = TaskState::from_assignment(&sys, &[1, 1, 1, 1]).unwrap();
        let v = violations(&sys, &st, Threshold::UnitWeight);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].from, NodeId(1));
    }

    #[test]
    fn speeds_affect_the_threshold() {
        // Fast neighbor: moving to j with s_j = 4 only needs load gap 1/4.
        let sys = System::new(
            generators::path(2),
            SpeedVector::new(vec![1.0, 4.0]).unwrap(),
            TaskSet::uniform(3),
        )
        .unwrap();
        // Loads: (2, 0.25); gap 1.75 > 1/4 → not Nash.
        let st = TaskState::from_assignment(&sys, &[0, 0, 1]).unwrap();
        assert!(!is_nash(&sys, &st, Threshold::UnitWeight));
        // Loads: (1, 0.5): gap 0.5 > 0.25 → still not Nash.
        let st = TaskState::from_assignment(&sys, &[0, 1, 1]).unwrap();
        assert!(!is_nash(&sys, &st, Threshold::UnitWeight));
        // All on the fast node: loads (0, 0.75); reverse gap 0.75 ≤ 1/1 → Nash.
        let st = TaskState::from_assignment(&sys, &[1, 1, 1]).unwrap();
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
    }

    #[test]
    fn weighted_lightest_task_threshold() {
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![1.0, 0.1]).unwrap(),
        )
        .unwrap();
        // Both on node 0: loads (1.1, 0). Lightest task is 0.1:
        // 1.1 − 0 > 0.1 → not Nash under LightestTask...
        let st = TaskState::from_assignment(&sys, &[0, 0]).unwrap();
        assert!(!is_nash(&sys, &st, Threshold::LightestTask));
        // ...but under the relaxed unit threshold it is (1.1 ≤ 1 fails!).
        assert!(!is_nash(&sys, &st, Threshold::UnitWeight));
        // Split heavy/light: loads (1.0, 0.1), gap 0.9 ≤ min-weight 1.0 on
        // node 0 → Nash exactly; also ≤ 1 under the unit rule.
        let st = TaskState::from_assignment(&sys, &[0, 1]).unwrap();
        assert!(is_nash(&sys, &st, Threshold::LightestTask));
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
    }

    #[test]
    fn relaxed_vs_exact_weighted_gap() {
        // A state that satisfies Algorithm 2's relaxed condition but is not
        // an exact weighted NE (the situation §4 discusses).
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.2, 0.2, 0.2, 0.2]).unwrap(),
        )
        .unwrap();
        // Loads (0.8, 0): gap 0.8 ≤ 1 (relaxed OK) but > 0.2 (exact NO).
        let st = TaskState::from_assignment(&sys, &[0, 0, 0, 0]).unwrap();
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
        assert!(!is_nash(&sys, &st, Threshold::LightestTask));
    }

    #[test]
    fn eps_nash_monotone_in_eps() {
        let sys = uniform_system(3, 30);
        let st = TaskState::from_assignment(
            &sys,
            &(0..30)
                .map(|t| if t < 20 { 0 } else { 1 })
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let gap = nash_gap(&sys, &st, Threshold::UnitWeight);
        assert!(gap > 0.0);
        assert!(!is_eps_nash(&sys, &st, Threshold::UnitWeight, gap * 0.5));
        assert!(is_eps_nash(&sys, &st, Threshold::UnitWeight, gap + 1e-9));
        assert!(is_eps_nash(&sys, &st, Threshold::UnitWeight, 1.0));
    }

    #[test]
    fn exact_nash_iff_gap_zero() {
        let sys = uniform_system(4, 8);
        let st = TaskState::from_assignment(&sys, &[0, 0, 1, 1, 2, 2, 3, 3]).unwrap();
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
        assert_eq!(nash_gap(&sys, &st, Threshold::UnitWeight), 0.0);
        assert!(is_eps_nash(&sys, &st, Threshold::UnitWeight, 0.0));
    }

    #[test]
    fn loads_form_matches_state_form() {
        let sys = uniform_system(4, 12);
        let st = TaskState::from_assignment(&sys, &[0; 12]).unwrap();
        let loads = st.loads(&sys);
        let counts: Vec<u64> = (0..4)
            .map(|i| st.node_task_count(NodeId(i)) as u64)
            .collect();
        assert_eq!(
            is_nash(&sys, &st, Threshold::UnitWeight),
            is_nash_uniform_loads(sys.graph(), sys.speeds(), &loads, &counts)
        );
    }

    #[test]
    fn eps_loads_forms_match_state_forms_exactly() {
        let sys = System::new(
            generators::ring(5),
            SpeedVector::integer(vec![1, 2, 1, 4, 1]).unwrap(),
            TaskSet::weighted(vec![0.25, 0.5, 1.0, 0.25, 0.5, 1.0, 0.25]).unwrap(),
        )
        .unwrap();
        let st = TaskState::from_assignment(&sys, &[0, 0, 0, 1, 2, 2, 4]).unwrap();
        let loads = st.loads(&sys);
        let occupied: Vec<bool> = (0..5).map(|i| st.node_task_count(NodeId(i)) > 0).collect();
        for threshold in [Threshold::UnitWeight, Threshold::LightestTask] {
            let w = threshold_weights(&sys, &st, threshold);
            assert_eq!(
                nash_gap(&sys, &st, threshold),
                nash_gap_loads(sys.graph(), sys.speeds(), &loads, &w, &occupied),
            );
            for eps in [0.0, 0.25, 0.5, 1.0] {
                assert_eq!(
                    is_eps_nash(&sys, &st, threshold, eps),
                    is_eps_nash_loads(sys.graph(), sys.speeds(), &loads, &w, &occupied, eps),
                );
            }
        }
    }

    #[test]
    fn nash_gap_loads_skips_empty_and_zero_load_sources() {
        // Node 1 hosts nothing, node 2 hosts a zero-ish source via
        // occupied-but-zero-load (cannot happen with positive weights, but
        // the predicate must not divide by zero).
        let sys = uniform_system(3, 3);
        let loads = [3.0, 0.0, 0.0];
        let w = [1.0, 1.0, 1.0];
        let occupied = [true, false, true];
        let gap = nash_gap_loads(sys.graph(), sys.speeds(), &loads, &w, &occupied);
        assert!((gap - (1.0 - 1.0 / 3.0)).abs() < 1e-12, "gap {gap}");
    }

    #[test]
    #[should_panic(expected = "ε must lie in [0, 1]")]
    fn bad_eps_loads_panics() {
        let sys = uniform_system(2, 2);
        let _ = is_eps_nash_loads(
            sys.graph(),
            sys.speeds(),
            &[1.0, 1.0],
            &[1.0, 1.0],
            &[true, true],
            -0.1,
        );
    }

    #[test]
    #[should_panic(expected = "ε must lie in [0, 1]")]
    fn bad_eps_panics() {
        let sys = uniform_system(2, 2);
        let st = TaskState::all_on_node(&sys, NodeId(0));
        let _ = is_eps_nash(&sys, &st, Threshold::UnitWeight, 1.5);
    }

    #[test]
    fn makespan_and_ratio() {
        let sys = System::new(
            generators::path(2),
            SpeedVector::new(vec![1.0, 3.0]).unwrap(),
            TaskSet::uniform(8),
        )
        .unwrap();
        // Loads: (6, 2/3); average load = 8/4 = 2.
        let st = TaskState::from_assignment(&sys, &[0, 0, 0, 0, 0, 0, 1, 1]).unwrap();
        assert!((makespan(&sys, &st) - 6.0).abs() < 1e-12);
        assert!((makespan_ratio(&sys, &st) - 3.0).abs() < 1e-12);
        // Perfectly balanced: W_i = 2·s_i → (2, 6): ratio 1.
        let st = TaskState::from_assignment(&sys, &[0, 0, 1, 1, 1, 1, 1, 1]).unwrap();
        assert!((makespan_ratio(&sys, &st) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nash_states_have_bounded_makespan_ratio() {
        // At a uniform-speed Nash equilibrium adjacent loads differ by at
        // most 1, so the makespan ratio is at most 1 + n·(diam/avg)-ish;
        // verify it is modest on a balanced-ish ring NE.
        let sys = uniform_system(4, 40);
        let st =
            TaskState::from_assignment(&sys, &(0..40).map(|t| t % 4).collect::<Vec<_>>()).unwrap();
        assert!(is_nash(&sys, &st, Threshold::UnitWeight));
        assert!((makespan_ratio(&sys, &st) - 1.0).abs() < 1e-12);
    }
}
