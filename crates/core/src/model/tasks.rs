//! Tasks: identifiers, weights, and the immutable task population.
//!
//! The paper distinguishes *uniform* tasks (all weight 1) from *weighted*
//! tasks with `w_ℓ ∈ (0, 1]` (§1.1, §2). The weight bound `≤ 1` is not
//! cosmetic: the variance bound of Lemma 4.3 uses `w_ℓ² ≤ w_ℓ`, so
//! [`TaskSet`] enforces it at construction.

use std::fmt;

/// Identifier of a task (dense index `0..m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The dense index of this task.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(i: usize) -> Self {
        TaskId(i)
    }
}

/// Errors from constructing a [`TaskSet`].
#[derive(Debug, Clone, PartialEq)]
pub enum TaskError {
    /// The population was empty.
    Empty,
    /// A weight was outside `(0, 1]` or not finite.
    BadWeight {
        /// Index of the offending task.
        index: usize,
        /// The offending weight.
        weight: f64,
    },
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::Empty => write!(f, "task set must be nonempty"),
            TaskError::BadWeight { index, weight } => {
                write!(
                    f,
                    "task weight at index {index} must lie in (0, 1], got {weight}"
                )
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// The immutable population of `m` tasks with their weights.
///
/// Uniform populations are represented without storing `m` copies of `1.0`;
/// [`TaskSet::weight`] is O(1) either way.
///
/// # Example
///
/// ```
/// use slb_core::model::{TaskId, TaskSet};
///
/// let uniform = TaskSet::uniform(100);
/// assert_eq!(uniform.len(), 100);
/// assert_eq!(uniform.total_weight(), 100.0);
/// assert!(uniform.is_uniform());
///
/// let weighted = TaskSet::weighted(vec![0.5, 1.0, 0.25])?;
/// assert_eq!(weighted.weight(TaskId(2)), 0.25);
/// assert_eq!(weighted.total_weight(), 1.75);
/// # Ok::<(), slb_core::model::TaskError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSet {
    weights: Option<Vec<f64>>,
    len: usize,
    total_weight: f64,
    max_weight: f64,
    min_weight: f64,
}

impl TaskSet {
    /// `m` uniform tasks of weight 1.
    ///
    /// # Panics
    ///
    /// Panics if `m == 0`.
    pub fn uniform(m: usize) -> Self {
        assert!(m > 0, "need at least one task");
        TaskSet {
            weights: None,
            len: m,
            total_weight: m as f64,
            max_weight: 1.0,
            min_weight: 1.0,
        }
    }

    /// Weighted tasks with `w_ℓ ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError`] if empty or any weight is outside `(0, 1]`.
    pub fn weighted(weights: Vec<f64>) -> Result<Self, TaskError> {
        if weights.is_empty() {
            return Err(TaskError::Empty);
        }
        let mut total = 0.0f64;
        let mut max = 0.0f64;
        let mut min = f64::INFINITY;
        for (index, &weight) in weights.iter().enumerate() {
            if weight <= 0.0 || weight.is_nan() || weight > 1.0 || !weight.is_finite() {
                return Err(TaskError::BadWeight { index, weight });
            }
            total += weight;
            max = max.max(weight);
            min = min.min(weight);
        }
        Ok(TaskSet {
            len: weights.len(),
            total_weight: total,
            max_weight: max,
            min_weight: min,
            weights: Some(weights),
        })
    }

    /// Number of tasks `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The weight `w_ℓ` of a task.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn weight(&self, id: TaskId) -> f64 {
        match &self.weights {
            None => {
                assert!(id.0 < self.len, "task id out of range");
                1.0
            }
            Some(w) => w[id.0],
        }
    }

    /// Total weight `W = Σ_ℓ w_ℓ` (equals `m` for uniform tasks).
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The largest task weight.
    #[inline]
    pub fn max_weight(&self) -> f64 {
        self.max_weight
    }

    /// The smallest task weight.
    #[inline]
    pub fn min_weight(&self) -> f64 {
        self.min_weight
    }

    /// Whether all tasks have weight exactly 1.
    ///
    /// Exact comparison on purpose: "uniform" means every stored weight
    /// is the literal value `1.0`, not approximately so.
    #[inline]
    #[allow(clippy::float_cmp)]
    pub fn is_uniform(&self) -> bool {
        self.weights.is_none() || (self.min_weight == 1.0 && self.max_weight == 1.0)
    }

    /// Iterator over `(TaskId, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        (0..self.len).map(move |i| (TaskId(i), self.weight(TaskId(i))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_population() {
        let t = TaskSet::uniform(5);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.total_weight(), 5.0);
        assert_eq!(t.weight(TaskId(4)), 1.0);
        assert!(t.is_uniform());
        assert_eq!(t.max_weight(), 1.0);
        assert_eq!(t.min_weight(), 1.0);
    }

    #[test]
    fn weighted_population() {
        let t = TaskSet::weighted(vec![0.25, 0.5, 1.0]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.total_weight(), 1.75);
        assert_eq!(t.max_weight(), 1.0);
        assert_eq!(t.min_weight(), 0.25);
        assert!(!t.is_uniform());
        let collected: Vec<(TaskId, f64)> = t.iter().collect();
        assert_eq!(collected[1], (TaskId(1), 0.5));
    }

    #[test]
    fn all_ones_weighted_detected_as_uniform() {
        let t = TaskSet::weighted(vec![1.0, 1.0]).unwrap();
        assert!(t.is_uniform());
    }

    #[test]
    fn rejects_invalid_weights() {
        assert_eq!(TaskSet::weighted(vec![]), Err(TaskError::Empty));
        assert!(matches!(
            TaskSet::weighted(vec![0.0]),
            Err(TaskError::BadWeight { index: 0, .. })
        ));
        assert!(matches!(
            TaskSet::weighted(vec![0.5, 1.5]),
            Err(TaskError::BadWeight { index: 1, .. })
        ));
        assert!(matches!(
            TaskSet::weighted(vec![-0.1]),
            Err(TaskError::BadWeight { .. })
        ));
        assert!(matches!(
            TaskSet::weighted(vec![f64::NAN]),
            Err(TaskError::BadWeight { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "task id out of range")]
    fn uniform_out_of_range_panics() {
        let t = TaskSet::uniform(2);
        let _ = t.weight(TaskId(2));
    }

    #[test]
    fn display_impls() {
        assert_eq!(TaskId(3).to_string(), "t3");
        assert!(TaskError::Empty.to_string().contains("nonempty"));
        let e = TaskError::BadWeight {
            index: 1,
            weight: 2.0,
        };
        assert!(e.to_string().contains("(0, 1]"));
    }
}
