//! Processor speeds: the vector `s`, the diagonal matrix `S`, and the
//! granularity `ε`.
//!
//! The paper assumes speeds are scaled so the smallest speed is `s_min = 1`
//! (§1.1) and, for the exact-Nash-equilibrium bound (Theorem 1.2), that a
//! *granularity* `ε ∈ (0, 1]` exists with every `s_i = n_i·ε` for integers
//! `n_i`. [`SpeedVector`] validates and caches all derived quantities the
//! protocols and bounds need: `s_min`, `s_max`, `S = Σs_i`, the arithmetic
//! and harmonic means of Definition 3.19, and the granularity.

use std::fmt;

/// Errors from constructing a [`SpeedVector`].
#[derive(Debug, Clone, PartialEq)]
pub enum SpeedError {
    /// The vector was empty.
    Empty,
    /// A speed was zero, negative, NaN or infinite.
    NotPositive {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// `with_granularity` was given speeds that are not integer multiples
    /// of the claimed granularity.
    NotMultipleOfGranularity {
        /// Index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
        /// The claimed granularity.
        granularity: f64,
    },
    /// The granularity was outside `(0, 1]`.
    BadGranularity {
        /// The offending granularity.
        granularity: f64,
    },
}

impl fmt::Display for SpeedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpeedError::Empty => write!(f, "speed vector must be nonempty"),
            SpeedError::NotPositive { index, value } => {
                write!(f, "speed at index {index} must be positive and finite, got {value}")
            }
            SpeedError::NotMultipleOfGranularity {
                index,
                value,
                granularity,
            } => write!(
                f,
                "speed {value} at index {index} is not an integer multiple of granularity {granularity}"
            ),
            SpeedError::BadGranularity { granularity } => {
                write!(f, "granularity must lie in (0, 1], got {granularity}")
            }
        }
    }
}

impl std::error::Error for SpeedError {}

/// The validated speed vector `s = (s₁, …, s_n)` with cached aggregates.
///
/// # Example
///
/// ```
/// use slb_core::model::SpeedVector;
///
/// let s = SpeedVector::new(vec![1.0, 2.0, 4.0])?;
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// assert_eq!(s.total(), 7.0);        // S = Σ sᵢ
/// assert_eq!(s.len(), 3);
/// # Ok::<(), slb_core::model::SpeedError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpeedVector {
    speeds: Vec<f64>,
    min: f64,
    max: f64,
    total: f64,
    granularity: Option<f64>,
}

impl SpeedVector {
    /// Validates and wraps a speed vector.
    ///
    /// # Errors
    ///
    /// Returns [`SpeedError`] if the vector is empty or any entry is not a
    /// positive finite number.
    pub fn new(speeds: Vec<f64>) -> Result<Self, SpeedError> {
        if speeds.is_empty() {
            return Err(SpeedError::Empty);
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        let mut total = 0.0f64;
        for (index, &value) in speeds.iter().enumerate() {
            if value <= 0.0 || value.is_nan() || !value.is_finite() {
                return Err(SpeedError::NotPositive { index, value });
            }
            min = min.min(value);
            max = max.max(value);
            total += value;
        }
        Ok(SpeedVector {
            speeds,
            min,
            max,
            total,
            granularity: None,
        })
    }

    /// Uniform speeds `s_i = 1` on `n` machines (granularity 1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one machine");
        SpeedVector {
            speeds: vec![1.0; n],
            min: 1.0,
            max: 1.0,
            total: n as f64,
            granularity: Some(1.0),
        }
    }

    /// Validates speeds that are integer multiples of `granularity`
    /// (Theorem 1.2's requirement `s_i = n_i·ε`).
    ///
    /// # Errors
    ///
    /// Returns [`SpeedError`] for invalid speeds, a granularity outside
    /// `(0, 1]`, or a speed that is not (within `1e-9` relative error) an
    /// integer multiple of the granularity.
    pub fn with_granularity(speeds: Vec<f64>, granularity: f64) -> Result<Self, SpeedError> {
        if granularity <= 0.0 || granularity.is_nan() || granularity > 1.0 {
            return Err(SpeedError::BadGranularity { granularity });
        }
        let mut v = Self::new(speeds)?;
        for (index, &value) in v.speeds.iter().enumerate() {
            let ratio = value / granularity;
            if (ratio - ratio.round()).abs() > 1e-9 * ratio.max(1.0) {
                return Err(SpeedError::NotMultipleOfGranularity {
                    index,
                    value,
                    granularity,
                });
            }
        }
        v.granularity = Some(granularity);
        Ok(v)
    }

    /// Integer speeds (granularity 1), the setting of Theorem 1.2's
    /// headline form.
    ///
    /// # Errors
    ///
    /// Returns [`SpeedError`] if `speeds` is empty or contains a zero.
    pub fn integer(speeds: Vec<u64>) -> Result<Self, SpeedError> {
        Self::with_granularity(speeds.into_iter().map(|s| s as f64).collect(), 1.0)
    }

    /// Number of machines `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.speeds.len()
    }

    /// Whether the vector is empty (never true after construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.speeds.is_empty()
    }

    /// The speed `s_i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn speed(&self, i: usize) -> f64 {
        self.speeds[i]
    }

    /// The raw slice of speeds.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.speeds
    }

    /// `s_min`.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// `s_max`.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The total capacity `S = Σ_i s_i`.
    #[inline]
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Whether all speeds are equal (the "uniform speeds" case).
    ///
    /// Exact comparison on purpose: the extremes are copies of declared
    /// speed values, and "uniform" means literally identical.
    #[allow(clippy::float_cmp)]
    pub fn is_uniform(&self) -> bool {
        self.max == self.min
    }

    /// The granularity `ε`, when one was declared or derivable.
    ///
    /// Speeds constructed with [`SpeedVector::with_granularity`] or
    /// [`SpeedVector::integer`] (or [`SpeedVector::uniform`]) carry it;
    /// otherwise `None` and Theorem 1.2's bound does not apply.
    #[inline]
    pub fn granularity(&self) -> Option<f64> {
        self.granularity
    }

    /// Arithmetic mean `s̄_a = Σ s_i / n` (Definition 3.19).
    pub fn arithmetic_mean(&self) -> f64 {
        self.total / self.len() as f64
    }

    /// Harmonic mean `s̄_h = n / Σ (1/s_i)` (Definition 3.19).
    pub fn harmonic_mean(&self) -> f64 {
        let inv_sum: f64 = self.speeds.iter().map(|s| 1.0 / s).sum();
        self.len() as f64 / inv_sum
    }

    /// Rescales all speeds so that `s_min = 1` (the paper's normalization),
    /// preserving any granularity declaration by dividing it as well
    /// (clamped into `(0, 1]`).
    pub fn normalized(&self) -> SpeedVector {
        let scale = self.min;
        let speeds: Vec<f64> = self.speeds.iter().map(|s| s / scale).collect();
        let granularity = self.granularity.map(|g| (g / scale).min(1.0));
        let mut v = SpeedVector::new(speeds).expect("scaling preserves validity");
        v.granularity = granularity;
        v
    }

    /// The average load `ℓ̄ = m/S` for total work `m` (task count or total
    /// weight `W`).
    pub fn average_load(&self, total_work: f64) -> f64 {
        total_work / self.total
    }

    /// The balanced ("average") work vector `w̄ = (m/S)·s` of §2.
    pub fn balanced_work(&self, total_work: f64) -> Vec<f64> {
        let per_capacity = total_work / self.total;
        self.speeds.iter().map(|s| per_capacity * s).collect()
    }
}

impl AsRef<[f64]> for SpeedVector {
    fn as_ref(&self) -> &[f64] {
        &self.speeds
    }
}

impl fmt::Display for SpeedVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "speeds(n={}, min={}, max={}, S={})",
            self.len(),
            self.min,
            self.max,
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = SpeedVector::new(vec![2.0, 1.0, 4.0]).unwrap();
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.total(), 7.0);
        assert_eq!(s.speed(2), 4.0);
        assert!(!s.is_uniform());
        assert_eq!(s.granularity(), None);
        assert!((s.arithmetic_mean() - 7.0 / 3.0).abs() < 1e-12);
        assert!((s.harmonic_mean() - 3.0 / (0.5 + 1.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn uniform_speeds() {
        let s = SpeedVector::uniform(5);
        assert!(s.is_uniform());
        assert_eq!(s.total(), 5.0);
        assert_eq!(s.granularity(), Some(1.0));
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_empty_and_nonpositive() {
        assert_eq!(SpeedVector::new(vec![]), Err(SpeedError::Empty));
        assert!(matches!(
            SpeedVector::new(vec![1.0, 0.0]),
            Err(SpeedError::NotPositive { index: 1, .. })
        ));
        assert!(matches!(
            SpeedVector::new(vec![-1.0]),
            Err(SpeedError::NotPositive { index: 0, .. })
        ));
        assert!(matches!(
            SpeedVector::new(vec![f64::NAN]),
            Err(SpeedError::NotPositive { .. })
        ));
        assert!(matches!(
            SpeedVector::new(vec![f64::INFINITY]),
            Err(SpeedError::NotPositive { .. })
        ));
    }

    #[test]
    fn granularity_validation() {
        let s = SpeedVector::with_granularity(vec![0.5, 1.0, 2.5], 0.5).unwrap();
        assert_eq!(s.granularity(), Some(0.5));
        assert!(matches!(
            SpeedVector::with_granularity(vec![0.5, 0.7], 0.5),
            Err(SpeedError::NotMultipleOfGranularity { index: 1, .. })
        ));
        assert!(matches!(
            SpeedVector::with_granularity(vec![1.0], 0.0),
            Err(SpeedError::BadGranularity { .. })
        ));
        assert!(matches!(
            SpeedVector::with_granularity(vec![1.0], 1.5),
            Err(SpeedError::BadGranularity { .. })
        ));
    }

    #[test]
    fn integer_speeds() {
        let s = SpeedVector::integer(vec![1, 3, 7]).unwrap();
        assert_eq!(s.granularity(), Some(1.0));
        assert_eq!(s.max(), 7.0);
        assert!(SpeedVector::integer(vec![0, 1]).is_err());
    }

    #[test]
    fn normalization() {
        let s = SpeedVector::integer(vec![2, 4, 6]).unwrap();
        let n = s.normalized();
        assert_eq!(n.min(), 1.0);
        assert_eq!(n.max(), 3.0);
        assert_eq!(n.granularity(), Some(0.5));
        // Already-normalized vectors are unchanged.
        let u = SpeedVector::uniform(3).normalized();
        assert_eq!(u.granularity(), Some(1.0));
        assert_eq!(u.min(), 1.0);
    }

    #[test]
    fn balanced_work_matches_average_load() {
        let s = SpeedVector::new(vec![1.0, 3.0]).unwrap();
        let w = s.balanced_work(8.0);
        assert_eq!(w, vec![2.0, 6.0]);
        assert_eq!(s.average_load(8.0), 2.0);
        // Balanced work has equal load everywhere.
        assert!((w[0] / 1.0 - w[1] / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_and_as_ref() {
        let s = SpeedVector::uniform(2);
        assert!(s.to_string().contains("n=2"));
        assert_eq!(s.as_ref().len(), 2);
        assert_eq!(s.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn error_display() {
        assert!(SpeedError::Empty.to_string().contains("nonempty"));
        let e = SpeedError::NotPositive {
            index: 2,
            value: -1.0,
        };
        assert!(e.to_string().contains("index 2"));
    }
}
