//! The system (network + speeds + tasks) and the mutable assignment state.
//!
//! A *state* `x` in the paper is the distribution of tasks among processors
//! (§2): `W_i(x)` is the total weight on node `i`, `ℓ_i(x) = W_i(x)/s_i`
//! its load, and `e_i(x) = W_i(x) − w̄_i` its deviation from the balanced
//! work vector `w̄ = (m/S)·s`. [`TaskState`] tracks the per-task assignment
//! together with incrementally-maintained node aggregates; every protocol
//! round reads aggregates from the round-start snapshot and commits task
//! moves through [`TaskState::apply_moves`].

use crate::model::{SpeedVector, TaskId, TaskSet};
use slb_graphs::{Graph, NodeId};
use std::fmt;

/// Errors from assembling a [`System`] or a [`TaskState`].
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Speed vector length differed from the node count.
    SpeedCountMismatch {
        /// Number of nodes.
        nodes: usize,
        /// Number of speeds supplied.
        speeds: usize,
    },
    /// An initial assignment had the wrong length.
    AssignmentLengthMismatch {
        /// Number of tasks.
        tasks: usize,
        /// Length of the supplied assignment.
        assignment: usize,
    },
    /// An initial assignment placed a task on a node index `>= n`.
    AssignmentOutOfRange {
        /// The offending task.
        task: usize,
        /// The offending node index.
        node: usize,
        /// Number of nodes.
        nodes: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::SpeedCountMismatch { nodes, speeds } => {
                write!(
                    f,
                    "graph has {nodes} nodes but {speeds} speeds were supplied"
                )
            }
            ModelError::AssignmentLengthMismatch { tasks, assignment } => write!(
                f,
                "task set has {tasks} tasks but assignment has {assignment} entries"
            ),
            ModelError::AssignmentOutOfRange { task, node, nodes } => write!(
                f,
                "task {task} assigned to node {node}, but the graph has only {nodes} nodes"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

/// The immutable problem instance: network, speeds, and task population.
///
/// # Example
///
/// ```
/// use slb_core::model::{SpeedVector, System, TaskSet};
/// use slb_graphs::generators;
///
/// let system = System::new(
///     generators::ring(4),
///     SpeedVector::uniform(4),
///     TaskSet::uniform(40),
/// )?;
/// assert_eq!(system.average_load(), 10.0); // m/S = 40/4
/// # Ok::<(), slb_core::model::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct System {
    graph: Graph,
    speeds: SpeedVector,
    tasks: TaskSet,
    balanced_work: Vec<f64>,
}

impl System {
    /// Assembles a system, checking that the speed vector matches the
    /// graph.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::SpeedCountMismatch`] on length mismatch.
    pub fn new(graph: Graph, speeds: SpeedVector, tasks: TaskSet) -> Result<Self, ModelError> {
        if speeds.len() != graph.node_count() {
            return Err(ModelError::SpeedCountMismatch {
                nodes: graph.node_count(),
                speeds: speeds.len(),
            });
        }
        let balanced_work = speeds.balanced_work(tasks.total_weight());
        Ok(System {
            graph,
            speeds,
            tasks,
            balanced_work,
        })
    }

    /// The network.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The speed vector.
    #[inline]
    pub fn speeds(&self) -> &SpeedVector {
        &self.speeds
    }

    /// The task population.
    #[inline]
    pub fn tasks(&self) -> &TaskSet {
        &self.tasks
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of tasks `m`.
    #[inline]
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// The average load `ℓ̄ = W/S` (equals `m/S` for uniform tasks).
    #[inline]
    pub fn average_load(&self) -> f64 {
        self.tasks.total_weight() / self.speeds.total()
    }

    /// The balanced work vector `w̄ = (W/S)·s` (§2).
    #[inline]
    pub fn balanced_work(&self) -> &[f64] {
        &self.balanced_work
    }
}

/// The mutable state `x`: per-task placement plus node aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskState {
    assignment: Vec<u32>,
    node_weight: Vec<f64>,
    node_task_count: Vec<u32>,
    moves_since_rebuild: usize,
}

/// A single committed migration: `task` moves to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    /// The migrating task.
    pub task: TaskId,
    /// Destination node.
    pub to: NodeId,
}

/// Incremental-aggregate drift threshold: after this many task moves, the
/// node weights are recomputed from scratch to shed floating-point error.
const REBUILD_INTERVAL: usize = 1 << 22;

impl TaskState {
    /// Builds a state from an explicit assignment (`assignment[ℓ]` is the
    /// node of task `ℓ`).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] on length mismatch or out-of-range nodes.
    pub fn from_assignment(system: &System, assignment: &[usize]) -> Result<Self, ModelError> {
        if assignment.len() != system.task_count() {
            return Err(ModelError::AssignmentLengthMismatch {
                tasks: system.task_count(),
                assignment: assignment.len(),
            });
        }
        let n = system.node_count();
        let mut node_weight = vec![0.0f64; n];
        let mut node_task_count = vec![0u32; n];
        for (task, &node) in assignment.iter().enumerate() {
            if node >= n {
                return Err(ModelError::AssignmentOutOfRange {
                    task,
                    node,
                    nodes: n,
                });
            }
            node_weight[node] += system.tasks().weight(TaskId(task));
            node_task_count[node] += 1;
        }
        Ok(TaskState {
            // Lossless: every index was range-checked against `n` above,
            // and node counts are capped at `u32::MAX` by `NodeId`.
            #[allow(clippy::cast_possible_truncation)]
            assignment: assignment.iter().map(|&v| v as u32).collect(),
            node_weight,
            node_task_count,
            moves_since_rebuild: 0,
        })
    }

    /// The adversarial initial state: every task on one node (the paper's
    /// worst case `Ψ₀(X₀) ≤ m²`, used in the proof of Lemma 3.15).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn all_on_node(system: &System, node: NodeId) -> Self {
        assert!(node.index() < system.node_count(), "node out of range");
        let assignment = vec![node.index(); system.task_count()];
        Self::from_assignment(system, &assignment).expect("constant assignment is valid")
    }

    /// The node currently hosting `task`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn task_node(&self, task: TaskId) -> NodeId {
        NodeId(self.assignment[task.0] as usize)
    }

    /// `W_i(x)`: total weight on node `i`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn node_weight(&self, node: NodeId) -> f64 {
        self.node_weight[node.index()]
    }

    /// Number of tasks on node `i` (`w_i(x)` for uniform tasks).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn node_task_count(&self, node: NodeId) -> usize {
        self.node_task_count[node.index()] as usize
    }

    /// The full node-weight vector `(W_1, …, W_n)`.
    #[inline]
    pub fn node_weights(&self) -> &[f64] {
        &self.node_weight
    }

    /// The load `ℓ_i(x) = W_i(x)/s_i`.
    #[inline]
    pub fn load(&self, system: &System, node: NodeId) -> f64 {
        self.node_weight[node.index()] / system.speeds().speed(node.index())
    }

    /// All loads as a vector.
    pub fn loads(&self, system: &System) -> Vec<f64> {
        self.node_weight
            .iter()
            .zip(system.speeds().as_slice())
            .map(|(w, s)| w / s)
            .collect()
    }

    /// The deviation vector `e(x) = w(x) − w̄` (§2); entries sum to 0.
    pub fn deviations(&self, system: &System) -> Vec<f64> {
        self.node_weight
            .iter()
            .zip(system.balanced_work())
            .map(|(w, b)| w - b)
            .collect()
    }

    /// Moves one task immediately (used by tests and best-response
    /// dynamics; protocol rounds use [`TaskState::apply_moves`]).
    ///
    /// # Panics
    ///
    /// Panics if the task or node is out of range.
    pub fn apply_move(&mut self, system: &System, task: TaskId, to: NodeId) {
        assert!(to.index() < system.node_count(), "destination out of range");
        let from = self.assignment[task.0] as usize;
        if from == to.index() {
            return;
        }
        let w = system.tasks().weight(task);
        self.node_weight[from] -= w;
        self.node_weight[to.index()] += w;
        self.node_task_count[from] -= 1;
        self.node_task_count[to.index()] += 1;
        // Lossless: `to.index()` round-trips a `NodeId`'s inner `u32`.
        #[allow(clippy::cast_possible_truncation)]
        {
            self.assignment[task.0] = to.index() as u32;
        }
        self.moves_since_rebuild += 1;
        if self.moves_since_rebuild >= REBUILD_INTERVAL {
            self.rebuild_aggregates(system);
        }
    }

    /// Commits a batch of migrations decided against the round-start
    /// snapshot (the synchronous-round semantics of Algorithms 1 and 2).
    pub fn apply_moves(&mut self, system: &System, moves: &[Move]) {
        for m in moves {
            self.apply_move(system, m.task, m.to);
        }
    }

    /// Recomputes node aggregates from the assignment, clearing
    /// floating-point drift from incremental updates.
    pub fn rebuild_aggregates(&mut self, system: &System) {
        let n = system.node_count();
        let mut node_weight = vec![0.0f64; n];
        let mut node_task_count = vec![0u32; n];
        for (task, &node) in self.assignment.iter().enumerate() {
            node_weight[node as usize] += system.tasks().weight(TaskId(task));
            node_task_count[node as usize] += 1;
        }
        self.node_weight = node_weight;
        self.node_task_count = node_task_count;
        self.moves_since_rebuild = 0;
    }

    /// Builds the per-node task index `x(i)` (§4) on demand, in O(m).
    pub fn tasks_by_node(&self, system: &System) -> Vec<Vec<TaskId>> {
        let mut by_node = vec![Vec::new(); system.node_count()];
        for (task, &node) in self.assignment.iter().enumerate() {
            by_node[node as usize].push(TaskId(task));
        }
        by_node
    }

    /// Verifies conservation invariants: aggregates match the assignment
    /// and total weight equals `W`. Returns a description of the first
    /// violation, if any.
    pub fn check_invariants(&self, system: &System) -> Result<(), String> {
        if self.assignment.len() != system.task_count() {
            return Err(format!(
                "assignment length {} != task count {}",
                self.assignment.len(),
                system.task_count()
            ));
        }
        let mut weight = vec![0.0f64; system.node_count()];
        let mut count = vec![0u32; system.node_count()];
        for (task, &node) in self.assignment.iter().enumerate() {
            let node = node as usize;
            if node >= system.node_count() {
                return Err(format!("task {task} on out-of-range node {node}"));
            }
            weight[node] += system.tasks().weight(TaskId(task));
            count[node] += 1;
        }
        for i in 0..system.node_count() {
            if count[i] != self.node_task_count[i] {
                return Err(format!(
                    "node {i}: cached count {} != actual {}",
                    self.node_task_count[i], count[i]
                ));
            }
            let tol = 1e-6 * weight[i].abs().max(1.0);
            if (weight[i] - self.node_weight[i]).abs() > tol {
                return Err(format!(
                    "node {i}: cached weight {} != actual {}",
                    self.node_weight[i], weight[i]
                ));
            }
        }
        let total: f64 = self.node_weight.iter().sum();
        let expected = system.tasks().total_weight();
        if (total - expected).abs() > 1e-6 * expected.max(1.0) {
            return Err(format!("total weight {total} != {expected}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slb_graphs::generators;

    fn small_system() -> System {
        System::new(
            generators::path(3),
            SpeedVector::new(vec![1.0, 2.0, 1.0]).unwrap(),
            TaskSet::uniform(8),
        )
        .unwrap()
    }

    #[test]
    fn system_accessors() {
        let s = small_system();
        assert_eq!(s.node_count(), 3);
        assert_eq!(s.task_count(), 8);
        assert!((s.average_load() - 2.0).abs() < 1e-12);
        assert_eq!(s.balanced_work(), &[2.0, 4.0, 2.0]);
        assert_eq!(s.graph().edge_count(), 2);
        assert_eq!(s.speeds().max(), 2.0);
        assert_eq!(s.tasks().len(), 8);
    }

    #[test]
    fn speed_mismatch_rejected() {
        let err = System::new(
            generators::path(3),
            SpeedVector::uniform(2),
            TaskSet::uniform(1),
        )
        .unwrap_err();
        assert_eq!(
            err,
            ModelError::SpeedCountMismatch {
                nodes: 3,
                speeds: 2
            }
        );
        assert!(err.to_string().contains("3 nodes"));
    }

    #[test]
    fn state_from_assignment() {
        let s = small_system();
        let st = TaskState::from_assignment(&s, &[0, 0, 0, 1, 1, 2, 2, 2]).unwrap();
        assert_eq!(st.node_weight(NodeId(0)), 3.0);
        assert_eq!(st.node_task_count(NodeId(1)), 2);
        assert_eq!(st.load(&s, NodeId(1)), 1.0);
        assert_eq!(st.task_node(TaskId(5)), NodeId(2));
        assert_eq!(st.loads(&s), vec![3.0, 1.0, 3.0]);
        let dev = st.deviations(&s);
        assert_eq!(dev, vec![1.0, -2.0, 1.0]);
        assert!((dev.iter().sum::<f64>()).abs() < 1e-12);
        st.check_invariants(&s).unwrap();
    }

    #[test]
    fn bad_assignments_rejected() {
        let s = small_system();
        assert!(matches!(
            TaskState::from_assignment(&s, &[0, 1]),
            Err(ModelError::AssignmentLengthMismatch { .. })
        ));
        assert!(matches!(
            TaskState::from_assignment(&s, &[0, 0, 0, 0, 0, 0, 0, 9]),
            Err(ModelError::AssignmentOutOfRange {
                task: 7,
                node: 9,
                ..
            })
        ));
    }

    #[test]
    fn all_on_node_initial_state() {
        let s = small_system();
        let st = TaskState::all_on_node(&s, NodeId(1));
        assert_eq!(st.node_task_count(NodeId(1)), 8);
        assert_eq!(st.node_weight(NodeId(0)), 0.0);
        st.check_invariants(&s).unwrap();
    }

    #[test]
    fn moves_update_aggregates() {
        let s = small_system();
        let mut st = TaskState::all_on_node(&s, NodeId(0));
        st.apply_move(&s, TaskId(0), NodeId(1));
        st.apply_move(&s, TaskId(1), NodeId(1));
        st.apply_move(&s, TaskId(0), NodeId(2));
        assert_eq!(st.node_task_count(NodeId(0)), 6);
        assert_eq!(st.node_task_count(NodeId(1)), 1);
        assert_eq!(st.node_task_count(NodeId(2)), 1);
        assert_eq!(st.task_node(TaskId(0)), NodeId(2));
        st.check_invariants(&s).unwrap();
        // Self-move is a no-op.
        let before = st.clone();
        st.apply_move(&s, TaskId(3), NodeId(0));
        assert_eq!(st, before);
    }

    #[test]
    fn batch_moves() {
        let s = small_system();
        let mut st = TaskState::all_on_node(&s, NodeId(0));
        st.apply_moves(
            &s,
            &[
                Move {
                    task: TaskId(0),
                    to: NodeId(1),
                },
                Move {
                    task: TaskId(1),
                    to: NodeId(2),
                },
            ],
        );
        assert_eq!(st.node_task_count(NodeId(0)), 6);
        st.check_invariants(&s).unwrap();
    }

    #[test]
    fn tasks_by_node_index() {
        let s = small_system();
        let st = TaskState::from_assignment(&s, &[2, 2, 1, 0, 0, 0, 1, 2]).unwrap();
        let idx = st.tasks_by_node(&s);
        assert_eq!(idx[0], vec![TaskId(3), TaskId(4), TaskId(5)]);
        assert_eq!(idx[1], vec![TaskId(2), TaskId(6)]);
        assert_eq!(idx[2], vec![TaskId(0), TaskId(1), TaskId(7)]);
    }

    #[test]
    fn rebuild_clears_drift() {
        let s = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.1, 0.2, 0.3]).unwrap(),
        )
        .unwrap();
        let mut st = TaskState::from_assignment(&s, &[0, 0, 1]).unwrap();
        for _ in 0..100 {
            st.apply_move(&s, TaskId(0), NodeId(1));
            st.apply_move(&s, TaskId(0), NodeId(0));
        }
        st.rebuild_aggregates(&s);
        assert!((st.node_weight(NodeId(0)) - 0.3).abs() < 1e-12);
        assert!((st.node_weight(NodeId(1)) - 0.3).abs() < 1e-12);
        st.check_invariants(&s).unwrap();
    }

    #[test]
    fn weighted_state_loads() {
        let s = System::new(
            generators::path(2),
            SpeedVector::new(vec![1.0, 4.0]).unwrap(),
            TaskSet::weighted(vec![0.5, 1.0, 0.5]).unwrap(),
        )
        .unwrap();
        let st = TaskState::from_assignment(&s, &[0, 1, 1]).unwrap();
        assert_eq!(st.node_weight(NodeId(0)), 0.5);
        assert_eq!(st.node_weight(NodeId(1)), 1.5);
        assert!((st.load(&s, NodeId(1)) - 0.375).abs() < 1e-12);
        // W/S = 2/5.
        assert!((s.average_load() - 0.4).abs() < 1e-12);
    }
}
