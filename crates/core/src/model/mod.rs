//! The problem model: networks of machines with speeds, task populations,
//! and assignment states.
//!
//! See §1.1 and §2 of the paper for the formal definitions mirrored here:
//!
//! * [`SpeedVector`] — speeds `s_i` with `s_min`, `s_max`, `S = Σs_i`, the
//!   granularity `ε` of §3.2, and the means of Definition 3.19,
//! * [`TaskSet`] — uniform or weighted (`w_ℓ ∈ (0, 1]`) task populations,
//! * [`System`] — the immutable instance (graph × speeds × tasks),
//! * [`TaskState`] — the mutable state `x` with loads `ℓ_i = W_i/s_i` and
//!   deviations `e_i = W_i − w̄_i`.

mod speeds;
mod state;
mod tasks;

pub use speeds::{SpeedError, SpeedVector};
pub use state::{ModelError, Move, System, TaskState};
pub use tasks::{TaskError, TaskId, TaskSet};
