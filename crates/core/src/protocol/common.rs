//! Shared protocol arithmetic: `α`, migration probabilities, and expected
//! flows.
//!
//! Algorithm 1 (p. 5) migrates a task from `i` to a randomly chosen
//! neighbor `j` with probability
//!
//! ```text
//! p_ij = deg(i)/d_ij · (ℓ_i − ℓ_j) / (α · (1/s_i + 1/s_j) · W_i)
//! ```
//!
//! whenever `ℓ_i − ℓ_j > 1/s_j`, with `α = 4·s_max` (§3) — raised to
//! `4·s_max/ε` for the exact-convergence phase when the speed granularity
//! is `ε < 1` (§3.2). Combined with the uniform neighbor choice
//! (probability `1/deg(i)` each), the expected weight crossing edge
//! `(i, j)` is exactly the flow of Definition 3.1/4.1:
//!
//! ```text
//! f_ij = (ℓ_i − ℓ_j) / (α · d_ij · (1/s_i + 1/s_j))
//! ```
//!
//! `p_ij ≤ 1/4` always: `ℓ_i − ℓ_j ≤ ℓ_i = W_i/s_i ≤ W_i·(1/s_i + 1/s_j)`,
//! `deg(i) ≤ d_ij`, and `α ≥ 4` — asserted in debug builds.

use crate::model::{SpeedVector, System};

/// The damping constant `α`.
///
/// The paper fixes `α = 4·s_max` for the approximate phase and
/// `α = 4·s_max/ε` for convergence to an exact NE with speed granularity
/// `ε` (§3.2). `Custom` exists for ablation experiments on the damping
/// (larger `α` slows convergence, smaller risks oscillation).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Alpha {
    /// `α = 4·s_max` (default of Algorithm 1/2).
    #[default]
    Approximate,
    /// `α = 4·s_max/ε`; requires the speed vector to carry a granularity.
    Exact,
    /// An explicit value (must be ≥ `4·s_max` to keep `p_ij ≤ 1/4`).
    Custom(f64),
}

impl Alpha {
    /// Resolves the numeric value of `α` for a system.
    ///
    /// # Panics
    ///
    /// Panics if `Exact` is requested but the speed vector has no declared
    /// granularity, or if a `Custom` value is below `4·s_max`.
    pub fn resolve(self, speeds: &SpeedVector) -> f64 {
        match self {
            Alpha::Approximate => 4.0 * speeds.max(),
            Alpha::Exact => {
                let eps = speeds
                    .granularity()
                    .expect("Alpha::Exact requires a speed granularity (Theorem 1.2)");
                4.0 * speeds.max() / eps
            }
            Alpha::Custom(a) => {
                assert!(
                    a >= 4.0 * speeds.max(),
                    "custom α = {a} must be at least 4·s_max = {}",
                    4.0 * speeds.max()
                );
                a
            }
        }
    }
}

/// The migration probability of Algorithms 1 and 2 (general,
/// Definition-4.1-consistent form).
///
/// Returns 0 when the load gap is non-positive; the *condition*
/// (`ℓ_i − ℓ_j > threshold/s_j`) is checked by the caller, since it differs
/// between protocols.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn migration_probability(
    deg_i: usize,
    d_ij: usize,
    load_i: f64,
    load_j: f64,
    s_i: f64,
    s_j: f64,
    node_weight_i: f64,
    alpha: f64,
) -> f64 {
    let gap = load_i - load_j;
    if gap <= 0.0 || node_weight_i <= 0.0 {
        return 0.0;
    }
    let p = (deg_i as f64 / d_ij as f64) * gap / (alpha * (1.0 / s_i + 1.0 / s_j) * node_weight_i);
    debug_assert!(
        (0.0..=0.25 + 1e-12).contains(&p),
        "p_ij = {p} outside [0, 1/4]"
    );
    p
}

/// The printed Algorithm 2 probability `deg(i)/d_ij · (W_i − W_j)/(2α·W_i)`
/// — the uniform-speed special case kept for exact reproduction (see
/// DESIGN.md, inconsistency #2).
#[inline]
pub fn migration_probability_printed(
    deg_i: usize,
    d_ij: usize,
    weight_i: f64,
    weight_j: f64,
    alpha: f64,
) -> f64 {
    if weight_i <= weight_j || weight_i <= 0.0 {
        return 0.0;
    }
    let p = (deg_i as f64 / d_ij as f64) * (weight_i - weight_j) / (2.0 * alpha * weight_i);
    debug_assert!(
        (0.0..=1.0).contains(&p),
        "printed p_ij = {p} outside [0, 1]"
    );
    p
}

/// The expected flow `f_ij` of Definition 3.1 / 4.1 over a directed edge,
/// including the migration condition `ℓ_i − ℓ_j > 1/s_j`.
#[inline]
pub fn expected_flow(d_ij: usize, load_i: f64, load_j: f64, s_i: f64, s_j: f64, alpha: f64) -> f64 {
    let gap = load_i - load_j;
    if gap <= 1.0 / s_j {
        return 0.0;
    }
    gap / (alpha * d_ij as f64 * (1.0 / s_i + 1.0 / s_j))
}

/// All directed expected flows in a state: entries `(i, j, f_ij)` for the
/// non-Nash edges `Ẽ(x)` (Definition 3.7).
pub fn expected_flows(system: &System, loads: &[f64], alpha: f64) -> Vec<(usize, usize, f64)> {
    let g = system.graph();
    let s = system.speeds();
    let mut flows = Vec::new();
    for &(a, b) in g.edges() {
        for (i, j) in [(a.index(), b.index()), (b.index(), a.index())] {
            let f = expected_flow(
                g.d_max_endpoint(slb_graphs::NodeId(i), slb_graphs::NodeId(j)),
                loads[i],
                loads[j],
                s.speed(i),
                s.speed(j),
                alpha,
            );
            if f > 0.0 {
                flows.push((i, j, f));
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskSet;
    use slb_graphs::generators;

    #[test]
    fn alpha_resolution() {
        let s = SpeedVector::new(vec![1.0, 3.0]).unwrap();
        assert_eq!(Alpha::Approximate.resolve(&s), 12.0);
        assert_eq!(Alpha::Custom(20.0).resolve(&s), 20.0);
        assert_eq!(Alpha::default(), Alpha::Approximate);
        let gs = SpeedVector::with_granularity(vec![0.5, 1.5], 0.5).unwrap();
        assert_eq!(Alpha::Exact.resolve(&gs), 4.0 * 1.5 / 0.5);
        let unit = SpeedVector::uniform(4);
        assert_eq!(Alpha::Exact.resolve(&unit), 4.0);
    }

    #[test]
    #[should_panic(expected = "requires a speed granularity")]
    fn exact_alpha_without_granularity_panics() {
        let s = SpeedVector::new(vec![1.0, std::f64::consts::PI]).unwrap();
        let _ = Alpha::Exact.resolve(&s);
    }

    #[test]
    #[should_panic(expected = "must be at least 4·s_max")]
    fn too_small_custom_alpha_panics() {
        let s = SpeedVector::new(vec![1.0, 3.0]).unwrap();
        let _ = Alpha::Custom(1.0).resolve(&s);
    }

    #[test]
    fn probability_is_at_most_quarter() {
        // Worst case: all weight on i, empty j, equal unit speeds, d=deg.
        let p = migration_probability(4, 4, 10.0, 0.0, 1.0, 1.0, 10.0, 4.0);
        assert!(p <= 0.25 + 1e-12);
        assert!((p - 10.0 / (4.0 * 2.0 * 10.0)).abs() < 1e-12);
        // Degree asymmetry shrinks it.
        let p2 = migration_probability(2, 4, 10.0, 0.0, 1.0, 1.0, 10.0, 4.0);
        assert!((p2 - p / 2.0).abs() < 1e-12);
        // Non-positive gap gives zero.
        assert_eq!(
            migration_probability(2, 2, 1.0, 1.0, 1.0, 1.0, 1.0, 4.0),
            0.0
        );
        assert_eq!(
            migration_probability(2, 2, 1.0, 2.0, 1.0, 1.0, 1.0, 4.0),
            0.0
        );
    }

    #[test]
    fn printed_probability_uniform_speed_agreement() {
        // With s_i = s_j = 1 and α shared, the printed form equals the
        // Definition-4.1 form: (W_i−W_j)/(2αW_i) vs gap/(α·2·W_i).
        let (wi, wj) = (8.0, 2.0);
        let a = migration_probability(3, 3, wi, wj, 1.0, 1.0, wi, 4.0);
        let b = migration_probability_printed(3, 3, wi, wj, 4.0);
        assert!((a - b).abs() < 1e-12);
        assert_eq!(migration_probability_printed(3, 3, 2.0, 8.0, 4.0), 0.0);
    }

    #[test]
    fn expected_flow_threshold() {
        // Gap exactly 1/s_j → no flow; just above → positive.
        assert_eq!(expected_flow(2, 2.0, 1.0, 1.0, 1.0, 4.0), 0.0);
        let f = expected_flow(2, 2.1, 1.0, 1.0, 1.0, 4.0);
        assert!((f - 1.1 / (4.0 * 2.0 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn expected_flow_matches_rate_times_probability() {
        // f_ij = W_i · (1/deg i) · p_ij.
        let (deg_i, d_ij) = (3usize, 5usize);
        let (li, lj, si, sj, wi, alpha) = (4.0, 1.0, 1.0, 2.0, 4.0, 8.0);
        let p = migration_probability(deg_i, d_ij, li, lj, si, sj, wi, alpha);
        let f = expected_flow(d_ij, li, lj, si, sj, alpha);
        assert!((f - wi / deg_i as f64 * p).abs() < 1e-12);
    }

    #[test]
    fn flows_collects_non_nash_edges_only() {
        let system = crate::model::System::new(
            generators::path(3),
            SpeedVector::uniform(3),
            TaskSet::uniform(6),
        )
        .unwrap();
        // Loads (6, 0, 0): only edge 0→1 has flow.
        let flows = expected_flows(&system, &[6.0, 0.0, 0.0], 4.0);
        assert_eq!(flows.len(), 1);
        assert_eq!((flows[0].0, flows[0].1), (0, 1));
        assert!(flows[0].2 > 0.0);
        // Balanced loads: no flows.
        assert!(expected_flows(&system, &[2.0, 2.0, 2.0], 4.0).is_empty());
    }
}
