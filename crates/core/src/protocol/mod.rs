//! The load-balancing protocols: Algorithm 1, Algorithm 2, the baseline of
//! \[6\], and discrete diffusion.
//!
//! All randomized protocols share the synchronous-round semantics of the
//! paper: every task decides against the *round-start* snapshot (loads and
//! node weights), decisions are independent given the snapshot, and all
//! migrations commit simultaneously. That structure is captured by
//! [`TaskProtocol::decide`], which scores an arbitrary sub-range of the
//! task population — the sequential engine passes `0..m`, the parallel
//! engine partitions the range into deterministic chunks.
//!
//! [`Protocol`] is the engine-facing trait (one committed round); every
//! [`TaskProtocol`] gets it via a blanket implementation, while the
//! deterministic [`diffusion::Diffusion`] protocol implements it
//! directly (its decisions are per-edge, not per-task).

mod best_response;
mod bhs_baseline;
mod common;
pub mod diffusion;
mod selfish_uniform;
mod selfish_weighted;

pub use best_response::BestResponse;
pub use bhs_baseline::BhsBaseline;
pub use common::{
    expected_flow, expected_flows, migration_probability, migration_probability_printed, Alpha,
};
pub use diffusion::{Diffusion, ErrorFeedbackDiffusion};
pub use selfish_uniform::SelfishUniform;
pub use selfish_weighted::{SelfishWeighted, WeightedRule};

use crate::model::{Move, System, TaskState};
use rand::rngs::StdRng;
use std::ops::Range;

/// The round-start snapshot against which all migration decisions of one
/// round are evaluated.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Loads `ℓ_i = W_i/s_i` at round start.
    pub loads: Vec<f64>,
    /// Node weights `W_i` at round start.
    pub node_weights: Vec<f64>,
}

impl Snapshot {
    /// Captures the snapshot of a state.
    pub fn capture(system: &System, state: &TaskState) -> Self {
        Snapshot {
            loads: state.loads(system),
            node_weights: state.node_weights().to_vec(),
        }
    }
}

/// Statistics of one committed round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RoundReport {
    /// Number of tasks that migrated.
    pub migrations: usize,
    /// Total weight that migrated.
    pub migrated_weight: f64,
}

/// A protocol that can execute one synchronous round.
pub trait Protocol {
    /// Short label for reports and CSV output.
    fn name(&self) -> &'static str;

    /// Executes one round: decide against the round-start snapshot, commit
    /// all moves, and report.
    fn round(&self, system: &System, state: &mut TaskState, rng: &mut StdRng) -> RoundReport;
}

/// A randomized per-task protocol (Algorithms 1, 2, and the \[6\] baseline).
///
/// Implementors answer "which tasks in `range` migrate, and where?" against
/// an immutable snapshot. Determinism contract: `decide` must consume
/// randomness only from `rng` and may not depend on tasks outside `range`,
/// so that chunked parallel execution with per-chunk seeded generators
/// reproduces a well-defined distribution regardless of thread count.
pub trait TaskProtocol: Sync {
    /// Short label for reports and CSV output.
    fn protocol_name(&self) -> &'static str;

    /// Appends the migrations of tasks `range` to `out`.
    fn decide(
        &self,
        system: &System,
        snapshot: &Snapshot,
        state: &TaskState,
        range: Range<usize>,
        rng: &mut StdRng,
        out: &mut Vec<Move>,
    );
}

/// Commits a batch of moves and summarizes it.
pub(crate) fn commit(system: &System, state: &mut TaskState, moves: &[Move]) -> RoundReport {
    let mut migrated_weight = 0.0;
    let mut migrations = 0usize;
    for m in moves {
        if state.task_node(m.task) != m.to {
            migrations += 1;
            migrated_weight += system.tasks().weight(m.task);
        }
    }
    state.apply_moves(system, moves);
    RoundReport {
        migrations,
        migrated_weight,
    }
}

impl<T: TaskProtocol> Protocol for T {
    fn name(&self) -> &'static str {
        self.protocol_name()
    }

    fn round(&self, system: &System, state: &mut TaskState, rng: &mut StdRng) -> RoundReport {
        let snapshot = Snapshot::capture(system, state);
        let mut moves = Vec::new();
        self.decide(
            system,
            &snapshot,
            state,
            0..system.task_count(),
            rng,
            &mut moves,
        );
        commit(system, state, &moves)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpeedVector, TaskId, TaskSet};
    use slb_graphs::{generators, NodeId};

    #[test]
    fn snapshot_captures_loads_and_weights() {
        let sys = System::new(
            generators::path(2),
            SpeedVector::new(vec![1.0, 2.0]).unwrap(),
            TaskSet::uniform(4),
        )
        .unwrap();
        let st = TaskState::from_assignment(&sys, &[0, 0, 0, 1]).unwrap();
        let snap = Snapshot::capture(&sys, &st);
        assert_eq!(snap.node_weights, vec![3.0, 1.0]);
        assert_eq!(snap.loads, vec![3.0, 0.5]);
    }

    #[test]
    fn commit_counts_real_moves_only() {
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::uniform(3),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let report = commit(
            &sys,
            &mut st,
            &[
                Move {
                    task: TaskId(0),
                    to: NodeId(1),
                },
                Move {
                    task: TaskId(1),
                    to: NodeId(0), // no-op: already there
                },
            ],
        );
        assert_eq!(report.migrations, 1);
        assert_eq!(report.migrated_weight, 1.0);
        assert_eq!(st.node_task_count(NodeId(1)), 1);
    }
}
