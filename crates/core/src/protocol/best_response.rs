//! Sequential best-response dynamics — the *coordinated* baseline.
//!
//! The selfish load-balancing literature the paper builds on (Even-Dar,
//! Kesselman & Mansour \[13\]; Feldmann et al. \[15\]) studies dynamics where
//! tasks move one at a time to their best available machine. Such dynamics
//! converge monotonically (each move strictly decreases the potential
//! `Φ₀`), but they presume global coordination — exactly what the paper's
//! concurrent protocol avoids. This implementation exists as the
//! contrast baseline for the experiment harness: *rounds* are cheap to
//! count, but one best-response round performs `m` sequential, centrally
//! ordered moves, a fundamentally different (and in practice unavailable)
//! cost model.
//!
//! One round: tasks are visited in task order; each inspects its machine's
//! neighbors against the **live** state (not a snapshot) and moves to the
//! neighbor with the lowest post-move load, provided that strictly lowers
//! its perceived load (`ℓ_i − ℓ_j > w_ℓ/s_j`).

use crate::model::{System, TaskState};
use crate::protocol::{Protocol, RoundReport};
use rand::rngs::StdRng;
use slb_graphs::NodeId;

/// Sequential best-response dynamics (deterministic; ignores the RNG).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use slb_core::equilibrium::{self, Threshold};
/// use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
/// use slb_core::protocol::{BestResponse, Protocol};
/// use slb_graphs::{generators, NodeId};
///
/// let system = System::new(
///     generators::ring(6),
///     SpeedVector::uniform(6),
///     TaskSet::uniform(60),
/// )?;
/// let mut state = TaskState::all_on_node(&system, NodeId(0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0); // unused
/// let p = BestResponse::new();
/// // A handful of sweeps suffices on a small ring.
/// for _ in 0..20 { p.round(&system, &mut state, &mut rng); }
/// assert!(equilibrium::is_nash(&system, &state, Threshold::LightestTask));
/// # Ok::<(), slb_core::model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BestResponse {
    _private: (),
}

impl BestResponse {
    /// Creates the dynamics.
    pub fn new() -> Self {
        BestResponse::default()
    }
}

impl Protocol for BestResponse {
    fn name(&self) -> &'static str {
        "best-response"
    }

    fn round(&self, system: &System, state: &mut TaskState, _rng: &mut StdRng) -> RoundReport {
        let g = system.graph();
        let speeds = system.speeds();
        let mut migrations = 0usize;
        let mut migrated_weight = 0.0f64;
        for t in 0..system.task_count() {
            let task = crate::model::TaskId(t);
            let w = system.tasks().weight(task);
            let i = state.task_node(task);
            let load_i = state.load(system, i);
            // Best neighbor by post-move load (w already included).
            let mut best: Option<(NodeId, f64)> = None;
            for &j in g.neighbors(i) {
                let s_j = speeds.speed(j.index());
                let post = (state.node_weight(j) + w) / s_j;
                if post < best.map_or(f64::INFINITY, |(_, p)| p) {
                    best = Some((j, post));
                }
            }
            if let Some((j, post)) = best {
                // Strict improvement over the current perceived load.
                if post < load_i - 1e-12 {
                    state.apply_move(system, task, j);
                    migrations += 1;
                    migrated_weight += w;
                }
            }
        }
        RoundReport {
            migrations,
            migrated_weight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{self, Threshold};
    use crate::model::{SpeedVector, TaskSet};
    use crate::potential;
    use rand::SeedableRng;
    use slb_graphs::generators;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn deterministic_and_monotone() {
        let sys = System::new(
            generators::torus(3, 3),
            SpeedVector::uniform(9),
            TaskSet::uniform(90),
        )
        .unwrap();
        let mut a = TaskState::all_on_node(&sys, NodeId(0));
        let mut b = TaskState::all_on_node(&sys, NodeId(0));
        let p = BestResponse::new();
        let mut phi_prev = potential::report(&sys, &a).phi0;
        for _ in 0..30 {
            p.round(&sys, &mut a, &mut rng());
            let phi = potential::report(&sys, &a).phi0;
            assert!(phi <= phi_prev + 1e-9, "Φ₀ must not increase");
            phi_prev = phi;
            p.round(&sys, &mut b, &mut rng());
        }
        assert_eq!(a, b);
        a.check_invariants(&sys).unwrap();
    }

    #[test]
    fn converges_to_exact_weighted_nash() {
        let sys = System::new(
            generators::ring(5),
            SpeedVector::integer(vec![1, 2, 1, 3, 1]).unwrap(),
            TaskSet::weighted(vec![0.9, 0.5, 0.3, 0.2, 0.2, 0.1, 0.7, 0.4, 0.6, 0.8]).unwrap(),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let p = BestResponse::new();
        let mut reached = false;
        for _ in 0..2000 {
            let r = p.round(&sys, &mut st, &mut rng());
            if r.migrations == 0 {
                reached = true;
                break;
            }
        }
        assert!(reached, "best response should quiesce");
        assert!(
            equilibrium::is_nash(&sys, &st, Threshold::LightestTask),
            "quiescent best-response state must be an exact NE"
        );
    }

    #[test]
    fn nash_state_is_fixed_point() {
        let sys = System::new(
            generators::path(3),
            SpeedVector::uniform(3),
            TaskSet::uniform(6),
        )
        .unwrap();
        let mut st = TaskState::from_assignment(&sys, &[0, 0, 1, 1, 2, 2]).unwrap();
        let before = st.clone();
        let p = BestResponse::new();
        let r = p.round(&sys, &mut st, &mut rng());
        assert_eq!(r.migrations, 0);
        assert_eq!(st, before);
    }

    #[test]
    fn much_faster_in_rounds_than_randomized() {
        // The coordinated baseline needs far fewer rounds (each round does
        // m sequential moves) — the comparison motivating the paper.
        let sys = System::new(
            generators::ring(6),
            SpeedVector::uniform(6),
            TaskSet::uniform(120),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let p = BestResponse::new();
        let mut rounds = 0u64;
        loop {
            rounds += 1;
            if p.round(&sys, &mut st, &mut rng()).migrations == 0 || rounds > 1000 {
                break;
            }
        }
        assert!(rounds < 100, "best response took {rounds} rounds");
        assert!(equilibrium::is_nash(&sys, &st, Threshold::LightestTask));
    }
}
