//! Discrete diffusive load balancing with rounded expected flows.
//!
//! §1 of the paper notes that its techniques "apply to discrete diffusive
//! load balancing where each node sends the rounded expected flow of the
//! randomized protocol to its neighbors" (the companion manuscript \[2\]).
//! [`Diffusion`] implements exactly that deterministic protocol: per
//! directed edge `(i, j)` it computes the expected flow `f_ij` of
//! Definition 3.1/4.1 and ships `round(f_ij)` worth of tasks from `i` to
//! `j`, selecting concrete tasks first-fit in task order.
//!
//! [`continuous_step`] additionally exposes the idealized *continuous*
//! diffusion on divisible load (the classical dynamics of Cybenko \[10\] and
//! Elsässer et al. \[11\] that the randomized protocol mimics in
//! expectation), which the experiment harness uses as the ground-truth
//! envelope in figure F5.

use crate::model::{Move, System, TaskState};
use crate::protocol::common::{expected_flow, Alpha};
use crate::protocol::{commit, Protocol, RoundReport};
use rand::rngs::StdRng;

/// How the expected flow is discretized into whole tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Rounding {
    /// Send `⌊f_ij⌋` (conservative; never overshoots the expectation).
    Floor,
    /// Send `⌊f_ij⌉` (nearest; the rounding of \[2\]).
    #[default]
    Nearest,
}

/// Deterministic discrete diffusion protocol.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
/// use slb_core::protocol::{Diffusion, Protocol};
/// use slb_graphs::{generators, NodeId};
///
/// let system = System::new(
///     generators::ring(4),
///     SpeedVector::uniform(4),
///     TaskSet::uniform(400),
/// )?;
/// let mut state = TaskState::all_on_node(&system, NodeId(0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0); // unused: deterministic
/// let r = Diffusion::new().round(&system, &mut state, &mut rng);
/// assert!(r.migrations > 0);
/// # Ok::<(), slb_core::model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Diffusion {
    rounding: Rounding,
    alpha: Alpha,
}

impl Diffusion {
    /// Diffusion with nearest rounding and `α = 4·s_max`.
    pub fn new() -> Self {
        Diffusion::default()
    }

    /// Diffusion with an explicit rounding mode.
    pub fn with_rounding(rounding: Rounding) -> Self {
        Diffusion {
            rounding,
            alpha: Alpha::Approximate,
        }
    }

    /// Overrides the damping constant.
    pub fn with_alpha(mut self, alpha: Alpha) -> Self {
        self.alpha = alpha;
        self
    }
}

impl Protocol for Diffusion {
    fn name(&self) -> &'static str {
        "diffusion"
    }

    fn round(&self, system: &System, state: &mut TaskState, _rng: &mut StdRng) -> RoundReport {
        let g = system.graph();
        let speeds = system.speeds();
        let alpha = self.alpha.resolve(speeds);
        let loads = state.loads(system);
        let by_node = state.tasks_by_node(system);
        // Cursor into each node's task list so successive edges of the same
        // source take disjoint tasks.
        let mut cursor = vec![0usize; system.node_count()];
        let mut moves: Vec<Move> = Vec::new();

        for &(a, b) in g.edges() {
            for (i, j) in [(a, b), (b, a)] {
                let f = expected_flow(
                    g.d_max_endpoint(i, j),
                    loads[i.index()],
                    loads[j.index()],
                    speeds.speed(i.index()),
                    speeds.speed(j.index()),
                    alpha,
                );
                if f <= 0.0 {
                    continue;
                }
                let target = match self.rounding {
                    Rounding::Floor => f.floor(),
                    Rounding::Nearest => f.round(),
                };
                if target <= 0.0 {
                    continue;
                }
                // Ship tasks first-fit until the shipped weight would
                // exceed the target.
                let tasks = &by_node[i.index()];
                let mut shipped = 0.0f64;
                while cursor[i.index()] < tasks.len() {
                    let task = tasks[cursor[i.index()]];
                    let w = system.tasks().weight(task);
                    if shipped + w > target + 1e-12 {
                        break;
                    }
                    moves.push(Move { task, to: j });
                    shipped += w;
                    cursor[i.index()] += 1;
                }
            }
        }
        commit(system, state, &moves)
    }
}

/// Discrete diffusion with **error feedback**: the rounding remainder of
/// every directed edge is carried into the next round, so the *cumulative*
/// shipped weight tracks the cumulative expected flow within ±½ task.
///
/// This is the idea behind the improved discrete-diffusion bounds of the
/// companion manuscript \[2\] (and of Rabani–Sinclair–Wanka-style analyses):
/// plain nearest-rounding stalls once every per-round flow rounds to zero,
/// while error feedback keeps draining sub-unit flows. The F5 experiment
/// contrasts the two.
///
/// The per-edge carry is interior state (the [`Protocol`] trait takes
/// `&self`), guarded by a mutex; one value per directed edge, indexed by
/// `2·edge + direction`.
#[derive(Debug, Default)]
pub struct ErrorFeedbackDiffusion {
    alpha: Alpha,
    carry: parking_lot::Mutex<Vec<f64>>,
}

impl ErrorFeedbackDiffusion {
    /// Error-feedback diffusion with `α = 4·s_max`.
    pub fn new() -> Self {
        ErrorFeedbackDiffusion::default()
    }

    /// Overrides the damping constant.
    pub fn with_alpha(alpha: Alpha) -> Self {
        ErrorFeedbackDiffusion {
            alpha,
            carry: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Clears the accumulated per-edge carries (e.g. when reusing the
    /// protocol value on a fresh state).
    pub fn reset(&self) {
        self.carry.lock().clear();
    }
}

impl Protocol for ErrorFeedbackDiffusion {
    fn name(&self) -> &'static str {
        "diffusion-error-feedback"
    }

    fn round(&self, system: &System, state: &mut TaskState, _rng: &mut StdRng) -> RoundReport {
        let g = system.graph();
        let speeds = system.speeds();
        let alpha = self.alpha.resolve(speeds);
        let loads = state.loads(system);
        let by_node = state.tasks_by_node(system);
        let mut cursor = vec![0usize; system.node_count()];
        let mut moves: Vec<Move> = Vec::new();

        let mut carry = self.carry.lock();
        carry.resize(2 * g.edge_count(), 0.0);

        for (edge_idx, &(a, b)) in g.edges().iter().enumerate() {
            for (dir, (i, j)) in [(a, b), (b, a)].into_iter().enumerate() {
                let f = expected_flow(
                    g.d_max_endpoint(i, j),
                    loads[i.index()],
                    loads[j.index()],
                    speeds.speed(i.index()),
                    speeds.speed(j.index()),
                    alpha,
                );
                let slot = 2 * edge_idx + dir;
                let budget = f + carry[slot];
                let target = budget.floor();
                if target <= 0.0 {
                    carry[slot] = budget.min(1.0); // cap: stale credit must not explode
                    continue;
                }
                let tasks = &by_node[i.index()];
                let mut shipped = 0.0f64;
                while cursor[i.index()] < tasks.len() {
                    let task = tasks[cursor[i.index()]];
                    let w = system.tasks().weight(task);
                    if shipped + w > target + 1e-12 {
                        break;
                    }
                    moves.push(Move { task, to: j });
                    shipped += w;
                    cursor[i.index()] += 1;
                }
                carry[slot] = (budget - shipped).min(1.0);
            }
        }
        drop(carry);
        commit(system, state, &moves)
    }
}

/// One round of *continuous* diffusion on divisible load: returns the new
/// weight vector after every directed edge `(i, j)` ships its full
/// (unrounded) expected flow `f_ij`.
///
/// # Panics
///
/// Panics if `weights.len()` differs from the node count.
pub fn continuous_step(system: &System, weights: &[f64], alpha: Alpha) -> Vec<f64> {
    assert_eq!(
        weights.len(),
        system.node_count(),
        "weight vector length mismatch"
    );
    let g = system.graph();
    let speeds = system.speeds();
    let a = alpha.resolve(speeds);
    let loads: Vec<f64> = weights
        .iter()
        .zip(speeds.as_slice())
        .map(|(w, s)| w / s)
        .collect();
    let mut out = weights.to_vec();
    for &(x, y) in g.edges() {
        for (i, j) in [(x, y), (y, x)] {
            let f = expected_flow(
                g.d_max_endpoint(i, j),
                loads[i.index()],
                loads[j.index()],
                speeds.speed(i.index()),
                speeds.speed(j.index()),
                a,
            );
            if f > 0.0 {
                out[i.index()] -= f;
                out[j.index()] += f;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{self, Threshold};
    use crate::model::{SpeedVector, TaskSet};
    use crate::potential;
    use rand::SeedableRng;
    use slb_graphs::{generators, NodeId};

    fn sys(n: usize, m: usize) -> System {
        System::new(
            generators::ring(n),
            SpeedVector::uniform(n),
            TaskSet::uniform(m),
        )
        .unwrap()
    }

    #[test]
    fn deterministic_regardless_of_rng() {
        let s = sys(6, 120);
        let mut a = TaskState::all_on_node(&s, NodeId(0));
        let mut b = TaskState::all_on_node(&s, NodeId(0));
        let d = Diffusion::new();
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(999);
        for _ in 0..30 {
            d.round(&s, &mut a, &mut r1);
            d.round(&s, &mut b, &mut r2);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn conserves_tasks_and_reduces_potential() {
        let s = sys(8, 240);
        let mut st = TaskState::all_on_node(&s, NodeId(3));
        let before = potential::report(&s, &st).psi0;
        let d = Diffusion::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            d.round(&s, &mut st, &mut rng);
        }
        st.check_invariants(&s).unwrap();
        let after = potential::report(&s, &st).psi0;
        assert!(after < before / 10.0, "Ψ₀: {before} → {after}");
    }

    #[test]
    fn floor_rounding_never_moves_below_unit_flow() {
        let s = sys(4, 4);
        // Loads (2, ..): expected flows < 1 on this small instance, so
        // floor-rounding freezes everything.
        let mut st = TaskState::from_assignment(&s, &[0, 0, 1, 2]).unwrap();
        let d = Diffusion::with_rounding(Rounding::Floor);
        let mut rng = StdRng::seed_from_u64(0);
        let r = d.round(&s, &mut st, &mut rng);
        // f_ij = gap/(α·d_ij·2) = 2/(4·2·2) = 0.125 → floor 0.
        assert_eq!(r.migrations, 0);
    }

    #[test]
    fn reaches_stable_near_balanced_state() {
        let s = sys(5, 500);
        let mut st = TaskState::all_on_node(&s, NodeId(0));
        let d = Diffusion::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5000 {
            if d.round(&s, &mut st, &mut rng).migrations == 0 {
                break;
            }
        }
        // Once frozen, every *adjacent* gap satisfies f_ij < 0.5, i.e.
        // gap < 0.5·α·d_ij·(1/s_i + 1/s_j) = 0.5·4·2·2 = 8; across the ring
        // the spread can accumulate up to diam(C_5)·8 = 16.
        let gap = equilibrium::nash_gap(&s, &st, Threshold::UnitWeight);
        let loads = st.loads(&s);
        let spread = loads.iter().cloned().fold(f64::MIN, f64::max)
            - loads.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 16.0 + 1e-9, "load spread {spread} too large");
        // Relative to the mean load of 100, the Nash gap is small.
        assert!(gap < 0.5, "nash gap {gap}");
    }

    #[test]
    fn weighted_diffusion_conserves_weight() {
        let s = System::new(
            generators::torus(3, 3),
            SpeedVector::integer(vec![1, 1, 2, 1, 3, 1, 2, 1, 1]).unwrap(),
            TaskSet::weighted((0..90).map(|i| 0.05 + (i % 20) as f64 * 0.0475).collect()).unwrap(),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&s, NodeId(4));
        let d = Diffusion::new();
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            d.round(&s, &mut st, &mut rng);
        }
        st.check_invariants(&s).unwrap();
    }

    #[test]
    fn error_feedback_outperforms_plain_rounding() {
        // On an instance where plain nearest-rounding stalls with high
        // residual, error feedback keeps draining sub-unit flows.
        let s = sys(8, 400);
        let run = |plain: bool| {
            let mut st = TaskState::all_on_node(&s, NodeId(0));
            let mut rng = StdRng::seed_from_u64(0);
            if plain {
                let d = Diffusion::new();
                for _ in 0..3000 {
                    d.round(&s, &mut st, &mut rng);
                }
            } else {
                let d = ErrorFeedbackDiffusion::new();
                for _ in 0..3000 {
                    d.round(&s, &mut st, &mut rng);
                }
            }
            potential::report(&s, &st).psi0
        };
        let plain = run(true);
        let fed = run(false);
        assert!(
            fed < plain,
            "error feedback should reach lower Ψ₀: {fed} vs plain {plain}"
        );
    }

    #[test]
    fn error_feedback_conserves_and_is_deterministic() {
        let s = sys(6, 120);
        let run = |seed: u64| {
            let d = ErrorFeedbackDiffusion::new();
            let mut st = TaskState::all_on_node(&s, NodeId(2));
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..100 {
                d.round(&s, &mut st, &mut rng);
            }
            st
        };
        let a = run(1);
        let b = run(42);
        assert_eq!(a, b, "must ignore the RNG");
        a.check_invariants(&s).unwrap();
    }

    #[test]
    fn error_feedback_reset_clears_carries() {
        let s = sys(5, 100);
        let d = ErrorFeedbackDiffusion::with_alpha(Alpha::Approximate);
        let mut st = TaskState::all_on_node(&s, NodeId(0));
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            d.round(&s, &mut st, &mut rng);
        }
        d.reset();
        // After reset the protocol behaves like a fresh instance on the
        // same state.
        let fresh = ErrorFeedbackDiffusion::new();
        let mut st_a = st.clone();
        let mut st_b = st.clone();
        for _ in 0..20 {
            d.round(&s, &mut st_a, &mut rng);
            fresh.round(&s, &mut st_b, &mut rng);
        }
        assert_eq!(st_a, st_b);
    }

    #[test]
    fn continuous_step_conserves_and_contracts() {
        let s = sys(6, 60);
        let mut w: Vec<f64> = vec![60.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        for _ in 0..500 {
            w = continuous_step(&s, &w, Alpha::Approximate);
        }
        let total: f64 = w.iter().sum();
        assert!((total - 60.0).abs() < 1e-9, "mass conserved");
        // Continuous diffusion (with the 1/s_j dead-zone) flattens
        // *adjacent* loads to within the dead-zone; across the ring the
        // spread can accumulate up to diam(C_6)·1 = 3.
        let spread =
            w.iter().cloned().fold(f64::MIN, f64::max) - w.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread <= 3.0 + 1e-9, "spread {spread}");
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(Diffusion::new().name(), "diffusion");
    }
}
