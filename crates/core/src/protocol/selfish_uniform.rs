//! **Algorithm 1**: distributed selfish load balancing for uniform tasks on
//! machines with speeds (p. 5 of the paper).
//!
//! One round, for every task `ℓ` on machine `i`, in parallel:
//!
//! 1. choose a neighbor `j` of `i` uniformly at random;
//! 2. if `ℓ_i − ℓ_j > 1/s_j` (the task would strictly lower its perceived
//!    load, accounting for its own arrival at `j`),
//! 3. migrate with probability
//!    `p_ij = deg(i)/d_ij · (ℓ_i − ℓ_j)/(α·(1/s_i + 1/s_j)·W_i)`.
//!
//! With `α = 4·s_max` this reaches `Ψ₀ ≤ 4ψ_c` in expected
//! `O(ln(m/n)·Δ/λ₂·s_max²)` rounds (Theorem 1.1); with `α = 4·s_max/ε` it
//! reaches an exact Nash equilibrium in expected
//! `O(n·Δ²/λ₂·s_max⁴/ε²)` rounds (Theorem 1.2).

use crate::model::{Move, System, TaskState};
use crate::protocol::common::{migration_probability, Alpha};
use crate::protocol::{Snapshot, TaskProtocol};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Algorithm 1 with a configurable damping constant [`Alpha`].
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
/// use slb_core::protocol::{Protocol, SelfishUniform};
/// use slb_graphs::{generators, NodeId};
///
/// let system = System::new(
///     generators::ring(8),
///     SpeedVector::uniform(8),
///     TaskSet::uniform(64),
/// )?;
/// let mut state = TaskState::all_on_node(&system, NodeId(0));
/// let protocol = SelfishUniform::new();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let report = protocol.round(&system, &mut state, &mut rng);
/// assert!(report.migrations > 0); // tasks spread out from the hot node
/// # Ok::<(), slb_core::model::ModelError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SelfishUniform {
    alpha: Alpha,
}

impl SelfishUniform {
    /// Algorithm 1 with the paper's default `α = 4·s_max`.
    pub fn new() -> Self {
        SelfishUniform {
            alpha: Alpha::Approximate,
        }
    }

    /// Algorithm 1 with an explicit [`Alpha`] policy.
    pub fn with_alpha(alpha: Alpha) -> Self {
        SelfishUniform { alpha }
    }

    /// The configured damping policy.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }
}

impl TaskProtocol for SelfishUniform {
    fn protocol_name(&self) -> &'static str {
        "selfish-uniform"
    }

    fn decide(
        &self,
        system: &System,
        snapshot: &Snapshot,
        state: &TaskState,
        range: Range<usize>,
        rng: &mut StdRng,
        out: &mut Vec<Move>,
    ) {
        debug_assert!(
            system.tasks().is_uniform(),
            "Algorithm 1 assumes uniform tasks; use SelfishWeighted for weights"
        );
        let g = system.graph();
        let speeds = system.speeds();
        let alpha = self.alpha.resolve(speeds);
        for t in range {
            let task = crate::model::TaskId(t);
            let i = state.task_node(task);
            let neighbors = g.neighbors(i);
            if neighbors.is_empty() {
                continue;
            }
            let j = neighbors[rng.gen_range(0..neighbors.len())];
            let (ii, jj) = (i.index(), j.index());
            let s_j = speeds.speed(jj);
            // Migration condition of Algorithm 1: ℓ_i − ℓ_j > 1/s_j.
            if snapshot.loads[ii] - snapshot.loads[jj] <= 1.0 / s_j {
                continue;
            }
            let p = migration_probability(
                g.degree(i),
                g.d_max_endpoint(i, j),
                snapshot.loads[ii],
                snapshot.loads[jj],
                speeds.speed(ii),
                s_j,
                snapshot.node_weights[ii],
                alpha,
            );
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                out.push(Move { task, to: j });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{self, Threshold};
    use crate::model::{SpeedVector, TaskSet};
    use crate::potential;
    use crate::protocol::Protocol;
    use rand::SeedableRng;
    use slb_graphs::{generators, NodeId};

    fn run_rounds(
        system: &System,
        state: &mut TaskState,
        protocol: &SelfishUniform,
        rounds: usize,
        seed: u64,
    ) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut migrations = 0;
        for _ in 0..rounds {
            migrations += protocol.round(system, state, &mut rng).migrations;
        }
        migrations
    }

    #[test]
    fn conserves_tasks() {
        let sys = System::new(
            generators::ring(6),
            SpeedVector::uniform(6),
            TaskSet::uniform(60),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        run_rounds(&sys, &mut st, &SelfishUniform::new(), 50, 7);
        st.check_invariants(&sys).unwrap();
        let total: usize = (0..6).map(|i| st.node_task_count(NodeId(i))).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn potential_decreases_from_hot_start() {
        let sys = System::new(
            generators::torus(4, 4),
            SpeedVector::uniform(16),
            TaskSet::uniform(160),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let before = potential::report(&sys, &st).psi0;
        run_rounds(&sys, &mut st, &SelfishUniform::new(), 100, 3);
        let after = potential::report(&sys, &st).psi0;
        assert!(
            after < before / 4.0,
            "Ψ₀ should drop substantially: {before} → {after}"
        );
    }

    #[test]
    fn converges_to_nash_on_small_ring() {
        let sys = System::new(
            generators::ring(4),
            SpeedVector::uniform(4),
            TaskSet::uniform(16),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(2));
        let protocol = SelfishUniform::new();
        let mut rng = StdRng::seed_from_u64(11);
        let mut reached = false;
        for _ in 0..5000 {
            protocol.round(&sys, &mut st, &mut rng);
            if equilibrium::is_nash(&sys, &st, Threshold::UnitWeight) {
                reached = true;
                break;
            }
        }
        assert!(reached, "no Nash equilibrium within 5000 rounds");
        st.check_invariants(&sys).unwrap();
    }

    #[test]
    fn nash_states_are_absorbing() {
        // In a Nash state no task satisfies the migration condition, so no
        // round can ever move anything.
        let sys = System::new(
            generators::path(3),
            SpeedVector::uniform(3),
            TaskSet::uniform(6),
        )
        .unwrap();
        let mut st = TaskState::from_assignment(&sys, &[0, 0, 1, 1, 2, 2]).unwrap();
        assert!(equilibrium::is_nash(&sys, &st, Threshold::UnitWeight));
        let before = st.clone();
        let moved = run_rounds(&sys, &mut st, &SelfishUniform::new(), 200, 5);
        assert_eq!(moved, 0);
        assert_eq!(st, before);
    }

    #[test]
    fn respects_speeds_direction() {
        // Tasks should drain towards the fast machine, not away from it.
        let sys = System::new(
            generators::path(2),
            SpeedVector::new(vec![1.0, 8.0]).unwrap(),
            TaskSet::uniform(90),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        run_rounds(&sys, &mut st, &SelfishUniform::new(), 400, 9);
        // Balanced would be (10, 80).
        assert!(
            st.node_task_count(NodeId(1)) > 50,
            "fast node got only {} of 90 tasks",
            st.node_task_count(NodeId(1))
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let sys = System::new(
            generators::hypercube(3),
            SpeedVector::uniform(8),
            TaskSet::uniform(64),
        )
        .unwrap();
        let mut a = TaskState::all_on_node(&sys, NodeId(0));
        let mut b = TaskState::all_on_node(&sys, NodeId(0));
        run_rounds(&sys, &mut a, &SelfishUniform::new(), 30, 42);
        run_rounds(&sys, &mut b, &SelfishUniform::new(), 30, 42);
        assert_eq!(a, b);
        let mut c = TaskState::all_on_node(&sys, NodeId(0));
        run_rounds(&sys, &mut c, &SelfishUniform::new(), 30, 43);
        assert_ne!(a, c, "different seeds should (a.s.) differ");
    }

    #[test]
    fn exact_alpha_still_converges() {
        let sys = System::new(
            generators::path(3),
            SpeedVector::integer(vec![1, 2, 1]).unwrap(),
            TaskSet::uniform(12),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let protocol = SelfishUniform::with_alpha(Alpha::Exact);
        assert_eq!(protocol.alpha(), Alpha::Exact);
        let mut rng = StdRng::seed_from_u64(4);
        let mut reached = false;
        for _ in 0..20000 {
            protocol.round(&sys, &mut st, &mut rng);
            if equilibrium::is_nash(&sys, &st, Threshold::UnitWeight) {
                reached = true;
                break;
            }
        }
        assert!(reached);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(SelfishUniform::new().name(), "selfish-uniform");
    }
}
