//! The baseline protocol of Berenbrink, Hoefer & Sauerwald (SODA'11),
//! reference \[6\] of the paper.
//!
//! The paper describes the relevant difference in §4: *"In the original
//! protocol, a load difference of more than `w_ℓ/s_j` would suffice for
//! task `ℓ` to have an incentive to migrate."* Each task therefore applies
//! its **own** weight as the migration threshold — light tasks keep moving
//! long after Algorithm 2's uniform threshold has frozen the edge, which is
//! precisely why the analysis of \[6\] is harder and its bounds weaker
//! (Table 1), and why \[6\] converges to an *exact* NE while Algorithm 2
//! targets an approximate one.
//!
//! For uniform tasks (`w_ℓ = 1`), this protocol coincides with Algorithm 1
//! — the paper's improvement there is purely analytical (Observation 3.28),
//! which the Table 1 harness reflects by comparing *bounds*, not protocols.
//!
//! The migration probability is kept in the expected-flow form shared by
//! this paper's protocols (the quantity the quoted [6, Lemma 3.3] bound is
//! stated in); see DESIGN.md, substitution #4.

use crate::model::{Move, System, TaskState};
use crate::protocol::common::{migration_probability, Alpha};
use crate::protocol::{Snapshot, TaskProtocol};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// The \[6\] baseline: per-task migration threshold `w_ℓ/s_j`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
/// use slb_core::protocol::{BhsBaseline, Protocol};
/// use slb_graphs::{generators, NodeId};
///
/// let system = System::new(
///     generators::path(4),
///     SpeedVector::uniform(4),
///     TaskSet::weighted(vec![0.1; 40])?,
/// )?;
/// let mut state = TaskState::all_on_node(&system, NodeId(0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// BhsBaseline::new().round(&system, &mut state, &mut rng);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BhsBaseline {
    alpha: Alpha,
}

impl BhsBaseline {
    /// The baseline with `α = 4·s_max`.
    pub fn new() -> Self {
        BhsBaseline {
            alpha: Alpha::Approximate,
        }
    }

    /// Overrides the damping constant.
    pub fn with_alpha(alpha: Alpha) -> Self {
        BhsBaseline { alpha }
    }
}

impl TaskProtocol for BhsBaseline {
    fn protocol_name(&self) -> &'static str {
        "bhs-baseline"
    }

    fn decide(
        &self,
        system: &System,
        snapshot: &Snapshot,
        state: &TaskState,
        range: Range<usize>,
        rng: &mut StdRng,
        out: &mut Vec<Move>,
    ) {
        let g = system.graph();
        let speeds = system.speeds();
        let alpha = self.alpha.resolve(speeds);
        for t in range {
            let task = crate::model::TaskId(t);
            let i = state.task_node(task);
            let neighbors = g.neighbors(i);
            if neighbors.is_empty() {
                continue;
            }
            let j = neighbors[rng.gen_range(0..neighbors.len())];
            let (ii, jj) = (i.index(), j.index());
            let s_j = speeds.speed(jj);
            // Per-task condition of [6]: ℓ_i − ℓ_j > w_ℓ/s_j.
            let w = system.tasks().weight(task);
            if snapshot.loads[ii] - snapshot.loads[jj] <= w / s_j {
                continue;
            }
            let p = migration_probability(
                g.degree(i),
                g.d_max_endpoint(i, j),
                snapshot.loads[ii],
                snapshot.loads[jj],
                speeds.speed(ii),
                s_j,
                snapshot.node_weights[ii],
                alpha,
            );
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                out.push(Move { task, to: j });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{self, Threshold};
    use crate::model::{SpeedVector, TaskSet};
    use crate::protocol::{Protocol, SelfishUniform};
    use rand::SeedableRng;
    use slb_graphs::{generators, NodeId};

    #[test]
    fn coincides_with_algorithm_1_on_uniform_tasks() {
        // Same thresholds, same probabilities, same RNG consumption order
        // → identical trajectories under the same seed.
        let sys = System::new(
            generators::hypercube(3),
            SpeedVector::uniform(8),
            TaskSet::uniform(80),
        )
        .unwrap();
        let mut a = TaskState::all_on_node(&sys, NodeId(0));
        let mut b = TaskState::all_on_node(&sys, NodeId(0));
        let mut ra = StdRng::seed_from_u64(21);
        let mut rb = StdRng::seed_from_u64(21);
        let alg1 = SelfishUniform::new();
        let bhs = BhsBaseline::new();
        for _ in 0..50 {
            alg1.round(&sys, &mut a, &mut ra);
            bhs.round(&sys, &mut b, &mut rb);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn keeps_moving_light_tasks_where_algorithm_2_freezes() {
        // Loads (0.9, 0) with ten 0.09-weight tasks: relaxed threshold says
        // stop (0.9 ≤ 1) but each task still gains (0.9 > 0.09).
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.09; 10]).unwrap(),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        assert!(equilibrium::is_nash(&sys, &st, Threshold::UnitWeight));
        let mut rng = StdRng::seed_from_u64(5);
        let bhs = BhsBaseline::new();
        let mut total_moves = 0;
        for _ in 0..2000 {
            total_moves += bhs.round(&sys, &mut st, &mut rng).migrations;
            if equilibrium::is_nash(&sys, &st, Threshold::LightestTask) {
                break;
            }
        }
        assert!(total_moves > 0, "baseline should migrate light tasks");
        assert!(
            equilibrium::is_nash(&sys, &st, Threshold::LightestTask),
            "baseline should reach the exact weighted NE"
        );
        st.check_invariants(&sys).unwrap();
    }

    #[test]
    fn exact_weighted_nash_is_absorbing() {
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.5, 0.5, 0.5, 0.5]).unwrap(),
        )
        .unwrap();
        // Loads (1.0, 1.0): balanced → exact NE.
        let mut st = TaskState::from_assignment(&sys, &[0, 0, 1, 1]).unwrap();
        assert!(equilibrium::is_nash(&sys, &st, Threshold::LightestTask));
        let before = st.clone();
        let mut rng = StdRng::seed_from_u64(6);
        let bhs = BhsBaseline::new();
        for _ in 0..200 {
            assert_eq!(bhs.round(&sys, &mut st, &mut rng).migrations, 0);
        }
        assert_eq!(st, before);
    }

    #[test]
    fn conserves_weight_with_speeds() {
        let sys = System::new(
            generators::torus(3, 3),
            SpeedVector::integer(vec![1, 2, 3, 1, 2, 3, 1, 2, 3]).unwrap(),
            TaskSet::weighted((0..45).map(|i| 0.1 + 0.02 * (i % 10) as f64).collect()).unwrap(),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let mut rng = StdRng::seed_from_u64(7);
        let bhs = BhsBaseline::with_alpha(Alpha::Approximate);
        for _ in 0..100 {
            bhs.round(&sys, &mut st, &mut rng);
        }
        st.check_invariants(&sys).unwrap();
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(BhsBaseline::new().name(), "bhs-baseline");
    }
}
