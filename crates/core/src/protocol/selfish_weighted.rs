//! **Algorithm 2**: distributed selfish load balancing for weighted tasks
//! (p. 11 of the paper).
//!
//! The paper's key modification relative to \[6\]: a task's migration
//! decision *does not depend on its own weight*. Every task on `i` checks
//! the same condition `ℓ_i − ℓ_j > 1/s_j` — the threshold of the
//! heaviest-possible task (`w ≤ 1`) — so on any edge either all tasks of
//! `i` have an incentive to move or none do. This yields convergence to a
//! state with `ℓ_i − ℓ_j ≤ 1/s_j` on every edge, which Theorem 1.3 shows
//! is a `2/(1+δ)`-approximate Nash equilibrium when
//! `W > 8·δ·(s_max/s_min)·S·n²`.
//!
//! The migration probability follows the expected flow of Definition 4.1
//! (`WeightedRule::Definition41`, the default); the pseudocode as printed
//! in the paper omits the speed terms and is available as
//! [`WeightedRule::PrintedUniformSpeed`] — the two coincide exactly on
//! uniform speeds (see DESIGN.md, inconsistency #2).

use crate::model::{Move, System, TaskState};
use crate::protocol::common::{migration_probability, migration_probability_printed, Alpha};
use crate::protocol::{Snapshot, TaskProtocol};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Which published form of the Algorithm 2 migration probability to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightedRule {
    /// `p_ij = deg(i)/d_ij · (ℓ_i − ℓ_j)/(α·(1/s_i + 1/s_j)·W_i)` —
    /// consistent with the expected flow `f_ij` of Definition 4.1, which
    /// the analysis (Lemmas 4.2–4.4) is carried out in.
    #[default]
    Definition41,
    /// `p_ij = deg(i)/d_ij · (W_i − W_j)/(2α·W_i)` as printed in the
    /// Algorithm 2 box; the uniform-speed special case of the above.
    PrintedUniformSpeed,
}

/// Algorithm 2 with a configurable probability rule and damping constant.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
/// use slb_core::protocol::{Protocol, SelfishWeighted};
/// use slb_graphs::{generators, NodeId};
///
/// let system = System::new(
///     generators::ring(6),
///     SpeedVector::uniform(6),
///     TaskSet::weighted(vec![0.5; 48])?,
/// )?;
/// let mut state = TaskState::all_on_node(&system, NodeId(0));
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let report = SelfishWeighted::new().round(&system, &mut state, &mut rng);
/// assert!(report.migrated_weight > 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SelfishWeighted {
    rule: WeightedRule,
    alpha: Alpha,
}

impl SelfishWeighted {
    /// Algorithm 2 with the Definition-4.1 rule and `α = 4·s_max`.
    pub fn new() -> Self {
        SelfishWeighted::default()
    }

    /// Algorithm 2 with an explicit probability rule.
    pub fn with_rule(rule: WeightedRule) -> Self {
        SelfishWeighted {
            rule,
            alpha: Alpha::Approximate,
        }
    }

    /// Overrides the damping constant.
    pub fn with_alpha(mut self, alpha: Alpha) -> Self {
        self.alpha = alpha;
        self
    }

    /// The configured probability rule.
    pub fn rule(&self) -> WeightedRule {
        self.rule
    }
}

impl TaskProtocol for SelfishWeighted {
    fn protocol_name(&self) -> &'static str {
        match self.rule {
            WeightedRule::Definition41 => "selfish-weighted",
            WeightedRule::PrintedUniformSpeed => "selfish-weighted-printed",
        }
    }

    fn decide(
        &self,
        system: &System,
        snapshot: &Snapshot,
        state: &TaskState,
        range: Range<usize>,
        rng: &mut StdRng,
        out: &mut Vec<Move>,
    ) {
        let g = system.graph();
        let speeds = system.speeds();
        let alpha = self.alpha.resolve(speeds);
        for t in range {
            let task = crate::model::TaskId(t);
            let i = state.task_node(task);
            let neighbors = g.neighbors(i);
            if neighbors.is_empty() {
                continue;
            }
            let j = neighbors[rng.gen_range(0..neighbors.len())];
            let (ii, jj) = (i.index(), j.index());
            let s_j = speeds.speed(jj);
            // Weight-independent condition: ℓ_i − ℓ_j > 1/s_j.
            if snapshot.loads[ii] - snapshot.loads[jj] <= 1.0 / s_j {
                continue;
            }
            let p = match self.rule {
                WeightedRule::Definition41 => migration_probability(
                    g.degree(i),
                    g.d_max_endpoint(i, j),
                    snapshot.loads[ii],
                    snapshot.loads[jj],
                    speeds.speed(ii),
                    s_j,
                    snapshot.node_weights[ii],
                    alpha,
                ),
                WeightedRule::PrintedUniformSpeed => migration_probability_printed(
                    g.degree(i),
                    g.d_max_endpoint(i, j),
                    snapshot.node_weights[ii],
                    snapshot.node_weights[jj],
                    alpha,
                ),
            };
            if p > 0.0 && rng.gen_bool(p.min(1.0)) {
                out.push(Move { task, to: j });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equilibrium::{self, Threshold};
    use crate::model::{SpeedVector, TaskSet};
    use crate::potential;
    use crate::protocol::Protocol;
    use rand::SeedableRng;
    use slb_graphs::{generators, NodeId};

    fn weighted_tasks(m: usize, seed: u64) -> TaskSet {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        TaskSet::weighted((0..m).map(|_| rng.gen_range(0.05..=1.0)).collect()).unwrap()
    }

    #[test]
    fn conserves_weight() {
        let sys = System::new(
            generators::torus(3, 3),
            SpeedVector::uniform(9),
            weighted_tasks(90, 1),
        )
        .unwrap();
        let total = sys.tasks().total_weight();
        let mut st = TaskState::all_on_node(&sys, NodeId(4));
        let mut rng = StdRng::seed_from_u64(2);
        let p = SelfishWeighted::new();
        for _ in 0..60 {
            p.round(&sys, &mut st, &mut rng);
        }
        st.check_invariants(&sys).unwrap();
        let sum: f64 = st.node_weights().iter().sum();
        assert!((sum - total).abs() < 1e-6);
    }

    #[test]
    fn reaches_relaxed_equilibrium() {
        let sys = System::new(
            generators::ring(5),
            SpeedVector::uniform(5),
            weighted_tasks(50, 3),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let mut rng = StdRng::seed_from_u64(4);
        let p = SelfishWeighted::new();
        let mut reached = false;
        for _ in 0..20000 {
            p.round(&sys, &mut st, &mut rng);
            // Algorithm 2's target: ℓ_i − ℓ_j ≤ 1/s_j on every edge.
            if equilibrium::is_nash(&sys, &st, Threshold::UnitWeight) {
                reached = true;
                break;
            }
        }
        assert!(reached, "relaxed equilibrium not reached");
    }

    #[test]
    fn relaxed_equilibrium_is_absorbing() {
        // Once ℓ_i − ℓ_j ≤ 1/s_j everywhere, no task migrates: the
        // condition is weight-independent (the §4 design point).
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.3, 0.3, 0.3]).unwrap(),
        )
        .unwrap();
        // Loads (0.9, 0): gap 0.9 ≤ 1 → relaxed-Nash, though not exact NE.
        let mut st = TaskState::from_assignment(&sys, &[0, 0, 0]).unwrap();
        assert!(equilibrium::is_nash(&sys, &st, Threshold::UnitWeight));
        assert!(!equilibrium::is_nash(&sys, &st, Threshold::LightestTask));
        let before = st.clone();
        let mut rng = StdRng::seed_from_u64(5);
        let p = SelfishWeighted::new();
        for _ in 0..300 {
            let r = p.round(&sys, &mut st, &mut rng);
            assert_eq!(r.migrations, 0);
        }
        assert_eq!(st, before);
    }

    #[test]
    fn potential_drops_on_weighted_instance() {
        let sys = System::new(
            generators::hypercube(3),
            SpeedVector::new((0..8).map(|i| 1.0 + (i % 3) as f64).collect()).unwrap(),
            weighted_tasks(120, 7),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(0));
        let before = potential::report(&sys, &st).psi0;
        let mut rng = StdRng::seed_from_u64(8);
        let p = SelfishWeighted::new();
        for _ in 0..150 {
            p.round(&sys, &mut st, &mut rng);
        }
        let after = potential::report(&sys, &st).psi0;
        assert!(after < before / 4.0, "Ψ₀: {before} → {after}");
    }

    #[test]
    fn printed_rule_matches_def41_on_uniform_speeds() {
        // On uniform speeds the two rules are the same function, so with
        // the same seed they produce identical trajectories.
        let sys = System::new(
            generators::ring(6),
            SpeedVector::uniform(6),
            weighted_tasks(36, 9),
        )
        .unwrap();
        let mut a = TaskState::all_on_node(&sys, NodeId(0));
        let mut b = TaskState::all_on_node(&sys, NodeId(0));
        let pa = SelfishWeighted::with_rule(WeightedRule::Definition41);
        let pb = SelfishWeighted::with_rule(WeightedRule::PrintedUniformSpeed);
        let mut ra = StdRng::seed_from_u64(10);
        let mut rb = StdRng::seed_from_u64(10);
        for _ in 0..40 {
            pa.round(&sys, &mut a, &mut ra);
            pb.round(&sys, &mut b, &mut rb);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn rules_have_distinct_names() {
        assert_eq!(SelfishWeighted::new().name(), "selfish-weighted");
        assert_eq!(
            SelfishWeighted::with_rule(WeightedRule::PrintedUniformSpeed).name(),
            "selfish-weighted-printed"
        );
        assert_eq!(SelfishWeighted::new().rule(), WeightedRule::Definition41);
    }

    #[test]
    fn works_with_uniform_tasks_too() {
        // Algorithm 2 on weight-1 tasks degenerates to Algorithm 1.
        let sys = System::new(
            generators::path(3),
            SpeedVector::uniform(3),
            TaskSet::uniform(9),
        )
        .unwrap();
        let mut st = TaskState::all_on_node(&sys, NodeId(1));
        let mut rng = StdRng::seed_from_u64(12);
        let p = SelfishWeighted::new();
        let mut reached = false;
        for _ in 0..5000 {
            p.round(&sys, &mut st, &mut rng);
            if equilibrium::is_nash(&sys, &st, Threshold::UnitWeight) {
                reached = true;
                break;
            }
        }
        assert!(reached);
    }
}
