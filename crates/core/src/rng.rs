//! Deterministic randomness plumbing.
//!
//! Every simulation is driven by a single master seed; per-round and
//! per-chunk generators are derived with a SplitMix64 mix so that
//!
//! * the same seed reproduces the same trajectory bit-for-bit,
//! * the parallel engine is deterministic *independent of thread count*
//!   (chunk seeds depend only on `(master, round, chunk index)`),
//! * distinct rounds/chunks get statistically independent streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a bijective 64-bit mix with good avalanche,
/// the standard choice for seed derivation.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a child seed from `(master, round, stream)`.
pub fn derive_seed(master: u64, round: u64, stream: u64) -> u64 {
    let a = splitmix64(master ^ 0xa076_1d64_78bd_642f);
    let b = splitmix64(a ^ round);
    splitmix64(b ^ stream.wrapping_mul(0xe703_7ed1_a0b4_28db))
}

/// A seeded [`StdRng`] for `(master, round, stream)`.
pub fn rng_for(master: u64, round: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, round, stream))
}

/// Derives a child seed from `(master, round, stream, shard)` — the
/// four-dimensional extension of [`derive_seed`] behind the sharded round
/// kernel.
///
/// Each shard of a round draws from its own stream, a pure function of
/// this quadruple, so the round's trajectory is independent of how shards
/// are scheduled onto worker threads (and therefore of `--threads`). The
/// shard axis is mixed through one extra SplitMix64 finalization, so
/// `derive_seed_sharded(m, a, b, 0) != derive_seed(m, a, b)`: sharded and
/// unsharded consumers of the same `(master, a, b)` triple never alias.
pub fn derive_seed_sharded(master: u64, round: u64, stream: u64, shard: u64) -> u64 {
    splitmix64(derive_seed(master, round, stream) ^ shard.wrapping_mul(0x9fb2_1c65_1e98_df25))
}

/// A seeded [`StdRng`] for `(master, round, stream, shard)`.
pub fn rng_for_shard(master: u64, round: u64, stream: u64, shard: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed_sharded(master, round, stream, shard))
}

/// Central registry of every RNG stream id used in the workspace.
///
/// The determinism contract (artifacts byte-identical at any `--threads`)
/// rests on distinct consumers of the same master seed drawing from
/// distinct streams. Scattering the ids as magic integers made collisions
/// a code-review problem; this module makes them a machine-checked one:
///
/// * every `derive_seed*` / `rng_for*` call site must name a constant
///   from this registry (`slb-lint` rule `stream-literal`),
/// * ids must be unique within their namespace (`slb-lint` rule
///   `stream-duplicate`, plus the exhaustive property test below).
///
/// A *namespace* groups the streams that share a master-seed lineage;
/// ids in different namespaces never mix because their masters differ
/// (e.g. [`streams::trial::SIM`] derives the per-trial simulation seed that then
/// serves as the master for the whole [`streams::round`] namespace).
pub mod streams {
    /// Per-round streams. Master = the trial's simulation seed, first
    /// derivation axis = round index. [`round::KERNEL`] is consumed through the
    /// *sharded* derivation, the event streams through the unsharded
    /// one; the extra SplitMix64 finalization in
    /// [`derive_seed_sharded`](super::derive_seed_sharded) keeps the two
    /// families from aliasing even at equal ids.
    pub mod round {
        /// The sharded migration kernel
        /// ([`rng_for_shard`](crate::rng::rng_for_shard)): one stream
        /// per (round, shard) pair.
        pub const KERNEL: u64 = 0;
        /// Arrival totals and their placement (dynamic engine).
        pub const ARRIVAL: u64 = 1;
        /// Rate-based completion draws (dynamic engine).
        pub const COMPLETION: u64 = 2;
        /// Churn toggles and orphan re-scattering (dynamic engine).
        pub const CHURN: u64 = 3;
        /// Speed drift/shock draws (dynamic engine).
        pub const SPEED: u64 = 4;
        /// Every id in this namespace, for exhaustive collision tests.
        pub const ALL: &[(&str, u64)] = &[
            ("KERNEL", KERNEL),
            ("ARRIVAL", ARRIVAL),
            ("COMPLETION", COMPLETION),
            ("CHURN", CHURN),
            ("SPEED", SPEED),
        ];
    }

    /// Per-trial split streams. Master = the trial seed handed out by
    /// the sweep/validate runner (`derive_seed(base, cell, trial)`),
    /// round axis pinned to 0.
    pub mod trial {
        /// Scenario construction: speeds/weights/placement sampling.
        pub const SCENARIO: u64 = 0;
        /// The simulation itself (becomes the master seed of the
        /// [`round`](super::round) namespace).
        pub const SIM: u64 = 1;
        /// Every id in this namespace, for exhaustive collision tests.
        pub const ALL: &[(&str, u64)] = &[("SCENARIO", SCENARIO), ("SIM", SIM)];
    }

    /// Post-hoc analysis streams. Master = the run's base seed, first
    /// axis = report-row index.
    pub mod analysis {
        /// Stratified bootstrap resampling in the exponent fit.
        pub const BOOTSTRAP: u64 = 0xB007;
        /// Every id in this namespace, for exhaustive collision tests.
        pub const ALL: &[(&str, u64)] = &[("BOOTSTRAP", BOOTSTRAP)];
    }

    /// Service-harness (`slb serve`) streams. Two master lineages:
    /// [`serve::ARRIVAL`] and [`serve::CLOSED`] derive from the run's
    /// *scenario* seed (shared by every policy, so all policies face the
    /// identical open-loop job stream), with the first axis the time slot
    /// or closed-loop user index respectively; [`serve::POLICY`] derives
    /// from the *per-policy* seed with the first axis the job index, so
    /// routing coins are independent of event-loop interleaving.
    pub mod serve {
        /// Open-loop traffic: per-slot Poisson counts, arrival offsets,
        /// entry nodes, and job weights.
        pub const ARRIVAL: u64 = 0;
        /// Closed-loop traffic: one stream per user (initial phase,
        /// entry nodes, job weights).
        pub const CLOSED: u64 = 1;
        /// Route-policy coin flips, one stream per routed job.
        pub const POLICY: u64 = 2;
        /// Fault injection: per-backend crash/recover renewal processes
        /// (exponential MTTF/MTTR draws), one stream per backend.
        /// Scenario-seeded, so every policy faces the identical fault
        /// schedule.
        pub const FAULT: u64 = 3;
        /// Signal degradation: per-probe-epoch loss coins (one draw per
        /// backend per refresh). Scenario-seeded, so every policy
        /// observes through the identical probe-loss pattern.
        pub const SIGNAL: u64 = 4;
        /// Retry routing: backoff jitter plus re-route coins, one stream
        /// per (job, attempt) pair (encoded as
        /// `job · RETRY_ATTEMPT_STRIDE + attempt` on the derivation
        /// axis). Policy-seeded like [`POLICY`].
        pub const RETRY: u64 = 5;
        /// Stride of the [`RETRY`] derivation axis: attempt `a` of job
        /// `k` draws from axis `k · RETRY_ATTEMPT_STRIDE + a`. Retry
        /// budgets must stay below this stride so (job, attempt) pairs
        /// never collide on the axis.
        pub const RETRY_ATTEMPT_STRIDE: u64 = 32;
        /// Every id in this namespace, for exhaustive collision tests.
        pub const ALL: &[(&str, u64)] = &[
            ("ARRIVAL", ARRIVAL),
            ("CLOSED", CLOSED),
            ("POLICY", POLICY),
            ("FAULT", FAULT),
            ("SIGNAL", SIGNAL),
            ("RETRY", RETRY),
        ];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_mixing() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Avalanche sanity: flipping one input bit flips many output bits.
        let a = splitmix64(42);
        let b = splitmix64(43);
        assert!((a ^ b).count_ones() >= 16);
    }

    #[test]
    fn derived_seeds_differ_across_axes() {
        let base = derive_seed(1, 2, 3);
        assert_ne!(base, derive_seed(2, 2, 3));
        assert_ne!(base, derive_seed(1, 3, 3));
        assert_ne!(base, derive_seed(1, 2, 4));
        assert_eq!(base, derive_seed(1, 2, 3));
    }

    #[test]
    fn derived_seeds_do_not_collide_across_cell_trial_pairs() {
        // The sweep runner keys trial seeds by (cell index, trial index);
        // any collision would silently correlate two grid cells. Check a
        // grid far larger than any practical sweep: 128 × 128 pairs per
        // base seed, across several base seeds.
        use std::collections::HashSet;
        for base in [0u64, 42, 0xdead_beef] {
            let mut seen = HashSet::with_capacity(128 * 128);
            for cell in 0..128u64 {
                for trial in 0..128u64 {
                    assert!(
                        seen.insert(derive_seed(base, cell, trial)),
                        "collision at base {base}, cell {cell}, trial {trial}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_seeds_do_not_collide_across_cell_trial_shard_triples() {
        // The sharded kernel keys shard streams by (cell, trial, shard);
        // a collision would correlate two shards' multinomial draws. Walk
        // a grid of adjacent triples far denser than any practical run
        // (32 × 32 cells/trials × 64 shards), across several base seeds,
        // and also check the sharded derivation never aliases the
        // unsharded one for the same (cell, trial) pair.
        use std::collections::HashSet;
        for base in [0u64, 42, 0xdead_beef] {
            let mut seen = HashSet::with_capacity(32 * 32 * 65);
            for cell in 0..32u64 {
                for trial in 0..32u64 {
                    assert!(
                        seen.insert(derive_seed(base, cell, trial)),
                        "unsharded collision at base {base}, cell {cell}, trial {trial}"
                    );
                    for shard in 0..64u64 {
                        assert!(
                            seen.insert(derive_seed_sharded(base, cell, trial, shard)),
                            "collision at base {base}, cell {cell}, trial {trial}, \
                             shard {shard}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_seeds_differ_across_every_axis() {
        let base = derive_seed_sharded(1, 2, 3, 4);
        assert_ne!(base, derive_seed_sharded(2, 2, 3, 4));
        assert_ne!(base, derive_seed_sharded(1, 3, 3, 4));
        assert_ne!(base, derive_seed_sharded(1, 2, 4, 4));
        assert_ne!(base, derive_seed_sharded(1, 2, 3, 5));
        assert_eq!(base, derive_seed_sharded(1, 2, 3, 4));
    }

    #[test]
    fn registry_namespaces_hold_unique_ids() {
        // Uniqueness within each namespace is the registry's whole point;
        // check the declared tables directly (slb-lint re-checks the
        // source text, this checks the compiled values).
        for (namespace, table) in [
            ("round", streams::round::ALL),
            ("trial", streams::trial::ALL),
            ("analysis", streams::analysis::ALL),
            ("serve", streams::serve::ALL),
        ] {
            for (i, &(name_a, id_a)) in table.iter().enumerate() {
                for &(name_b, id_b) in &table[i + 1..] {
                    assert_ne!(
                        id_a, id_b,
                        "streams::{namespace}::{name_a} and \
                         streams::{namespace}::{name_b} share id {id_a}"
                    );
                }
            }
        }
    }

    #[test]
    fn registry_streams_never_collide_pairwise_or_sharded() {
        // Exhaustive over the registry: for a spread of (master, round)
        // pairs, the derived seeds of every round-namespace stream — each
        // id both unsharded and through all 64 shards of the sharded
        // derivation — and of every trial-namespace stream must be
        // pairwise distinct. This is the machine-checked form of the
        // "streams never alias" argument the engines rely on.
        use std::collections::HashMap;
        for master in [0u64, 42, 0xdead_beef, u64::MAX] {
            for round_idx in [0u64, 1, 7, 1 << 40] {
                let mut seen: HashMap<u64, String> = HashMap::new();
                let mut check = |seed: u64, label: String| {
                    if let Some(prev) = seen.insert(seed, label.clone()) {
                        panic!(
                            "seed collision at master {master}, round {round_idx}: \
                             {prev} == {label}"
                        );
                    }
                };
                for &(name, id) in streams::round::ALL {
                    check(derive_seed(master, round_idx, id), format!("round::{name}"));
                    for shard in 0..64u64 {
                        check(
                            derive_seed_sharded(master, round_idx, id, shard),
                            format!("round::{name}[shard {shard}]"),
                        );
                    }
                }
                // The trial and serve namespaces share their masters with
                // nothing above (their lineages differ), but pairwise
                // distinctness within each namespace must still hold —
                // trial pins the round axis to 0, serve fans it over
                // slots/users/jobs.
                for (namespace, table, axis) in [
                    ("trial", streams::trial::ALL, 0),
                    ("serve", streams::serve::ALL, round_idx),
                ] {
                    let seeds: Vec<u64> = table
                        .iter()
                        .map(|&(_, id)| derive_seed(master, axis, id))
                        .collect();
                    for (i, a) in seeds.iter().enumerate() {
                        for b in &seeds[i + 1..] {
                            assert_ne!(a, b, "{namespace}-namespace streams collide");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rng_streams_reproduce() {
        let mut a = rng_for(7, 1, 0);
        let mut b = rng_for(7, 1, 0);
        let mut c = rng_for(7, 1, 1);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        let xc: u64 = c.gen();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }
}
