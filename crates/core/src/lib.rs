//! Selfish load-balancing protocols, potentials, equilibria, and simulation
//! engines — the core of the reproduction of *Adolphs & Berenbrink,
//! "Distributed Selfish Load Balancing with Weights and Speeds"*
//! (PODC 2012).
//!
//! # The model
//!
//! A network of `n` processors (an arbitrary undirected graph from
//! [`slb_graphs`]) with speeds `s_i` hosts `m` selfish tasks, uniform or
//! weighted with `w_ℓ ∈ (0, 1]`. In each synchronous round every task
//! samples one random neighbor of its current machine and migrates with a
//! carefully damped probability if that would reduce its perceived load.
//! The paper proves convergence-time bounds to approximate and exact Nash
//! equilibria in terms of the network's algebraic connectivity `λ₂`.
//!
//! # Crate layout
//!
//! * [`model`] — speeds, tasks, the [`System`](model::System) instance and
//!   the [`TaskState`](model::TaskState) assignment,
//! * [`protocol`] — Algorithm 1 ([`SelfishUniform`](protocol::SelfishUniform)),
//!   Algorithm 2 ([`SelfishWeighted`](protocol::SelfishWeighted)), the
//!   SODA'11 baseline ([`BhsBaseline`](protocol::BhsBaseline)) and discrete
//!   diffusion ([`Diffusion`](protocol::Diffusion)),
//! * [`potential`] — `Φ₀, Φ₁, Ψ₀, Ψ₁, L_Δ`,
//! * [`equilibrium`] — Nash / ε-Nash predicates and gap measurement,
//! * [`engine`] — sequential, parallel, and count-based simulators,
//! * [`rng`] — deterministic seed derivation.
//!
//! # Quickstart
//!
//! ```
//! use slb_core::engine::{Simulation, StopCondition, StopReason};
//! use slb_core::equilibrium::Threshold;
//! use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
//! use slb_core::protocol::SelfishUniform;
//! use slb_graphs::{generators, NodeId};
//!
//! // 16 machines in a 4x4 torus, 160 unit tasks, all starting on node 0.
//! let system = System::new(
//!     generators::torus(4, 4),
//!     SpeedVector::uniform(16),
//!     TaskSet::uniform(160),
//! )?;
//! let state = TaskState::all_on_node(&system, NodeId(0));
//! let mut sim = Simulation::new(&system, SelfishUniform::new(), state, 0xC0FFEE);
//! let outcome = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 100_000);
//! assert_eq!(outcome.reason, StopReason::ConditionMet);
//! # Ok::<(), slb_core::model::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Curated pedantic hardening (promoted to errors by CI's `-D warnings`):
// engine index math must not truncate silently, hot-path APIs must not
// clone-by-value, and float equality must be a deliberate act. Scoped to
// library code — tests compare exact deterministic outputs all the time.
#![cfg_attr(
    not(test),
    warn(
        clippy::needless_pass_by_value,
        clippy::cast_possible_truncation,
        clippy::float_cmp
    )
)]

pub mod engine;
pub mod equilibrium;
pub mod model;
pub mod potential;
pub mod protocol;
pub mod rng;
