//! Simulation engines: sequential, deterministic-parallel, and the fast
//! count-based paths.
//!
//! [`Simulation`] drives any [`Protocol`] round by round over a
//! [`TaskState`], with stop conditions matching the quantities the paper's
//! theorems are stated in (exact NE, `Ψ₀ ≤ 4ψ_c`, ε-approximate NE).
//! [`ParallelSimulation`](parallel::ParallelSimulation) executes the
//! decision phase of [`TaskProtocol`](crate::protocol::TaskProtocol)s
//! across threads deterministically;
//! The three **count-based engines** replace `O(m)` per-task sampling
//! with per-(node, weight class) multinomials — distributionally
//! identical and `O(|E| + n·k)` per round: [`uniform_fast`] (Algorithm 1,
//! uniform tasks), [`weighted_fast`] (Algorithm 1's weighted
//! generalization), and [`speed_fast`] (Algorithm 2 and the \[6\]
//! baseline on arbitrary speed vectors). All three are thin
//! instantiations of the shared round kernel in [`kernel`] — the
//! per-protocol surface is one threshold rule — over the samplers of
//! [`sampling`].

pub mod dynamic;
pub mod kernel;
pub mod parallel;
pub mod recorder;
pub mod sampling;
pub mod speed_fast;
pub mod uniform_fast;
pub mod weighted_fast;

use crate::equilibrium::{self, Threshold};
use crate::model::{System, TaskState};
use crate::potential;
use crate::protocol::{Protocol, RoundReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// When to stop a [`Simulation::run_until`] loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// The state is an exact Nash equilibrium under the given threshold
    /// (Theorem 1.2's target with [`Threshold::UnitWeight`] for uniform
    /// tasks, [`Threshold::LightestTask`] for weighted ones).
    Nash(Threshold),
    /// `Ψ₀(x) ≤ bound` (Theorem 1.1/1.3's target with `bound = 4ψ_c`).
    Psi0Below(f64),
    /// The state is an ε-approximate NE.
    EpsNash {
        /// Improvement threshold rule.
        threshold: Threshold,
        /// The ε of the approximate equilibrium.
        eps: f64,
    },
    /// No task migrated for this many consecutive rounds.
    Quiescent(u64),
}

/// Why a [`Simulation::run_until`] loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The stop condition was satisfied.
    ConditionMet,
    /// The round budget was exhausted first.
    BudgetExhausted,
}

/// Result of a [`Simulation::run_until`] call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Rounds executed by this call.
    pub rounds: u64,
    /// Whether the condition was met or the budget ran out.
    pub reason: StopReason,
    /// Total migrations performed during this call.
    pub migrations: u64,
}

/// A sequential round-by-round simulation of one protocol on one system.
///
/// # Example
///
/// ```
/// use slb_core::engine::{Simulation, StopCondition, StopReason};
/// use slb_core::equilibrium::Threshold;
/// use slb_core::model::{SpeedVector, System, TaskSet, TaskState};
/// use slb_core::protocol::SelfishUniform;
/// use slb_graphs::{generators, NodeId};
///
/// let system = System::new(
///     generators::ring(4),
///     SpeedVector::uniform(4),
///     TaskSet::uniform(20),
/// )?;
/// let state = TaskState::all_on_node(&system, NodeId(0));
/// let mut sim = Simulation::new(&system, SelfishUniform::new(), state, 42);
/// let outcome = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 10_000);
/// assert_eq!(outcome.reason, StopReason::ConditionMet);
/// # Ok::<(), slb_core::model::ModelError>(())
/// ```
#[derive(Debug)]
pub struct Simulation<'a, P> {
    system: &'a System,
    protocol: P,
    state: TaskState,
    rng: StdRng,
    round: u64,
}

impl<'a, P: Protocol> Simulation<'a, P> {
    /// Creates a simulation from an initial state and a master seed.
    pub fn new(system: &'a System, protocol: P, state: TaskState, seed: u64) -> Self {
        Simulation {
            system,
            protocol,
            state,
            rng: StdRng::seed_from_u64(seed),
            round: 0,
        }
    }

    /// The system under simulation.
    pub fn system(&self) -> &System {
        self.system
    }

    /// The current state.
    pub fn state(&self) -> &TaskState {
        &self.state
    }

    /// Consumes the simulation, returning the final state.
    pub fn into_state(self) -> TaskState {
        self.state
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The protocol driving this simulation.
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Executes one round.
    pub fn step(&mut self) -> RoundReport {
        let report = self
            .protocol
            .round(self.system, &mut self.state, &mut self.rng);
        self.round += 1;
        report
    }

    /// Executes exactly `rounds` rounds, returning total migrations.
    pub fn run(&mut self, rounds: u64) -> u64 {
        let mut migrations = 0u64;
        for _ in 0..rounds {
            migrations += self.step().migrations as u64;
        }
        migrations
    }

    /// Executes `rounds` rounds while recording the trajectory into a
    /// [`recorder::Trace`] sampled every `sample_every` rounds (round 0 and
    /// the final round are always recorded).
    ///
    /// # Panics
    ///
    /// Panics if `sample_every == 0`.
    pub fn run_with_trace(&mut self, rounds: u64, sample_every: u64) -> recorder::Trace {
        let mut trace = recorder::Trace::new(sample_every);
        trace.record(self.round, self.system, &self.state, None);
        let mut last_report = None;
        for _ in 0..rounds {
            let report = self.step();
            last_report = Some(report);
            trace.record(self.round, self.system, &self.state, Some(report));
        }
        if !self.round.is_multiple_of(sample_every) {
            trace.record_forced(self.round, self.system, &self.state, last_report);
        }
        trace
    }

    /// Whether the stop condition currently holds.
    pub fn condition_met(&self, condition: StopCondition) -> bool {
        match condition {
            StopCondition::Nash(threshold) => {
                equilibrium::is_nash(self.system, &self.state, threshold)
            }
            StopCondition::Psi0Below(bound) => {
                potential::psi0(
                    self.state.node_weights(),
                    self.system.speeds(),
                    self.system.tasks().total_weight(),
                ) <= bound
            }
            StopCondition::EpsNash { threshold, eps } => {
                equilibrium::is_eps_nash(self.system, &self.state, threshold, eps)
            }
            StopCondition::Quiescent(_) => false, // needs history; handled in run_until
        }
    }

    /// Runs until `condition` holds (checked before every round, so a
    /// satisfied initial state costs zero rounds) or `max_rounds` elapse.
    pub fn run_until(&mut self, condition: StopCondition, max_rounds: u64) -> RunOutcome {
        self.run_until_observed(condition, max_rounds, &mut ())
    }

    /// As [`Simulation::run_until`], but feeds every round (and the
    /// initial state, with `report = None`) through a
    /// [`recorder::RoundObserver`] — the hook for collecting per-round
    /// metrics (a [`recorder::Trace`], a custom tally) from a
    /// stop-condition-driven run without writing a second run loop.
    pub fn run_until_observed<O: recorder::RoundObserver>(
        &mut self,
        condition: StopCondition,
        max_rounds: u64,
        observer: &mut O,
    ) -> RunOutcome {
        observer.observe(self.round, self.system, &self.state, None);
        let mut quiet_streak = 0u64;
        let mut migrations = 0u64;
        for executed in 0..max_rounds {
            match condition {
                StopCondition::Quiescent(need) => {
                    if quiet_streak >= need {
                        return RunOutcome {
                            rounds: executed,
                            reason: StopReason::ConditionMet,
                            migrations,
                        };
                    }
                }
                c => {
                    if self.condition_met(c) {
                        return RunOutcome {
                            rounds: executed,
                            reason: StopReason::ConditionMet,
                            migrations,
                        };
                    }
                }
            }
            let report = self.step();
            observer.observe(self.round, self.system, &self.state, Some(report));
            migrations += report.migrations as u64;
            if report.migrations == 0 {
                quiet_streak += 1;
            } else {
                quiet_streak = 0;
            }
        }
        let reason = match condition {
            StopCondition::Quiescent(need) if quiet_streak >= need => StopReason::ConditionMet,
            c if !matches!(c, StopCondition::Quiescent(_)) && self.condition_met(c) => {
                StopReason::ConditionMet
            }
            _ => StopReason::BudgetExhausted,
        };
        RunOutcome {
            rounds: max_rounds,
            reason,
            migrations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpeedVector, TaskSet};
    use crate::protocol::SelfishUniform;
    use slb_graphs::{generators, NodeId};

    fn sys() -> System {
        System::new(
            generators::ring(5),
            SpeedVector::uniform(5),
            TaskSet::uniform(25),
        )
        .unwrap()
    }

    #[test]
    fn step_advances_round_counter() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 1);
        assert_eq!(sim.round(), 0);
        sim.step();
        sim.step();
        assert_eq!(sim.round(), 2);
        assert_eq!(sim.system().node_count(), 5);
        assert_eq!(sim.protocol().name(), "selfish-uniform");
    }

    #[test]
    fn run_until_nash_terminates() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 2);
        let out = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 50_000);
        assert_eq!(out.reason, StopReason::ConditionMet);
        assert!(out.migrations > 0);
        assert!(equilibrium::is_nash(&s, sim.state(), Threshold::UnitWeight));
    }

    #[test]
    fn satisfied_condition_costs_zero_rounds() {
        let s = sys();
        let st = TaskState::from_assignment(
            &s,
            &[
                0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 4, 4, 4, 4, 4,
            ],
        )
        .unwrap();
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 3);
        let out = sim.run_until(StopCondition::Nash(Threshold::UnitWeight), 100);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.reason, StopReason::ConditionMet);
        assert_eq!(out.migrations, 0);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 4);
        let out = sim.run_until(StopCondition::Psi0Below(0.0), 3);
        assert_eq!(out.rounds, 3);
        assert_eq!(out.reason, StopReason::BudgetExhausted);
    }

    #[test]
    fn psi0_condition_stops_early() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let psi_start = potential::report(&s, &st).psi0;
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 5);
        let out = sim.run_until(StopCondition::Psi0Below(psi_start / 10.0), 100_000);
        assert_eq!(out.reason, StopReason::ConditionMet);
        let now = potential::report(&s, sim.state()).psi0;
        assert!(now <= psi_start / 10.0);
    }

    #[test]
    fn quiescence_detected_at_equilibrium() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 6);
        let out = sim.run_until(StopCondition::Quiescent(20), 100_000);
        assert_eq!(out.reason, StopReason::ConditionMet);
    }

    #[test]
    fn eps_nash_weaker_than_exact() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut exact = Simulation::new(&s, SelfishUniform::new(), st.clone(), 7);
        let mut approx = Simulation::new(&s, SelfishUniform::new(), st, 7);
        let t_exact = exact.run_until(StopCondition::Nash(Threshold::UnitWeight), 100_000);
        let t_approx = approx.run_until(
            StopCondition::EpsNash {
                threshold: Threshold::UnitWeight,
                eps: 0.5,
            },
            100_000,
        );
        assert_eq!(t_exact.reason, StopReason::ConditionMet);
        assert_eq!(t_approx.reason, StopReason::ConditionMet);
        assert!(t_approx.rounds <= t_exact.rounds);
    }

    #[test]
    fn run_fixed_rounds() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 8);
        sim.run(17);
        assert_eq!(sim.round(), 17);
        let final_state = sim.into_state();
        final_state.check_invariants(&s).unwrap();
    }

    #[test]
    fn run_until_observed_feeds_every_round() {
        struct Tally {
            calls: u64,
            migrations: u64,
        }
        impl recorder::RoundObserver for Tally {
            fn observe(
                &mut self,
                _round: u64,
                _system: &System,
                _state: &TaskState,
                report: Option<RoundReport>,
            ) {
                self.calls += 1;
                self.migrations += report.map_or(0, |r| r.migrations as u64);
            }
        }
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 21);
        let mut tally = Tally {
            calls: 0,
            migrations: 0,
        };
        let out = sim.run_until_observed(
            StopCondition::Nash(Threshold::UnitWeight),
            50_000,
            &mut tally,
        );
        assert_eq!(out.reason, StopReason::ConditionMet);
        // Initial observation plus one per executed round.
        assert_eq!(tally.calls, out.rounds + 1);
        assert_eq!(tally.migrations, out.migrations);
        // A Trace is itself an observer: sampled rows appear without a
        // second run loop.
        let mut sim2 = Simulation::new(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            21,
        );
        let mut trace = recorder::Trace::new(10);
        let out2 = sim2.run_until_observed(
            StopCondition::Nash(Threshold::UnitWeight),
            50_000,
            &mut trace,
        );
        assert_eq!(out2.rounds, out.rounds, "same seed, same trajectory");
        assert!(!trace.rows().is_empty());
        assert_eq!(trace.rows()[0].round, 0);
        assert!(trace.rows().last().unwrap().psi0 <= trace.rows()[0].psi0);
    }

    #[test]
    fn run_with_trace_records_endpoints() {
        let s = sys();
        let st = TaskState::all_on_node(&s, NodeId(0));
        let mut sim = Simulation::new(&s, SelfishUniform::new(), st, 9);
        let trace = sim.run_with_trace(23, 10);
        // Rounds 0, 10, 20, plus the forced final 23.
        let rounds: Vec<u64> = trace.rows().iter().map(|r| r.round).collect();
        assert_eq!(rounds, vec![0, 10, 20, 23]);
        assert!(trace.rows().last().unwrap().psi0 <= trace.rows()[0].psi0);
        // A run length on the cadence has no duplicate final row.
        let mut sim2 = Simulation::new(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            9,
        );
        let trace2 = sim2.run_with_trace(20, 10);
        let rounds2: Vec<u64> = trace2.rows().iter().map(|r| r.round).collect();
        assert_eq!(rounds2, vec![0, 10, 20]);
    }
}
