//! Fast count-based simulation of the **speed-aware per-task protocols**:
//! Algorithm 2 (`SelfishWeighted`, the Definition-4.1 rule) and the \[6\]
//! baseline (`BhsBaseline`), on arbitrary speed vectors.
//!
//! These are the protocols the paper's headline results (Theorems
//! 1.2/1.3) are about, and they admit the same exchangeability collapse
//! as the Algorithm 1 engines: the migration probability `p_ij`
//! ([`crate::protocol::migration_probability`]) depends only on
//! `(ℓ_i, ℓ_j, s_i, s_j, W_i, α)` — never on task identity — and the
//! migration condition depends on a task only through its weight class
//! (`θ = 1` for Algorithm 2's weight-independent rule, `θ = w` for the
//! \[6\] per-task rule). Equal-weight tasks on a node are therefore
//! exchangeable, and a round is one multinomial per `(node, weight
//! class)`: `O(|E| + n·k)` work instead of the per-task engines' `O(m)`.
//!
//! Both rules run on the shared [`crate::engine::kernel`]; the \[6\]
//! baseline additionally filters each node's destination row per class
//! (light classes can use edges the heavy ones cannot). The engine reuses
//! the weight-class state and plumbing of
//! [`weighted_fast`](crate::engine::weighted_fast):
//! [`ClassCountState`], [`ClassRoundObserver`], [`WeightedFastStop`],
//! [`WeightedStepReport`].
//!
//! Approximations (both documented, both shared with the other count
//! engines): continuous weight distributions are quantized into classes
//! by the workloads layer — for the \[6\] rule this also quantizes the
//! per-task *threshold* to the class weight — and the binomial sampler
//! substitutes a clamped normal above mean
//! [`NORMAL_APPROX_THRESHOLD`](crate::engine::sampling::NORMAL_APPROX_THRESHOLD).

use crate::engine::kernel::{self, CountKernel, OwnWeightThreshold, RelaxedThreshold};
use crate::engine::uniform_fast::FastRunOutcome;
use crate::engine::weighted_fast::{
    ClassCountState, ClassRoundObserver, WeightedFastStop, WeightedStepReport,
};
use crate::equilibrium::{self, Threshold};
use crate::model::System;
use crate::potential;
use crate::protocol::Alpha;

/// Which speed-aware per-task protocol the engine simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeedFastRule {
    /// Algorithm 2 (`selfish-weighted`): the weight-independent threshold
    /// `ℓ_i − ℓ_j > 1/s_j` shared by every task on a node.
    Alg2,
    /// The \[6\] baseline (`bhs-baseline`): each task's own weight as the
    /// threshold, `ℓ_i − ℓ_j > w/s_j`.
    Bhs,
}

impl SpeedFastRule {
    /// The matching per-task protocol's name (for reports and CSV).
    pub fn protocol_name(self) -> &'static str {
        match self {
            SpeedFastRule::Alg2 => "selfish-weighted",
            SpeedFastRule::Bhs => "bhs-baseline",
        }
    }
}

/// Count-based simulator of **Algorithm 2** and the **\[6\] baseline** on
/// weighted tasks and heterogeneous speeds.
///
/// The state's class weights may be a quantization of the system's task
/// weights, so only the task *count* is checked against the system; `Ψ₀`
/// and the equilibrium predicates are evaluated against the state's own
/// (possibly quantized) weights — exactly as in
/// [`WeightedFastSim`](crate::engine::weighted_fast::WeightedFastSim).
///
/// # Example
///
/// ```
/// use slb_core::engine::speed_fast::{SpeedFastRule, SpeedFastSim};
/// use slb_core::engine::weighted_fast::ClassCountState;
/// use slb_core::equilibrium::Threshold;
/// use slb_core::model::{SpeedVector, System, TaskSet};
/// use slb_core::protocol::Alpha;
/// use slb_graphs::generators;
///
/// let weights: Vec<f64> = (0..60).map(|t| if t % 2 == 0 { 0.25 } else { 1.0 }).collect();
/// let system = System::new(
///     generators::ring(6),
///     SpeedVector::integer(vec![1, 2, 1, 2, 1, 2])?,
///     TaskSet::weighted(weights)?,
/// )?;
/// let mut per_node = vec![vec![0u64; 2]; 6];
/// per_node[0] = vec![30, 30];
/// let state = ClassCountState::new(vec![0.25, 1.0], per_node);
/// let mut sim = SpeedFastSim::new(&system, SpeedFastRule::Alg2, Alpha::Approximate, state, 7);
/// let out = sim.run_until_nash(Threshold::UnitWeight, 100_000);
/// assert!(out.reached && out.migrations > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SpeedFastSim<'a> {
    system: &'a System,
    rule: SpeedFastRule,
    alpha: f64,
    state: ClassCountState,
    /// Master seed; each round's shards derive their streams from
    /// `(seed, round, shard)`, so the trajectory is thread-invariant.
    seed: u64,
    /// Worker cap for the sharded round (result-invariant).
    threads: usize,
    round: u64,
    /// The shared count kernel (reusable round scratch).
    kernel: CountKernel,
}

impl<'a> SpeedFastSim<'a> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the state's node count or total task count does not match
    /// the system's.
    pub fn new(
        system: &'a System,
        rule: SpeedFastRule,
        alpha: Alpha,
        state: ClassCountState,
        seed: u64,
    ) -> Self {
        assert_eq!(
            state.nodes(),
            system.node_count(),
            "state node count must match the system"
        );
        assert_eq!(
            state.total_tasks(),
            system.task_count() as u64,
            "state total must match the system's task count"
        );
        SpeedFastSim {
            system,
            rule,
            alpha: alpha.resolve(system.speeds()),
            state,
            seed,
            threads: 1,
            round: 0,
            kernel: CountKernel::new(),
        }
    }

    /// Caps the worker fan-out of the sharded round. The trajectory is
    /// identical at any value (shard streams depend only on
    /// `(seed, round, shard)`); only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The current counts.
    pub fn state(&self) -> &ClassCountState {
        &self.state
    }

    /// The simulated protocol rule.
    pub fn rule(&self) -> SpeedFastRule {
        self.rule
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Executes one round (one step of the shared count kernel under this
    /// engine's threshold rule).
    pub fn step(&mut self) -> WeightedStepReport {
        let (class_weights, counts) = self.state.kernel_view();
        let totals = match self.rule {
            SpeedFastRule::Alg2 => self.kernel.step(
                self.system.graph(),
                self.system.speeds(),
                self.alpha,
                &RelaxedThreshold,
                class_weights,
                counts,
                self.seed,
                self.round,
                self.threads,
            ),
            SpeedFastRule::Bhs => self.kernel.step(
                self.system.graph(),
                self.system.speeds(),
                self.alpha,
                &OwnWeightThreshold,
                class_weights,
                counts,
                self.seed,
                self.round,
                self.threads,
            ),
        };
        self.round += 1;
        WeightedStepReport {
            migrations: totals.migrations,
            migrated_weight: totals.migrated_weight,
        }
    }

    /// `Ψ₀` of the current state (against the state's class weights).
    pub fn psi0(&self) -> f64 {
        potential::psi0(
            &self.state.node_weights(),
            self.system.speeds(),
            self.state.total_weight(),
        )
    }

    /// Whether the current state is a Nash equilibrium under `threshold`
    /// ([`Threshold::UnitWeight`] is Algorithm 2's relaxed absorbing
    /// condition; [`Threshold::LightestTask`] is the exact weighted NE the
    /// \[6\] baseline converges to).
    pub fn is_nash(&self, threshold: Threshold) -> bool {
        let (loads, thresholds, occupied) =
            kernel::class_equilibrium_inputs(&self.state, self.system.speeds(), threshold);
        equilibrium::is_nash_loads(
            self.system.graph(),
            self.system.speeds(),
            &loads,
            &thresholds,
            &occupied,
        )
    }

    /// Whether the current state is an ε-approximate Nash equilibrium
    /// under `threshold`, evaluated count-based against the state's own
    /// (possibly quantized) class weights.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ε ≤ 1`.
    pub fn is_eps_nash(&self, threshold: Threshold, eps: f64) -> bool {
        let (loads, thresholds, occupied) =
            kernel::class_equilibrium_inputs(&self.state, self.system.speeds(), threshold);
        equilibrium::is_eps_nash_loads(
            self.system.graph(),
            self.system.speeds(),
            &loads,
            &thresholds,
            &occupied,
            eps,
        )
    }

    /// The smallest `ε` for which the current state is an ε-approximate
    /// NE under `threshold` (0 at an exact NE), evaluated count-based.
    pub fn nash_gap(&self, threshold: Threshold) -> f64 {
        let (loads, thresholds, occupied) =
            kernel::class_equilibrium_inputs(&self.state, self.system.speeds(), threshold);
        equilibrium::nash_gap_loads(
            self.system.graph(),
            self.system.speeds(),
            &loads,
            &thresholds,
            &occupied,
        )
    }

    /// Runs until `stop` holds (checked before every round, so a satisfied
    /// initial state costs zero rounds) or the budget runs out, feeding
    /// every round through `observer` (the stop rules and observer hook
    /// are shared with the weight-class engine).
    pub fn run_until_observed<O: ClassRoundObserver>(
        &mut self,
        stop: WeightedFastStop,
        max_rounds: u64,
        observer: &mut O,
    ) -> FastRunOutcome {
        kernel::run_observed_loop(
            self,
            max_rounds,
            |sim| match stop {
                WeightedFastStop::Psi0Below(bound) => sim.psi0() <= bound,
                WeightedFastStop::Nash(threshold) => sim.is_nash(threshold),
                WeightedFastStop::EpsNash(threshold, eps) => sim.is_eps_nash(threshold, eps),
            },
            Self::step,
            |report| report.migrations,
            |sim, report| observer.observe(sim.round, sim.system, &sim.state, report),
        )
    }

    /// Runs until `Ψ₀ ≤ bound` or the budget runs out.
    pub fn run_until_psi0(&mut self, bound: f64, max_rounds: u64) -> FastRunOutcome {
        self.run_until_observed(WeightedFastStop::Psi0Below(bound), max_rounds, &mut ())
    }

    /// Runs until a Nash equilibrium under `threshold` or the budget runs
    /// out.
    pub fn run_until_nash(&mut self, threshold: Threshold, max_rounds: u64) -> FastRunOutcome {
        self.run_until_observed(WeightedFastStop::Nash(threshold), max_rounds, &mut ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpeedVector, TaskSet, TaskState};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slb_graphs::generators;

    /// A 2-class system: `m` tasks alternating between weights 0.25 and 1,
    /// on alternating speeds 1 and 2.
    fn two_class_sys(graph: slb_graphs::Graph, m: usize) -> System {
        let n = graph.node_count();
        let weights: Vec<f64> = (0..m)
            .map(|t| if t % 2 == 0 { 0.25 } else { 1.0 })
            .collect();
        System::new(
            graph,
            SpeedVector::integer((0..n as u64).map(|i| 1 + i % 2).collect()).unwrap(),
            TaskSet::weighted(weights).unwrap(),
        )
        .unwrap()
    }

    fn hot_state(n: usize, per_class: &[u64]) -> ClassCountState {
        let k = per_class.len();
        let mut per_node = vec![vec![0u64; k]; n];
        per_node[0] = per_class.to_vec();
        ClassCountState::new(vec![0.25, 1.0][..k].to_vec(), per_node)
    }

    #[test]
    #[should_panic(expected = "state total must match")]
    fn total_mismatch_rejected() {
        let sys = two_class_sys(generators::path(2), 6);
        let _ = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Alg2,
            Alpha::Approximate,
            hot_state(2, &[1, 1]),
            1,
        );
    }

    #[test]
    fn rule_and_name_accessors() {
        let sys = two_class_sys(generators::path(2), 4);
        let sim = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Bhs,
            Alpha::Approximate,
            hot_state(2, &[2, 2]),
            1,
        );
        assert_eq!(sim.rule(), SpeedFastRule::Bhs);
        assert_eq!(sim.round(), 0);
        assert_eq!(SpeedFastRule::Alg2.protocol_name(), "selfish-weighted");
        assert_eq!(SpeedFastRule::Bhs.protocol_name(), "bhs-baseline");
    }

    #[test]
    fn conserves_per_class_totals_under_both_rules() {
        for rule in [SpeedFastRule::Alg2, SpeedFastRule::Bhs] {
            let sys = two_class_sys(generators::torus(3, 3), 900);
            let mut sim =
                SpeedFastSim::new(&sys, rule, Alpha::Approximate, hot_state(9, &[450, 450]), 5);
            for _ in 0..100 {
                sim.step();
            }
            assert_eq!(sim.round(), 100);
            assert_eq!(sim.state().class_total(0), 450, "{rule:?}");
            assert_eq!(sim.state().class_total(1), 450, "{rule:?}");
        }
    }

    #[test]
    fn alg2_rule_matches_weighted_fast_engine_exactly() {
        // Algorithm 2's weight-independent rule is the rule the
        // weight-class engine already simulates: under the same seed the
        // two engines must produce bit-identical trajectories.
        use crate::engine::weighted_fast::WeightedFastSim;
        let sys = two_class_sys(generators::ring(6), 240);
        let mut a = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Alg2,
            Alpha::Approximate,
            hot_state(6, &[120, 120]),
            99,
        );
        let mut b = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(6, &[120, 120]), 99);
        for _ in 0..200 {
            let ra = a.step();
            let rb = b.step();
            assert_eq!(ra, rb);
        }
        assert_eq!(a.state(), b.state());
    }

    #[test]
    fn alg2_reaches_relaxed_equilibrium_and_it_absorbs() {
        let sys = two_class_sys(generators::ring(6), 240);
        let mut sim = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Alg2,
            Alpha::Approximate,
            hot_state(6, &[120, 120]),
            6,
        );
        let out = sim.run_until_nash(Threshold::UnitWeight, 100_000);
        assert!(out.reached, "no relaxed NE within budget");
        assert!(out.migrations > 0);
        // ℓ_i − ℓ_j ≤ 1/s_j on every edge at the absorbing state, and the
        // weight-independent rule then never moves again.
        let loads = sim.state().loads(sys.speeds());
        for &(a, b) in sys.graph().edges() {
            for (i, j) in [(a.index(), b.index()), (b.index(), a.index())] {
                assert!(loads[i] - loads[j] <= 1.0 / sys.speeds().speed(j) + 1e-9);
            }
        }
        for _ in 0..200 {
            assert_eq!(sim.step().migrations, 0);
        }
    }

    #[test]
    fn bhs_keeps_moving_light_tasks_where_alg2_freezes() {
        // Loads (0.9, 0) with ten 0.09-weight tasks on a unit-speed path:
        // Algorithm 2's relaxed threshold says stop (0.9 ≤ 1), but each
        // task still gains under its own-weight threshold (0.9 > 0.09) —
        // the count-based engines must reproduce the §4 distinction.
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(vec![0.09; 10]).unwrap(),
        )
        .unwrap();
        let state = ClassCountState::new(vec![0.09], vec![vec![10], vec![0]]);
        let mut alg2 = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Alg2,
            Alpha::Approximate,
            state.clone(),
            5,
        );
        assert!(alg2.is_nash(Threshold::UnitWeight));
        for _ in 0..500 {
            assert_eq!(alg2.step().migrations, 0, "alg2 must be frozen");
        }
        let mut bhs = SpeedFastSim::new(&sys, SpeedFastRule::Bhs, Alpha::Approximate, state, 5);
        assert!(!bhs.is_nash(Threshold::LightestTask));
        let out = bhs.run_until_nash(Threshold::LightestTask, 100_000);
        assert!(out.reached, "bhs must reach the exact weighted NE");
        assert!(out.migrations > 0, "bhs must migrate light tasks");
    }

    #[test]
    fn bhs_light_class_uses_edges_the_heavy_class_cannot() {
        // Unit-speed path, node 0 at load 0.3 (6 light), node 1 at load
        // 1.05 (2 light + 1 heavy). The 1→0 gap starts at 0.75 and only
        // shrinks as light tasks drain, so the heavy class's own-weight
        // threshold (0.95) never passes while the light one (0.05) does:
        // the \[6\] rule must migrate light tasks off node 1 and never
        // move the heavy task — the per-class destination filtering the
        // relaxed rule never exercises.
        let weights: Vec<f64> = [vec![0.05; 8], vec![0.95; 1]].concat();
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(weights).unwrap(),
        )
        .unwrap();
        let state = ClassCountState::new(vec![0.05, 0.95], vec![vec![6, 0], vec![2, 1]]);
        let mut sim = SpeedFastSim::new(&sys, SpeedFastRule::Bhs, Alpha::Approximate, state, 3);
        let heavy_home = sim.state().counts(1)[1];
        assert_eq!(heavy_home, 1);
        let mut light_moved = 0u64;
        for _ in 0..5000 {
            light_moved += sim.step().migrations;
            assert_eq!(
                sim.state().counts(0)[1],
                0,
                "heavy class crossed an edge its own-weight threshold forbids"
            );
        }
        assert_eq!(sim.state().counts(1)[1], 1);
        assert!(light_moved > 0, "light class never moved");
    }

    #[test]
    fn first_round_outflow_matches_task_level_mean_bhs() {
        use crate::protocol::{BhsBaseline, Protocol};
        let sys = two_class_sys(generators::ring(4), 400);
        let trials = 300u64;
        let mut fast_total = 0u64;
        for t in 0..trials {
            let mut sim = SpeedFastSim::new(
                &sys,
                SpeedFastRule::Bhs,
                Alpha::Approximate,
                hot_state(4, &[200, 200]),
                1000 + t,
            );
            fast_total += sim.step().migrations;
        }
        let mut task_total = 0u64;
        for t in 0..trials {
            let mut st = TaskState::all_on_node(&sys, slb_graphs::NodeId(0));
            let mut rng = StdRng::seed_from_u64(5000 + t);
            task_total += BhsBaseline::new().round(&sys, &mut st, &mut rng).migrations as u64;
        }
        let fast_mean = fast_total as f64 / trials as f64;
        let task_mean = task_total as f64 / trials as f64;
        assert!(
            (fast_mean - task_mean).abs() < 0.15 * task_mean.max(1.0),
            "fast {fast_mean} vs task-level {task_mean}"
        );
    }

    #[test]
    fn heterogeneous_speeds_balance_by_load_not_count() {
        // Speeds (1, 4): at equilibrium the fast node must carry most of
        // the weight under either rule.
        for rule in [SpeedFastRule::Alg2, SpeedFastRule::Bhs] {
            let m = 200;
            let weights: Vec<f64> = (0..m).map(|t| if t % 2 == 0 { 0.5 } else { 1.0 }).collect();
            let sys = System::new(
                generators::path(2),
                SpeedVector::integer(vec![1, 4]).unwrap(),
                TaskSet::weighted(weights).unwrap(),
            )
            .unwrap();
            let state = ClassCountState::new(vec![0.5, 1.0], vec![vec![100, 100], vec![0, 0]]);
            let mut sim = SpeedFastSim::new(&sys, rule, Alpha::Approximate, state, 9);
            let threshold = match rule {
                SpeedFastRule::Alg2 => Threshold::UnitWeight,
                SpeedFastRule::Bhs => Threshold::LightestTask,
            };
            let out = sim.run_until_nash(threshold, 200_000);
            assert!(out.reached, "{rule:?} did not reach its equilibrium");
            let w_fast = sim.state().node_weight(1);
            assert!(
                w_fast > 0.7 * sim.state().total_weight(),
                "{rule:?}: fast node carries only {w_fast}"
            );
        }
    }

    #[test]
    fn psi0_decreases_and_stop_rules_work() {
        for rule in [SpeedFastRule::Alg2, SpeedFastRule::Bhs] {
            let sys = two_class_sys(generators::complete(8), 800);
            let mut sim = SpeedFastSim::new(
                &sys,
                rule,
                Alpha::Approximate,
                hot_state(8, &[400, 400]),
                10,
            );
            let start = sim.psi0();
            let out = sim.run_until_psi0(start / 100.0, 100_000);
            assert!(out.reached, "{rule:?}");
            assert!(sim.psi0() <= start / 100.0);
        }
    }

    #[test]
    fn eps_nash_stop_halts_no_later_than_exact() {
        let sys = two_class_sys(generators::ring(6), 240);
        let run = |stop: WeightedFastStop| {
            let mut sim = SpeedFastSim::new(
                &sys,
                SpeedFastRule::Bhs,
                Alpha::Approximate,
                hot_state(6, &[120, 120]),
                21,
            );
            let out = sim.run_until_observed(stop, 200_000, &mut ());
            assert!(out.reached);
            out.rounds
        };
        let approx = run(WeightedFastStop::EpsNash(Threshold::LightestTask, 0.5));
        let exact = run(WeightedFastStop::Nash(Threshold::LightestTask));
        assert!(approx <= exact, "ε-NE ({approx}) after exact NE ({exact})");
    }

    #[test]
    fn observer_sees_every_round() {
        struct Tally {
            calls: u64,
            migrations: u64,
        }
        impl ClassRoundObserver for Tally {
            fn observe(
                &mut self,
                _round: u64,
                _system: &System,
                state: &ClassCountState,
                report: Option<WeightedStepReport>,
            ) {
                self.calls += 1;
                if let Some(r) = report {
                    self.migrations += r.migrations;
                }
                assert_eq!(state.total_tasks(), 120);
            }
        }
        let sys = two_class_sys(generators::ring(6), 120);
        let mut sim = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Alg2,
            Alpha::Approximate,
            hot_state(6, &[60, 60]),
            11,
        );
        let mut tally = Tally {
            calls: 0,
            migrations: 0,
        };
        let out = sim.run_until_observed(
            WeightedFastStop::Nash(Threshold::UnitWeight),
            50_000,
            &mut tally,
        );
        assert!(out.reached);
        assert_eq!(tally.calls, out.rounds + 1);
        assert_eq!(tally.migrations, out.migrations);
    }

    #[test]
    fn million_task_stress_under_bhs() {
        // The per-class multinomial path must stay stable through the
        // normal-approximation regime under the class-filtered rule too.
        let n = 5;
        let m = 1_000_000usize;
        let sys = two_class_sys(generators::ring(n), m);
        let mut sim = SpeedFastSim::new(
            &sys,
            SpeedFastRule::Bhs,
            Alpha::Approximate,
            hot_state(n, &[m as u64 / 2, m as u64 / 2]),
            11,
        );
        for _ in 0..200 {
            sim.step();
        }
        assert_eq!(sim.state().total_tasks(), m as u64);
        assert_eq!(sim.state().class_total(0), m as u64 / 2);
        assert!(sim.state().node_weight(0) < sim.state().total_weight() / 2.0);
    }
}
