//! The shared count-based round kernel behind the three fast engines.
//!
//! [`uniform_fast`](crate::engine::uniform_fast),
//! [`weighted_fast`](crate::engine::weighted_fast) and
//! [`speed_fast`](crate::engine::speed_fast) all simulate the same
//! synchronous-round structure: every task on node `i` picks a uniform
//! neighbor `j`, tests a migration condition `ℓ_i − ℓ_j > θ/s_j`, and
//! migrates with the shared probability `p_ij`
//! ([`migration_probability`]). The probability never depends on the
//! task's identity or weight, and the condition depends on the task only
//! through its weight class — so tasks of equal weight on a node are
//! exchangeable, and one round collapses to a multinomial per
//! `(node, weight class)` ([`sample_multinomial`]).
//!
//! The protocols differ **only** in the threshold numerator `θ`:
//! Algorithms 1 and 2 use the weight-independent `θ = 1` (the heaviest
//! possible task — the paper's §4 design point), while the \[6\] baseline
//! uses each task's own weight `θ = w`. [`ThresholdRule`] captures exactly
//! that one number, and the three engines become thin instantiations of
//! the kernel step:
//!
//! | engine | rule | classes |
//! |---|---|---|
//! | `UniformFastSim` | [`RelaxedThreshold`] | one (`w = 1`) |
//! | `WeightedFastSim` | [`RelaxedThreshold`] | `k` |
//! | `SpeedFastSim` (alg2) | [`RelaxedThreshold`] | `k` |
//! | `SpeedFastSim` (bhs) | [`OwnWeightThreshold`] | `k` |
//!
//! # Sharded rounds
//!
//! A round is embarrassingly parallel: every node's multinomial reads only
//! the round-start snapshot (loads, node weights), so nodes can be drawn
//! concurrently as long as the count deltas merge deterministically. The
//! kernel partitions the node range into [`ROUND_SHARDS`] **fixed**
//! contiguous shards — a constant, *never* a function of the thread count —
//! and each shard draws from its own RNG stream
//! ([`crate::rng::rng_for_shard`], keyed by
//! `(seed, round, shard)`). Shards are fanned out over up to `threads`
//! workers via the crossbeam scope, each writing
//!
//! * count deltas for *its own* node range into a disjoint `&mut` slice of
//!   the delta buffer (zero contention, no atomics), and
//! * deltas destined for *other* shards' nodes into a small per-shard
//!   spill vector, applied after the join in ascending shard order.
//!
//! Determinism argument: each shard's draws depend only on its seeded
//! stream and the immutable snapshot; integer deltas commute exactly; and
//! the one non-associative reduction (the `f64` migrated-weight total) is
//! summed in fixed shard order after the join. Hence the trajectory is a
//! pure function of `(seed, round)` — byte-identical at `--threads 1`,
//! `8`, or `64`.
//!
//! The kernel owns one reusable scratch block per shard (destination
//! probability rows in SoA layout, the per-class filtered view, the
//! multinomial output row, the spill), so a steady-state round performs no
//! heap allocation; neighbor scans run over the graph's CSR adjacency
//! slices. Per round the work is `O(|E| + n·k)` plus the sampled counts —
//! against `O(m)` for the per-task engines — and wall-clock divides by the
//! worker count up to [`ROUND_SHARDS`].

use crate::engine::sampling::sample_multinomial;
use crate::engine::uniform_fast::FastRunOutcome;
use crate::engine::weighted_fast::ClassCountState;
use crate::equilibrium::Threshold;
use crate::model::SpeedVector;
use crate::protocol::migration_probability;
use crate::rng::{rng_for_shard, streams};
use slb_graphs::{Graph, NodeId};
use std::ops::Range;

/// Fixed number of node shards per round. A constant — independent of
/// `--threads` — so the set of RNG streams consumed by a round, and hence
/// every artifact, is identical at any thread count. 64 bounds the useful
/// parallelism of one round and keeps per-shard scratch small.
pub const ROUND_SHARDS: usize = 64;

/// The contiguous node range owned by `shard` out of [`ROUND_SHARDS`] over
/// `n` nodes: `[s·n/S, (s+1)·n/S)`. Ranges partition `[0, n)` exactly;
/// when `n < ROUND_SHARDS` the tail shards are empty.
pub fn shard_range(shard: usize, n: usize) -> Range<usize> {
    debug_assert!(shard < ROUND_SHARDS);
    (shard * n / ROUND_SHARDS)..((shard + 1) * n / ROUND_SHARDS)
}

/// The migration-condition threshold of a count-based protocol: on edge
/// `(i, j)`, a task of class weight `w` has an incentive to migrate iff
/// `ℓ_i − ℓ_j > threshold(w)/s_j`. The migration *probability* `p_ij` is
/// protocol-independent ([`migration_probability`]), so this one number
/// is the entire per-protocol surface of the count kernel.
pub trait ThresholdRule {
    /// Whether `θ` depends on the class weight. `false` lets the kernel
    /// constant-fold away the per-node loosest-threshold scan and the
    /// per-class destination filtering (every class shares one row).
    const CLASS_DEPENDENT: bool;

    /// Threshold numerator `θ(w)` for a task of class weight `w`.
    fn threshold(&self, class_weight: f64) -> f64;
}

/// The weight-independent threshold of Algorithms 1 and 2: `θ = 1`, the
/// heaviest possible task (`w ≤ 1`). Every task on a node faces the same
/// condition — the §4 design point that makes the relaxed equilibrium
/// absorbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxedThreshold;

impl ThresholdRule for RelaxedThreshold {
    const CLASS_DEPENDENT: bool = false;

    #[inline]
    fn threshold(&self, _class_weight: f64) -> f64 {
        1.0
    }
}

/// The own-weight threshold of the \[6\] baseline: `θ = w`, so light
/// tasks keep migrating long after the relaxed rule has frozen the edge —
/// which is why \[6\] converges to an *exact* NE and its bounds are
/// weaker (Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OwnWeightThreshold;

impl ThresholdRule for OwnWeightThreshold {
    const CLASS_DEPENDENT: bool = true;

    #[inline]
    fn threshold(&self, class_weight: f64) -> f64 {
        class_weight
    }
}

/// Totals of one kernel round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct StepTotals {
    /// Tasks that migrated.
    pub migrations: u64,
    /// Total weight that migrated.
    pub migrated_weight: f64,
}

/// Reusable per-shard scratch: the SoA destination row of the node being
/// processed, the per-class filtered view, the multinomial output, the
/// cross-shard spill, and the shard's own totals. One block per shard so
/// workers never share mutable state.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Current node's candidate destinations (CSR neighbor order).
    dest_nodes: Vec<usize>,
    /// `q_j = p_ij/deg(i)` per candidate destination.
    dest_probs: Vec<f64>,
    /// `s_j` per candidate destination (for per-class conditions).
    dest_speeds: Vec<f64>,
    /// Per-class filtered destination view (tighter-threshold classes).
    class_dest_nodes: Vec<usize>,
    /// Probabilities of the filtered view.
    class_dest_probs: Vec<f64>,
    /// Multinomial output row.
    moved: Vec<u64>,
    /// Count deltas landing outside this shard's node range, as
    /// `(flat node·k+class index, delta)`; applied after the join in
    /// ascending shard order.
    spill: Vec<(u32, i64)>,
    /// This shard's migration totals, merged in shard order.
    totals: StepTotals,
}

/// Reusable per-round scratch of the count-based engines. One instance
/// lives inside each simulator; all buffers are cleared and refilled in
/// place, so steady-state rounds allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct CountKernel {
    /// Round-start `W_i`.
    node_weights: Vec<f64>,
    /// Round-start speed-normalized loads `ℓ_i = W_i/s_i`.
    loads: Vec<f64>,
    /// Count deltas of the committing round (node-major, `k` per node),
    /// split into disjoint per-shard slices during the parallel section.
    delta: Vec<i64>,
    /// `θ(w_c)` per class, computed once per round.
    class_thresholds: Vec<f64>,
    /// One scratch block per shard ([`ROUND_SHARDS`] entries).
    shards: Vec<ShardScratch>,
}

impl CountKernel {
    /// A fresh kernel (buffers grow to steady-state sizes on first use).
    pub(crate) fn new() -> Self {
        CountKernel::default()
    }

    /// Executes one synchronous round over node-major per-class `counts`
    /// (`counts[node·k + class]` tasks of weight `class_weights[class]`),
    /// committing all migrations simultaneously against the round-start
    /// snapshot. Randomness is drawn from the per-shard streams of
    /// `(seed, round)`; `threads` caps the worker fan-out and has **no**
    /// effect on the result.
    ///
    /// `graph` and `speeds` are passed per call rather than captured at
    /// construction: the dynamic engine feeds a churn-remapped graph and a
    /// per-round speed vector through the *same* kernel (and the same
    /// scratch buffers — nothing is re-allocated when either changes), the
    /// static engines simply pass their system's members every round.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<R: ThresholdRule + Sync>(
        &mut self,
        graph: &Graph,
        speeds: &SpeedVector,
        alpha: f64,
        rule: &R,
        class_weights: &[f64],
        counts: &mut [u64],
        seed: u64,
        round: u64,
        threads: usize,
    ) -> StepTotals {
        let g = graph;
        let k = class_weights.len();
        let n = g.node_count();
        debug_assert_eq!(counts.len(), n * k, "node-major counts, k per node");
        assert!(
            n * k <= u32::MAX as usize,
            "flat (node, class) index must fit the u32 spill encoding"
        );

        // Round-start aggregates, once per round into reused buffers: the
        // node weights and the speed-normalized loads every probability
        // below reads.
        self.node_weights.clear();
        if k == 1 {
            // Single-class form as a plain map: the steady-state rounds
            // of the uniform engine are dominated by this preamble, so it
            // must vectorize.
            let w = class_weights[0];
            self.node_weights
                .extend(counts.iter().map(|&c| c as f64 * w));
        } else {
            self.node_weights.extend(counts.chunks_exact(k).map(|row| {
                row.iter()
                    .zip(class_weights)
                    .map(|(&c, &w)| c as f64 * w)
                    .sum::<f64>()
            }));
        }
        self.loads.clear();
        self.loads.extend(
            self.node_weights
                .iter()
                .zip(speeds.as_slice())
                .map(|(&w, &s)| w / s),
        );
        self.delta.clear();
        self.delta.resize(counts.len(), 0);
        self.class_thresholds.clear();
        self.class_thresholds
            .extend(class_weights.iter().map(|&w| rule.threshold(w)));
        if self.shards.is_empty() {
            self.shards.resize_with(ROUND_SHARDS, ShardScratch::default);
        }

        // Carve the delta buffer into one disjoint `&mut` slice per shard
        // (the shard ranges partition `[0, n)` in order), pair each with
        // its scratch block, and drop empty shards after resetting their
        // mergeable state.
        let mut jobs: Vec<(usize, Range<usize>, &mut [i64], &mut ShardScratch)> =
            Vec::with_capacity(ROUND_SHARDS);
        {
            let mut rest: &mut [i64] = &mut self.delta;
            let mut scratches = self.shards.iter_mut();
            for shard in 0..ROUND_SHARDS {
                let range = shard_range(shard, n);
                let scratch = scratches.next().expect("ROUND_SHARDS scratch blocks");
                let (slice, tail) = rest.split_at_mut(range.len() * k);
                rest = tail;
                if range.is_empty() {
                    scratch.spill.clear();
                    scratch.totals = StepTotals::default();
                } else {
                    jobs.push((shard, range, slice, scratch));
                }
            }
        }

        let counts_snapshot: &[u64] = counts;
        let node_weights = &self.node_weights;
        let loads = &self.loads;
        let class_thresholds = &self.class_thresholds;
        let workers = threads.clamp(1, jobs.len().max(1));
        if workers <= 1 {
            for (shard, range, delta, scratch) in jobs {
                run_shard::<R>(
                    graph,
                    speeds,
                    alpha,
                    class_weights,
                    class_thresholds,
                    node_weights,
                    loads,
                    counts_snapshot,
                    shard,
                    range,
                    delta,
                    scratch,
                    seed,
                    round,
                );
            }
        } else {
            // Round-robin shards over workers. Assignment affects only
            // scheduling: every shard's draws come from its own stream and
            // land in its own buffers, so the result is worker-invariant.
            let mut batches: Vec<Vec<_>> = (0..workers).map(|_| Vec::new()).collect();
            for (idx, job) in jobs.into_iter().enumerate() {
                batches[idx % workers].push(job);
            }
            crossbeam::thread::scope(|scope| {
                for batch in batches {
                    scope.spawn(move |_| {
                        for (shard, range, delta, scratch) in batch {
                            run_shard::<R>(
                                graph,
                                speeds,
                                alpha,
                                class_weights,
                                class_thresholds,
                                node_weights,
                                loads,
                                counts_snapshot,
                                shard,
                                range,
                                delta,
                                scratch,
                                seed,
                                round,
                            );
                        }
                    });
                }
            })
            .expect("shard workers never panic");
        }

        // Deterministic merge: spills and totals in ascending shard order
        // (the f64 weight total is the one order-sensitive reduction).
        let mut totals = StepTotals::default();
        for scratch in &self.shards {
            for &(idx, d) in &scratch.spill {
                self.delta[idx as usize] += d;
            }
            totals.migrations += scratch.totals.migrations;
            totals.migrated_weight += scratch.totals.migrated_weight;
        }
        for (count, &d) in counts.iter_mut().zip(&self.delta) {
            let updated = *count as i64 + d;
            debug_assert!(updated >= 0, "negative count after round");
            *count = updated as u64;
        }
        totals
    }
}

/// Draws one shard's multinomials against the round-start snapshot.
/// Own-range deltas go into `delta` (this shard's disjoint slice, indexed
/// relative to `range.start`); deltas for other shards' nodes go into the
/// spill. Randomness comes exclusively from the `(seed, round, shard)`
/// stream, so the caller's scheduling cannot change the draws.
#[allow(clippy::too_many_arguments)]
fn run_shard<R: ThresholdRule>(
    graph: &Graph,
    speeds: &SpeedVector,
    alpha: f64,
    class_weights: &[f64],
    class_thresholds: &[f64],
    node_weights: &[f64],
    loads: &[f64],
    counts: &[u64],
    shard: usize,
    range: Range<usize>,
    delta: &mut [i64],
    scratch: &mut ShardScratch,
    seed: u64,
    round: u64,
) {
    let g = graph;
    let k = class_weights.len();
    let base = range.start;
    let mut rng = rng_for_shard(seed, round, streams::round::KERNEL, shard as u64);
    scratch.spill.clear();
    scratch.totals = StepTotals::default();
    for ii in range {
        if node_weights[ii] <= 0.0 {
            continue;
        }
        let i = NodeId(ii);
        let deg = g.degree(i);
        // The loosest condition any class present on this node can
        // satisfy gates the (CSR-contiguous) neighbor scan: edges
        // failing it for every present class never price a
        // probability. Class-independent rules constant-fold the scan
        // away (every class shares the one threshold).
        let min_thr = if R::CLASS_DEPENDENT {
            let mut min_thr = f64::INFINITY;
            for c in 0..k {
                if counts[ii * k + c] > 0 && class_thresholds[c] < min_thr {
                    min_thr = class_thresholds[c];
                }
            }
            min_thr
        } else {
            class_thresholds[0]
        };
        scratch.dest_nodes.clear();
        scratch.dest_probs.clear();
        scratch.dest_speeds.clear();
        for &j in g.neighbors(i) {
            let jj = j.index();
            let s_j = speeds.speed(jj);
            if loads[ii] - loads[jj] <= min_thr / s_j {
                continue;
            }
            let p_ij = migration_probability(
                deg,
                g.d_max_endpoint(i, j),
                loads[ii],
                loads[jj],
                speeds.speed(ii),
                s_j,
                node_weights[ii],
                alpha,
            );
            // Joint destination probability of a single task.
            let q = p_ij / deg as f64;
            if q > 0.0 {
                scratch.dest_nodes.push(jj);
                scratch.dest_probs.push(q);
                if R::CLASS_DEPENDENT {
                    scratch.dest_speeds.push(s_j);
                }
            }
        }
        if scratch.dest_nodes.is_empty() {
            continue;
        }
        for c in 0..k {
            let count = counts[ii * k + c];
            if count == 0 {
                continue;
            }
            let thr = class_thresholds[c];
            // Classes at the loosest threshold reuse the shared
            // destination row as-is — always under a
            // weight-independent rule; tighter classes filter it. Both
            // thresholds are copies out of `class_thresholds`, so the
            // exact comparison is an identity test, not a tolerance.
            #[allow(clippy::float_cmp)]
            let (nodes, probs): (&[usize], &[f64]) = if !R::CLASS_DEPENDENT || thr == min_thr {
                (&scratch.dest_nodes, &scratch.dest_probs)
            } else {
                scratch.class_dest_nodes.clear();
                scratch.class_dest_probs.clear();
                for (d, &jj) in scratch.dest_nodes.iter().enumerate() {
                    if loads[ii] - loads[jj] > thr / scratch.dest_speeds[d] {
                        scratch.class_dest_nodes.push(jj);
                        scratch.class_dest_probs.push(scratch.dest_probs[d]);
                    }
                }
                (&scratch.class_dest_nodes, &scratch.class_dest_probs)
            };
            if nodes.is_empty() {
                continue;
            }
            let moved_total = sample_multinomial(count, probs, &mut scratch.moved, &mut rng);
            if moved_total > 0 {
                delta[(ii - base) * k + c] -= moved_total as i64;
                for (&jj, &mv) in nodes.iter().zip(&scratch.moved) {
                    if mv > 0 {
                        if (base..base + delta.len() / k).contains(&jj) {
                            delta[(jj - base) * k + c] += mv as i64;
                        } else {
                            // Lossless: round entry asserts n·k ≤ u32::MAX.
                            #[allow(clippy::cast_possible_truncation)]
                            scratch.spill.push(((jj * k + c) as u32, mv as i64));
                        }
                    }
                }
                scratch.totals.migrations += moved_total;
                scratch.totals.migrated_weight += moved_total as f64 * class_weights[c];
            }
        }
    }
}

/// The shared stop-condition run loop of the fast engines: `stop` is
/// checked before every round (a satisfied initial state costs zero
/// rounds) and once more at budget exhaustion; every committed round (and
/// the initial state, with `report = None`) is fed to `observe`.
pub(crate) fn run_observed_loop<Sim, Rep: Copy>(
    sim: &mut Sim,
    max_rounds: u64,
    met: impl Fn(&mut Sim) -> bool,
    step: impl Fn(&mut Sim) -> Rep,
    migrations_of: impl Fn(&Rep) -> u64,
    mut observe: impl FnMut(&mut Sim, Option<Rep>),
) -> FastRunOutcome {
    observe(sim, None);
    let mut migrations = 0u64;
    for executed in 0..max_rounds {
        if met(sim) {
            return FastRunOutcome {
                rounds: executed,
                reached: true,
                migrations,
            };
        }
        let report = step(sim);
        observe(sim, Some(report));
        migrations += migrations_of(&report);
    }
    FastRunOutcome {
        rounds: max_rounds,
        reached: met(sim),
        migrations,
    }
}

/// Loads, per-node threshold weights, and occupancy for the count-based
/// equilibrium predicates (shared by `WeightedFastSim` and
/// `SpeedFastSim`, for the exact, ε, and gap forms alike).
pub(crate) fn class_equilibrium_inputs(
    state: &ClassCountState,
    speeds: &SpeedVector,
    threshold: Threshold,
) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
    let loads = state.loads(speeds);
    let n = state.nodes();
    let occupied: Vec<bool> = (0..n).map(|v| state.node_task_count(v) > 0).collect();
    let thresholds: Vec<f64> = match threshold {
        Threshold::UnitWeight => vec![1.0; n],
        Threshold::LightestTask => (0..n)
            .map(|v| state.min_weight_present(v).unwrap_or(f64::INFINITY))
            .collect(),
    };
    (loads, thresholds, occupied)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_rules() {
        assert_eq!(RelaxedThreshold.threshold(0.25), 1.0);
        assert_eq!(RelaxedThreshold.threshold(1.0), 1.0);
        assert_eq!(OwnWeightThreshold.threshold(0.25), 0.25);
        assert_eq!(OwnWeightThreshold.threshold(1.0), 1.0);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for n in [0usize, 1, 7, 63, 64, 65, 1000, 1 << 20] {
            let mut next = 0usize;
            for s in 0..ROUND_SHARDS {
                let r = shard_range(s, n);
                assert_eq!(r.start, next, "gap before shard {s} at n={n}");
                assert!(r.start <= r.end);
                next = r.end;
            }
            assert_eq!(next, n, "shards must cover [0, {n})");
        }
    }

    #[test]
    fn small_n_leaves_tail_shards_empty() {
        // n < ROUND_SHARDS: every node still lands in exactly one shard.
        let n = 5;
        let nonempty: Vec<Range<usize>> = (0..ROUND_SHARDS)
            .map(|s| shard_range(s, n))
            .filter(|r| !r.is_empty())
            .collect();
        assert_eq!(nonempty.iter().map(|r| r.len()).sum::<usize>(), n);
    }

    #[test]
    fn run_loop_checks_before_first_round() {
        // A trivially satisfied stop rule must cost zero rounds and zero
        // steps.
        let mut steps = 0u32;
        let out = run_observed_loop(
            &mut steps,
            100,
            |_| true,
            |s| {
                *s += 1;
                1u64
            },
            |&m| m,
            |_, _| {},
        );
        assert_eq!(out.rounds, 0);
        assert!(out.reached);
        assert_eq!(out.migrations, 0);
        assert_eq!(steps, 0);
    }

    #[test]
    fn run_loop_exhausts_budget_and_rechecks() {
        // Never-met stop: the loop runs the full budget, tallies
        // migrations, and observes the initial state plus every round.
        let mut observed = Vec::new();
        let mut steps = 0u32;
        let out = run_observed_loop(
            &mut steps,
            5,
            |_| false,
            |s| {
                *s += 1;
                2u64
            },
            |&m| m,
            |s, rep| observed.push((*s, rep)),
        );
        assert_eq!(out.rounds, 5);
        assert!(!out.reached);
        assert_eq!(out.migrations, 10);
        assert_eq!(observed.len(), 6);
        assert_eq!(observed[0], (0, None));
        assert_eq!(observed[5], (5, Some(2)));
    }
}
