//! The shared count-based round kernel behind the three fast engines.
//!
//! [`uniform_fast`](crate::engine::uniform_fast),
//! [`weighted_fast`](crate::engine::weighted_fast) and
//! [`speed_fast`](crate::engine::speed_fast) all simulate the same
//! synchronous-round structure: every task on node `i` picks a uniform
//! neighbor `j`, tests a migration condition `ℓ_i − ℓ_j > θ/s_j`, and
//! migrates with the shared probability `p_ij`
//! ([`migration_probability`]). The probability never depends on the
//! task's identity or weight, and the condition depends on the task only
//! through its weight class — so tasks of equal weight on a node are
//! exchangeable, and one round collapses to a multinomial per
//! `(node, weight class)` ([`sample_multinomial`]).
//!
//! The protocols differ **only** in the threshold numerator `θ`:
//! Algorithms 1 and 2 use the weight-independent `θ = 1` (the heaviest
//! possible task — the paper's §4 design point), while the \[6\] baseline
//! uses each task's own weight `θ = w`. [`ThresholdRule`] captures exactly
//! that one number, and the three engines become thin instantiations of
//! the kernel step:
//!
//! | engine | rule | classes |
//! |---|---|---|
//! | `UniformFastSim` | [`RelaxedThreshold`] | one (`w = 1`) |
//! | `WeightedFastSim` | [`RelaxedThreshold`] | `k` |
//! | `SpeedFastSim` (alg2) | [`RelaxedThreshold`] | `k` |
//! | `SpeedFastSim` (bhs) | [`OwnWeightThreshold`] | `k` |
//!
//! The kernel owns reusable scratch buffers (round-start node weights and
//! speed-normalized loads, the per-node destination probability row, the
//! per-class filtered view, the count deltas), so a round performs no
//! heap allocation; neighbor scans run over the graph's CSR adjacency
//! slices. Per round the work is `O(|E| + n·k)` plus the sampled counts —
//! against `O(m)` for the per-task engines.
//!
//! Determinism contract: for a class-independent rule the kernel consumes
//! randomness in exactly the order the pre-kernel engines did (per node,
//! per class, per passing destination in CSR order), so refactoring the
//! engines onto the kernel changed no trajectory and no golden artifact.

use crate::engine::sampling::sample_multinomial;
use crate::engine::uniform_fast::FastRunOutcome;
use crate::engine::weighted_fast::ClassCountState;
use crate::equilibrium::Threshold;
use crate::model::{SpeedVector, System};
use crate::protocol::migration_probability;
use rand::rngs::StdRng;

/// The migration-condition threshold of a count-based protocol: on edge
/// `(i, j)`, a task of class weight `w` has an incentive to migrate iff
/// `ℓ_i − ℓ_j > threshold(w)/s_j`. The migration *probability* `p_ij` is
/// protocol-independent ([`migration_probability`]), so this one number
/// is the entire per-protocol surface of the count kernel.
pub trait ThresholdRule {
    /// Whether `θ` depends on the class weight. `false` lets the kernel
    /// constant-fold away the per-node loosest-threshold scan and the
    /// per-class destination filtering (every class shares one row).
    const CLASS_DEPENDENT: bool;

    /// Threshold numerator `θ(w)` for a task of class weight `w`.
    fn threshold(&self, class_weight: f64) -> f64;
}

/// The weight-independent threshold of Algorithms 1 and 2: `θ = 1`, the
/// heaviest possible task (`w ≤ 1`). Every task on a node faces the same
/// condition — the §4 design point that makes the relaxed equilibrium
/// absorbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelaxedThreshold;

impl ThresholdRule for RelaxedThreshold {
    const CLASS_DEPENDENT: bool = false;

    #[inline]
    fn threshold(&self, _class_weight: f64) -> f64 {
        1.0
    }
}

/// The own-weight threshold of the \[6\] baseline: `θ = w`, so light
/// tasks keep migrating long after the relaxed rule has frozen the edge —
/// which is why \[6\] converges to an *exact* NE and its bounds are
/// weaker (Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OwnWeightThreshold;

impl ThresholdRule for OwnWeightThreshold {
    const CLASS_DEPENDENT: bool = true;

    #[inline]
    fn threshold(&self, class_weight: f64) -> f64 {
        class_weight
    }
}

/// Totals of one kernel round.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct StepTotals {
    /// Tasks that migrated.
    pub migrations: u64,
    /// Total weight that migrated.
    pub migrated_weight: f64,
}

/// Reusable per-round scratch of the count-based engines. One instance
/// lives inside each simulator; all buffers are cleared and refilled in
/// place, so steady-state rounds allocate nothing.
#[derive(Debug, Default)]
pub(crate) struct CountKernel {
    /// Round-start `W_i`.
    node_weights: Vec<f64>,
    /// Round-start speed-normalized loads `ℓ_i = W_i/s_i`.
    loads: Vec<f64>,
    /// Count deltas of the committing round (node-major, `k` per node).
    delta: Vec<i64>,
    /// `θ(w_c)` per class, computed once per round.
    class_thresholds: Vec<f64>,
    /// Current node's candidate destinations (CSR neighbor order).
    dest_nodes: Vec<usize>,
    /// `q_j = p_ij/deg(i)` per candidate destination.
    dest_probs: Vec<f64>,
    /// `s_j` per candidate destination (for per-class conditions).
    dest_speeds: Vec<f64>,
    /// Per-class filtered destination view (tighter-threshold classes).
    class_dest_nodes: Vec<usize>,
    /// Probabilities of the filtered view.
    class_dest_probs: Vec<f64>,
    /// Multinomial output row.
    moved: Vec<u64>,
}

impl CountKernel {
    /// A fresh kernel (buffers grow to steady-state sizes on first use).
    pub(crate) fn new() -> Self {
        CountKernel::default()
    }

    /// Executes one synchronous round over node-major per-class `counts`
    /// (`counts[node·k + class]` tasks of weight `class_weights[class]`),
    /// committing all migrations simultaneously against the round-start
    /// snapshot.
    pub(crate) fn step<R: ThresholdRule>(
        &mut self,
        system: &System,
        alpha: f64,
        rule: &R,
        class_weights: &[f64],
        counts: &mut [u64],
        rng: &mut StdRng,
    ) -> StepTotals {
        let g = system.graph();
        let speeds = system.speeds();
        let k = class_weights.len();
        let n = g.node_count();
        debug_assert_eq!(counts.len(), n * k, "node-major counts, k per node");

        // Round-start aggregates, once per round into reused buffers: the
        // node weights and the speed-normalized loads every probability
        // below reads.
        self.node_weights.clear();
        if k == 1 {
            // Single-class form as a plain map: the steady-state rounds
            // of the uniform engine are dominated by this preamble, so it
            // must vectorize.
            let w = class_weights[0];
            self.node_weights
                .extend(counts.iter().map(|&c| c as f64 * w));
        } else {
            self.node_weights.extend(counts.chunks_exact(k).map(|row| {
                row.iter()
                    .zip(class_weights)
                    .map(|(&c, &w)| c as f64 * w)
                    .sum::<f64>()
            }));
        }
        self.loads.clear();
        self.loads.extend(
            self.node_weights
                .iter()
                .zip(speeds.as_slice())
                .map(|(&w, &s)| w / s),
        );
        self.delta.clear();
        self.delta.resize(counts.len(), 0);
        self.class_thresholds.clear();
        self.class_thresholds
            .extend(class_weights.iter().map(|&w| rule.threshold(w)));

        let mut totals = StepTotals::default();
        for i in g.nodes() {
            let ii = i.index();
            if self.node_weights[ii] <= 0.0 {
                continue;
            }
            let deg = g.degree(i);
            // Single-class fast path: there is no shared destination row
            // to amortize across classes, so fuse the neighbor scan and
            // the chained conditional binomials into one pass (the
            // pre-kernel uniform engine's shape — and the identical
            // sample sequence, since probability pricing consumes no
            // randomness).
            if k == 1 {
                let thr = self.class_thresholds[0];
                let mut remaining = counts[ii];
                let mut rem_prob = 1.0f64;
                for &j in g.neighbors(i) {
                    if remaining == 0 {
                        break;
                    }
                    let jj = j.index();
                    let s_j = speeds.speed(jj);
                    if self.loads[ii] - self.loads[jj] <= thr / s_j {
                        continue;
                    }
                    let p_ij = migration_probability(
                        deg,
                        g.d_max_endpoint(i, j),
                        self.loads[ii],
                        self.loads[jj],
                        speeds.speed(ii),
                        s_j,
                        self.node_weights[ii],
                        alpha,
                    );
                    let q = p_ij / deg as f64;
                    if q <= 0.0 {
                        continue;
                    }
                    let cond = (q / rem_prob).min(1.0);
                    let moved = crate::engine::sampling::sample_binomial(remaining, cond, rng);
                    if moved > 0 {
                        self.delta[ii] -= moved as i64;
                        self.delta[jj] += moved as i64;
                        totals.migrations += moved;
                        totals.migrated_weight += moved as f64 * class_weights[0];
                        remaining -= moved;
                    }
                    rem_prob -= q;
                }
                continue;
            }
            // The loosest condition any class present on this node can
            // satisfy gates the (CSR-contiguous) neighbor scan: edges
            // failing it for every present class never price a
            // probability. Class-independent rules constant-fold the scan
            // away (every class shares the one threshold).
            let min_thr = if R::CLASS_DEPENDENT {
                let mut min_thr = f64::INFINITY;
                for c in 0..k {
                    if counts[ii * k + c] > 0 && self.class_thresholds[c] < min_thr {
                        min_thr = self.class_thresholds[c];
                    }
                }
                min_thr
            } else {
                self.class_thresholds[0]
            };
            self.dest_nodes.clear();
            self.dest_probs.clear();
            self.dest_speeds.clear();
            for &j in g.neighbors(i) {
                let jj = j.index();
                let s_j = speeds.speed(jj);
                if self.loads[ii] - self.loads[jj] <= min_thr / s_j {
                    continue;
                }
                let p_ij = migration_probability(
                    deg,
                    g.d_max_endpoint(i, j),
                    self.loads[ii],
                    self.loads[jj],
                    speeds.speed(ii),
                    s_j,
                    self.node_weights[ii],
                    alpha,
                );
                // Joint destination probability of a single task.
                let q = p_ij / deg as f64;
                if q > 0.0 {
                    self.dest_nodes.push(jj);
                    self.dest_probs.push(q);
                    self.dest_speeds.push(s_j);
                }
            }
            if self.dest_nodes.is_empty() {
                continue;
            }
            for c in 0..k {
                let count = counts[ii * k + c];
                if count == 0 {
                    continue;
                }
                let thr = self.class_thresholds[c];
                // Classes at the loosest threshold reuse the shared
                // destination row as-is — always under a
                // weight-independent rule; tighter classes filter it.
                let (nodes, probs): (&[usize], &[f64]) = if !R::CLASS_DEPENDENT || thr == min_thr {
                    (&self.dest_nodes, &self.dest_probs)
                } else {
                    self.class_dest_nodes.clear();
                    self.class_dest_probs.clear();
                    for (d, &jj) in self.dest_nodes.iter().enumerate() {
                        if self.loads[ii] - self.loads[jj] > thr / self.dest_speeds[d] {
                            self.class_dest_nodes.push(jj);
                            self.class_dest_probs.push(self.dest_probs[d]);
                        }
                    }
                    (&self.class_dest_nodes, &self.class_dest_probs)
                };
                if nodes.is_empty() {
                    continue;
                }
                let moved_total = sample_multinomial(count, probs, &mut self.moved, rng);
                if moved_total > 0 {
                    self.delta[ii * k + c] -= moved_total as i64;
                    for (&jj, &mv) in nodes.iter().zip(&self.moved) {
                        if mv > 0 {
                            self.delta[jj * k + c] += mv as i64;
                        }
                    }
                    totals.migrations += moved_total;
                    totals.migrated_weight += moved_total as f64 * class_weights[c];
                }
            }
        }
        for (count, &d) in counts.iter_mut().zip(&self.delta) {
            let updated = *count as i64 + d;
            debug_assert!(updated >= 0, "negative count after round");
            *count = updated as u64;
        }
        totals
    }
}

/// The shared stop-condition run loop of the fast engines: `stop` is
/// checked before every round (a satisfied initial state costs zero
/// rounds) and once more at budget exhaustion; every committed round (and
/// the initial state, with `report = None`) is fed to `observe`.
pub(crate) fn run_observed_loop<Sim, Rep: Copy>(
    sim: &mut Sim,
    max_rounds: u64,
    met: impl Fn(&mut Sim) -> bool,
    step: impl Fn(&mut Sim) -> Rep,
    migrations_of: impl Fn(&Rep) -> u64,
    mut observe: impl FnMut(&mut Sim, Option<Rep>),
) -> FastRunOutcome {
    observe(sim, None);
    let mut migrations = 0u64;
    for executed in 0..max_rounds {
        if met(sim) {
            return FastRunOutcome {
                rounds: executed,
                reached: true,
                migrations,
            };
        }
        let report = step(sim);
        observe(sim, Some(report));
        migrations += migrations_of(&report);
    }
    FastRunOutcome {
        rounds: max_rounds,
        reached: met(sim),
        migrations,
    }
}

/// Loads, per-node threshold weights, and occupancy for the count-based
/// equilibrium predicates (shared by `WeightedFastSim` and
/// `SpeedFastSim`, for the exact, ε, and gap forms alike).
pub(crate) fn class_equilibrium_inputs(
    state: &ClassCountState,
    speeds: &SpeedVector,
    threshold: Threshold,
) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
    let loads = state.loads(speeds);
    let n = state.nodes();
    let occupied: Vec<bool> = (0..n).map(|v| state.node_task_count(v) > 0).collect();
    let thresholds: Vec<f64> = match threshold {
        Threshold::UnitWeight => vec![1.0; n],
        Threshold::LightestTask => (0..n)
            .map(|v| state.min_weight_present(v).unwrap_or(f64::INFINITY))
            .collect(),
    };
    (loads, thresholds, occupied)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_rules() {
        assert_eq!(RelaxedThreshold.threshold(0.25), 1.0);
        assert_eq!(RelaxedThreshold.threshold(1.0), 1.0);
        assert_eq!(OwnWeightThreshold.threshold(0.25), 0.25);
        assert_eq!(OwnWeightThreshold.threshold(1.0), 1.0);
    }

    #[test]
    fn run_loop_checks_before_first_round() {
        // A trivially satisfied stop rule must cost zero rounds and zero
        // steps.
        let mut steps = 0u32;
        let out = run_observed_loop(
            &mut steps,
            100,
            |_| true,
            |s| {
                *s += 1;
                1u64
            },
            |&m| m,
            |_, _| {},
        );
        assert_eq!(out.rounds, 0);
        assert!(out.reached);
        assert_eq!(out.migrations, 0);
        assert_eq!(steps, 0);
    }

    #[test]
    fn run_loop_exhausts_budget_and_rechecks() {
        // Never-met stop: the loop runs the full budget, tallies
        // migrations, and observes the initial state plus every round.
        let mut observed = Vec::new();
        let mut steps = 0u32;
        let out = run_observed_loop(
            &mut steps,
            5,
            |_| false,
            |s| {
                *s += 1;
                2u64
            },
            |&m| m,
            |s, rep| observed.push((*s, rep)),
        );
        assert_eq!(out.rounds, 5);
        assert!(!out.reached);
        assert_eq!(out.migrations, 10);
        assert_eq!(observed.len(), 6);
        assert_eq!(observed[0], (0, None));
        assert_eq!(observed[5], (5, Some(2)));
    }
}
