//! Fast count-based simulation of the weighted selfish protocol
//! (Algorithm 1's dynamics under the Definition-4.1 weighted rule).
//!
//! The §4 design point of the paper — a task's migration decision *does
//! not depend on its own weight* — is exactly an exchangeability
//! statement: every task on node `i` faces the same threshold
//! `ℓ_i − ℓ_j > 1/s_j` and the same migration probability `p_ij`
//! ([`migration_probability`](crate::protocol::migration_probability),
//! the Definition-4.1-consistent rule of
//! [`crate::protocol::SelfishWeighted`]). Tasks of equal weight on the
//! same node are therefore interchangeable, and a round is fully described
//! by, for every (node, weight class), how many of its tasks move to each
//! neighbor — a **multinomial** with per-destination probabilities
//! `q_j = p_ij/deg(i)`, sampled via the chained conditional binomials of
//! [`crate::engine::sampling`]. This generalizes
//! [`UniformFastSim`](crate::engine::uniform_fast::UniformFastSim) (the
//! one-class case) to weighted tasks and heterogeneous speeds: `O(|E| +
//! n·k)` work per round for `k` weight classes instead of `O(m)` per-task
//! sampling — distributionally identical, and a large win on the paper's
//! headline `alg1 × weighted` regime where `m/n` is large.
//!
//! Finite-support weight distributions (unit, bimodal) map to classes
//! losslessly; continuous ones are quantized by the workloads layer
//! (`slb_workloads::weight_classes`) — the documented approximation for
//! this engine, alongside the shared normal-approximation substitution of
//! the binomial sampler.
//!
//! The round itself is executed by the shared count kernel
//! ([`crate::engine::kernel`]) under the weight-independent
//! [`RelaxedThreshold`] rule;
//! [`SpeedFastSim`](crate::engine::speed_fast::SpeedFastSim) runs the
//! same kernel for Algorithm 2 and the \[6\] baseline.

use crate::engine::kernel::{self, CountKernel, RelaxedThreshold};
use crate::engine::uniform_fast::FastRunOutcome;
use crate::equilibrium::{self, Threshold};
use crate::model::{SpeedVector, System};
use crate::potential;
use crate::protocol::Alpha;

/// The count-based state of the weight-class engine:
/// `counts[node][class]` tasks of weight `class_weights[class]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassCountState {
    class_weights: Vec<f64>,
    /// Node-major: `counts[node * classes + class]`.
    counts: Vec<u64>,
    nodes: usize,
}

impl ClassCountState {
    /// Builds from per-node class counts.
    ///
    /// # Panics
    ///
    /// Panics if `class_weights` is empty or contains a weight outside
    /// `(0, 1]`, if `per_node` is empty, or if any row's length differs
    /// from the class count.
    pub fn new(class_weights: Vec<f64>, per_node: Vec<Vec<u64>>) -> Self {
        assert!(!class_weights.is_empty(), "need at least one weight class");
        assert!(
            class_weights
                .iter()
                .all(|&w| w > 0.0 && w <= 1.0 && w.is_finite()),
            "class weights must lie in (0, 1]"
        );
        assert!(!per_node.is_empty(), "need at least one node");
        let k = class_weights.len();
        let nodes = per_node.len();
        let mut counts = Vec::with_capacity(nodes * k);
        for row in per_node {
            assert_eq!(row.len(), k, "one count per class per node");
            counts.extend_from_slice(&row);
        }
        ClassCountState {
            class_weights,
            counts,
            nodes,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of weight classes `k`.
    pub fn classes(&self) -> usize {
        self.class_weights.len()
    }

    /// The class weights.
    pub fn class_weights(&self) -> &[f64] {
        &self.class_weights
    }

    /// The per-class counts of one node.
    pub fn counts(&self, node: usize) -> &[u64] {
        let k = self.classes();
        &self.counts[node * k..(node + 1) * k]
    }

    /// Split borrow for the count kernel: the class weights alongside the
    /// mutable node-major counts.
    pub(crate) fn kernel_view(&mut self) -> (&[f64], &mut [u64]) {
        (&self.class_weights, &mut self.counts)
    }

    /// Tasks hosted on one node (all classes).
    pub fn node_task_count(&self, node: usize) -> u64 {
        self.counts(node).iter().sum()
    }

    /// Total number of tasks.
    pub fn total_tasks(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total tasks of one class across all nodes.
    pub fn class_total(&self, class: usize) -> u64 {
        (0..self.nodes).map(|v| self.counts(v)[class]).sum()
    }

    /// `W_i = Σ_c counts[i][c] · w_c` for one node.
    pub fn node_weight(&self, node: usize) -> f64 {
        self.counts(node)
            .iter()
            .zip(&self.class_weights)
            .map(|(&c, &w)| c as f64 * w)
            .sum()
    }

    /// All node weights.
    pub fn node_weights(&self) -> Vec<f64> {
        (0..self.nodes).map(|v| self.node_weight(v)).collect()
    }

    /// Total weight `W`.
    pub fn total_weight(&self) -> f64 {
        (0..self.nodes).map(|v| self.node_weight(v)).sum()
    }

    /// Loads `ℓ_i = W_i/s_i`.
    pub fn loads(&self, speeds: &SpeedVector) -> Vec<f64> {
        (0..self.nodes)
            .map(|v| self.node_weight(v) / speeds.speed(v))
            .collect()
    }

    /// The lightest class weight present on a node, if any task is hosted.
    pub fn min_weight_present(&self, node: usize) -> Option<f64> {
        self.counts(node)
            .iter()
            .zip(&self.class_weights)
            .filter(|(&c, _)| c > 0)
            .map(|(_, &w)| w)
            .fold(None, |acc, w| Some(acc.map_or(w, |a: f64| a.min(w))))
    }
}

/// What one round of the weight-class engine moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedStepReport {
    /// Tasks that migrated.
    pub migrations: u64,
    /// Total weight that migrated.
    pub migrated_weight: f64,
}

/// Per-round metrics hook for the weight-class engine — the count-based
/// counterpart of [`RoundObserver`](crate::engine::recorder::RoundObserver)
/// (which is tied to a per-task [`TaskState`](crate::model::TaskState) and
/// therefore cannot observe a count-based run). Observers see the initial
/// state as round 0 with `report = None`, then every committed round.
pub trait ClassRoundObserver {
    /// Called after each committed round (and once for the initial state).
    fn observe(
        &mut self,
        round: u64,
        system: &System,
        state: &ClassCountState,
        report: Option<WeightedStepReport>,
    );
}

/// The no-op observer: running observed with `()` is running unobserved.
impl ClassRoundObserver for () {
    fn observe(&mut self, _: u64, _: &System, _: &ClassCountState, _: Option<WeightedStepReport>) {}
}

/// Stop rules understood by [`WeightedFastSim::run_until_observed`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightedFastStop {
    /// `Ψ₀ ≤ bound`.
    Psi0Below(f64),
    /// Nash equilibrium under the given threshold rule.
    Nash(Threshold),
    /// ε-approximate Nash equilibrium under the given threshold rule.
    EpsNash(Threshold, f64),
}

/// Count-based simulator of the **weighted selfish protocol** (the
/// Definition-4.1 rule Algorithm 2 executes per task).
///
/// The state's class weights may be a quantization of the system's task
/// weights, so only the task *count* is checked against the system; `Ψ₀`
/// and equilibrium predicates are evaluated against the state's own
/// (possibly quantized) weights.
#[derive(Debug)]
pub struct WeightedFastSim<'a> {
    system: &'a System,
    alpha: f64,
    state: ClassCountState,
    /// Master seed; each round's shards derive their streams from
    /// `(seed, round, shard)`, so the trajectory is thread-invariant.
    seed: u64,
    /// Worker cap for the sharded round (result-invariant).
    threads: usize,
    round: u64,
    /// The shared count kernel (reusable round scratch).
    kernel: CountKernel,
}

impl<'a> WeightedFastSim<'a> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the state's node count or total task count does not match
    /// the system's.
    pub fn new(system: &'a System, alpha: Alpha, state: ClassCountState, seed: u64) -> Self {
        assert_eq!(
            state.nodes(),
            system.node_count(),
            "state node count must match the system"
        );
        assert_eq!(
            state.total_tasks(),
            system.task_count() as u64,
            "state total must match the system's task count"
        );
        WeightedFastSim {
            system,
            alpha: alpha.resolve(system.speeds()),
            state,
            seed,
            threads: 1,
            round: 0,
            kernel: CountKernel::new(),
        }
    }

    /// Caps the worker fan-out of the sharded round. The trajectory is
    /// identical at any value (shard streams depend only on
    /// `(seed, round, shard)`); only wall-clock changes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The current counts.
    pub fn state(&self) -> &ClassCountState {
        &self.state
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Executes one round (one step of the shared count kernel under the
    /// weight-independent §4 rule).
    pub fn step(&mut self) -> WeightedStepReport {
        let (class_weights, counts) = self.state.kernel_view();
        let totals = self.kernel.step(
            self.system.graph(),
            self.system.speeds(),
            self.alpha,
            &RelaxedThreshold,
            class_weights,
            counts,
            self.seed,
            self.round,
            self.threads,
        );
        self.round += 1;
        WeightedStepReport {
            migrations: totals.migrations,
            migrated_weight: totals.migrated_weight,
        }
    }

    /// `Ψ₀` of the current state (against the state's class weights).
    pub fn psi0(&self) -> f64 {
        potential::psi0(
            &self.state.node_weights(),
            self.system.speeds(),
            self.state.total_weight(),
        )
    }

    /// Whether the current state is a Nash equilibrium under `threshold`
    /// ([`Threshold::UnitWeight`] is Algorithm 2's relaxed absorbing
    /// condition; [`Threshold::LightestTask`] uses the lightest *class*
    /// present on each node).
    pub fn is_nash(&self, threshold: Threshold) -> bool {
        let speeds = self.system.speeds();
        let (loads, thresholds, occupied) = self.equilibrium_inputs(threshold);
        equilibrium::is_nash_loads(self.system.graph(), speeds, &loads, &thresholds, &occupied)
    }

    /// Whether the current state is an ε-approximate Nash equilibrium
    /// under `threshold`, evaluated count-based against the state's own
    /// (possibly quantized) class weights — agrees exactly with
    /// [`equilibrium::is_eps_nash`] on the expanded per-task state when
    /// the classes are lossless.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ ε ≤ 1`.
    pub fn is_eps_nash(&self, threshold: Threshold, eps: f64) -> bool {
        let speeds = self.system.speeds();
        let (loads, thresholds, occupied) = self.equilibrium_inputs(threshold);
        equilibrium::is_eps_nash_loads(
            self.system.graph(),
            speeds,
            &loads,
            &thresholds,
            &occupied,
            eps,
        )
    }

    /// The smallest `ε` for which the current state is an ε-approximate
    /// NE under `threshold` (0 at an exact NE), evaluated count-based —
    /// agrees exactly with [`equilibrium::nash_gap`] on the expanded
    /// per-task state when the classes are lossless.
    pub fn nash_gap(&self, threshold: Threshold) -> f64 {
        let speeds = self.system.speeds();
        let (loads, thresholds, occupied) = self.equilibrium_inputs(threshold);
        equilibrium::nash_gap_loads(self.system.graph(), speeds, &loads, &thresholds, &occupied)
    }

    /// Loads, per-node threshold weights and occupancy for the equilibrium
    /// predicates (shared by the exact, ε and gap forms).
    fn equilibrium_inputs(&self, threshold: Threshold) -> (Vec<f64>, Vec<f64>, Vec<bool>) {
        kernel::class_equilibrium_inputs(&self.state, self.system.speeds(), threshold)
    }

    /// Runs until `stop` holds (checked before every round, so a satisfied
    /// initial state costs zero rounds) or the budget runs out, feeding
    /// every round through `observer`.
    pub fn run_until_observed<O: ClassRoundObserver>(
        &mut self,
        stop: WeightedFastStop,
        max_rounds: u64,
        observer: &mut O,
    ) -> FastRunOutcome {
        kernel::run_observed_loop(
            self,
            max_rounds,
            |sim| match stop {
                WeightedFastStop::Psi0Below(bound) => sim.psi0() <= bound,
                WeightedFastStop::Nash(threshold) => sim.is_nash(threshold),
                WeightedFastStop::EpsNash(threshold, eps) => sim.is_eps_nash(threshold, eps),
            },
            Self::step,
            |report| report.migrations,
            |sim, report| observer.observe(sim.round, sim.system, &sim.state, report),
        )
    }

    /// Runs until `Ψ₀ ≤ bound` or the budget runs out.
    pub fn run_until_psi0(&mut self, bound: f64, max_rounds: u64) -> FastRunOutcome {
        self.run_until_observed(WeightedFastStop::Psi0Below(bound), max_rounds, &mut ())
    }

    /// Runs until a Nash equilibrium under `threshold` or the budget runs
    /// out.
    pub fn run_until_nash(&mut self, threshold: Threshold, max_rounds: u64) -> FastRunOutcome {
        self.run_until_observed(WeightedFastStop::Nash(threshold), max_rounds, &mut ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TaskSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use slb_graphs::generators;

    /// A 2-class system: `m` tasks alternating between weights 0.25 and 1.
    fn two_class_sys(graph: slb_graphs::Graph, m: usize) -> System {
        let n = graph.node_count();
        let weights: Vec<f64> = (0..m)
            .map(|t| if t % 2 == 0 { 0.25 } else { 1.0 })
            .collect();
        System::new(
            graph,
            SpeedVector::uniform(n),
            TaskSet::weighted(weights).unwrap(),
        )
        .unwrap()
    }

    fn hot_state(n: usize, per_class: &[u64]) -> ClassCountState {
        let k = per_class.len();
        let mut per_node = vec![vec![0u64; k]; n];
        per_node[0] = per_class.to_vec();
        ClassCountState::new(vec![0.25, 1.0][..k].to_vec(), per_node)
    }

    #[test]
    fn class_count_state_accessors() {
        let st = ClassCountState::new(vec![0.5, 1.0], vec![vec![2, 1], vec![0, 0], vec![4, 0]]);
        assert_eq!(st.nodes(), 3);
        assert_eq!(st.classes(), 2);
        assert_eq!(st.counts(0), &[2, 1]);
        assert_eq!(st.node_task_count(0), 3);
        assert_eq!(st.total_tasks(), 7);
        assert_eq!(st.class_total(0), 6);
        assert_eq!(st.class_total(1), 1);
        assert!((st.node_weight(0) - 2.0).abs() < 1e-12);
        assert!((st.node_weight(2) - 2.0).abs() < 1e-12);
        assert!((st.total_weight() - 4.0).abs() < 1e-12);
        assert_eq!(st.min_weight_present(0), Some(0.5));
        assert_eq!(st.min_weight_present(1), None);
        assert_eq!(st.min_weight_present(2), Some(0.5));
        let speeds = SpeedVector::new(vec![1.0, 1.0, 4.0]).unwrap();
        let loads = st.loads(&speeds);
        assert!((loads[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "class weights must lie in (0, 1]")]
    fn bad_class_weight_rejected() {
        let _ = ClassCountState::new(vec![1.5], vec![vec![1]]);
    }

    #[test]
    #[should_panic(expected = "one count per class per node")]
    fn ragged_counts_rejected() {
        let _ = ClassCountState::new(vec![0.5, 1.0], vec![vec![1, 2], vec![3]]);
    }

    #[test]
    #[should_panic(expected = "state total must match")]
    fn total_mismatch_rejected() {
        let sys = two_class_sys(generators::path(2), 6);
        let _ = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(2, &[1, 1]), 1);
    }

    #[test]
    fn conserves_per_class_totals() {
        let sys = two_class_sys(generators::torus(3, 3), 900);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(9, &[450, 450]), 5);
        for _ in 0..100 {
            sim.step();
        }
        assert_eq!(sim.round(), 100);
        assert_eq!(sim.state().class_total(0), 450);
        assert_eq!(sim.state().class_total(1), 450);
        assert!((sim.state().total_weight() - (450.0 * 0.25 + 450.0)).abs() < 1e-6);
    }

    #[test]
    fn reaches_relaxed_equilibrium_from_hot_start() {
        let sys = two_class_sys(generators::ring(6), 120);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(6, &[60, 60]), 6);
        let out = sim.run_until_nash(Threshold::UnitWeight, 100_000);
        assert!(out.reached, "no relaxed NE within budget");
        assert!(out.migrations > 0, "the hot start must move tasks");
        assert!(sim.is_nash(Threshold::UnitWeight));
        // ℓ_i − ℓ_j ≤ 1/s_j on every edge at the absorbing state.
        let loads = sim.state().loads(sys.speeds());
        for &(a, b) in sys.graph().edges() {
            let gap = (loads[a.index()] - loads[b.index()]).abs();
            assert!(gap <= 1.0 + 1e-9, "edge gap {gap} exceeds 1");
        }
    }

    #[test]
    fn relaxed_equilibrium_is_absorbing() {
        // Loads (0.9, 0) on a path: gap ≤ 1 → the weight-independent rule
        // moves nothing, ever (the §4 design point, count-based).
        let weights = vec![0.3; 3];
        let sys = System::new(
            generators::path(2),
            SpeedVector::uniform(2),
            TaskSet::weighted(weights).unwrap(),
        )
        .unwrap();
        let state = ClassCountState::new(vec![0.3], vec![vec![3], vec![0]]);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, state, 7);
        assert!(sim.is_nash(Threshold::UnitWeight));
        assert!(!sim.is_nash(Threshold::LightestTask));
        for _ in 0..200 {
            let report = sim.step();
            assert_eq!(report.migrations, 0);
            assert_eq!(report.migrated_weight, 0.0);
        }
        assert_eq!(sim.state().counts(0), &[3]);
    }

    #[test]
    fn psi0_decreases_like_task_level_protocol() {
        let sys = two_class_sys(generators::hypercube(4), 1600);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(16, &[800, 800]), 8);
        let before = sim.psi0();
        for _ in 0..60 {
            sim.step();
        }
        assert!(sim.psi0() < before / 4.0, "Ψ₀ barely moved");
    }

    #[test]
    fn heterogeneous_speeds_balance_by_load_not_count() {
        // Speeds (1, 4) on a path: at the relaxed equilibrium the fast
        // node must carry most of the weight.
        let m = 200;
        let weights: Vec<f64> = (0..m).map(|t| if t % 2 == 0 { 0.5 } else { 1.0 }).collect();
        let sys = System::new(
            generators::path(2),
            SpeedVector::integer(vec![1, 4]).unwrap(),
            TaskSet::weighted(weights).unwrap(),
        )
        .unwrap();
        let state = ClassCountState::new(vec![0.5, 1.0], vec![vec![100, 100], vec![0, 0]]);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, state, 9);
        let out = sim.run_until_nash(Threshold::UnitWeight, 100_000);
        assert!(out.reached);
        let w_fast = sim.state().node_weight(1);
        assert!(
            w_fast > 0.7 * sim.state().total_weight(),
            "fast node carries only {w_fast}"
        );
    }

    #[test]
    fn first_round_outflow_matches_task_level_mean() {
        use crate::model::TaskState;
        use crate::protocol::{Protocol, SelfishWeighted};
        let sys = two_class_sys(generators::ring(4), 400);
        let trials = 300u64;
        let mut fast_total = 0u64;
        for t in 0..trials {
            let mut sim = WeightedFastSim::new(
                &sys,
                Alpha::Approximate,
                hot_state(4, &[200, 200]),
                1000 + t,
            );
            fast_total += sim.step().migrations;
        }
        let mut task_total = 0u64;
        for t in 0..trials {
            let mut st = TaskState::all_on_node(&sys, slb_graphs::NodeId(0));
            let mut rng = StdRng::seed_from_u64(5000 + t);
            task_total += SelfishWeighted::new()
                .round(&sys, &mut st, &mut rng)
                .migrations as u64;
        }
        let fast_mean = fast_total as f64 / trials as f64;
        let task_mean = task_total as f64 / trials as f64;
        assert!(
            (fast_mean - task_mean).abs() < 0.15 * task_mean.max(1.0),
            "fast {fast_mean} vs task-level {task_mean}"
        );
    }

    #[test]
    fn eps_nash_and_gap_match_expanded_state() {
        use crate::model::{TaskSet, TaskState};
        // Dyadic weights: per-node sums are exact in f64, so the expanded
        // per-task evaluation is bit-identical to the count-based one.
        let n = 4;
        let per_node = [[3u64, 1], [0, 2], [5, 0], [0, 0]];
        let class_weights = [0.25f64, 1.0];
        let mut task_weights = Vec::new();
        let mut assignment = Vec::new();
        for (node, row) in per_node.iter().enumerate() {
            for (c, &count) in row.iter().enumerate() {
                for _ in 0..count {
                    task_weights.push(class_weights[c]);
                    assignment.push(node);
                }
            }
        }
        let sys = System::new(
            generators::ring(n),
            SpeedVector::integer(vec![1, 2, 1, 4]).unwrap(),
            TaskSet::weighted(task_weights).unwrap(),
        )
        .unwrap();
        let st = TaskState::from_assignment(&sys, &assignment).unwrap();
        let state = ClassCountState::new(
            class_weights.to_vec(),
            per_node.iter().map(|r| r.to_vec()).collect(),
        );
        let sim = WeightedFastSim::new(&sys, Alpha::Approximate, state, 1);
        for threshold in [Threshold::UnitWeight, Threshold::LightestTask] {
            assert_eq!(
                sim.nash_gap(threshold),
                equilibrium::nash_gap(&sys, &st, threshold)
            );
            for eps in [0.0, 0.3, 1.0] {
                assert_eq!(
                    sim.is_eps_nash(threshold, eps),
                    equilibrium::is_eps_nash(&sys, &st, threshold, eps)
                );
            }
        }
    }

    #[test]
    fn eps_nash_stop_halts_no_later_than_exact() {
        let sys = two_class_sys(generators::ring(6), 240);
        let run = |stop: WeightedFastStop| {
            let mut sim =
                WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(6, &[120, 120]), 21);
            let out = sim.run_until_observed(stop, 100_000, &mut ());
            assert!(out.reached);
            out.rounds
        };
        let approx = run(WeightedFastStop::EpsNash(Threshold::UnitWeight, 0.5));
        let exact = run(WeightedFastStop::Nash(Threshold::UnitWeight));
        assert!(approx <= exact, "ε-NE ({approx}) after exact NE ({exact})");
    }

    #[test]
    fn run_until_psi0_stops() {
        let sys = two_class_sys(generators::complete(8), 800);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(8, &[400, 400]), 10);
        let start = sim.psi0();
        let out = sim.run_until_psi0(start / 100.0, 100_000);
        assert!(out.reached);
        assert!(sim.psi0() <= start / 100.0);
    }

    #[test]
    fn observer_sees_every_round() {
        struct Tally {
            calls: u64,
            migrations: u64,
            weight: f64,
        }
        impl ClassRoundObserver for Tally {
            fn observe(
                &mut self,
                _round: u64,
                _system: &System,
                state: &ClassCountState,
                report: Option<WeightedStepReport>,
            ) {
                self.calls += 1;
                if let Some(r) = report {
                    self.migrations += r.migrations;
                    self.weight += r.migrated_weight;
                }
                assert_eq!(state.total_tasks(), 120);
            }
        }
        let sys = two_class_sys(generators::ring(6), 120);
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, hot_state(6, &[60, 60]), 11);
        let mut tally = Tally {
            calls: 0,
            migrations: 0,
            weight: 0.0,
        };
        let out = sim.run_until_observed(
            WeightedFastStop::Nash(Threshold::UnitWeight),
            50_000,
            &mut tally,
        );
        assert!(out.reached);
        // Initial observation plus one per executed round.
        assert_eq!(tally.calls, out.rounds + 1);
        assert_eq!(tally.migrations, out.migrations);
        assert!(tally.weight > 0.0);
    }

    #[test]
    fn single_class_reduces_to_uniform_engine_semantics() {
        // One class of weight 1 is exactly the uniform-task setting; the
        // engines run different protocol *rules* (own-weight vs relaxed
        // threshold) which coincide at w = 1, so both must quiesce to the
        // same equilibrium condition.
        let n = 6;
        let m = 120usize;
        let sys = System::new(
            generators::ring(n),
            SpeedVector::uniform(n),
            TaskSet::weighted(vec![1.0; m]).unwrap(),
        )
        .unwrap();
        let state = ClassCountState::new(
            vec![1.0],
            (0..n)
                .map(|v| vec![if v == 0 { m as u64 } else { 0 }])
                .collect(),
        );
        let mut sim = WeightedFastSim::new(&sys, Alpha::Approximate, state, 12);
        let out = sim.run_until_nash(Threshold::UnitWeight, 100_000);
        assert!(out.reached);
        let loads = sim.state().loads(sys.speeds());
        for &(a, b) in sys.graph().edges() {
            assert!((loads[a.index()] - loads[b.index()]).abs() <= 1.0 + 1e-9);
        }
    }
}
