//! Deterministic multithreaded execution of per-task protocols.
//!
//! The protocols are "concurrent" in the paper's sense: within a round,
//! every task decides independently against the round-start snapshot. That
//! independence is exactly what makes the decision phase parallelizable.
//! [`ParallelSimulation`] partitions the task range into fixed-size chunks,
//! seeds every chunk's generator from `(master seed, round, chunk index)`
//! (see [`crate::rng`]), and fans the chunks out over a thread pool built
//! with `crossbeam::thread::scope`.
//!
//! Because chunk seeds do not depend on the thread count, the resulting
//! trajectory is a pure function of `(seed, chunk_size)` — run it on 1
//! thread or 16 and you get the same states. The test suite pins this down
//! by comparing against a sequential execution of the same chunk schedule.

use crate::model::{Move, System, TaskState};
use crate::protocol::{commit, RoundReport, Snapshot, TaskProtocol};
use crate::rng::rng_for;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of tasks per decision chunk.
pub const DEFAULT_CHUNK_SIZE: usize = 4096;

/// A multithreaded, deterministic simulation of a [`TaskProtocol`].
#[derive(Debug)]
pub struct ParallelSimulation<'a, P> {
    system: &'a System,
    protocol: P,
    state: TaskState,
    master_seed: u64,
    round: u64,
    chunk_size: usize,
    threads: usize,
}

impl<'a, P: TaskProtocol> ParallelSimulation<'a, P> {
    /// Creates a parallel simulation with the default chunk size and as
    /// many worker threads as available parallelism (at least 1).
    pub fn new(system: &'a System, protocol: P, state: TaskState, seed: u64) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        Self::with_layout(system, protocol, state, seed, DEFAULT_CHUNK_SIZE, threads)
    }

    /// Creates a parallel simulation with explicit chunk size and thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0` or `threads == 0`.
    pub fn with_layout(
        system: &'a System,
        protocol: P,
        state: TaskState,
        seed: u64,
        chunk_size: usize,
        threads: usize,
    ) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        assert!(threads > 0, "thread count must be positive");
        ParallelSimulation {
            system,
            protocol,
            state,
            master_seed: seed,
            round: 0,
            chunk_size,
            threads,
        }
    }

    /// The current state.
    pub fn state(&self) -> &TaskState {
        &self.state
    }

    /// Consumes the simulation, returning the final state.
    pub fn into_state(self) -> TaskState {
        self.state
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Executes one round: parallel decision phase, then a serial commit.
    pub fn step(&mut self) -> RoundReport {
        let snapshot = Snapshot::capture(self.system, &self.state);
        let m = self.system.task_count();
        let chunk_count = m.div_ceil(self.chunk_size);
        let next_chunk = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<Move>>> =
            (0..chunk_count).map(|_| Mutex::new(Vec::new())).collect();

        let system = self.system;
        let state = &self.state;
        let protocol = &self.protocol;
        let chunk_size = self.chunk_size;
        let master = self.master_seed;
        let round = self.round;
        let snapshot_ref = &snapshot;
        let slots_ref = &slots;
        let next_ref = &next_chunk;

        crossbeam::thread::scope(|scope| {
            for _ in 0..self.threads.min(chunk_count.max(1)) {
                scope.spawn(move |_| loop {
                    let chunk = next_ref.fetch_add(1, Ordering::Relaxed);
                    if chunk >= chunk_count {
                        break;
                    }
                    let lo = chunk * chunk_size;
                    let hi = (lo + chunk_size).min(m);
                    let mut rng = rng_for(master, round, chunk as u64);
                    let mut local = Vec::new();
                    protocol.decide(system, snapshot_ref, state, lo..hi, &mut rng, &mut local);
                    *slots_ref[chunk].lock() = local;
                });
            }
        })
        .expect("worker thread panicked");

        // Merge in chunk order for a canonical commit sequence.
        let mut moves = Vec::new();
        for slot in slots {
            moves.extend(slot.into_inner());
        }
        let report = commit(self.system, &mut self.state, &moves);
        self.round += 1;
        report
    }

    /// Executes `rounds` rounds, returning total migrations.
    pub fn run(&mut self, rounds: u64) -> u64 {
        let mut total = 0u64;
        for _ in 0..rounds {
            total += self.step().migrations as u64;
        }
        total
    }
}

/// Reference implementation of the *same* chunked schedule on one thread;
/// exists to pin down the determinism contract in tests and to debug
/// protocol implementations under the parallel seeding.
pub fn sequential_chunked_round<P: TaskProtocol>(
    system: &System,
    protocol: &P,
    state: &mut TaskState,
    master_seed: u64,
    round: u64,
    chunk_size: usize,
) -> RoundReport {
    assert!(chunk_size > 0, "chunk size must be positive");
    let snapshot = Snapshot::capture(system, state);
    let m = system.task_count();
    let chunk_count = m.div_ceil(chunk_size);
    let mut moves = Vec::new();
    for chunk in 0..chunk_count {
        let lo = chunk * chunk_size;
        let hi = (lo + chunk_size).min(m);
        let mut rng = rng_for(master_seed, round, chunk as u64);
        protocol.decide(system, &snapshot, state, lo..hi, &mut rng, &mut moves);
    }
    commit(system, state, &moves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{SpeedVector, TaskSet};
    use crate::protocol::{SelfishUniform, SelfishWeighted};
    use slb_graphs::{generators, NodeId};

    fn sys(m: usize) -> System {
        System::new(
            generators::torus(4, 4),
            SpeedVector::uniform(16),
            TaskSet::uniform(m),
        )
        .unwrap()
    }

    #[test]
    fn parallel_matches_sequential_chunked() {
        let s = sys(10_000);
        let mut par = ParallelSimulation::with_layout(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            77,
            512,
            4,
        );
        let mut seq_state = TaskState::all_on_node(&s, NodeId(0));
        for round in 0..10u64 {
            let a = par.step();
            let b = sequential_chunked_round(
                &s,
                &SelfishUniform::new(),
                &mut seq_state,
                77,
                round,
                512,
            );
            assert_eq!(a, b, "round {round} reports differ");
        }
        assert_eq!(par.state(), &seq_state);
    }

    #[test]
    fn thread_count_does_not_change_trajectory() {
        let s = sys(5_000);
        let run = |threads: usize| {
            let mut sim = ParallelSimulation::with_layout(
                &s,
                SelfishUniform::new(),
                TaskState::all_on_node(&s, NodeId(3)),
                5,
                256,
                threads,
            );
            sim.run(8);
            sim.into_state()
        };
        let a = run(1);
        let b = run(4);
        let c = run(13);
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn weighted_protocol_parallel_conservation() {
        use rand::{Rng, SeedableRng};
        let mut wrng = rand::rngs::StdRng::seed_from_u64(1);
        let s = System::new(
            generators::hypercube(4),
            SpeedVector::integer(vec![1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2, 1, 2]).unwrap(),
            TaskSet::weighted((0..2000).map(|_| wrng.gen_range(0.01..=1.0)).collect()).unwrap(),
        )
        .unwrap();
        let mut sim = ParallelSimulation::new(
            &s,
            SelfishWeighted::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            9,
        );
        sim.run(25);
        assert_eq!(sim.round(), 25);
        sim.state().check_invariants(&s).unwrap();
    }

    #[test]
    fn more_chunks_than_threads_and_vice_versa() {
        let s = sys(100);
        // chunk_size larger than m → single chunk, many threads.
        let mut a = ParallelSimulation::with_layout(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            1,
            1_000_000,
            8,
        );
        a.run(3);
        a.state().check_invariants(&s).unwrap();
        // chunk_size 1 → 100 chunks, 2 threads.
        let mut b = ParallelSimulation::with_layout(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            1,
            1,
            2,
        );
        b.run(3);
        b.state().check_invariants(&s).unwrap();
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let s = sys(10);
        let _ = ParallelSimulation::with_layout(
            &s,
            SelfishUniform::new(),
            TaskState::all_on_node(&s, NodeId(0)),
            0,
            0,
            1,
        );
    }
}
